// Gadget lab: the paper's hardness constructions as a round trip you can
// run — graph/formula in, repair problem out, combinatorial answer back.
//
//   vertex cover  --Thm 4.10-->  ∆A↔B→C table   --U-repair-->  2|E| + vc
//   MAX-SAT       --Lem A.13-->  ∆AB→C→B table  --S-repair-->  max-sat
//   triangles     --Lem A.11-->  ∆AB↔AC↔BC table --S-repair-->  packing
//
// Build & run:  ./build/examples/gadget_lab [seed]

#include <cstdlib>
#include <iostream>

#include "common/random.h"
#include "graph/vertex_cover.h"
#include "reductions/gadgets.h"
#include "srepair/planner.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "workloads/graph_gen.h"
#include "workloads/sat_gen.h"

using namespace fdrepair;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  // --- 1. Vertex cover -> U-repair distance (Theorem 4.10) ---
  {
    std::cout << "== vertex cover -> ∆A<->B->C update repairing ==\n";
    NodeWeightedGraph graph = RandomBoundedDegreeGraph(9, 3, 0.7, &rng);
    Table table = VertexCoverGadgetTable(graph);
    auto cover = MinWeightVertexCoverExact(graph);
    if (!cover.ok()) {
      std::cerr << cover.status() << "\n";
      return 1;
    }
    std::cout << "graph: |V| = " << graph.num_nodes() << ", |E| = "
              << graph.num_edges() << ", minimum vertex cover = "
              << cover->size() << "\n"
              << "gadget table: " << table.num_tuples()
              << " tuples; Theorem 4.10 optimum = 2|E| + vc = "
              << 2 * graph.num_edges() + static_cast<int>(cover->size())
              << "\n";
    URepairOptions options;
    options.allow_exact_search = false;
    auto repair = ComputeURepair(VertexCoverGadgetFds().fds, table, options);
    if (!repair.ok()) {
      std::cerr << repair.status() << "\n";
      return 1;
    }
    double optimum = 2.0 * graph.num_edges() + cover->size();
    std::cout << "approximate U-repair cost: " << repair->distance
              << "  (measured ratio "
              << repair->distance / optimum << ", guaranteed <= "
              << repair->ratio_bound << ")\n\n";
  }

  // --- 2. Non-mixed MAX-SAT -> S-repair size (Lemma A.13) ---
  {
    std::cout << "== MAX-non-mixed-SAT -> ∆AB->C->B subset repairing ==\n";
    NonMixedFormula formula = RandomNonMixedFormula(6, 8, 2, &rng);
    Table table = NonMixedSatGadgetTable(formula);
    SRepairOptions options;
    options.strategy = SRepairStrategy::kExactOnly;
    options.exact_guard = 64;
    auto repair = ComputeSRepair(NonMixedSatGadgetFds().fds, table, options);
    auto max_sat = MaxSatisfiableClausesExact(formula);
    if (!repair.ok() || !max_sat.ok()) {
      std::cerr << "solver failure\n";
      return 1;
    }
    std::cout << "formula: 6 variables, " << formula.clauses.size()
              << " non-mixed clauses; exhaustive MAX-SAT = " << *max_sat
              << "\n"
              << "optimal S-repair keeps " << repair->repair.num_tuples()
              << " tuples "
              << (repair->repair.num_tuples() == *max_sat
                      ? "✓ equals the MAX-SAT optimum (Lemma A.13)\n\n"
                      : "✗ MISMATCH\n\n");
  }

  // --- 3. Triangle packing -> S-repair size (Lemma A.11) ---
  {
    std::cout << "== edge-disjoint triangles -> ∆AB<->AC<->BC subset "
                 "repairing ==\n";
    NodeWeightedGraph graph = RandomTripartiteGraph(4, 0.45, &rng);
    std::vector<Triangle> triangles = EnumerateTriangles(graph, 4);
    std::cout << "tripartite graph: parts of 4, " << graph.num_edges()
              << " edges, " << triangles.size() << " triangles\n";
    if (triangles.empty() || triangles.size() > 20) {
      std::cout << "(re-run with another seed for a packable instance)\n";
      return 0;
    }
    Table table = TrianglePackingGadgetTable(triangles);
    SRepairOptions options;
    options.strategy = SRepairStrategy::kExactOnly;
    options.exact_guard = 64;
    auto repair =
        ComputeSRepair(TrianglePackingGadgetFds().fds, table, options);
    auto packing = MaxEdgeDisjointTrianglesExact(graph, triangles, 4);
    if (!repair.ok() || !packing.ok()) {
      std::cerr << "solver failure\n";
      return 1;
    }
    std::cout << "max edge-disjoint triangles = " << *packing
              << "; optimal S-repair keeps "
              << repair->repair.num_tuples() << " tuples "
              << (repair->repair.num_tuples() == *packing
                      ? "✓ equals the packing optimum (Lemma A.11)\n"
                      : "✗ MISMATCH\n");
  }
  return 0;
}
