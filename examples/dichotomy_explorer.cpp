// Interactive dichotomy explorer: paste an FD set, get the full complexity
// verdict for subset repairs (Theorem 3.4, with the Algorithm-2 trace and
// the Figure-2 class on the hard side) and for update repairs (the §4
// toolkit verdict), plus the approximation guarantees available.
//
// Usage:
//   ./build/examples/dichotomy_explorer "A -> B; B -> C"
//   echo "facility -> city; facility room -> floor" |
//       ./build/examples/dichotomy_explorer

#include <iostream>
#include <string>

#include "catalog/fd_parser.h"
#include "srepair/planner.h"
#include "urepair/covers.h"
#include "urepair/planner.h"

using namespace fdrepair;

namespace {

int Explore(const std::string& text) {
  auto parsed = ParseFdSetInferSchema(text);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  const Schema& schema = parsed->schema;
  const FdSet& fds = parsed->fds;
  std::cout << "schema: " << schema.ToString() << "\n"
            << "∆     : {" << fds.ToString(schema) << "}\n"
            << "chain : " << (fds.IsChain() ? "yes (Corollaries 3.6, 4.8 "
                                              "apply)"
                                            : "no")
            << "\n\n";

  std::cout << "--- optimal S-repair (Theorem 3.4 dichotomy) ---\n";
  SRepairVerdict s_verdict = ClassifySRepair(fds);
  std::cout << s_verdict.ToString(schema) << "\n";
  if (!s_verdict.polynomial) {
    std::cout << "guarantee: 2-approximation via weighted vertex cover "
                 "(Proposition 3.3)\n";
  }

  std::cout << "\n--- optimal U-repair (Section 4) ---\n";
  auto u_plan = PlanURepair(fds);
  if (!u_plan.ok()) {
    std::cerr << u_plan.status() << "\n";
    return 1;
  }
  std::cout << u_plan->ToString(schema) << "\n";
  if (u_plan->complexity != URepairComplexity::kPolynomial) {
    auto ours = MlcApproxRatioBound(fds);
    auto kl = KlApproxRatioBound(fds);
    std::cout << "guarantees: ours 2·mlc = "
              << (ours.ok() ? std::to_string(*ours) : ours.status().ToString())
              << ", Kolahi-Lakshmanan (MCI+2)(2MFS-1) = "
              << (kl.ok() ? std::to_string(*kl) : kl.status().ToString())
              << " (the planner runs both and keeps the cheaper repair)\n";
  }

  std::cout << "\n--- MPD (Theorem 3.10) ---\n";
  std::cout << "most probable database is "
            << (s_verdict.polynomial ? "solvable in polynomial time"
                                     : "NP-hard")
            << " for this ∆\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return Explore(argv[1]);
  std::cout << "enter an FD set (e.g. \"A B -> C; C -> B\"), one per line; "
               "Ctrl-D to exit\n> " << std::flush;
  std::string line;
  int status = 0;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) status = Explore(line);
    std::cout << "\n> " << std::flush;
  }
  return status;
}
