// Dirtiness estimation for human-in-the-loop cleaning (the paper's second
// motivation, §1): "the cost of the optimal repair can serve as an educated
// estimate for the extent to which the database is dirty and, consequently,
// the amount of effort needed for completion of cleaning."
//
// Scenario: a customer table integrated from three imperfect sources with
// different trust levels (tuple weights). We compute optimal / approximate
// repair costs under the business rules and report the estimated cleaning
// effort per rule set.
//
// Build & run:  ./build/examples/data_cleaning_estimator [seed]

#include <cstdlib>
#include <iostream>

#include "catalog/fd_parser.h"
#include "common/random.h"
#include "srepair/planner.h"
#include "urepair/planner.h"
#include "workloads/generators.h"

using namespace fdrepair;

namespace {

// Customers(cust_id, name, email, zip, city, segment) with realistic rules.
Table MakeDirtyCustomers(const Schema& schema, const FdSet& fds,
                         uint64_t seed) {
  Rng rng(seed);
  PlantedTableOptions options;
  options.num_tuples = 500;
  options.num_entities = 120;   // ~4 source records per customer
  options.corruptions = 60;     // integration noise
  options.heavy_fraction = 0.3;  // trusted-source tuples weigh more
  options.max_weight = 5.0;
  return PlantedDirtyTable(schema, fds, options, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  Schema schema = Schema::MakeOrDie(
      "Customers", {"cust_id", "name", "email", "zip", "city", "segment"});
  // Rule set A: identifying rules (chain-ish, tractable).
  FdSet rules_a = ParseFdSetOrDie(
      schema, "cust_id -> name; cust_id -> email; cust_id -> segment");
  // Rule set B: adds the zip/city geography rule, making the set hard.
  FdSet rules_b = ParseFdSetOrDie(
      schema,
      "cust_id -> name; cust_id -> email; cust_id -> segment; zip -> city");

  Table table = MakeDirtyCustomers(schema, rules_b, seed);
  std::cout << "Customers table: " << table.num_tuples()
            << " tuples, total trust weight " << table.TotalWeight()
            << "\n\n";

  for (const auto& [label, rules] :
       {std::pair<std::string, FdSet>{"rule set A (per-customer rules)",
                                      rules_a},
        {"rule set B (A + zip -> city)", rules_b}}) {
    std::cout << "== " << label << " ==\n";
    SRepairVerdict verdict = ClassifySRepair(rules);
    std::cout << "dichotomy: "
              << (verdict.polynomial
                      ? "tractable — exact cost available"
                      : "APX-complete — using guaranteed approximations")
              << "\n";

    SRepairOptions srepair_options;
    srepair_options.strategy = verdict.polynomial
                                   ? SRepairStrategy::kExactOnly
                                   : SRepairStrategy::kApproxOnly;
    auto srepair = ComputeSRepair(rules, table, srepair_options);
    if (!srepair.ok()) {
      std::cerr << srepair.status() << "\n";
      return 1;
    }
    std::cout << "  deletion-based dirtiness: " << srepair->distance
              << " weight units"
              << (srepair->optimal
                      ? " (exact)"
                      : " (within 2x of the true dirtiness)")
              << "\n";

    URepairOptions urepair_options;
    urepair_options.allow_exact_search = false;
    auto urepair = ComputeURepair(rules, table, urepair_options);
    if (!urepair.ok()) {
      std::cerr << urepair.status() << "\n";
      return 1;
    }
    std::cout << "  cell-fix dirtiness:       " << urepair->distance
              << " weighted cell edits"
              << (urepair->optimal
                      ? " (exact)"
                      : " (within " +
                            std::to_string(urepair->ratio_bound) +
                            "x of optimal)")
              << "\n";
    // Corollary 4.5 gives the analyst a bracket on the true edit effort.
    std::cout << "  => budget bracket for a cleaning crew: at least "
              << srepair->distance / 2.0 << ", at most " << urepair->distance
              << " units of work\n\n";
  }
  return 0;
}
