// Quickstart: the paper's Figure 1 running example, end to end.
//
//   1. declare a schema and a set of functional dependencies,
//   2. load a (dirty) table,
//   3. ask the planners for an optimal subset repair and an optimal update
//      repair, and inspect what they did.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "catalog/fd_parser.h"
#include "srepair/planner.h"
#include "storage/table_io.h"
#include "urepair/planner.h"

using namespace fdrepair;

int main() {
  // The Office table of Figure 1(a), as CSV (id and w are reserved columns).
  auto table = TableFromCsv(
      "id,facility,room,floor,city,w\n"
      "1,HQ,322,3,Paris,2\n"
      "2,HQ,322,30,Madrid,1\n"
      "3,HQ,122,1,Madrid,1\n"
      "4,Lab1,B35,3,London,2\n",
      "Office");
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }

  // ∆ = {facility → city, facility room → floor} (Example 2.2).
  auto fds = ParseFdSet(table->schema(),
                        "facility -> city; facility room -> floor");
  if (!fds.ok()) {
    std::cerr << fds.status() << "\n";
    return 1;
  }

  std::cout << "Input table T (violates ∆):\n" << table->ToString() << "\n";

  // --- Optimal subset repair (minimum-weight tuple deletions) ---
  auto srepair = ComputeSRepair(*fds, *table);
  if (!srepair.ok()) {
    std::cerr << srepair.status() << "\n";
    return 1;
  }
  std::cout << "Optimal S-repair (dist_sub = " << srepair->distance
            << ", algorithm: " << SRepairAlgorithmToString(srepair->algorithm)
            << ", provably optimal: " << (srepair->optimal ? "yes" : "no")
            << "):\n"
            << srepair->repair.ToString() << "\n";
  std::cout << "Dichotomy trace (Theorem 3.4):\n"
            << srepair->verdict.ToString(table->schema()) << "\n\n";

  // --- Optimal update repair (minimum-weight cell updates) ---
  auto urepair = ComputeURepair(*fds, *table);
  if (!urepair.ok()) {
    std::cerr << urepair.status() << "\n";
    return 1;
  }
  std::cout << "Optimal U-repair (dist_upd = " << urepair->distance
            << ", provably optimal: " << (urepair->optimal ? "yes" : "no")
            << "):\n"
            << urepair->update.ToString() << "\n";
  std::cout << "Update plan (Section 4 toolkit):\n"
            << urepair->plan.ToString(table->schema()) << "\n";
  return 0;
}
