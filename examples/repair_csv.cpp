// repair_csv: a command-line cleaner for CSV files — the shortest path from
// "I have a dirty file and some rules" to a repaired file.
//
// Usage:
//   repair_csv <input.csv> "<fd; fd; ...>" [--mode=subset|update]
//              [--out=<output.csv>] [--explain]
//
// The CSV may carry reserved "id" and "w" (weight) columns; every other
// column is a schema attribute. FDs reference the column names:
//
//   ./build/examples/repair_csv offices.csv
//       "facility -> city; facility room -> floor" --mode=update --explain

#include <fstream>
#include <iostream>
#include <string>

#include "catalog/fd_parser.h"
#include "common/strings.h"
#include "srepair/planner.h"
#include "storage/table_io.h"
#include "urepair/planner.h"

using namespace fdrepair;

namespace {

int Usage() {
  std::cerr << "usage: repair_csv <input.csv> \"<fd; fd; ...>\" "
               "[--mode=subset|update] [--out=<file>] [--explain]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string input_path = argv[1];
  std::string fd_text = argv[2];
  std::string mode = "subset";
  std::string out_path;
  bool explain = false;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--mode=")) {
      mode = arg.substr(7);
    } else if (StartsWith(arg, "--out=")) {
      out_path = arg.substr(6);
    } else if (arg == "--explain") {
      explain = true;
    } else {
      return Usage();
    }
  }
  if (mode != "subset" && mode != "update") return Usage();

  auto table = TableFromCsvFile(input_path);
  if (!table.ok()) {
    std::cerr << "cannot read " << input_path << ": " << table.status()
              << "\n";
    return 1;
  }
  auto fds = ParseFdSet(table->schema(), fd_text);
  if (!fds.ok()) {
    std::cerr << "cannot parse FDs: " << fds.status() << "\n";
    return 1;
  }

  std::string repaired_csv;
  if (mode == "subset") {
    auto result = ComputeSRepair(*fds, *table);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cerr << "deleted weight " << result->distance << " ("
              << table->num_tuples() - result->repair.num_tuples() << " of "
              << table->num_tuples() << " tuples) via "
              << SRepairAlgorithmToString(result->algorithm)
              << (result->optimal ? " [optimal]"
                                  : " [<= 2x optimal]")
              << "\n";
    if (explain) {
      std::cerr << result->verdict.ToString(table->schema()) << "\n";
    }
    repaired_csv = TableToCsv(result->repair);
  } else {
    auto result = ComputeURepair(*fds, *table);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cerr << "updated cells at weighted cost " << result->distance
              << (result->optimal
                      ? " [optimal]"
                      : " [<= " + FormatDouble(result->ratio_bound) +
                            "x optimal]")
              << "\n";
    if (explain) {
      std::cerr << result->plan.ToString(table->schema()) << "\n";
    }
    repaired_csv = TableToCsv(result->update);
  }

  if (out_path.empty()) {
    std::cout << repaired_csv;
  } else {
    std::ofstream out(out_path);
    out << repaired_csv;
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}
