// repair_server_replay: replays a generated request log through the
// RepairService, the way a deployed repair endpoint would see traffic —
// a mix of repeated and fresh (FD set, table) instances, optionally from
// several client threads — and prints the throughput and cache counters.
//
// Usage:
//   repair_server_replay [--requests=N] [--repeat=0.9] [--rows=N]
//                        [--clients=C] [--mode=subset|update|mixed]
//                        [--capacity=N] [--seed=S]
//                        [--backend=NAME] [--max-ratio=R]
//
//   --requests   length of the replayed log           (default 200)
//   --repeat     probability a request re-sends a previously seen
//                instance                             (default 0.9)
//   --rows       tuples per generated table           (default 500)
//   --clients    concurrent client threads            (default 4)
//   --mode       repair family of the requests        (default subset;
//                "mixed" alternates subset/update per instance)
//   --capacity   result-cache entries                 (default 256)
//   --seed       workload seed                        (default 1)
//   --backend    hard-side solver backend for subset requests
//                ("local-ratio", "bnb", "ilp", "lp-rounding";
//                default: planner auto-routing)
//   --max-ratio  reject subset repairs certified only above this
//                ratio (default 0 = no gate)
//
// Exits non-zero if any request fails for a reason other than the
// admission-control rejections this demo is meant to surface.

#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "service/repair_service.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

using namespace fdrepair;

namespace {

int Usage() {
  std::cerr << "usage: repair_server_replay [--requests=N] [--repeat=R] "
               "[--rows=N] [--clients=C] [--mode=subset|update|mixed] "
               "[--capacity=N] [--seed=S] [--backend=NAME] [--max-ratio=R]\n";
  return 2;
}

struct Args {
  int requests = 200;
  double repeat = 0.9;
  int rows = 500;
  int clients = 4;
  std::string mode = "subset";
  size_t capacity = 256;
  uint64_t seed = 1;
  std::string backend;
  double max_ratio = 0;
};

bool ParseInt(const std::string& text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    long long value = 0;
    if (StartsWith(arg, "--requests=") && ParseInt(arg.substr(11), &value)) {
      args.requests = static_cast<int>(value);
    } else if (StartsWith(arg, "--repeat=")) {
      args.repeat = std::atof(arg.substr(9).c_str());
    } else if (StartsWith(arg, "--rows=") && ParseInt(arg.substr(7), &value)) {
      args.rows = static_cast<int>(value);
    } else if (StartsWith(arg, "--clients=") &&
               ParseInt(arg.substr(10), &value)) {
      args.clients = std::max(1, static_cast<int>(value));
    } else if (StartsWith(arg, "--mode=")) {
      args.mode = arg.substr(7);
    } else if (StartsWith(arg, "--capacity=") &&
               ParseInt(arg.substr(11), &value)) {
      args.capacity = static_cast<size_t>(value);
    } else if (StartsWith(arg, "--seed=") && ParseInt(arg.substr(7), &value)) {
      args.seed = static_cast<uint64_t>(value);
    } else if (StartsWith(arg, "--backend=")) {
      args.backend = arg.substr(10);
    } else if (StartsWith(arg, "--max-ratio=")) {
      args.max_ratio = std::atof(arg.substr(12).c_str());
    } else {
      return Usage();
    }
  }
  if (args.mode != "subset" && args.mode != "update" && args.mode != "mixed") {
    return Usage();
  }

  // Generate the instance population and the request log: each log entry
  // either re-sends a previously seen instance (probability --repeat) or
  // introduces a fresh one.
  ParsedFdSet parsed = OfficeFds();
  Rng rng(args.seed);
  std::vector<Table> tables;
  std::vector<int> log;
  std::vector<int> seen;
  log.reserve(args.requests);
  for (int r = 0; r < args.requests; ++r) {
    if (!seen.empty() && rng.UniformDouble() < args.repeat) {
      log.push_back(seen[rng.UniformIndex(seen.size())]);
    } else {
      int fresh = static_cast<int>(tables.size());
      tables.push_back(
          ScalingFamilyTable(parsed, args.rows, args.seed * 7919 + fresh));
      log.push_back(fresh);
      seen.push_back(fresh);
    }
  }
  auto mode_of = [&](int instance) {
    if (args.mode == "subset") return RepairMode::kSubset;
    if (args.mode == "update") return RepairMode::kUpdate;
    return instance % 2 == 0 ? RepairMode::kSubset : RepairMode::kUpdate;
  };

  RepairServiceOptions options;
  options.cache_capacity = args.capacity;
  // A forced exact backend (--backend=ilp/bnb) would otherwise search
  // without bound on instances whose optimality proof is out of reach
  // (dense conflict graphs have LP integrality gap ≈ 2). A node budget
  // keeps every request bounded: truncated searches return their
  // factor-2 incumbent with an honest certified ratio instead of
  // claiming optimality — exactly what the provenance line below shows.
  options.srepair.node_budget = 20000;
  RepairService service(options);

  // Replay: client c serves log entries c, c+clients, c+2*clients, ...
  std::atomic<int> failures{0};
  std::atomic<long> served{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = c; r < log.size(); r += args.clients) {
        RepairRequest request;
        request.mode = mode_of(log[r]);
        request.fds = parsed.fds;
        request.table = &tables[log[r]];
        if (request.mode == RepairMode::kSubset) {
          request.backend = args.backend;
          request.max_ratio = args.max_ratio;
        }
        auto response = service.Serve(request);
        if (response.ok()) {
          served.fetch_add(1);
        } else {
          failures.fetch_add(1);
          std::cerr << "request " << r << " failed: " << response.status()
                    << "\n";
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  RepairServiceStats stats = service.stats();
  double total = static_cast<double>(stats.hits + stats.misses);
  std::cout << "replayed " << served.load() << "/" << args.requests
            << " requests (" << tables.size() << " distinct instances, "
            << args.clients << " clients, mode " << args.mode << ") in "
            << FormatDouble(elapsed.count(), 4) << " s  ("
            << FormatDouble(served.load() / elapsed.count(), 4) << " req/s)\n"
            << "cache: " << stats.hits << " hits, " << stats.misses
            << " misses (hit ratio "
            << FormatDouble(total > 0 ? stats.hits / total : 0, 4) << "), "
            << stats.single_flight_waits << " single-flight waits, "
            << stats.evictions << " evictions, " << stats.entries
            << " resident entries\n"
            << "rejections: " << stats.rejected_deadline << " deadline, "
            << stats.rejected_unavailable << " unavailable\n";

  // One post-replay probe against instance 0 shows the solver provenance
  // the cache replays: route + backend + proved lower bound + certified
  // per-instance ratio.
  if (args.mode != "update" && !tables.empty()) {
    RepairRequest probe;
    probe.mode = RepairMode::kSubset;
    probe.fds = parsed.fds;
    probe.table = &tables[0];
    probe.backend = args.backend;
    probe.max_ratio = args.max_ratio;
    auto response = service.Serve(probe);
    if (response.ok()) {
      std::cout << "sample provenance (instance 0, "
                << (response->cache_hit ? "cached" : "cold")
                << "): route " << response->route << ", backend "
                << (response->backend.empty() ? "-" : response->backend)
                << ", distance " << FormatDouble(response->distance, 4)
                << ", " << (response->optimal ? "optimal" : "approximate")
                << ", lower bound "
                << FormatDouble(response->lower_bound, 4)
                << ", certified ratio "
                << FormatDouble(response->achieved_ratio, 4) << "\n";
    }
  }
  return failures.load() == 0 ? 0 : 1;
}
