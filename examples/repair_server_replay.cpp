// repair_server_replay: replays a generated request log through the
// RepairService, the way a deployed repair endpoint would see traffic —
// a mix of repeated and fresh (FD set, table) instances, optionally from
// several client threads — and prints the throughput and cache counters.
//
// Usage:
//   repair_server_replay [--requests=N] [--repeat=0.9] [--rows=N]
//                        [--clients=C] [--mode=subset|update|soft|mixed]
//                        [--capacity=N] [--seed=S]
//                        [--backend=NAME] [--max-ratio=R]
//                        [--weight-profile=W[,W...]]
//                        [--mutation-rate=M]
//
//   --requests   length of the replayed log           (default 200)
//   --repeat     probability a request re-sends a previously seen
//                instance                             (default 0.9)
//   --rows       tuples per generated table           (default 500)
//   --clients    concurrent client threads            (default 4)
//   --mode       repair family of the requests        (default subset;
//                "soft" serves RepairMode::kSoft with the
//                --weight-profile weights; "mixed" alternates
//                subset/update per instance)
//   --capacity   result-cache entries                 (default 256)
//   --seed       workload seed                        (default 1)
//   --backend    hard-side solver backend for subset/soft requests
//                ("local-ratio", "bnb", "ilp", "lp-rounding";
//                default: planner auto-routing; soft cores need a
//                soft-capable backend)
//   --max-ratio  reject subset/soft repairs certified only above this
//                ratio (default 0 = no gate)
//   --weight-profile  per-FD violation weights for --mode=soft: either
//                one value applied to every FD or a comma-separated
//                list aligned with the FD set ("inf"/"hard" pins an FD
//                hard). Default: all FDs stay hard, which serves
//                bit-identically to --mode=subset through the soft
//                mode's delegation.
//   --mutation-rate  fraction of an instance's rows edited before each
//                repeated request (default 0 = tables never change).
//                Repeats are then served through
//                RepairService::ApplyDelta with a chained TableDelta, and
//                every delta request is shadowed by a bypass_cache full
//                re-plan of the identical mutated state, so the summary
//                can print the delta-hit (splice) ratios — per repair
//                mode: kept-id recipe splices for subset instances,
//                cell-edit recipe splices for update instances — and the
//                measured delta-over-full speedup. See
//                docs/ARCHITECTURE.md, "Caching & invalidation
//                semantics".
//
// Exits non-zero if any request fails for a reason other than the
// admission-control rejections this demo is meant to surface.

#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "service/repair_service.h"
#include "storage/table_delta.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

using namespace fdrepair;

namespace {

int Usage() {
  std::cerr << "usage: repair_server_replay [--requests=N] [--repeat=R] "
               "[--rows=N] [--clients=C] [--mode=subset|update|soft|mixed] "
               "[--capacity=N] [--seed=S] [--backend=NAME] [--max-ratio=R] "
               "[--weight-profile=W[,W...]] [--mutation-rate=M]\n";
  return 2;
}

struct Args {
  int requests = 200;
  double repeat = 0.9;
  int rows = 500;
  int clients = 4;
  std::string mode = "subset";
  size_t capacity = 256;
  uint64_t seed = 1;
  std::string backend;
  double max_ratio = 0;
  std::string weight_profile;
  double mutation_rate = 0;
};

/// Parses "--weight-profile=": one weight or a comma-separated list;
/// "inf"/"hard" mean kHardFdWeight. Returns false on malformed input.
bool ParseWeightProfile(const std::string& text, int num_fds,
                        std::vector<double>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item == "inf" || item == "hard") {
      out->push_back(kHardFdWeight);
    } else {
      char* end = nullptr;
      double value = std::strtod(item.c_str(), &end);
      if (end == item.c_str() || *end != '\0' || !(value > 0)) return false;
      out->push_back(value);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  // A single value fans out over every FD.
  if (out->size() == 1 && num_fds > 1) {
    out->assign(static_cast<size_t>(num_fds), (*out)[0]);
  }
  return static_cast<int>(out->size()) == num_fds;
}

/// Per-instance mutable state for --mutation-rate: the DeltaBuilder owns the
/// instance's evolving table and the delta chain; the mutex serializes the
/// (mutate, ApplyDelta, shadow re-plan) sequence per instance — concurrent
/// clients still overlap freely across *different* instances, which is the
/// contention pattern a sharded deployment sees.
struct MutableInstance {
  std::mutex mu;
  std::unique_ptr<DeltaBuilder> builder;
  bool primed = false;
};

bool ParseInt(const std::string& text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    long long value = 0;
    if (StartsWith(arg, "--requests=") && ParseInt(arg.substr(11), &value)) {
      args.requests = static_cast<int>(value);
    } else if (StartsWith(arg, "--repeat=")) {
      args.repeat = std::atof(arg.substr(9).c_str());
    } else if (StartsWith(arg, "--rows=") && ParseInt(arg.substr(7), &value)) {
      args.rows = static_cast<int>(value);
    } else if (StartsWith(arg, "--clients=") &&
               ParseInt(arg.substr(10), &value)) {
      args.clients = std::max(1, static_cast<int>(value));
    } else if (StartsWith(arg, "--mode=")) {
      args.mode = arg.substr(7);
    } else if (StartsWith(arg, "--capacity=") &&
               ParseInt(arg.substr(11), &value)) {
      args.capacity = static_cast<size_t>(value);
    } else if (StartsWith(arg, "--seed=") && ParseInt(arg.substr(7), &value)) {
      args.seed = static_cast<uint64_t>(value);
    } else if (StartsWith(arg, "--backend=")) {
      args.backend = arg.substr(10);
    } else if (StartsWith(arg, "--max-ratio=")) {
      args.max_ratio = std::atof(arg.substr(12).c_str());
    } else if (StartsWith(arg, "--weight-profile=")) {
      args.weight_profile = arg.substr(17);
    } else if (StartsWith(arg, "--mutation-rate=")) {
      args.mutation_rate = std::atof(arg.substr(16).c_str());
    } else {
      return Usage();
    }
  }
  if (args.mode != "subset" && args.mode != "update" && args.mode != "soft" &&
      args.mode != "mixed") {
    return Usage();
  }
  if (args.mutation_rate < 0 || args.mutation_rate > 1) {
    std::cerr << "--mutation-rate wants a fraction in [0, 1]\n";
    return Usage();
  }
  if (args.mode == "soft" && args.mutation_rate > 0) {
    // The service rejects delta + soft (no soft splice); don't generate a
    // log every request of which would fail.
    std::cerr << "--mode=soft does not support --mutation-rate\n";
    return Usage();
  }
  if (!args.weight_profile.empty() && args.mode != "soft") {
    std::cerr << "--weight-profile requires --mode=soft\n";
    return Usage();
  }

  // Generate the instance population and the request log: each log entry
  // either re-sends a previously seen instance (probability --repeat) or
  // introduces a fresh one.
  ParsedFdSet parsed = OfficeFds();
  std::vector<double> soft_weights;
  if (!args.weight_profile.empty() &&
      !ParseWeightProfile(args.weight_profile, static_cast<int>(parsed.fds.size()),
                          &soft_weights)) {
    std::cerr << "--weight-profile wants one positive weight (or \"inf\"/"
                 "\"hard\") or a comma-separated list of "
              << parsed.fds.size() << "\n";
    return Usage();
  }
  Rng rng(args.seed);
  std::vector<Table> tables;
  std::vector<int> log;
  std::vector<int> seen;
  log.reserve(args.requests);
  for (int r = 0; r < args.requests; ++r) {
    if (!seen.empty() && rng.UniformDouble() < args.repeat) {
      log.push_back(seen[rng.UniformIndex(seen.size())]);
    } else {
      int fresh = static_cast<int>(tables.size());
      tables.push_back(
          ScalingFamilyTable(parsed, args.rows, args.seed * 7919 + fresh));
      log.push_back(fresh);
      seen.push_back(fresh);
    }
  }
  auto mode_of = [&](int instance) {
    if (args.mode == "subset") return RepairMode::kSubset;
    if (args.mode == "update") return RepairMode::kUpdate;
    if (args.mode == "soft") return RepairMode::kSoft;
    return instance % 2 == 0 ? RepairMode::kSubset : RepairMode::kUpdate;
  };

  RepairServiceOptions options;
  options.cache_capacity = args.capacity;
  // A forced exact backend (--backend=ilp/bnb) would otherwise search
  // without bound on instances whose optimality proof is out of reach
  // (dense conflict graphs have LP integrality gap ≈ 2). A node budget
  // keeps every request bounded: truncated searches return their
  // factor-2 incumbent with an honest certified ratio instead of
  // claiming optimality — exactly what the provenance line below shows.
  options.srepair.node_budget = 20000;
  RepairService service(options);

  // Replay: client c serves log entries c, c+clients, c+2*clients, ...
  // Under --mutation-rate, a repeated instance is first edited (that
  // fraction of its rows), then served through ApplyDelta, then shadowed
  // by a bypass_cache full re-plan of the same mutated state — the two
  // timings below are what the summary's speedup line compares.
  std::vector<MutableInstance> instances(
      args.mutation_rate > 0 ? tables.size() : 0);
  const int edits_per_repeat =
      std::max(1, static_cast<int>(args.mutation_rate * args.rows));
  const int domain = std::max(4, args.rows / 16);
  std::atomic<int> failures{0};
  std::atomic<long> served{0};
  std::atomic<int64_t> delta_ns{0};
  std::atomic<int64_t> full_ns{0};
  std::atomic<long> shadowed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng edit_rng(args.seed * 6271 + c);
      for (size_t r = c; r < log.size(); r += args.clients) {
        RepairRequest request;
        request.mode = mode_of(log[r]);
        request.fds = parsed.fds;
        request.table = &tables[log[r]];
        if (request.mode == RepairMode::kSubset) {
          request.backend = args.backend;
          request.max_ratio = args.max_ratio;
        } else if (request.mode == RepairMode::kSoft) {
          request.options.backend = args.backend;
          request.options.max_ratio = args.max_ratio;
          request.options.soft_weights = soft_weights;
        }
        std::unique_lock<std::mutex> instance_lock;
        TableDelta delta;
        bool timed_delta = false;
        if (args.mutation_rate > 0) {
          MutableInstance& instance = instances[log[r]];
          instance_lock = std::unique_lock<std::mutex>(instance.mu);
          if (!instance.builder) {
            instance.builder = std::make_unique<DeltaBuilder>(tables[log[r]]);
          }
          if (instance.primed) {
            DeltaBuilder& builder = *instance.builder;
            for (int e = 0; e < edits_per_repeat; ++e) {
              const int row = static_cast<int>(
                  edit_rng.UniformIndex(builder.table().num_tuples()));
              const TupleId id = builder.table().id(row);
              const AttrId attr = static_cast<AttrId>(
                  edit_rng.UniformIndex(builder.table().schema().arity()));
              if (!builder
                       .Update(id, attr,
                               "v" + std::to_string(
                                         edit_rng.UniformInt(0, domain - 1)))
                       .ok()) {
                failures.fetch_add(1);
                continue;
              }
            }
            delta = builder.Finish();
            request.delta = &delta;
            timed_delta = true;
          }
          request.table = &instance.builder->table();
        }
        auto request_start = std::chrono::steady_clock::now();
        auto response = timed_delta ? service.ApplyDelta(request)
                                    : service.Serve(request);
        auto request_end = std::chrono::steady_clock::now();
        if (response.ok()) {
          served.fetch_add(1);
          if (args.mutation_rate > 0) instances[log[r]].primed = true;
        } else {
          failures.fetch_add(1);
          std::cerr << "request " << r << " failed: " << response.status()
                    << "\n";
        }
        if (timed_delta) {
          delta_ns.fetch_add(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  request_end - request_start)
                  .count());
          // Shadow re-plan: the same mutated state, cache bypassed.
          RepairRequest cold = request;
          cold.delta = nullptr;
          cold.bypass_cache = true;
          auto cold_start = std::chrono::steady_clock::now();
          auto replanned = service.Serve(cold);
          auto cold_end = std::chrono::steady_clock::now();
          if (replanned.ok()) {
            full_ns.fetch_add(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    cold_end - cold_start)
                    .count());
            shadowed.fetch_add(1);
          } else {
            failures.fetch_add(1);
            std::cerr << "shadow re-plan for request " << r
                      << " failed: " << replanned.status() << "\n";
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  RepairServiceStats stats = service.stats();
  double total = static_cast<double>(stats.hits + stats.misses);
  std::cout << "replayed " << served.load() << "/" << args.requests
            << " requests (" << tables.size() << " distinct instances, "
            << args.clients << " clients, mode " << args.mode << ") in "
            << FormatDouble(elapsed.count(), 4) << " s  ("
            << FormatDouble(served.load() / elapsed.count(), 4) << " req/s)\n"
            << "cache: " << stats.hits << " hits, " << stats.misses
            << " misses (hit ratio "
            << FormatDouble(total > 0 ? stats.hits / total : 0, 4) << "), "
            << stats.single_flight_waits << " single-flight waits, "
            << stats.evictions << " evictions, " << stats.entries
            << " resident entries\n"
            << "rejections: " << stats.rejected_deadline << " deadline, "
            << stats.rejected_unavailable << " unavailable\n";

  if (args.mutation_rate > 0) {
    std::cout << "delta (mutation rate " << FormatDouble(args.mutation_rate, 4)
              << ", " << edits_per_repeat << " edits/repeat):\n";
    if (stats.delta_requests > 0) {
      const double delta_total = static_cast<double>(stats.delta_requests);
      const double splice_ratio = stats.delta_splices / delta_total;
      const uint64_t blocks =
          stats.delta_blocks_clean + stats.delta_blocks_dirty;
      const double clean_ratio =
          blocks > 0 ? static_cast<double>(stats.delta_blocks_clean) /
                           static_cast<double>(blocks)
                     : 0;
      std::cout << "  subset: " << stats.delta_requests << " delta requests, "
                << stats.delta_splices << " spliced / "
                << stats.delta_full_replans
                << " full re-plans (delta-hit ratio "
                << FormatDouble(splice_ratio, 4) << ", clean-block ratio "
                << FormatDouble(clean_ratio, 4) << ")\n";
    }
    if (stats.udelta_requests > 0) {
      const double udelta_total = static_cast<double>(stats.udelta_requests);
      const double usplice_ratio = stats.udelta_splices / udelta_total;
      const uint64_t ublocks =
          stats.udelta_blocks_clean + stats.udelta_blocks_dirty;
      const double uclean_ratio =
          ublocks > 0 ? static_cast<double>(stats.udelta_blocks_clean) /
                            static_cast<double>(ublocks)
                      : 0;
      std::cout << "  update: " << stats.udelta_requests
                << " delta requests, " << stats.udelta_splices
                << " spliced / " << stats.udelta_full_replans
                << " full re-plans (update-delta-hit ratio "
                << FormatDouble(usplice_ratio, 4) << ", clean-block ratio "
                << FormatDouble(uclean_ratio, 4) << ")\n";
    }
    const long shadows = shadowed.load();
    const double delta_us =
        shadows > 0 ? delta_ns.load() / 1e3 / shadows : 0;
    const double full_us = shadows > 0 ? full_ns.load() / 1e3 / shadows : 0;
    std::cout << "delta timing: " << FormatDouble(delta_us, 4)
              << " us/request vs " << FormatDouble(full_us, 4)
              << " us bypass_cache re-plan  ("
              << FormatDouble(delta_us > 0 ? full_us / delta_us : 0, 4)
              << "x speedup, " << shadows << " shadow re-plans)\n";
  }

  // One post-replay probe against instance 0 shows the solver provenance
  // the cache replays: route + backend + proved lower bound + certified
  // per-instance ratio.
  if (args.mode != "update" && !tables.empty()) {
    RepairRequest probe;
    probe.mode =
        args.mode == "soft" ? RepairMode::kSoft : RepairMode::kSubset;
    probe.fds = parsed.fds;
    probe.table = &tables[0];
    probe.options.backend = args.backend;
    probe.options.max_ratio = args.max_ratio;
    if (probe.mode == RepairMode::kSoft) {
      probe.options.soft_weights = soft_weights;
    }
    auto response = service.Serve(probe);
    if (response.ok()) {
      std::cout << "sample provenance (instance 0, "
                << (response->cache_hit ? "cached" : "cold")
                << "): route " << response->route << ", backend "
                << (response->backend.empty() ? "-" : response->backend)
                << ", distance " << FormatDouble(response->distance, 4)
                << ", " << (response->optimal ? "optimal" : "approximate")
                << ", lower bound "
                << FormatDouble(response->lower_bound, 4)
                << ", certified ratio "
                << FormatDouble(response->achieved_ratio, 4) << "\n";
    }
  }
  return failures.load() == 0 ? 0 : 1;
}
