// Probabilistic cleaning via the Most Probable Database (§3.4): sensor
// readings arrive with per-tuple confidences; conditioning the
// tuple-independent distribution on the FDs and taking the most probable
// world *is* an optimal S-repair of the log-odds-weighted table
// (Theorem 3.10).
//
// Build & run:  ./build/examples/mpd_demo

#include <iostream>

#include "catalog/fd_parser.h"
#include "mpd/mpd.h"

using namespace fdrepair;

int main() {
  // Sensor registry: each sensor sits in one room, each room on one floor.
  Schema schema = Schema::MakeOrDie("Readings", {"sensor", "room", "floor"});
  FdSet fds = ParseFdSetOrDie(schema, "sensor -> room; room -> floor");

  Table table(schema);
  // A certain installation record, two conflicting medium-confidence
  // readings, and a low-confidence outlier.
  table.AddTuple({"s1", "r101", "1"}, 1.0);   // certain
  table.AddTuple({"s1", "r102", "1"}, 0.8);   // conflicts with the record
  table.AddTuple({"s2", "r101", "1"}, 0.9);
  table.AddTuple({"s2", "r101", "2"}, 0.7);   // floor disagreement
  table.AddTuple({"s3", "r200", "2"}, 0.45);  // p <= 0.5: never worth keeping
  table.AddTuple({"s4", "r201", "2"}, 0.85);

  std::cout << "Probabilistic readings (weight = confidence):\n"
            << table.ToString() << "\n";

  auto mpd = MostProbableDatabase(fds, table);
  if (!mpd.ok()) {
    std::cerr << mpd.status() << "\n";
    return 1;
  }
  if (!mpd->feasible) {
    std::cout << "certain tuples conflict: every consistent world has "
                 "probability 0\n";
    return 0;
  }
  std::cout << "Most probable consistent database (log P = "
            << mpd->log_probability << "):\n"
            << mpd->database.ToString() << "\n";

  // Cross-check against exhaustive enumeration (2^n worlds).
  auto brute = MostProbableDatabaseBruteForce(fds, table);
  if (brute.ok()) {
    std::cout << "exhaustive check: log P = " << brute->log_probability
              << (std::abs(brute->log_probability - mpd->log_probability) <
                          1e-9
                      ? "  ✓ reduction matched the true optimum\n"
                      : "  ✗ MISMATCH\n");
  }
  return 0;
}
