#!/usr/bin/env python3
"""Markdown link check + lint for the docs tier (stdlib only, no network).

Usage:
    check_markdown.py [--self-test] PATH [PATH ...]

Each PATH is a markdown file or a directory scanned recursively for
``*.md``. Checks, per file:

  * every relative link / image target resolves to an existing file or
    directory (``http(s)://`` and ``mailto:`` targets are skipped — CI
    must not depend on the network);
  * every ``#fragment`` — same-file or on a linked ``.md`` target —
    matches a heading anchor, using GitHub's slugification (lowercase,
    punctuation dropped, spaces to hyphens, ``-N`` suffixes for
    duplicate headings);
  * every reference-style link ``[text][ref]`` has a matching
    ``[ref]: target`` definition;
  * every fenced code block is closed (an unclosed fence swallows the
    rest of the file and silently hides broken links from this very
    checker).

Fenced code blocks and inline code spans are stripped before link
extraction, so shell snippets like ``[--flag=N]`` never false-positive.
Exits non-zero listing every problem; run with --self-test first in CI
so a regression in the checker itself cannot silently pass broken docs.
"""

import argparse
import os
import re
import sys
import tempfile

# Inline link or image: [text](target) / ![alt](target). The target runs to
# the first unescaped ')' — markdown titles ("...") are split off below.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference-style usage [text][ref] and definition [ref]: target.
REF_USE = re.compile(r"\[[^\]]+\]\[([^\]]+)\]")
REF_DEF = re.compile(r"^\s*\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~)", re.MULTILINE)
INLINE_CODE = re.compile(r"`[^`\n]*`")


def strip_code(text):
    """Blanks fenced blocks and inline code spans, preserving line count.

    Returns (stripped_text, fence_balanced)."""
    lines = text.split("\n")
    out = []
    in_fence = False
    fence_marker = None
    for line in lines:
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            marker = stripped[:3]
            if not in_fence:
                in_fence, fence_marker = True, marker
            elif marker == fence_marker:
                in_fence, fence_marker = False, None
            out.append("")
            continue
        out.append("" if in_fence else INLINE_CODE.sub("", line))
    return "\n".join(out), not in_fence


def github_slug(heading, seen):
    """GitHub's heading-to-anchor slug, disambiguating duplicates."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return "%s-%d" % (slug, seen[slug])
    seen[slug] = 0
    return slug


def anchors_of(text):
    seen = {}
    stripped, _ = strip_code(text)
    return {github_slug(m.group(2), seen) for m in HEADING.finditer(stripped)}


def check_file(path, anchor_cache, problems):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as error:
        problems.append("%s: unreadable: %s" % (path, error))
        return
    stripped, balanced = strip_code(text)
    if not balanced:
        problems.append("%s: unclosed fenced code block" % path)

    targets = [m.group(1) for m in INLINE_LINK.finditer(stripped)]
    definitions = {m.group(1).lower(): m.group(2)
                   for m in REF_DEF.finditer(stripped)}
    targets.extend(definitions.values())
    for m in REF_USE.finditer(stripped):
        if m.group(1).lower() not in definitions:
            problems.append("%s: undefined link reference [%s]"
                            % (path, m.group(1)))

    base = os.path.dirname(os.path.abspath(path))
    for target in targets:
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, ... — never fetched
        dest, _, fragment = target.partition("#")
        dest_path = os.path.abspath(path) if not dest \
            else os.path.normpath(os.path.join(base, dest))
        if dest and not os.path.exists(dest_path):
            problems.append("%s: broken link target %s" % (path, target))
            continue
        if fragment:
            if not dest_path.endswith(".md"):
                continue  # source-file fragments (line anchors) etc.
            if dest_path not in anchor_cache:
                try:
                    with open(dest_path, encoding="utf-8") as f:
                        anchor_cache[dest_path] = anchors_of(f.read())
                except OSError:
                    anchor_cache[dest_path] = set()
            if fragment.lower() not in anchor_cache[dest_path]:
                problems.append("%s: missing anchor %s" % (path, target))


def collect(paths, problems):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        elif os.path.isfile(path):
            files.append(path)
        else:
            problems.append("%s: no such file or directory" % path)
    return files


def run(paths):
    problems = []
    anchor_cache = {}
    files = collect(paths, problems)
    for path in files:
        check_file(path, anchor_cache, problems)
    for problem in problems:
        print("FAIL  %s" % problem)
    if not problems:
        print("OK    %d markdown file(s), no broken links" % len(files))
    return 1 if problems else 0


def self_test():
    cases = []
    with tempfile.TemporaryDirectory() as tmp:
        def write(name, content):
            path = os.path.join(tmp, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            return path

        good = write("good.md", (
            "# Top Title\n\n## Caching & invalidation semantics\n\n"
            "[self](#caching--invalidation-semantics) "
            "[other](sub/other.md) [deep](sub/other.md#other-title)\n\n"
            "[web](https://example.com/nope) [ref link][r1]\n\n"
            "[r1]: sub/other.md\n\n"
            "```sh\nls [--fake=N] (not-a-link)[x](y.md)\n```\n"
            "inline `[z](missing.md)` span\n"))
        write("sub/other.md", "# Other Title\nback: [up](../good.md)\n")
        cases.append(("clean file passes", run([good]) == 0))

        bad_link = write("bad_link.md", "[gone](nope/missing.md)\n")
        cases.append(("broken target fails", run([bad_link]) == 1))

        bad_anchor = write("bad_anchor.md", "# Only Title\n[a](#wrong-one)\n")
        cases.append(("missing anchor fails", run([bad_anchor]) == 1))

        bad_ref = write("bad_ref.md", "see [text][undefined-ref]\n")
        cases.append(("undefined reference fails", run([bad_ref]) == 1))

        bad_fence = write("bad_fence.md", "```\nnever closed\n")
        cases.append(("unclosed fence fails", run([bad_fence]) == 1))

        dup = write("dup.md", (
            "# Same\n# Same\n[second](#same-1)\n"))
        cases.append(("duplicate heading -1 suffix", run([dup]) == 0))

        cases.append(("directory scan finds bad file",
                      run([tmp]) == 1))

    failed = [name for name, ok in cases if not ok]
    for name, ok in cases:
        print("%s %s" % ("ok  " if ok else "FAIL", name))
    if failed:
        print("self-test FAILED: %s" % ", ".join(failed))
        return 1
    print("self-test OK (%d check groups)" % len(cases))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.paths:
        parser.error("no paths given")
    return run(args.paths)


if __name__ == "__main__":
    sys.exit(main())
