// E1 — Figure 1 / Examples 2.1–2.3: regenerates every number the paper
// states about the Office running example, then times the repair planners
// on it.

#include "report_util.h"
#include "srepair/planner.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

void Report() {
  Banner("E1", "Figure 1 running example (Office)");
  OfficeExample office = MakeOfficeExample();
  std::cout << "∆ = {" << office.fds.ToString(office.schema) << "}\n"
            << office.table.ToString();

  ReportTable table({"artifact", "paper", "measured", "consistent"});
  auto row = [&](const std::string& name, double paper, double measured,
                 bool consistent) {
    table.AddRow({name, Num(paper), Num(measured),
                  consistent ? "yes" : "NO"});
  };
  row("dist_sub(S1, T)", 2, DistSubOrDie(office.subset_s1, office.table),
      Satisfies(office.subset_s1, office.fds));
  row("dist_sub(S2, T)", 2, DistSubOrDie(office.subset_s2, office.table),
      Satisfies(office.subset_s2, office.fds));
  row("dist_sub(S3, T)", 3, DistSubOrDie(office.subset_s3, office.table),
      Satisfies(office.subset_s3, office.fds));
  row("dist_upd(U1, T)", 2, DistUpdOrDie(office.update_u1, office.table),
      Satisfies(office.update_u1, office.fds));
  row("dist_upd(U2, T)", 3, DistUpdOrDie(office.update_u2, office.table),
      Satisfies(office.update_u2, office.fds));
  row("dist_upd(U3, T)", 4, DistUpdOrDie(office.update_u3, office.table),
      Satisfies(office.update_u3, office.fds));

  auto srepair = ComputeSRepair(office.fds, office.table);
  auto urepair = ComputeURepair(office.fds, office.table);
  FDR_CHECK(srepair.ok() && urepair.ok());
  row("optimal S-repair distance", 2, srepair->distance, true);
  row("optimal U-repair distance", 2, urepair->distance, true);
  table.Print();
  std::cout << "S3 is a " << Num(3.0 / srepair->distance)
            << "-optimal S-repair (paper: 1.5-optimal)\n";
}

void BM_OfficeOptSRepair(benchmark::State& state) {
  OfficeExample office = MakeOfficeExample();
  for (auto _ : state) {
    auto result = ComputeSRepair(office.fds, office.table);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OfficeOptSRepair);

void BM_OfficeOptURepair(benchmark::State& state) {
  OfficeExample office = MakeOfficeExample();
  for (auto _ : state) {
    auto result = ComputeURepair(office.fds, office.table);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OfficeOptURepair);

void BM_OfficeConsistencyCheck(benchmark::State& state) {
  OfficeExample office = MakeOfficeExample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Satisfies(office.table, office.fds));
  }
}
BENCHMARK(BM_OfficeConsistencyCheck);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
