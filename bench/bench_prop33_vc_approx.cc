// E5 — Proposition 3.3: the vertex-cover 2-approximation. Report: measured
// approximation ratios against the exact optimum stay <= 2 (and are close
// to 1 in practice) across the hard FD sets, plus the edge-order ablation.

#include <chrono>

#include "report_util.h"
#include "common/random.h"
#include "graph/conflict_graph.h"
#include "srepair/planner.h"
#include "srepair/solver_backend.h"
#include "srepair/srepair_exact.h"
#include "srepair/srepair_vc_approx.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;

void ReportSolverBackends();

void Report() {
  Banner("E5", "Proposition 3.3 — 2-approximation via weighted vertex cover");
  ReportTable table({"FD set", "trials", "mean ratio", "worst ratio",
                     "bound"});
  Rng rng(33);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    double worst = 1.0;
    double sum = 0;
    int trials = 0;
    for (int trial = 0; trial < 10; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 14;
      options.domain_size = 3;
      options.heavy_fraction = 0.4;
      Rng table_rng = rng.Fork();
      Table t = RandomTable(named.parsed.schema, options, &table_rng);
      auto exact = OptSRepairExact(named.parsed.fds, t, 64);
      if (!exact.ok()) continue;
      double exact_distance = DistSubOrDie(*exact, t);
      if (exact_distance == 0) continue;
      double approx_distance =
          DistSubOrDie(SRepairVcApprox(named.parsed.fds, t), t);
      double ratio = approx_distance / exact_distance;
      worst = std::max(worst, ratio);
      sum += ratio;
      ++trials;
    }
    if (trials == 0) continue;
    table.AddRow({named.name, Num(trials), Num(sum / trials), Num(worst),
                  worst <= 2.0 + 1e-9 ? "<= 2 ok" : "VIOLATED"});
  }
  table.Print();

  // Ablation: local-ratio edge processing order. Any order keeps the
  // guarantee; the achieved ratio varies.
  std::cout << "\nedge-order ablation ({A->B, B->C}, n = 14):\n";
  ParsedFdSet parsed = DeltaAtoBtoC();
  RandomTableOptions options;
  options.num_tuples = 14;
  options.domain_size = 3;
  Rng table_rng(123);
  Table t = RandomTable(parsed.schema, options, &table_rng);
  auto exact = OptSRepairExact(parsed.fds, t, 64);
  FDR_CHECK(exact.ok());
  double exact_distance = DistSubOrDie(*exact, t);
  NodeWeightedGraph graph = BuildConflictGraph(TableView(t), parsed.fds);
  std::vector<int> order(graph.num_edges());
  for (int i = 0; i < graph.num_edges(); ++i) order[i] = i;
  Rng shuffle_rng(5);
  for (const char* label : {"insertion", "reversed", "shuffled"}) {
    std::vector<int> rows =
        SRepairVcApproxRowsViaGraph(parsed.fds, TableView(t), order);
    double distance = DistSubOrDie(t.SubsetByRows(rows), t);
    std::cout << "  " << label << " order: dist " << Num(distance)
              << ", ratio "
              << Num(exact_distance == 0 ? 1 : distance / exact_distance)
              << "\n";
    if (std::string(label) == "insertion") {
      std::reverse(order.begin(), order.end());
    } else {
      shuffle_rng.Shuffle(&order);
    }
  }

  ReportSolverBackends();
}

/// The solver-backend shootout: planted {A -> B, B -> C} instances with a
/// growing conflicted core, each solved by every registered in-tree
/// backend under one per-instance deadline. Tracks two gates:
///   prop33.ilp_solved_conflicted_tuples — largest core the LP-guided ILP
///     B&B proved optimal within the budget (floor: 120, i.e. 3x the
///     historical exact_guard of 40);
///   prop33.lp_rounding_worst_vs_exact — worst LP-rounding ratio against
///     the proved optimum on those instances.
void ReportSolverBackends() {
  using SteadyClock = std::chrono::steady_clock;
  const auto budget = std::chrono::milliseconds(
      benchreport::SmokeMode() ? 500 : 2000);
  ParsedFdSet parsed = DeltaAtoBtoC();
  ReportTable table({"core", "backend", "distance", "lower bnd", "optimal",
                     "cert ratio", "ms"});
  double ilp_solved = 0;
  double lp_worst = 1.0;
  for (int target : {60, 90, 120, 150, 180}) {
    Rng rng(97 + target);
    PlantedTableOptions planted;
    planted.num_tuples = target * 10 / 3;
    planted.num_entities = target / 2;
    planted.corruptions = target;
    planted.heavy_fraction = 0.3;
    Table t = PlantedDirtyTable(parsed.schema, parsed.fds, planted, &rng);
    NodeWeightedGraph graph = BuildConflictGraph(TableView(t), parsed.fds);
    int core = 0;
    for (int v = 0; v < graph.num_nodes(); ++v) {
      if (graph.Degree(v) > 0) ++core;
    }
    double ilp_distance = 0;
    bool ilp_proved = false;
    for (const char* backend :
         {kSolverLocalRatio, kSolverBnb, kSolverIlp, kSolverLpRounding}) {
      SRepairOptions options;
      options.backend = backend;
      options.exec.deadline = SteadyClock::now() + budget;
      auto start = SteadyClock::now();
      auto result = ComputeSRepair(parsed.fds, t, options);
      std::chrono::duration<double, std::milli> ms =
          SteadyClock::now() - start;
      FDR_CHECK(result.ok());
      table.AddRow({Num(core), backend, Num(result->distance),
                    Num(result->lower_bound),
                    result->optimal ? "yes" : "no",
                    Num(result->achieved_ratio), Num(ms.count())});
      if (std::string(backend) == kSolverIlp && result->optimal) {
        ilp_proved = true;
        ilp_distance = result->distance;
        ilp_solved = std::max(ilp_solved, static_cast<double>(core));
      }
      if (std::string(backend) == kSolverLpRounding && ilp_proved &&
          ilp_distance > 0) {
        lp_worst = std::max(lp_worst, result->distance / ilp_distance);
      }
    }
  }
  std::cout << "\nsolver backends on planted {A->B, B->C} cores ("
            << budget.count() << " ms budget each):\n";
  table.Print();
  std::cout << "largest core proved optimal by '" << kSolverIlp
            << "': " << Num(ilp_solved)
            << " conflicted tuples (historical exact_guard: 40)\n"
            << "worst lp-rounding ratio vs proved optimum: " << Num(lp_worst)
            << "\n";
  JsonReport::Get().Add("prop33.ilp_solved_conflicted_tuples", ilp_solved,
                        "tuples");
  JsonReport::Get().Add("prop33.lp_rounding_worst_vs_exact", lp_worst, "x");
}

const ParsedFdSet& HardSet(int index) {
  static const ParsedFdSet sets[4] = {DeltaAtoBtoC(), DeltaAtoCfromB(),
                                      DeltaABtoCtoB(), DeltaTriangle()};
  return sets[index];
}

// Fused local-ratio throughput at scale (linear in n · |∆|).
void BM_VcApproxFused(benchmark::State& state) {
  const ParsedFdSet& parsed = HardSet(static_cast<int>(state.range(0)));
  int n = static_cast<int>(state.range(1));
  Rng rng(43 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 64);
  Table table = RandomTable(parsed.schema, options, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SRepairVcApproxRows(parsed.fds,
                                                 TableView(table)));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(parsed.fds.ToString(parsed.schema));
}
BENCHMARK(BM_VcApproxFused)
    ->ArgsProduct({{0, 1, 2, 3}, {1024, 8192, 65536}})
    ->Unit(benchmark::kMillisecond);

// Conflict-graph materialization (the quadratic route), for contrast.
void BM_ConflictGraphBuild(benchmark::State& state) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  int n = static_cast<int>(state.range(0));
  Rng rng(47);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 8);
  Table table = RandomTable(parsed.schema, options, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildConflictGraph(TableView(table),
                                                parsed.fds));
  }
}
BENCHMARK(BM_ConflictGraphBuild)->RangeMultiplier(4)->Range(256, benchreport::SmokeCap(16384, 1024))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
