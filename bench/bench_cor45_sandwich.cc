// E8 — Corollary 4.5: dist_sub(S*) <= dist_upd(U*) <= mlc(∆)·dist_sub(S*)
// for consensus-free ∆. Report: both inequalities verified with exact
// solvers on randomized instances; the observed U*/S* ratio per FD set
// against its mlc ceiling.

#include "report_util.h"
#include "common/random.h"
#include "srepair/srepair_exact.h"
#include "storage/distance.h"
#include "urepair/covers.h"
#include "urepair/update.h"
#include "urepair/urepair_common_lhs.h"
#include "urepair/urepair_exact.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

void Report() {
  Banner("E8", "Corollary 4.5 — S* <= U* <= mlc · S*");
  ReportTable table({"FD set", "mlc", "trials", "max U*/S*", "violations"});
  Rng rng(45);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (!delta.IsConsensusFree() || delta.empty()) continue;
    if (delta.Attrs().size() > 5) continue;
    auto mlc = Mlc(delta);
    FDR_CHECK(mlc.ok());
    int trials = 0;
    int violations = 0;
    double max_ratio = 1.0;
    for (int trial = 0; trial < 10; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 4;
      options.domain_size = 2;
      Rng table_rng = rng.Fork();
      Table t = RandomTable(named.parsed.schema, options, &table_rng);
      auto subset = OptSRepairExact(delta, t, 64);
      auto update = OptURepairExact(delta, t);
      if (!subset.ok() || !update.ok()) continue;
      double s_star = DistSubOrDie(*subset, t);
      double u_star = DistUpdOrDie(*update, t);
      ++trials;
      if (s_star > u_star + 1e-9 || u_star > *mlc * s_star + 1e-9) {
        ++violations;
      }
      if (s_star > 0) max_ratio = std::max(max_ratio, u_star / s_star);
    }
    table.AddRow({named.name, Num(*mlc), Num(trials), Num(max_ratio),
                  Num(violations)});
  }
  table.Print();
  std::cout << "(Proposition 4.9's instance class {A->B, B->A} should show "
               "max U*/S* = 1 despite mlc = 2)\n";
}

// Proposition 4.4's constructions, timed: update -> subset and subset ->
// update conversions at scale.
void BM_UpdateToSubset(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  int n = static_cast<int>(state.range(0));
  Rng rng(71);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 16);
  Table table = RandomTable(parsed.schema, options, &rng);
  Table update = table.Clone();  // identity update
  for (auto _ : state) {
    benchmark::DoNotOptimize(UpdateToConsistentSubsetRows(table, update));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UpdateToSubset)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(65536, 2048))
    ->Unit(benchmark::kMillisecond);

void BM_SubsetToUpdate(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  int n = static_cast<int>(state.range(0));
  Rng rng(73);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 16);
  Table table = RandomTable(parsed.schema, options, &rng);
  std::vector<int> kept;
  for (int row = 0; row < n; row += 2) kept.push_back(row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SubsetToUpdate(parsed.fds.WithoutTrivial(), table, kept));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SubsetToUpdate)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(65536, 2048))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
