// E10 — §4.4's two "infinite sequence" comparisons (the paper's
// figure-equivalent): on ∆k our 2·mlc ratio is Θ(k) while the
// Kolahi–Lakshmanan ratio is Θ(k²); on ∆'k ours is Θ(k) while theirs stays
// constant (9). Report: the exact bound formulas per k, plus measured costs
// of both algorithms and the combined best-of on generated dirty tables.

#include "report_util.h"
#include "common/random.h"
#include "srepair/planner.h"
#include "srepair/solver_backend.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/covers.h"
#include "urepair/urepair_kl_approx.h"
#include "urepair/urepair_mlc_approx.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;

// A dirty table exercising a family set: entities planted consistent, then
// corrupted (the Theorem 4.14 reductions concentrate violations the same
// way: on the B columns via lhs collisions).
Table FamilyTable(const ParsedFdSet& parsed, int n, int corruptions,
                  uint64_t seed) {
  Rng rng(seed);
  PlantedTableOptions options;
  options.num_tuples = n;
  options.num_entities = std::max(2, n / 4);
  options.corruptions = corruptions;
  return PlantedDirtyTable(parsed.schema, parsed.fds, options, &rng);
}

void FamilyReport(const std::string& family_name,
                  ParsedFdSet (*family)(int), int max_k) {
  ReportTable table({"k", "mlc", "MFS", "MCI", "ours 2·mlc",
                     "KL (MCI+2)(2MFS-1)", "measured mlc-route",
                     "measured KL-route", "combined"});
  for (int k = 1; k <= max_k; ++k) {
    ParsedFdSet parsed = family(k);
    auto mlc = Mlc(parsed.fds);
    auto mci = Mci(parsed.fds);
    auto ours = MlcApproxRatioBound(parsed.fds);
    auto kl = KlApproxRatioBound(parsed.fds);
    FDR_CHECK(mlc.ok() && mci.ok() && ours.ok() && kl.ok());
    Table t = FamilyTable(parsed, 24, 10, 440 + k);
    auto mlc_update = MlcApproxURepair(parsed.fds, t);
    auto kl_update = KlApproxURepair(parsed.fds, t);
    auto combined = CombinedApproxURepair(parsed.fds, t);
    FDR_CHECK(mlc_update.ok() && kl_update.ok() && combined.ok());
    FDR_CHECK(Satisfies(*mlc_update, parsed.fds));
    FDR_CHECK(Satisfies(*kl_update, parsed.fds));
    table.AddRow({Num(k), Num(*mlc), Num(Mfs(parsed.fds)), Num(*mci),
                  Num(*ours), Num(*kl),
                  Num(DistUpdOrDie(*mlc_update, t)),
                  Num(DistUpdOrDie(*kl_update, t)),
                  Num(DistUpdOrDie(*combined, t))});
  }
  std::cout << "\n-- " << family_name << " --\n";
  table.Print();
}

/// The S-repair side of the same families: the LP-rounding backend must
/// stay within its factor-2 guarantee against the proved lower bound on
/// every generated instance. Tracks sec44.lp_rounding_worst_ratio
/// (ceiling: 2.0 by half-integrality of the VC LP).
void SRepairBackendReport() {
  ReportTable table({"family", "k", "core dist", "LP bound", "lp-rounding",
                     "cert ratio", "ilp optimal"});
  double worst = 1.0;
  struct Family {
    const char* name;
    ParsedFdSet (*make)(int);
  };
  for (const Family& family :
       {Family{"∆k", &DeltaKFamily}, Family{"∆'k", &DeltaPrimeKFamily}}) {
    for (int k = 1; k <= 6; ++k) {
      ParsedFdSet parsed = family.make(k);
      Table t = FamilyTable(parsed, 48, 16, 870 + k);

      SRepairOptions rounding;
      rounding.backend = kSolverLpRounding;
      auto rounded = ComputeSRepair(parsed.fds, t, rounding);
      FDR_CHECK(rounded.ok());
      FDR_CHECK(Satisfies(rounded->repair, parsed.fds));

      SRepairOptions ilp;
      ilp.backend = kSolverIlp;
      auto exact = ComputeSRepair(parsed.fds, t, ilp);
      FDR_CHECK(exact.ok());

      // The certificate the backend itself reports: distance over its LP
      // lower bound. Against the proved optimum it can only be sharper.
      worst = std::max(worst, rounded->achieved_ratio);
      if (exact->optimal) {
        FDR_CHECK(rounded->distance <= 2.0 * exact->distance + 1e-9);
      }
      table.AddRow({family.name, Num(k), Num(exact->distance),
                    Num(rounded->lower_bound), Num(rounded->distance),
                    Num(rounded->achieved_ratio),
                    exact->optimal ? "yes" : "no"});
    }
  }
  std::cout << "\n-- S-repair solver backends on the same families --\n";
  table.Print();
  std::cout << "worst lp-rounding certified ratio: " << Num(worst)
            << " (guarantee: <= 2)\n";
  JsonReport::Get().Add("sec44.lp_rounding_worst_ratio", worst, "x");
}

void Report() {
  Banner("E10", "§4.4 — approximation-ratio families ∆k and ∆'k");
  FamilyReport("∆k = {A0..Ak -> B0, B0 -> C, Bi -> A0} "
               "(ours Θ(k), KL Θ(k²))",
               &DeltaKFamily, 8);
  FamilyReport("∆'k = {Ai Ai+1 -> Bi} (ours Θ(k), KL constant 9)",
               &DeltaPrimeKFamily, 8);
  std::cout << "\nTheorem 4.14: computing an optimal U-repair is "
               "APX-complete for both families at every fixed k — the "
               "combined approximation (last column) is the paper's "
               "recommended algorithm.\n";
  SRepairBackendReport();
}

void BM_MlcRouteOnDeltaK(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ParsedFdSet parsed = DeltaKFamily(k);
  Table table = FamilyTable(parsed, 128, 40, 91 + k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MlcApproxURepair(parsed.fds, table));
  }
}
BENCHMARK(BM_MlcRouteOnDeltaK)->DenseRange(1, 7, 2)
    ->Unit(benchmark::kMillisecond);

void BM_KlRouteOnDeltaK(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ParsedFdSet parsed = DeltaKFamily(k);
  Table table = FamilyTable(parsed, 128, 40, 91 + k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlApproxURepair(parsed.fds, table));
  }
}
BENCHMARK(BM_KlRouteOnDeltaK)->DenseRange(1, 7, 2)
    ->Unit(benchmark::kMillisecond);

void BM_CombinedOnDeltaPrimeK(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ParsedFdSet parsed = DeltaPrimeKFamily(k);
  Table table = FamilyTable(parsed, 128, 40, 95 + k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CombinedApproxURepair(parsed.fds, table));
  }
}
BENCHMARK(BM_CombinedOnDeltaPrimeK)->DenseRange(1, 7, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
