// E6 — Figure 2 / Example 3.8: the five classes of non-simplifiable FD sets
// and their fact-wise reductions. Report: Example 3.8's representatives land
// in classes 1..5, random stuck sets distribute over the classes, and the
// class reductions preserve pairwise consistency on sampled tuples.

#include "report_util.h"
#include "common/random.h"
#include "reductions/factwise.h"
#include "srepair/osr_succeeds.h"
#include "storage/consistency.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

FdSet GadgetFdsFor(HardGadget gadget) {
  switch (gadget) {
    case HardGadget::kAtoCfromB:
      return DeltaAtoCfromB().fds;
    case HardGadget::kAtoBtoC:
      return DeltaAtoBtoC().fds;
    case HardGadget::kTriangle:
      return DeltaTriangle().fds;
    case HardGadget::kABtoCtoB:
      return DeltaABtoCtoB().fds;
  }
  return FdSet();
}

void Report() {
  Banner("E6", "Figure 2 — classes of non-simplifiable FD sets");
  {
    ReportTable table({"Example 3.8 set", "∆", "paper class",
                       "classified as", "gadget"});
    for (int fd_class = 1; fd_class <= 5; ++fd_class) {
      ParsedFdSet parsed = Example38Class(fd_class);
      auto result = ClassifyNonSimplifiable(parsed.fds);
      FDR_CHECK(result.ok());
      table.AddRow({"∆" + std::to_string(fd_class),
                    parsed.fds.ToString(parsed.schema),
                    Num(fd_class), Num(result->fd_class),
                    HardGadgetToString(result->gadget)});
    }
    table.Print();
  }

  // Random stuck sets: class distribution + reduction property check.
  Rng rng(2018);
  Schema schema = Schema::Anonymous(5);
  int class_counts[6] = {0, 0, 0, 0, 0, 0};
  int pairs_checked = 0;
  int pairs_preserved = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<Fd> fds;
    int count = 2 + static_cast<int>(rng.UniformUint64(4));
    for (int f = 0; f < count; ++f) {
      fds.emplace_back(AttrSet::FromBits(rng.Next() & 0x1f),
                       static_cast<AttrId>(rng.UniformUint64(5)));
    }
    OsrTrace trace = RunOsrSucceeds(FdSet::FromFds(fds));
    if (trace.succeeds) continue;
    auto result = ClassifyNonSimplifiable(trace.stuck_fds);
    FDR_CHECK(result.ok());
    ++class_counts[result->fd_class];
    // Spot-check the reduction on random tuple pairs.
    FdSet source_fds = GadgetFdsFor(result->gadget);
    for (int sample = 0; sample < 4; ++sample) {
      auto draw = [&] {
        return std::vector<std::string>{
            "x" + std::to_string(rng.UniformUint64(2)),
            "y" + std::to_string(rng.UniformUint64(2)),
            "z" + std::to_string(rng.UniformUint64(2))};
      };
      std::vector<std::string> t = draw();
      std::vector<std::string> s = draw();
      Table source(Schema::Anonymous(3));
      source.AddTuple(t);
      source.AddTuple(s);
      auto mapped_t = MapGadgetTuple(*result, trace.stuck_fds, schema, t[0],
                                     t[1], t[2]);
      auto mapped_s = MapGadgetTuple(*result, trace.stuck_fds, schema, s[0],
                                     s[1], s[2]);
      FDR_CHECK(mapped_t.ok() && mapped_s.ok());
      Table mapped(schema);
      mapped.AddTuple(*mapped_t);
      mapped.AddTuple(*mapped_s);
      bool source_ok =
          PairConsistent(source.tuple(0), source.tuple(1), source_fds);
      bool mapped_ok =
          PairConsistent(mapped.tuple(0), mapped.tuple(1), trace.stuck_fds);
      ++pairs_checked;
      if (source_ok == mapped_ok) ++pairs_preserved;
    }
  }
  ReportTable histogram({"class", "random stuck sets"});
  for (int fd_class = 1; fd_class <= 5; ++fd_class) {
    histogram.AddRow({Num(fd_class), Num(class_counts[fd_class])});
  }
  histogram.Print();
  std::cout << "fact-wise consistency preservation: " << pairs_preserved
            << "/" << pairs_checked << " sampled pairs\n";
}

void BM_ClassifyStuckSet(benchmark::State& state) {
  ParsedFdSet parsed = Example38Class(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifyNonSimplifiable(parsed.fds));
  }
}
BENCHMARK(BM_ClassifyStuckSet)->DenseRange(1, 5);

void BM_MapGadgetTuple(benchmark::State& state) {
  ParsedFdSet parsed = Example38Class(static_cast<int>(state.range(0)));
  auto classification = ClassifyNonSimplifiable(parsed.fds);
  FDR_CHECK(classification.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapGadgetTuple(*classification, parsed.fds,
                                            parsed.schema, "a", "b", "c"));
  }
}
BENCHMARK(BM_MapGadgetTuple)->DenseRange(1, 5);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
