// soft — Soft/weighted FDs: pricing violations against deletions.
//
// Report: a noise × weight-profile sweep of the soft planner on the
// running example. The all-hard (ω ≡ ∞) column is pinned against
// OptSRepairRows — FDR_CHECK aborts the bench if the delegation ever
// drifts from the subset planner — and the tracked metrics gate both the
// soft planner's throughput and the "softening never costs more than
// deleting" invariant (light-profile cost / hard cost must stay <= 1).

#include <string>
#include <vector>

#include "report_util.h"
#include "common/random.h"
#include "srepair/opt_srepair.h"
#include "srepair/soft_repair.h"
#include "srepair/solver_backend.h"
#include "storage/table_view.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;
using benchreport::SmokeCap;

struct WeightProfile {
  std::string name;
  double weight;  // applied to every FD; kHardFdWeight = the hard column
};

FdSet Weighted(const FdSet& fds, double weight) {
  std::vector<double> weights(fds.size(), weight);
  auto result = fds.WithWeights(weights);
  FDR_CHECK(result.ok());
  return *result;
}

double TimeSoftMs(const FdSet& fds, const Table& table) {
  auto start = std::chrono::steady_clock::now();
  auto result = ComputeSoftRepair(fds, table);
  FDR_CHECK(result.ok());
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Report() {
  Banner("soft", "Soft FDs — deletion cost vs weighted violations");
  ParsedFdSet parsed = OfficeFds();
  const int n = static_cast<int>(SmokeCap(600, 200));
  const std::vector<int> noise_levels = {0, n / 50, n / 10};
  const std::vector<WeightProfile> profiles = {
      {"hard (ω=∞)", kHardFdWeight},
      {"heavy (ω=4)", 4.0},
      {"light (ω=0.05)", 0.05},
  };

  ReportTable sweep({"noise", "profile", "kept", "cost", "deleted",
                     "violations", "route"});
  double hard_cost_at_max_noise = 0;
  double light_cost_at_max_noise = 0;
  double light_ms_at_max_noise = 0;
  Rng rng(2718);
  for (int noise : noise_levels) {
    PlantedTableOptions toptions;
    toptions.num_tuples = n;
    toptions.num_entities = n / 10 + 1;
    toptions.corruptions = noise;
    toptions.heavy_fraction = 0.3;
    Rng table_rng = rng.Fork();
    Table table = PlantedDirtyTable(parsed.schema, parsed.fds, toptions,
                                    &table_rng);
    for (const WeightProfile& profile : profiles) {
      FdSet fds = Weighted(parsed.fds, profile.weight);
      double ms = TimeSoftMs(fds, table);
      auto result = ComputeSoftRepair(fds, table);
      FDR_CHECK(result.ok());
      if (profile.weight == kHardFdWeight) {
        // The ω ≡ ∞ pin: the delegation must reproduce OptSRepairRows
        // exactly — same kept rows, not merely the same cost.
        auto rows = OptSRepairRows(parsed.fds, TableView(table));
        FDR_CHECK(rows.ok());
        FDR_CHECK_MSG(
            static_cast<int>(rows->size()) == result->repair.num_tuples(),
            "all-hard soft repair kept " << result->repair.num_tuples()
                                         << " rows, OptSRepairRows kept "
                                         << rows->size());
        for (size_t i = 0; i < rows->size(); ++i) {
          FDR_CHECK(table.id((*rows)[i]) == result->repair.id(static_cast<int>(i)));
        }
        if (noise == noise_levels.back()) {
          hard_cost_at_max_noise = result->cost;
        }
      } else if (profile.weight == 0.05 && noise == noise_levels.back()) {
        light_cost_at_max_noise = result->cost;
        light_ms_at_max_noise = ms;
      }
      sweep.AddRow({Num(noise), profile.name,
                    Num(result->repair.num_tuples()), Num(result->cost),
                    Num(result->deleted_weight), Num(result->violation_cost),
                    result->route});
    }
  }
  sweep.Print();
  std::cout << "(hard rows FDR_CHECK-pinned against OptSRepairRows)\n";

  JsonReport::Get().Add("soft.office_us_per_tuple",
                        light_ms_at_max_noise * 1000.0 / n, "us/tuple");
  // Softening can never cost more than repairing hard: keeping the hard
  // optimum is always feasible at zero violation cost. Gate the ratio so
  // the soft planner can never quietly regress past that theory bar.
  double ratio = hard_cost_at_max_noise > 0
                     ? light_cost_at_max_noise / hard_cost_at_max_noise
                     : 1.0;
  JsonReport::Get().Add("soft.light_cost_over_hard", ratio, "ratio");
  std::cout << "light-profile cost / hard cost at max noise: " << Num(ratio)
            << " (must stay <= 1)\n";

  // Soft conflicted cores through each soft-capable backend: the exact
  // backends must agree; local-ratio stays within its factor-3 template.
  Banner("soft", "Soft cores across solver backends");
  ParsedFdSet core_parsed = DeltaAtoCfromB();
  ReportTable cores({"backend", "cost", "optimal", "certified ratio"});
  RandomTableOptions coptions;
  coptions.num_tuples = static_cast<int>(SmokeCap(60, 30));
  coptions.domain_size = 3;
  coptions.heavy_fraction = 0.4;
  Rng core_rng(4242);
  Table core_table = RandomTable(core_parsed.schema, coptions, &core_rng);
  FdSet core_fds = Weighted(core_parsed.fds, 1.5);
  double exact_cost = -1;
  for (const char* backend : {kSolverLocalRatio, kSolverBnb, kSolverIlp}) {
    SoftRepairOptions options;
    options.backend = backend;
    auto result = ComputeSoftRepair(core_fds, core_table, options);
    FDR_CHECK(result.ok());
    cores.AddRow({backend, Num(result->cost),
                  result->optimal ? "yes" : "no",
                  Num(result->achieved_ratio)});
    if (result->optimal) {
      if (exact_cost < 0) exact_cost = result->cost;
      FDR_CHECK_MSG(std::abs(result->cost - exact_cost) < 1e-6,
                    "exact backends disagree: " << result->cost << " vs "
                                                << exact_cost);
    }
  }
  cores.Print();
}

void BM_SoftRepairOffice(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  int n = static_cast<int>(state.range(0));
  PlantedTableOptions toptions;
  toptions.num_tuples = n;
  toptions.num_entities = n / 10 + 1;
  toptions.corruptions = n / 10;
  Rng rng(31 + n);
  Table table = PlantedDirtyTable(parsed.schema, parsed.fds, toptions, &rng);
  FdSet fds = Weighted(parsed.fds, 0.5);
  for (auto _ : state) {
    auto result = ComputeSoftRepair(fds, table);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SoftRepairOffice)
    ->RangeMultiplier(4)
    ->Range(256, benchreport::SmokeCap(16384, 1024))
    ->Unit(benchmark::kMillisecond);

void BM_SoftCoreIlp(benchmark::State& state) {
  ParsedFdSet parsed = DeltaAtoCfromB();
  int n = static_cast<int>(state.range(0));
  RandomTableOptions toptions;
  toptions.num_tuples = n;
  toptions.domain_size = 4;
  Rng rng(53 + n);
  Table table = RandomTable(parsed.schema, toptions, &rng);
  FdSet fds = Weighted(parsed.fds, 1.5);
  SoftRepairOptions options;
  options.backend = kSolverIlp;
  for (auto _ : state) {
    auto result = ComputeSoftRepair(fds, table, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SoftCoreIlp)
    ->RangeMultiplier(2)
    ->Range(16, benchreport::SmokeCap(128, 64))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
