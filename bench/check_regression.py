#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares the BENCH_*.json files emitted by the bench binaries (run with
--json, or with FDR_BENCH_JSON=1 in the environment) against the tracked
baselines in bench/baselines.json:

    python3 bench/check_regression.py --dir build/bench

Exits non-zero when any tracked metric regresses past its threshold
(default 25%). Entries with "min_cpus" are skipped on machines with fewer
CPUs — e.g. the engine's 4-thread speedup targets only mean something on
>=4-core runners. `--write-baselines` refreshes the baseline values in
place from the current run (keeping directions/thresholds), which is how
the checked-in numbers get updated after an intentional perf change.

Stdlib only: no third-party dependencies.
"""

import argparse
import json
import os
import sys


def load_metrics(path):
    with open(path) as f:
        report = json.load(f)
    return report, {m["name"]: m["value"] for m in report.get("metrics", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines",
                        default=os.path.join(os.path.dirname(__file__),
                                             "baselines.json"))
    parser.add_argument("--dir", default="build/bench",
                        help="directory holding the BENCH_*.json outputs")
    parser.add_argument("--write-baselines", action="store_true",
                        help="rewrite baseline values from the current run")
    args = parser.parse_args()

    with open(args.baselines) as f:
        config = json.load(f)
    default_threshold = config.get("default_threshold", 0.25)

    reports = {}
    failures = 0
    rows = []
    for entry in config["tracked"]:
        name = entry["name"]
        fname = entry["file"]
        threshold = entry.get("threshold", default_threshold)
        direction = entry.get("direction", "lower")
        baseline = entry["baseline"]

        path = os.path.join(args.dir, fname)
        if fname not in reports:
            if not os.path.exists(path):
                rows.append((name, baseline, None, "MISSING FILE " + fname))
                failures += 1
                continue
            reports[fname] = load_metrics(path)
        report, metrics = reports[fname]

        # Baselines are calibrated from FDR_BENCH_SMOKE=1 runs; comparing
        # (or rebasing) against full-size metrics would be apples to
        # oranges — e.g. us-per-tuple numbers grow superlinearly with n.
        if not report.get("smoke"):
            rows.append((name, baseline, metrics.get(name),
                         "NON-SMOKE RUN (re-run with FDR_BENCH_SMOKE=1)"))
            failures += 1
            continue

        min_cpus = entry.get("min_cpus")
        if min_cpus is not None and report.get("cpus", 0) < min_cpus:
            rows.append((name, baseline, metrics.get(name),
                         "SKIP (needs >=%d cpus, have %s)" %
                         (min_cpus, report.get("cpus"))))
            continue
        if name not in metrics:
            rows.append((name, baseline, None, "MISSING METRIC"))
            failures += 1
            continue

        value = metrics[name]
        if args.write_baselines:
            # Rebase WITH headroom, never with the raw measurement: shared
            # CI runners are slower and noisier than whatever quiet machine
            # the refresh ran on. 'lower' timings get 2x slack, 'higher'
            # floors (speedups) are relaxed to 80% of what was measured.
            margin = entry.get("rebase_margin",
                               2.0 if direction == "lower" else 0.8)
            entry["baseline"] = round(value * margin, 6)
            rows.append((name, entry["baseline"], value, "REBASED"))
            continue
        if direction == "lower":
            limit = baseline * (1 + threshold)
            ok = value <= limit
            verdict = "OK" if ok else "REGRESSED (> %.4g)" % limit
        else:
            limit = baseline * (1 - threshold)
            ok = value >= limit
            verdict = "OK" if ok else "REGRESSED (< %.4g)" % limit
        if not ok:
            failures += 1
        rows.append((name, baseline, value, verdict))

    width = max(len(r[0]) for r in rows) if rows else 10
    print("%-*s  %12s  %12s  %s" % (width, "metric", "baseline", "value",
                                    "verdict"))
    for name, baseline, value, verdict in rows:
        value_s = "%.4g" % value if value is not None else "-"
        print("%-*s  %12.4g  %12s  %s" % (width, name, baseline, value_s,
                                          verdict))

    if args.write_baselines:
        if failures:
            print("\nrefusing to rewrite baselines: %d tracked metric(s) "
                  "missing from %s" % (failures, args.dir))
            return 1
        with open(args.baselines, "w") as f:
            json.dump(config, f, indent=2)
            f.write("\n")
        print("baselines rewritten: %s" % args.baselines)
        return 0

    if failures:
        print("\n%d tracked benchmark(s) regressed or missing" % failures)
        return 1
    print("\nall tracked benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
