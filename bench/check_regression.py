#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares the BENCH_*.json files emitted by the bench binaries (run with
--json, or with FDR_BENCH_JSON=1 in the environment) against the tracked
baselines in bench/baselines.json:

    python3 bench/check_regression.py --dir build/bench

Exits non-zero when any tracked metric regresses past its threshold
(default 25%). Entries with "min_cpus" are skipped on machines with fewer
CPUs — e.g. the engine's 4-thread speedup targets only mean something on
>=4-core runners. `--write-baselines` refreshes the baseline values in
place from the current run (keeping directions/thresholds), which is how
the checked-in numbers get updated after an intentional perf change.

Zero and near-zero baselines get special handling: a relative threshold
on a ~0 baseline is either vacuous (direction "higher": every value
passes) or unsatisfiable (direction "lower": any noise fails), so such
entries must declare an "abs_tolerance" and are compared absolutely
(baseline +/- abs_tolerance); a near-zero baseline without one is
reported as a configuration failure instead of passing silently.

`--self-test` runs the gate's own unit checks (no benchmark files
needed); CI invokes it before trusting the gate's verdict.

Stdlib only: no third-party dependencies.
"""

import argparse
import json
import os
import sys
import tempfile

# Baselines closer to zero than this are meaningless for *relative*
# comparison; they must carry an explicit "abs_tolerance".
NEAR_ZERO = 1e-9


def load_metrics(path):
    with open(path) as f:
        report = json.load(f)
    return report, {m["name"]: m["value"] for m in report.get("metrics", [])}


def evaluate(config, reports_dir, write_baselines=False):
    """Checks every tracked entry; returns (rows, failures).

    rows: (name, baseline, value, verdict) tuples for printing.
    Mutates config entries in place when write_baselines is set.
    """
    default_threshold = config.get("default_threshold", 0.25)
    reports = {}
    failures = 0
    rows = []
    for entry in config["tracked"]:
        name = entry["name"]
        fname = entry["file"]
        threshold = entry.get("threshold", default_threshold)
        direction = entry.get("direction", "lower")
        baseline = entry["baseline"]
        abs_tolerance = entry.get("abs_tolerance")

        path = os.path.join(reports_dir, fname)
        if fname not in reports:
            if not os.path.exists(path):
                rows.append((name, baseline, None, "MISSING FILE " + fname))
                failures += 1
                continue
            reports[fname] = load_metrics(path)
        report, metrics = reports[fname]

        # Baselines are calibrated from FDR_BENCH_SMOKE=1 runs; comparing
        # (or rebasing) against full-size metrics would be apples to
        # oranges — e.g. us-per-tuple numbers grow superlinearly with n.
        if not report.get("smoke"):
            rows.append((name, baseline, metrics.get(name),
                         "NON-SMOKE RUN (re-run with FDR_BENCH_SMOKE=1)"))
            failures += 1
            continue

        min_cpus = entry.get("min_cpus")
        if min_cpus is not None and report.get("cpus", 0) < min_cpus:
            rows.append((name, baseline, metrics.get(name),
                         "SKIP (needs >=%d cpus, have %s)" %
                         (min_cpus, report.get("cpus"))))
            continue
        if name not in metrics:
            rows.append((name, baseline, None, "MISSING METRIC"))
            failures += 1
            continue

        value = metrics[name]
        if write_baselines:
            # Rebase WITH headroom, never with the raw measurement: shared
            # CI runners are slower and noisier than whatever quiet machine
            # the refresh ran on. 'lower' timings get 2x slack, 'higher'
            # floors (speedups) are relaxed to 80% of what was measured —
            # but never below an entry's "min_baseline", which records a
            # bar the project has committed to (e.g. the columnar >=1.3x
            # acceptance speedup): a rebase may loosen noise headroom, not
            # quietly lower the bar itself.
            margin = entry.get("rebase_margin",
                               2.0 if direction == "lower" else 0.8)
            rebased = round(value * margin, 6)
            min_baseline = entry.get("min_baseline")
            if min_baseline is not None and direction == "higher":
                rebased = max(rebased, min_baseline)
            entry["baseline"] = rebased
            rows.append((name, entry["baseline"], value, "REBASED"))
            continue
        if abs(baseline) < NEAR_ZERO:
            # Relative comparison against ~0 is vacuous or unsatisfiable;
            # require an absolute tolerance.
            if abs_tolerance is None:
                rows.append((name, baseline, value,
                             "ZERO BASELINE (add abs_tolerance)"))
                failures += 1
                continue
            if direction == "lower":
                limit = baseline + abs_tolerance
                ok = value <= limit
            else:
                limit = baseline - abs_tolerance
                ok = value >= limit
            verdict = "OK (abs)" if ok else (
                "REGRESSED (%s %.4g)" %
                (">" if direction == "lower" else "<", limit))
        elif direction == "lower":
            limit = baseline * (1 + threshold)
            ok = value <= limit
            verdict = "OK" if ok else "REGRESSED (> %.4g)" % limit
        else:
            limit = baseline * (1 - threshold)
            ok = value >= limit
            verdict = "OK" if ok else "REGRESSED (< %.4g)" % limit
        if not ok:
            failures += 1
        rows.append((name, baseline, value, verdict))
    return rows, failures


def validate_config(config):
    """Sanity-checks a baselines config; returns a list of problems.

    Catches the misconfigurations that would otherwise surface as a
    confusing gate verdict (or no verdict at all): missing required
    fields, unknown directions, near-zero baselines without an
    abs_tolerance, and duplicate tracked names.
    """
    problems = []
    seen = set()
    for i, entry in enumerate(config.get("tracked", [])):
        where = "tracked[%d]" % i
        for field in ("file", "name", "baseline"):
            if field not in entry:
                problems.append("%s: missing %r" % (where, field))
        name = entry.get("name")
        if name in seen:
            problems.append("%s: duplicate name %r" % (where, name))
        seen.add(name)
        if entry.get("direction", "lower") not in ("lower", "higher"):
            problems.append("%s (%s): bad direction %r" %
                            (where, name, entry.get("direction")))
        baseline = entry.get("baseline")
        if (isinstance(baseline, (int, float)) and
                abs(baseline) < NEAR_ZERO and
                entry.get("abs_tolerance") is None):
            problems.append("%s (%s): near-zero baseline needs abs_tolerance"
                            % (where, name))
        min_baseline = entry.get("min_baseline")
        if min_baseline is not None:
            if entry.get("direction", "lower") != "higher":
                problems.append("%s (%s): min_baseline only applies to "
                                "direction 'higher'" % (where, name))
            elif (isinstance(baseline, (int, float)) and
                  baseline < min_baseline):
                problems.append("%s (%s): baseline %s below its "
                                "min_baseline %s" %
                                (where, name, baseline, min_baseline))
    return problems


def print_rows(rows):
    width = max(len(r[0]) for r in rows) if rows else 10
    print("%-*s  %12s  %12s  %s" % (width, "metric", "baseline", "value",
                                    "verdict"))
    for name, baseline, value, verdict in rows:
        value_s = "%.4g" % value if value is not None else "-"
        print("%-*s  %12.4g  %12s  %s" % (width, name, baseline, value_s,
                                          verdict))


def self_test():
    """Unit checks for the gate itself, exercised on synthetic reports."""

    def run(entries, metrics, smoke=True, cpus=8):
        with tempfile.TemporaryDirectory() as tmp:
            with open(os.path.join(tmp, "BENCH_t.json"), "w") as f:
                json.dump({"experiment": "t", "cpus": cpus, "smoke": smoke,
                           "metrics": [{"name": k, "value": v, "unit": ""}
                                       for k, v in metrics.items()]}, f)
            config = {"default_threshold": 0.25, "tracked": entries}
            rows, failures = evaluate(config, tmp)
            return {name: verdict for name, _, _, verdict in rows}, failures

    def entry(name, baseline, **kwargs):
        out = {"file": "BENCH_t.json", "name": name, "baseline": baseline}
        out.update(kwargs)
        return out

    checks = 0

    # Within-threshold values pass; past-threshold values fail, both ways.
    verdicts, failures = run(
        [entry("a", 10.0), entry("b", 10.0, direction="higher")],
        {"a": 12.0, "b": 8.0})
    assert failures == 0, verdicts
    verdicts, failures = run(
        [entry("a", 10.0), entry("b", 10.0, direction="higher")],
        {"a": 13.0, "b": 7.0})
    assert failures == 2 and "REGRESSED" in verdicts["a"], verdicts
    checks += 1

    # A zero baseline must not pass vacuously (direction "higher" would
    # otherwise accept any value) nor divide/fail on noise — without an
    # abs_tolerance it is flagged as misconfigured.
    verdicts, failures = run(
        [entry("z", 0.0, direction="higher")], {"z": 0.0})
    assert failures == 1 and "ZERO BASELINE" in verdicts["z"], verdicts
    checks += 1

    # With abs_tolerance, zero baselines compare absolutely.
    verdicts, failures = run(
        [entry("z", 0.0, direction="lower", abs_tolerance=0.5)], {"z": 0.4})
    assert failures == 0, verdicts
    verdicts, failures = run(
        [entry("z", 0.0, direction="lower", abs_tolerance=0.5)], {"z": 0.6})
    assert failures == 1, verdicts
    verdicts, failures = run(
        [entry("z", 0.0, direction="higher", abs_tolerance=0.5)],
        {"z": -0.6})
    assert failures == 1, verdicts
    checks += 1

    # Non-smoke reports are rejected; missing metrics fail; min_cpus skips.
    verdicts, failures = run([entry("a", 10.0)], {"a": 10.0}, smoke=False)
    assert failures == 1 and "NON-SMOKE" in verdicts["a"], verdicts
    verdicts, failures = run([entry("missing", 10.0)], {"a": 10.0})
    assert failures == 1 and "MISSING METRIC" in verdicts["missing"], verdicts
    verdicts, failures = run(
        [entry("a", 10.0, min_cpus=64)], {"a": 99.0}, cpus=2)
    assert failures == 0 and "SKIP" in verdicts["a"], verdicts
    checks += 1

    # Config validation: structural problems are reported before the gate
    # is allowed to pass/fail anything (main() refuses to evaluate a
    # config with problems).
    assert validate_config({"tracked": [entry("a", 1.0)]}) == []
    problems = validate_config({"tracked": [
        {"file": "BENCH_t.json", "baseline": 1.0},           # no name
        entry("dup", 1.0), entry("dup", 2.0),                # duplicate
        entry("bad", 1.0, direction="sideways"),             # bad direction
        entry("zero", 0.0, direction="higher"),              # near-zero
        entry("mb1", 1.0, min_baseline=1.5),                 # wrong direction
        entry("mb2", 1.0, direction="higher",
              min_baseline=1.5),                             # below the bar
    ]})
    assert len(problems) == 6, problems
    checks += 1

    # The checked-in baselines config must itself validate, and it must
    # track the columnar grouping baselines (bench_hotpath's
    # columnar-vs-row-major section) so the columnar fast path is gated —
    # with floors that still encode a real speedup (>= 1.0x).
    baselines_path = os.path.join(os.path.dirname(__file__),
                                  "baselines.json")
    with open(baselines_path) as f:
        repo_config = json.load(f)
    problems = validate_config(repo_config)
    assert problems == [], problems
    tracked = {e["name"]: e for e in repo_config["tracked"]}

    def committed_floor(entry_cfg):
        # The floor a rebase can never go below: min_baseline is the
        # committed bar (rebases clamp to it), threshold the noise slack.
        return entry_cfg["min_baseline"] * (
            1 - entry_cfg.get("threshold",
                              repo_config.get("default_threshold", 0.25)))

    # Office is the stable grouping-bound workload: its committed bar
    # records the >=1.3x acceptance speedup and even its noise floor must
    # still encode a real speedup. The deep chain is noisier on shared
    # runners, so its floor only guards against inversion (columnar
    # slower than row-major). Asserting on min_baseline (not baseline)
    # keeps these invariants compatible with --write-baselines refreshes,
    # whose rebase clamps to min_baseline.
    office = tracked.get("hotpath.office_columnar_speedup_vs_rowmajor")
    assert office is not None, "baselines.json must track the office " \
        "columnar speedup"
    assert office.get("direction") == "higher", office
    assert office.get("min_baseline", 0) >= 1.3, office
    assert committed_floor(office) >= 1.0, office
    deep = tracked.get("hotpath.deep_columnar_speedup_vs_rowmajor")
    assert deep is not None, "baselines.json must track the deep-chain " \
        "columnar speedup"
    assert deep.get("direction") == "higher", deep
    assert deep.get("min_baseline", 0) >= 1.0, deep
    assert committed_floor(deep) >= 0.75, deep
    checks += 1

    # The solver-backend gates (bench_prop33 / bench_sec44): the ILP B&B
    # must keep proving optimality on conflicted cores >= 120 (3x the
    # historical exact_guard of 40) — min_baseline commits that bar so a
    # rebase can loosen noise headroom but never the capability itself —
    # and the LP-rounding certified-ratio limit (what the gate actually
    # enforces: baseline*(1+threshold)) must stay within the factor-2
    # a-priori guarantee, so a rebase can never quietly accept a cover
    # worse than the theory allows.
    default_threshold = repo_config.get("default_threshold", 0.25)
    ilp = tracked.get("prop33.ilp_solved_conflicted_tuples")
    assert ilp is not None, "baselines.json must track the ILP solved-size"
    assert ilp.get("direction") == "higher", ilp
    assert ilp.get("min_baseline", 0) >= 120, ilp
    assert ilp["baseline"] * (
        1 - ilp.get("threshold", default_threshold)) >= 120, ilp
    lp = tracked.get("sec44.lp_rounding_worst_ratio")
    assert lp is not None, "baselines.json must track the LP-rounding ratio"
    assert lp.get("direction") == "lower", lp
    assert lp["baseline"] * (
        1 + lp.get("threshold", default_threshold)) <= 2.0 + 1e-9, lp
    checks += 1

    # The incremental-repair gates: both delta splice paths must keep a
    # real advantage over a full re-plan of the mutated state — the subset
    # path (kept-id recipes) commits the >=3x acceptance floor, the update
    # path (cell-edit recipes) >=2x — and the span-ported Section-4 routes
    # must stay >=1.5x over the preserved hash-map reference, so the port
    # can never quietly regress to hash-map speed.
    sdelta = tracked.get("service.delta_speedup")
    assert sdelta is not None, "baselines.json must track the subset " \
        "delta speedup"
    assert sdelta.get("direction") == "higher", sdelta
    assert committed_floor(sdelta) >= 3.0, sdelta
    udelta = tracked.get("service.udelta_speedup")
    assert udelta is not None, "baselines.json must track the update " \
        "delta speedup"
    assert udelta.get("direction") == "higher", udelta
    assert committed_floor(udelta) >= 2.0, udelta
    span = tracked.get("urepair.span_speedup")
    assert span is not None, "baselines.json must track the urepair " \
        "span speedup"
    assert span.get("direction") == "higher", span
    assert span.get("file") == "BENCH_E9.json", span
    assert committed_floor(span) >= 1.5, span
    checks += 1

    # The soft-FD gates (bench_soft_repair): the planner's throughput must
    # stay tracked, and the light-profile cost ratio's gate limit
    # (baseline*(1+threshold)) must stay <= 1 — softening constraints can
    # never cost more than the all-hard optimum, so a rebase can never
    # quietly accept a soft planner that lost that guarantee.
    soft_us = tracked.get("soft.office_us_per_tuple")
    assert soft_us is not None, "baselines.json must track the soft " \
        "planner throughput"
    assert soft_us.get("direction") == "lower", soft_us
    assert soft_us.get("file") == "BENCH_soft.json", soft_us
    soft_ratio = tracked.get("soft.light_cost_over_hard")
    assert soft_ratio is not None, "baselines.json must track the soft " \
        "light-cost ratio"
    assert soft_ratio.get("direction") == "lower", soft_ratio
    assert soft_ratio["baseline"] * (
        1 + soft_ratio.get("threshold", default_threshold)) <= 1.0 + 1e-9, \
        soft_ratio
    checks += 1

    # Rebase applies headroom (2x for lower, 0.8x for higher) but never
    # lowers a 'higher' baseline below its committed min_baseline.
    with tempfile.TemporaryDirectory() as tmp:
        with open(os.path.join(tmp, "BENCH_t.json"), "w") as f:
            json.dump({"experiment": "t", "cpus": 8, "smoke": True,
                       "metrics": [{"name": "a", "value": 3.0, "unit": ""},
                                   {"name": "b", "value": 10.0, "unit": ""},
                                   {"name": "c", "value": 1.5, "unit": ""}]},
                      f)
        config = {"tracked": [
            entry("a", 1.0),
            entry("b", 1.0, direction="higher"),
            entry("c", 1.4, direction="higher", min_baseline=1.3),
        ]}
        rows, failures = evaluate(config, tmp, write_baselines=True)
        assert failures == 0, rows
        assert config["tracked"][0]["baseline"] == 6.0, config
        assert config["tracked"][1]["baseline"] == 8.0, config
        # 1.5 * 0.8 = 1.2 would drop below the committed 1.3 bar: clamped.
        assert config["tracked"][2]["baseline"] == 1.3, config
    checks += 1

    print("self-test OK (%d check groups)" % checks)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines",
                        default=os.path.join(os.path.dirname(__file__),
                                             "baselines.json"))
    parser.add_argument("--dir", default="build/bench",
                        help="directory holding the BENCH_*.json outputs")
    parser.add_argument("--write-baselines", action="store_true",
                        help="rewrite baseline values from the current run")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    with open(args.baselines) as f:
        config = json.load(f)

    # Structural problems fail the gate up front: a typoed direction or a
    # near-zero baseline without tolerance must never silently pass.
    problems = validate_config(config)
    if problems:
        for problem in problems:
            print("config error: %s" % problem)
        print("\n%d problem(s) in %s" % (len(problems), args.baselines))
        return 1

    rows, failures = evaluate(config, args.dir,
                              write_baselines=args.write_baselines)
    print_rows(rows)

    if args.write_baselines:
        if failures:
            print("\nrefusing to rewrite baselines: %d tracked metric(s) "
                  "missing from %s" % (failures, args.dir))
            return 1
        with open(args.baselines, "w") as f:
            json.dump(config, f, indent=2)
            f.write("\n")
        print("baselines rewritten: %s" % args.baselines)
        return 0

    if failures:
        print("\n%d tracked benchmark(s) regressed or missing" % failures)
        return 1
    print("\nall tracked benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
