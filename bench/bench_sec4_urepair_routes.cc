// E9 — Section 4's U-repair landscape: the planner's complexity verdict per
// named FD set (Corollaries 4.6/4.8/4.11, Theorem 4.10, Examples 4.2/4.7),
// Corollary 4.11's two separating examples highlighted, scaling of the
// exact polynomial routes, and the span-port payoff: live columnar routes
// vs the preserved hash-map reference (tracked `urepair.span_speedup`,
// floor 1.5x).

#include <chrono>

#include "report_util.h"
#include "common/random.h"
#include "srepair/planner.h"
#include "urepair/planner.h"
#include "urepair/reference_routes.h"
#include "urepair/urepair_consensus.h"
#include "urepair/urepair_key_cycle.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;

void ReportSpanSpeedup();

void Report() {
  Banner("E9", "Section 4 — U-repair complexity landscape and routes");
  ReportTable table({"FD set", "S-repair", "U-repair", "route(s)",
                     "U ratio bound"});
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SRepairVerdict s_verdict = ClassifySRepair(named.parsed.fds);
    auto plan = PlanURepair(named.parsed.fds);
    FDR_CHECK(plan.ok());
    std::string routes;
    for (const auto& component : plan->components) {
      if (!routes.empty()) routes += "+";
      routes += URepairRouteToString(component.route);
    }
    if (!plan->consensus_attrs.empty()) {
      routes = routes.empty() ? "consensus-plurality"
                              : "consensus-plurality+" + routes;
    }
    if (routes.empty()) routes = "noop";
    table.AddRow({named.name,
                  s_verdict.polynomial ? "polynomial" : "APX-complete",
                  URepairComplexityToString(plan->complexity), routes,
                  Num(plan->ratio_bound)});
  }
  table.Print();

  std::cout << "\nCorollary 4.11 separations:\n"
            << "  (1) ∆A<->B->C / ∆4: S-repair polynomial, U-repair "
               "APX-complete (Theorem 4.10)\n"
            << "  (2) {A->B, C->D} / ∆0: U-repair polynomial, S-repair "
               "APX-complete (Example 4.2 + Theorem 3.4)\n";
  ReportSpanSpeedup();
}

/// Span-port payoff on the grouping-bound family: the weighted-plurality
/// consensus sweep is a pure group-count-argmax per attribute, so it
/// isolates what the port changed — DenseValueIndex + columnar scans vs
/// the reference's per-attribute unordered_map. A value-diverse table
/// (domain ~ n/8) keeps the reference hash-bound. Both sides must agree
/// bit for bit (the routes test pins this; here it guards the timing).
void ReportSpanSpeedup() {
  using Clock = std::chrono::steady_clock;
  const int n = static_cast<int>(benchreport::SmokeCap(131072, 16384));
  const int rounds = 5;
  ParsedFdSet parsed = OfficeFds();
  Rng rng(94);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(16, n / 8);
  Table table = RandomTable(parsed.schema, options, &rng);
  const AttrSet attrs = parsed.schema.AllAttrs();

  double reference_us = 0;
  double live_us = 0;
  double reference_cost = 0;
  double live_cost = 0;
  for (int round = 0; round < rounds; ++round) {
    Clock::time_point start = Clock::now();
    reference_cost = ReferenceConsensusPluralityCost(table, attrs);
    std::chrono::duration<double, std::micro> elapsed = Clock::now() - start;
    reference_us += elapsed.count();

    start = Clock::now();
    live_cost = ConsensusPluralityCost(table, attrs);
    elapsed = Clock::now() - start;
    live_us += elapsed.count();
  }
  FDR_CHECK(reference_cost == live_cost);
  reference_us /= rounds;
  live_us /= rounds;
  const double speedup = live_us > 0 ? reference_us / live_us : 0;

  std::cout << "\nSpan-port payoff (consensus sweep, " << n << " tuples x "
            << parsed.schema.arity() << " attrs, domain "
            << options.domain_size << "):\n";
  ReportTable table_out({"implementation", "us/sweep"});
  table_out.AddRow({"reference (hash-map)", Num(reference_us)});
  table_out.AddRow({"live (span/columnar)", Num(live_us)});
  table_out.Print();
  std::cout << "  span-over-reference speedup: " << Num(speedup) << "x\n";

  JsonReport::Get().Add("urepair.reference_us_per_sweep", reference_us, "us");
  JsonReport::Get().Add("urepair.span_us_per_sweep", live_us, "us");
  JsonReport::Get().Add("urepair.span_speedup", speedup, "x");
}

// Polynomial route scaling: common-lhs exact route (Corollary 4.6).
void BM_CommonLhsRoute(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  int n = static_cast<int>(state.range(0));
  Rng rng(46 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 16);
  Table table = RandomTable(parsed.schema, options, &rng);
  URepairOptions planner_options;
  planner_options.allow_exact_search = false;
  for (auto _ : state) {
    auto result = ComputeURepair(parsed.fds, table, planner_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CommonLhsRoute)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(65536, 2048))
    ->Unit(benchmark::kMillisecond);

// Key-cycle exact route (Proposition 4.9).
void BM_KeyCycleRoute(benchmark::State& state) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B; B -> A");
  int n = static_cast<int>(state.range(0));
  Rng rng(49 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 8);
  Table table = RandomTable(parsed.schema, options, &rng);
  for (auto _ : state) {
    auto result = KeyCycleOptimalURepair(parsed.fds, table);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeyCycleRoute)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(65536, 2048))
    ->Unit(benchmark::kMillisecond);

// Decomposed planner on attribute-disjoint unions (Theorem 4.1).
void BM_DisjointUnionPlanner(benchmark::State& state) {
  ParsedFdSet parsed = Delta0Purchase();
  int n = static_cast<int>(state.range(0));
  Rng rng(41 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 16);
  Table table = RandomTable(parsed.schema, options, &rng);
  URepairOptions planner_options;
  planner_options.allow_exact_search = false;
  for (auto _ : state) {
    auto result = ComputeURepair(parsed.fds, table, planner_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DisjointUnionPlanner)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(32768, 2048))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
