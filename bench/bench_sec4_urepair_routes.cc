// E9 — Section 4's U-repair landscape: the planner's complexity verdict per
// named FD set (Corollaries 4.6/4.8/4.11, Theorem 4.10, Examples 4.2/4.7),
// Corollary 4.11's two separating examples highlighted, and scaling of the
// exact polynomial routes.

#include "report_util.h"
#include "common/random.h"
#include "srepair/planner.h"
#include "urepair/planner.h"
#include "urepair/urepair_key_cycle.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

void Report() {
  Banner("E9", "Section 4 — U-repair complexity landscape and routes");
  ReportTable table({"FD set", "S-repair", "U-repair", "route(s)",
                     "U ratio bound"});
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SRepairVerdict s_verdict = ClassifySRepair(named.parsed.fds);
    auto plan = PlanURepair(named.parsed.fds);
    FDR_CHECK(plan.ok());
    std::string routes;
    for (const auto& component : plan->components) {
      if (!routes.empty()) routes += "+";
      routes += URepairRouteToString(component.route);
    }
    if (!plan->consensus_attrs.empty()) {
      routes = routes.empty() ? "consensus-plurality"
                              : "consensus-plurality+" + routes;
    }
    if (routes.empty()) routes = "noop";
    table.AddRow({named.name,
                  s_verdict.polynomial ? "polynomial" : "APX-complete",
                  URepairComplexityToString(plan->complexity), routes,
                  Num(plan->ratio_bound)});
  }
  table.Print();

  std::cout << "\nCorollary 4.11 separations:\n"
            << "  (1) ∆A<->B->C / ∆4: S-repair polynomial, U-repair "
               "APX-complete (Theorem 4.10)\n"
            << "  (2) {A->B, C->D} / ∆0: U-repair polynomial, S-repair "
               "APX-complete (Example 4.2 + Theorem 3.4)\n";
}

// Polynomial route scaling: common-lhs exact route (Corollary 4.6).
void BM_CommonLhsRoute(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  int n = static_cast<int>(state.range(0));
  Rng rng(46 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 16);
  Table table = RandomTable(parsed.schema, options, &rng);
  URepairOptions planner_options;
  planner_options.allow_exact_search = false;
  for (auto _ : state) {
    auto result = ComputeURepair(parsed.fds, table, planner_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CommonLhsRoute)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(65536, 2048))
    ->Unit(benchmark::kMillisecond);

// Key-cycle exact route (Proposition 4.9).
void BM_KeyCycleRoute(benchmark::State& state) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B; B -> A");
  int n = static_cast<int>(state.range(0));
  Rng rng(49 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 8);
  Table table = RandomTable(parsed.schema, options, &rng);
  for (auto _ : state) {
    auto result = KeyCycleOptimalURepair(parsed.fds, table);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeyCycleRoute)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(65536, 2048))
    ->Unit(benchmark::kMillisecond);

// Decomposed planner on attribute-disjoint unions (Theorem 4.1).
void BM_DisjointUnionPlanner(benchmark::State& state) {
  ParsedFdSet parsed = Delta0Purchase();
  int n = static_cast<int>(state.range(0));
  Rng rng(41 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / 16);
  Table table = RandomTable(parsed.schema, options, &rng);
  URepairOptions planner_options;
  planner_options.allow_exact_search = false;
  for (auto _ : state) {
    auto result = ComputeURepair(parsed.fds, table, planner_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DisjointUnionPlanner)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(32768, 2048))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
