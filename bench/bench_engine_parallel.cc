// E12 — Parallel block-sharded repair engine. OptSRepair's recursion
// decomposes every tractable instance into independent blocks (Algorithm 1);
// the engine runs those blocks — and whole batches of (∆, T) jobs — on a
// work-stealing pool. Report: wall-clock and speedup at 1/2/4/8 threads on
// the Theorem 3.2 scaling families, bit-identical-results check, and the
// batch serving shape (many jobs, per-job deadlines). Target: ≥2× at 4
// threads on ≥4-core hardware.

#include <chrono>
#include <thread>

#include "report_util.h"
#include "common/random.h"
#include "engine/repair_engine.h"
#include "engine/thread_pool.h"
#include "srepair/opt_srepair.h"
#include "storage/consistency.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;

double TimeRepairMs(const FdSet& fds, const TableView& view,
                    const OptSRepairRowsOptions& options,
                    std::vector<int>* rows) {
  // Best of three runs: CI runners are noisy and the regression gate
  // compares these numbers against checked-in baselines; min-of-N is the
  // most stable estimator of the achievable time.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto result = OptSRepairRows(fds, view, options);
    auto stop = std::chrono::steady_clock::now();
    FDR_CHECK_MSG(result.ok(), result.status().ToString());
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) {
      best = ms;
      *rows = *std::move(result);
    }
  }
  return best;
}

void ReportFamilyScaling() {
  const unsigned cpus = std::thread::hardware_concurrency();
  ReportTable table({"family", "n", "threads", "time (ms)", "speedup"});
  // The chain family uses the grouping-bound domain (n/512, σ-blocks of
  // ~hundreds of rows): with the singleton-block shortcuts in the span
  // recursion, the default n/16 domain collapses into trivial blocks whose
  // solve time is dwarfed by fan-out overhead — there would be nothing
  // left to parallelize. The marriage family keeps the default domain
  // (its cost is the per-block matchings, not grouping).
  for (const auto& [label, parsed, full_n, smoke_n, domain_divisor] :
       {std::tuple<std::string, ParsedFdSet, int, int, int>{
            "chain (office)", OfficeFds(), 262144, 32768, 512},
        {"marriage (A<->B->C)", DeltaAKeyBToC(), 16384, 6144, 16}}) {
    const int n = static_cast<int>(benchreport::SmokeCap(full_n, smoke_n));
    Table t = ScalingFamilyTable(parsed, n, 5 + n, domain_divisor);
    TableView view(t);
    std::vector<int> baseline_rows;
    double t1_ms = 0;
    const bool chain = label == std::string("chain (office)");
    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      OptSRepairRowsOptions options;
      options.exec.pool = threads > 1 ? &pool : nullptr;
      std::vector<int> rows;
      double ms = TimeRepairMs(parsed.fds, view, options, &rows);
      if (threads == 1) {
        baseline_rows = rows;
        t1_ms = ms;
        FDR_CHECK(Satisfies(t.SubsetByRows(rows), parsed.fds));
      }
      // The acceptance bar: results must be bit-identical at every thread
      // count (block-local accumulation + ordered reduction, opt_srepair.h).
      FDR_CHECK(rows == baseline_rows);
      table.AddRow({label, Num(n), Num(threads), Num(ms), Num(t1_ms / ms)});
      if (chain) {
        JsonReport::Get().Add(
            "engine.chain_t" + std::to_string(threads) + "_ms", ms, "ms");
        if (threads == 1) {
          JsonReport::Get().Add("engine.chain_us_per_tuple_t1",
                                1000.0 * ms / n, "us");
        }
        if (threads == 4) {
          double speedup = ms > 0 ? t1_ms / ms : 0;
          JsonReport::Get().Add("engine.chain_speedup_4t", speedup, "x");
          std::cout << "chain family, 4 threads on " << cpus
                    << " cpus: speedup " << Num(speedup)
                    << (cpus >= 4
                            ? (speedup >= 2.0 ? "  [>=2x target: PASS]"
                                              : "  [>=2x target: FAIL]")
                            : "  [>=2x target needs >=4 cpus; skipped]")
                    << "\n";
        }
      }
    }
  }
  table.Print();
  std::cout << "rows bit-identical at 1/2/4/8 threads for every family "
               "(FDR_CHECKed)\n";
}

void ReportBatchServing() {
  // The "millions of users" serving shape: a wide batch of independent
  // (∆, T) jobs, deterministic result order, per-job deadlines.
  const int jobs_n = static_cast<int>(benchreport::SmokeCap(128, 48));
  const int tuples = 2000;
  ParsedFdSet chain = OfficeFds();
  ParsedFdSet marriage = DeltaAKeyBToC();
  std::vector<Table> tables;
  std::vector<RepairJob> jobs;
  tables.reserve(jobs_n);
  for (int j = 0; j < jobs_n; ++j) {
    const ParsedFdSet& parsed = (j % 2 == 0) ? chain : marriage;
    tables.push_back(ScalingFamilyTable(parsed, tuples, 100 + j));
  }
  for (int j = 0; j < jobs_n; ++j) {
    RepairJob job;
    job.fds = (j % 2 == 0) ? chain.fds : marriage.fds;
    job.table = &tables[j];
    jobs.push_back(std::move(job));
  }

  ReportTable table({"threads", "jobs", "time (ms)", "jobs/s", "speedup"});
  double t1_ms = 0;
  std::vector<double> distances;
  for (int threads : {1, 4}) {
    EngineOptions options;
    options.threads = threads;
    RepairEngine engine(options);
    auto start = std::chrono::steady_clock::now();
    std::vector<StatusOr<SRepairResult>> results = engine.RepairBatch(jobs);
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::vector<double> got;
    for (const auto& result : results) {
      FDR_CHECK_MSG(result.ok(), result.status().ToString());
      got.push_back(result->distance);
    }
    if (threads == 1) {
      t1_ms = ms;
      distances = got;
    }
    FDR_CHECK(got == distances);  // deterministic across thread counts
    table.AddRow({Num(threads), Num(jobs_n), Num(ms),
                  Num(1000.0 * jobs_n / ms), Num(t1_ms / ms)});
    JsonReport::Get().Add("engine.batch_t" + std::to_string(threads) + "_ms",
                          ms, "ms");
    if (threads == 4) {
      JsonReport::Get().Add("engine.batch_speedup_4t", ms > 0 ? t1_ms / ms : 0,
                            "x");
    }
  }
  table.Print();

  // Deadline admission: an already-expired job fails fast with
  // kDeadlineExceeded while the rest of the batch is served normally.
  std::vector<RepairJob> with_deadline = jobs;
  with_deadline[0].deadline = std::chrono::milliseconds(0);
  RepairEngine engine(EngineOptions{});
  std::vector<StatusOr<SRepairResult>> results =
      engine.RepairBatch(with_deadline);
  FDR_CHECK(results[0].status().code() == StatusCode::kDeadlineExceeded);
  int served = 0;
  for (size_t j = 1; j < results.size(); ++j) served += results[j].ok();
  std::cout << "deadline demo: job 0 expired ("
            << StatusCodeToString(results[0].status().code()) << "), "
            << served << "/" << results.size() - 1
            << " remaining jobs served\n";
}

void Report() {
  Banner("engine", "Parallel block-sharded repair engine");
  ReportFamilyScaling();
  ReportBatchServing();
}

void BM_OptSRepairChainThreads(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Table table = ScalingFamilyTable(parsed, n, 11);
  TableView view(table);
  ThreadPool pool(threads);
  OptSRepairRowsOptions options;
  options.exec.pool = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    auto rows = OptSRepairRows(parsed.fds, view, options);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OptSRepairChainThreads)
    ->ArgsProduct({{static_cast<long>(benchreport::SmokeCap(65536, 2048))},
                   {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_RepairBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int jobs_n = static_cast<int>(benchreport::SmokeCap(64, 16));
  ParsedFdSet parsed = OfficeFds();
  std::vector<Table> tables;
  std::vector<RepairJob> jobs;
  for (int j = 0; j < jobs_n; ++j) {
    tables.push_back(ScalingFamilyTable(parsed, 1000, 200 + j));
  }
  for (int j = 0; j < jobs_n; ++j) {
    RepairJob job;
    job.fds = parsed.fds;
    job.table = &tables[j];
    jobs.push_back(std::move(job));
  }
  EngineOptions options;
  options.threads = threads;
  RepairEngine engine(options);
  for (auto _ : state) {
    auto results = engine.RepairBatch(jobs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * jobs_n);
}
BENCHMARK(BM_RepairBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
