// E-service: the serving layer's cache economics.
//
// Cold latency (every request misses and runs the planner) vs warm latency
// (every request replays a cached recipe), plus a hit-ratio sweep that
// replays request streams with a configurable repeat probability — the
// serving shape the ROADMAP's "heavy traffic" target implies. Tracked
// metrics: cold/warm us-per-request and the warm-over-cold speedup at a
// 90% repeat ratio (the acceptance floor is 5x), plus the incremental
// delta path: warm dirty-block re-repair vs a full re-plan of the same
// mutated state at a <=1% mutation rate (the acceptance floor is 3x), in
// both repair modes — kept-id recipe splicing for subset repairs
// (`service.delta_speedup`) and cell-edit recipe splicing for update
// repairs (`service.udelta_speedup`, floor 2x).

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/random.h"
#include "report_util.h"
#include "service/repair_service.h"
#include "storage/table_delta.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace {

using namespace fdrepair;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;
using Clock = std::chrono::steady_clock;

int TupleCount() {
  return static_cast<int>(benchreport::SmokeCap(8192, 1024));
}

struct Population {
  ParsedFdSet parsed;
  std::vector<Table> tables;
};

/// `count` distinct office-chain instances (distinct seeds => distinct
/// content hashes).
Population MakePopulation(int count, int tuples) {
  Population population{OfficeFds(), {}};
  population.tables.reserve(count);
  for (int i = 0; i < count; ++i) {
    population.tables.push_back(
        ScalingFamilyTable(population.parsed, tuples, 1000 + i));
  }
  return population;
}

double ServeAll(RepairService* service, const Population& population,
                const std::vector<int>& order, bool bypass_cache) {
  Clock::time_point start = Clock::now();
  for (int index : order) {
    RepairRequest request;
    request.mode = RepairMode::kSubset;
    request.fds = population.parsed.fds;
    request.table = &population.tables[index];
    request.bypass_cache = bypass_cache;
    auto response = service->Serve(request);
    if (!response.ok()) {
      std::cerr << "serve failed: " << response.status() << "\n";
      std::exit(1);
    }
  }
  std::chrono::duration<double, std::micro> elapsed = Clock::now() - start;
  return elapsed.count() / static_cast<double>(order.size());
}

void ReportColdVsWarm() {
  const int tuples = TupleCount();
  const int distinct = 8;
  Population population = MakePopulation(distinct, tuples);
  std::vector<int> order;
  for (int i = 0; i < distinct; ++i) order.push_back(i);

  RepairService service;
  double cold_us =
      ServeAll(&service, population, order, /*bypass_cache=*/false);
  double warm_us =
      ServeAll(&service, population, order, /*bypass_cache=*/false);
  double speedup = warm_us > 0 ? cold_us / warm_us : 0;

  ReportTable table({"phase", "requests", "us/request"});
  table.AddRow({"cold (all miss)", std::to_string(distinct), Num(cold_us)});
  table.AddRow({"warm (all hit)", std::to_string(distinct), Num(warm_us)});
  table.Print();
  std::cout << "  warm-over-cold speedup: " << Num(speedup) << "x\n";

  JsonReport::Get().Add("service.cold_us_per_request", cold_us, "us");
  JsonReport::Get().Add("service.warm_us_per_request", warm_us, "us");
  JsonReport::Get().Add("service.warm_speedup", speedup, "x");
}

void ReportHitRatioSweep() {
  const int tuples = TupleCount();
  const int requests = 200;
  // Worst case (repeat 0) touches `requests` distinct tables.
  Population population = MakePopulation(requests, tuples);

  ReportTable table({"repeat ratio", "requests", "distinct", "us/request",
                     "hit ratio", "vs cold"});
  for (double repeat : {0.0, 0.5, 0.9, 0.99}) {
    // With probability `repeat` a request re-sends an already-seen
    // instance; otherwise it introduces a fresh one.
    Rng rng(static_cast<uint64_t>(repeat * 1000) + 7);
    std::vector<int> stream;
    std::vector<int> seen;
    stream.reserve(requests);
    int next_new = 0;
    for (int r = 0; r < requests; ++r) {
      if (!seen.empty() && rng.UniformDouble() < repeat) {
        stream.push_back(seen[rng.UniformIndex(seen.size())]);
      } else {
        stream.push_back(next_new);
        seen.push_back(next_new);
        ++next_new;
      }
    }
    // Cold reference: the identical stream with the cache bypassed.
    RepairService cold_service;
    double cold_us =
        ServeAll(&cold_service, population, stream, /*bypass_cache=*/true);
    RepairService service;
    double us = ServeAll(&service, population, stream, /*bypass_cache=*/false);
    RepairServiceStats stats = service.stats();
    double hit_ratio = static_cast<double>(stats.hits) /
                       static_cast<double>(stats.hits + stats.misses);
    double speedup = us > 0 ? cold_us / us : 0;
    table.AddRow({Num(repeat), std::to_string(requests),
                  std::to_string(next_new), Num(us), Num(hit_ratio),
                  Num(speedup) + "x"});
    if (repeat == 0.9) {
      JsonReport::Get().Add("service.speedup_repeat90", speedup, "x");
      JsonReport::Get().Add("service.hit_ratio_repeat90", hit_ratio, "");
    }
  }
  table.Print();
}

/// Incremental serving: chained 1%-mutation batches served through
/// ApplyDelta (dirty-block splicing against the cached plan) vs a
/// bypass-cache full re-plan of the identical mutated state. Both sides
/// pay their own identity cost — O(|delta|) chain hash vs O(table)
/// content hash — so the speedup is end-to-end, not planner-only.
void ReportDeltaSpeedup() {
  // Fixed size (no smoke cap): the tracked speedup compares an O(|delta|)
  // path against an O(table) one, so shrinking the table in smoke runs
  // would change the metric's meaning — and a single 8K instance is cheap
  // enough for CI either way.
  const int tuples = 8192;
  const int edits_per_round = std::max(1, tuples / 100);  // 1% mutation
  // Enough rounds to average out scheduler noise on small CI runners; each
  // round is a few ms, so this stays cheap even in smoke mode.
  const int rounds = 16;
  Population population = MakePopulation(1, tuples);
  const Table& base = population.tables[0];
  // Update values draw from the generator's own domain so mutated tables
  // stay structurally similar to cold ones.
  const int domain = std::max(4, tuples / 16);

  RepairService service;
  RepairRequest prime;
  prime.mode = RepairMode::kSubset;
  prime.fds = population.parsed.fds;
  prime.table = &base;
  if (auto response = service.Serve(prime); !response.ok()) {
    std::cerr << "prime failed: " << response.status() << "\n";
    std::exit(1);
  }

  Rng rng(4242);
  DeltaBuilder builder(base);
  double delta_us = 0;
  double full_us = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int e = 0; e < edits_per_round; ++e) {
      const int row =
          static_cast<int>(rng.UniformIndex(builder.table().num_tuples()));
      const TupleId id = builder.table().id(row);
      const AttrId attr = static_cast<AttrId>(
          rng.UniformIndex(builder.table().schema().arity()));
      const std::string text =
          "v" + std::to_string(rng.UniformInt(0, domain - 1));
      if (!builder.Update(id, attr, text).ok()) std::exit(1);
    }
    TableDelta delta = builder.Finish();

    RepairRequest incremental = prime;
    incremental.table = &builder.table();
    incremental.delta = &delta;
    Clock::time_point start = Clock::now();
    auto spliced = service.ApplyDelta(incremental);
    std::chrono::duration<double, std::micro> elapsed = Clock::now() - start;
    if (!spliced.ok()) {
      std::cerr << "delta serve failed: " << spliced.status() << "\n";
      std::exit(1);
    }
    delta_us += elapsed.count();

    RepairRequest cold = prime;
    cold.table = &builder.table();
    cold.bypass_cache = true;
    start = Clock::now();
    auto replanned = service.Serve(cold);
    elapsed = Clock::now() - start;
    if (!replanned.ok()) {
      std::cerr << "cold replan failed: " << replanned.status() << "\n";
      std::exit(1);
    }
    full_us += elapsed.count();
  }
  delta_us /= rounds;
  full_us /= rounds;
  const double speedup = delta_us > 0 ? full_us / delta_us : 0;

  RepairServiceStats stats = service.stats();
  const double splice_ratio =
      stats.delta_requests > 0
          ? static_cast<double>(stats.delta_splices) /
                static_cast<double>(stats.delta_requests)
          : 0;
  const uint64_t blocks =
      stats.delta_blocks_clean + stats.delta_blocks_dirty;
  const double clean_ratio =
      blocks > 0 ? static_cast<double>(stats.delta_blocks_clean) /
                       static_cast<double>(blocks)
                 : 0;

  ReportTable table({"path", "rounds", "us/request"});
  table.AddRow({"delta (splice)", std::to_string(rounds), Num(delta_us)});
  table.AddRow({"full re-plan", std::to_string(rounds), Num(full_us)});
  table.Print();
  std::cout << "  delta-over-full speedup: " << Num(speedup)
            << "x  (splice ratio " << Num(splice_ratio)
            << ", clean-block ratio " << Num(clean_ratio) << ")\n";

  JsonReport::Get().Add("service.delta_us_per_request", delta_us, "us");
  JsonReport::Get().Add("service.delta_full_us_per_request", full_us, "us");
  JsonReport::Get().Add("service.delta_speedup", speedup, "x");
  JsonReport::Get().Add("service.delta_clean_block_ratio", clean_ratio, "");
}

/// The update-mode twin of ReportDeltaSpeedup: chained 1%-mutation batches
/// served through ApplyDelta on kUpdate requests (cell-edit recipe
/// splicing against the cached U-plan) vs a bypass-cache full update
/// re-plan of the identical mutated state. Same fixed size, same
/// both-sides-pay-identity framing.
void ReportUDeltaSpeedup() {
  const int tuples = 8192;
  const int edits_per_round = std::max(1, tuples / 100);  // 1% mutation
  const int rounds = 16;
  Population population = MakePopulation(1, tuples);
  const Table& base = population.tables[0];
  const int domain = std::max(4, tuples / 16);

  RepairService service;
  RepairRequest prime;
  prime.mode = RepairMode::kUpdate;
  prime.fds = population.parsed.fds;
  prime.table = &base;
  if (auto response = service.Serve(prime); !response.ok()) {
    std::cerr << "prime failed: " << response.status() << "\n";
    std::exit(1);
  }

  Rng rng(4242);
  DeltaBuilder builder(base);
  double delta_us = 0;
  double full_us = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int e = 0; e < edits_per_round; ++e) {
      const int row =
          static_cast<int>(rng.UniformIndex(builder.table().num_tuples()));
      const TupleId id = builder.table().id(row);
      const AttrId attr = static_cast<AttrId>(
          rng.UniformIndex(builder.table().schema().arity()));
      const std::string text =
          "v" + std::to_string(rng.UniformInt(0, domain - 1));
      if (!builder.Update(id, attr, text).ok()) std::exit(1);
    }
    TableDelta delta = builder.Finish();

    RepairRequest incremental = prime;
    incremental.table = &builder.table();
    incremental.delta = &delta;
    Clock::time_point start = Clock::now();
    auto spliced = service.ApplyDelta(incremental);
    std::chrono::duration<double, std::micro> elapsed = Clock::now() - start;
    if (!spliced.ok()) {
      std::cerr << "update delta serve failed: " << spliced.status() << "\n";
      std::exit(1);
    }
    delta_us += elapsed.count();

    RepairRequest cold = prime;
    cold.table = &builder.table();
    cold.bypass_cache = true;
    start = Clock::now();
    auto replanned = service.Serve(cold);
    elapsed = Clock::now() - start;
    if (!replanned.ok()) {
      std::cerr << "cold update replan failed: " << replanned.status()
                << "\n";
      std::exit(1);
    }
    full_us += elapsed.count();
  }
  delta_us /= rounds;
  full_us /= rounds;
  const double speedup = delta_us > 0 ? full_us / delta_us : 0;

  RepairServiceStats stats = service.stats();
  const double splice_ratio =
      stats.udelta_requests > 0
          ? static_cast<double>(stats.udelta_splices) /
                static_cast<double>(stats.udelta_requests)
          : 0;
  const uint64_t blocks =
      stats.udelta_blocks_clean + stats.udelta_blocks_dirty;
  const double clean_ratio =
      blocks > 0 ? static_cast<double>(stats.udelta_blocks_clean) /
                       static_cast<double>(blocks)
                 : 0;

  ReportTable table({"path", "rounds", "us/request"});
  table.AddRow({"udelta (splice)", std::to_string(rounds), Num(delta_us)});
  table.AddRow({"full update re-plan", std::to_string(rounds), Num(full_us)});
  table.Print();
  std::cout << "  udelta-over-full speedup: " << Num(speedup)
            << "x  (splice ratio " << Num(splice_ratio)
            << ", clean-block ratio " << Num(clean_ratio) << ")\n";

  JsonReport::Get().Add("service.udelta_us_per_request", delta_us, "us");
  JsonReport::Get().Add("service.udelta_full_us_per_request", full_us, "us");
  JsonReport::Get().Add("service.udelta_speedup", speedup, "x");
  JsonReport::Get().Add("service.udelta_clean_block_ratio", clean_ratio, "");
}

void Report() {
  benchreport::Banner("service", "RepairService cache: cold vs warm");
  ReportColdVsWarm();
  std::cout << "\n";
  ReportHitRatioSweep();
  std::cout << "\n";
  ReportDeltaSpeedup();
  std::cout << "\n";
  ReportUDeltaSpeedup();
}

void BM_ServeCold(benchmark::State& state) {
  Population population = MakePopulation(1, TupleCount());
  RepairService service;
  RepairRequest request;
  request.mode = RepairMode::kSubset;
  request.fds = population.parsed.fds;
  request.table = &population.tables[0];
  request.bypass_cache = true;
  for (auto _ : state) {
    auto response = service.Serve(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeCold)->Unit(benchmark::kMicrosecond);

void BM_ServeWarm(benchmark::State& state) {
  Population population = MakePopulation(1, TupleCount());
  RepairService service;
  RepairRequest request;
  request.mode = RepairMode::kSubset;
  request.fds = population.parsed.fds;
  request.table = &population.tables[0];
  (void)service.Serve(request);  // prime the cache
  for (auto _ : state) {
    auto response = service.Serve(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeWarm)->Unit(benchmark::kMicrosecond);

}  // namespace

FDR_BENCH_MAIN(Report)
