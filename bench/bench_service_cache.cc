// E-service: the serving layer's cache economics.
//
// Cold latency (every request misses and runs the planner) vs warm latency
// (every request replays a cached recipe), plus a hit-ratio sweep that
// replays request streams with a configurable repeat probability — the
// serving shape the ROADMAP's "heavy traffic" target implies. Tracked
// metrics: cold/warm us-per-request and the warm-over-cold speedup at a
// 90% repeat ratio (the acceptance floor is 5x).

#include <chrono>
#include <string>
#include <vector>

#include "common/random.h"
#include "report_util.h"
#include "service/repair_service.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace {

using namespace fdrepair;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;
using Clock = std::chrono::steady_clock;

int TupleCount() {
  return static_cast<int>(benchreport::SmokeCap(8192, 1024));
}

struct Population {
  ParsedFdSet parsed;
  std::vector<Table> tables;
};

/// `count` distinct office-chain instances (distinct seeds => distinct
/// content hashes).
Population MakePopulation(int count, int tuples) {
  Population population{OfficeFds(), {}};
  population.tables.reserve(count);
  for (int i = 0; i < count; ++i) {
    population.tables.push_back(
        ScalingFamilyTable(population.parsed, tuples, 1000 + i));
  }
  return population;
}

double ServeAll(RepairService* service, const Population& population,
                const std::vector<int>& order, bool bypass_cache) {
  Clock::time_point start = Clock::now();
  for (int index : order) {
    RepairRequest request;
    request.mode = RepairMode::kSubset;
    request.fds = population.parsed.fds;
    request.table = &population.tables[index];
    request.bypass_cache = bypass_cache;
    auto response = service->Serve(request);
    if (!response.ok()) {
      std::cerr << "serve failed: " << response.status() << "\n";
      std::exit(1);
    }
  }
  std::chrono::duration<double, std::micro> elapsed = Clock::now() - start;
  return elapsed.count() / static_cast<double>(order.size());
}

void ReportColdVsWarm() {
  const int tuples = TupleCount();
  const int distinct = 8;
  Population population = MakePopulation(distinct, tuples);
  std::vector<int> order;
  for (int i = 0; i < distinct; ++i) order.push_back(i);

  RepairService service;
  double cold_us =
      ServeAll(&service, population, order, /*bypass_cache=*/false);
  double warm_us =
      ServeAll(&service, population, order, /*bypass_cache=*/false);
  double speedup = warm_us > 0 ? cold_us / warm_us : 0;

  ReportTable table({"phase", "requests", "us/request"});
  table.AddRow({"cold (all miss)", std::to_string(distinct), Num(cold_us)});
  table.AddRow({"warm (all hit)", std::to_string(distinct), Num(warm_us)});
  table.Print();
  std::cout << "  warm-over-cold speedup: " << Num(speedup) << "x\n";

  JsonReport::Get().Add("service.cold_us_per_request", cold_us, "us");
  JsonReport::Get().Add("service.warm_us_per_request", warm_us, "us");
  JsonReport::Get().Add("service.warm_speedup", speedup, "x");
}

void ReportHitRatioSweep() {
  const int tuples = TupleCount();
  const int requests = 200;
  // Worst case (repeat 0) touches `requests` distinct tables.
  Population population = MakePopulation(requests, tuples);

  ReportTable table({"repeat ratio", "requests", "distinct", "us/request",
                     "hit ratio", "vs cold"});
  for (double repeat : {0.0, 0.5, 0.9, 0.99}) {
    // With probability `repeat` a request re-sends an already-seen
    // instance; otherwise it introduces a fresh one.
    Rng rng(static_cast<uint64_t>(repeat * 1000) + 7);
    std::vector<int> stream;
    std::vector<int> seen;
    stream.reserve(requests);
    int next_new = 0;
    for (int r = 0; r < requests; ++r) {
      if (!seen.empty() && rng.UniformDouble() < repeat) {
        stream.push_back(seen[rng.UniformIndex(seen.size())]);
      } else {
        stream.push_back(next_new);
        seen.push_back(next_new);
        ++next_new;
      }
    }
    // Cold reference: the identical stream with the cache bypassed.
    RepairService cold_service;
    double cold_us =
        ServeAll(&cold_service, population, stream, /*bypass_cache=*/true);
    RepairService service;
    double us = ServeAll(&service, population, stream, /*bypass_cache=*/false);
    RepairServiceStats stats = service.stats();
    double hit_ratio = static_cast<double>(stats.hits) /
                       static_cast<double>(stats.hits + stats.misses);
    double speedup = us > 0 ? cold_us / us : 0;
    table.AddRow({Num(repeat), std::to_string(requests),
                  std::to_string(next_new), Num(us), Num(hit_ratio),
                  Num(speedup) + "x"});
    if (repeat == 0.9) {
      JsonReport::Get().Add("service.speedup_repeat90", speedup, "x");
      JsonReport::Get().Add("service.hit_ratio_repeat90", hit_ratio, "");
    }
  }
  table.Print();
}

void Report() {
  benchreport::Banner("service", "RepairService cache: cold vs warm");
  ReportColdVsWarm();
  std::cout << "\n";
  ReportHitRatioSweep();
}

void BM_ServeCold(benchmark::State& state) {
  Population population = MakePopulation(1, TupleCount());
  RepairService service;
  RepairRequest request;
  request.mode = RepairMode::kSubset;
  request.fds = population.parsed.fds;
  request.table = &population.tables[0];
  request.bypass_cache = true;
  for (auto _ : state) {
    auto response = service.Serve(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeCold)->Unit(benchmark::kMicrosecond);

void BM_ServeWarm(benchmark::State& state) {
  Population population = MakePopulation(1, TupleCount());
  RepairService service;
  RepairRequest request;
  request.mode = RepairMode::kSubset;
  request.fds = population.parsed.fds;
  request.table = &population.tables[0];
  (void)service.Serve(request);  // prime the cache
  for (auto _ : state) {
    auto response = service.Serve(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeWarm)->Unit(benchmark::kMicrosecond);

}  // namespace

FDR_BENCH_MAIN(Report)
