// Shared helpers for the experiment binaries: each bench prints a
// paper-shaped report (the rows EXPERIMENTS.md records) before running its
// google-benchmark timings, so `for b in build/bench/*; do $b; done`
// regenerates every table and figure in one pass.

#ifndef FDREPAIR_BENCH_REPORT_UTIL_H_
#define FDREPAIR_BENCH_REPORT_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fdrepair::benchreport {

/// A fixed-width text table printer for report rows.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
           << row[c];
      }
      os << "\n";
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += "  " + std::string(widths[c], '-');
    }
    os << rule << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& experiment_id,
                   const std::string& title) {
  std::cout << "\n=== " << experiment_id << ": " << title << " ===\n";
}

/// True when FDR_BENCH_SMOKE is set: CI smoke runs cap instance sizes so
/// every bench binary finishes in seconds instead of minutes.
inline bool SmokeMode() {
  static const bool smoke = std::getenv("FDR_BENCH_SMOKE") != nullptr;
  return smoke;
}

/// Caps a benchmark range endpoint in smoke mode; identity otherwise.
inline int64_t SmokeCap(int64_t full, int64_t smoke_max) {
  return SmokeMode() ? std::min(full, smoke_max) : full;
}

inline std::string Num(double value, int precision = 4) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

/// Runs the report, then google-benchmark, from each bench's main().
#define FDR_BENCH_MAIN(report_fn)                                  \
  int main(int argc, char** argv) {                                \
    report_fn();                                                   \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    return 0;                                                      \
  }

}  // namespace fdrepair::benchreport

#endif  // FDREPAIR_BENCH_REPORT_UTIL_H_
