// Shared helpers for the experiment binaries: each bench prints a
// paper-shaped report (the rows EXPERIMENTS.md records) before running its
// google-benchmark timings, so `for b in build/bench/*; do $b; done`
// regenerates every table and figure in one pass.

#ifndef FDREPAIR_BENCH_REPORT_UTIL_H_
#define FDREPAIR_BENCH_REPORT_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fdrepair::benchreport {

/// A fixed-width text table printer for report rows.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
           << row[c];
      }
      os << "\n";
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += "  " + std::string(widths[c], '-');
    }
    os << rule << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable metrics for the CI benchmark-regression gate.
///
/// Report sections call Add(...) for every tracked number; when the binary
/// runs with `--json[=path]` (or FDR_BENCH_JSON is set in the environment)
/// the collected metrics are written as BENCH_<experiment>.json — the file
/// bench/check_regression.py compares against bench/baselines.json.
class JsonReport {
 public:
  static JsonReport& Get() {
    static JsonReport report;
    return report;
  }

  /// Called by Banner: the first experiment id names the output file.
  void SetExperimentId(const std::string& id) {
    if (experiment_id_.empty()) experiment_id_ = id;
  }

  /// Strips `--json` / `--json=path` from argv (so google-benchmark never
  /// sees it) and enables JSON output. FDR_BENCH_JSON=1 also enables it.
  void ParseArgs(int* argc, char** argv) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        enabled_ = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        enabled_ = true;
        path_ = argv[i] + 7;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
    // Value-sensitive: FDR_BENCH_JSON=0 (or empty) must NOT enable it.
    const char* env = std::getenv("FDR_BENCH_JSON");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      enabled_ = true;
    }
  }

  /// Records one tracked metric. Names should be stable across runs —
  /// bench/baselines.json refers to them.
  void Add(const std::string& name, double value, const std::string& unit) {
    entries_.push_back(Entry{name, value, unit});
  }

  /// Writes BENCH_<experiment>.json (or the --json=path override) into the
  /// current directory. No-op unless enabled.
  void Write() const {
    if (!enabled_) return;
    std::string id = experiment_id_.empty() ? "report" : experiment_id_;
    std::string path = path_.empty() ? "BENCH_" + id + ".json" : path_;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "JsonReport: cannot write " << path << "\n";
      return;
    }
    os << "{\n  \"experiment\": \"" << id << "\",\n"
       << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"smoke\": " << (std::getenv("FDR_BENCH_SMOKE") ? "true" : "false")
       << ",\n  \"metrics\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      os << "    {\"name\": \"" << entries_[i].name << "\", \"value\": "
         << std::setprecision(17) << entries_[i].value << ", \"unit\": \""
         << entries_[i].unit << "\"}" << (i + 1 < entries_.size() ? "," : "")
         << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "JSON metrics written to " << path << "\n";
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  bool enabled_ = false;
  std::string experiment_id_;
  std::string path_;
  std::vector<Entry> entries_;
};

inline void Banner(const std::string& experiment_id,
                   const std::string& title) {
  JsonReport::Get().SetExperimentId(experiment_id);
  std::cout << "\n=== " << experiment_id << ": " << title << " ===\n";
}

/// True when FDR_BENCH_SMOKE is set: CI smoke runs cap instance sizes so
/// every bench binary finishes in seconds instead of minutes.
inline bool SmokeMode() {
  static const bool smoke = std::getenv("FDR_BENCH_SMOKE") != nullptr;
  return smoke;
}

/// Caps a benchmark range endpoint in smoke mode; identity otherwise.
inline int64_t SmokeCap(int64_t full, int64_t smoke_max) {
  return SmokeMode() ? std::min(full, smoke_max) : full;
}

inline std::string Num(double value, int precision = 4) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

/// Runs the report, then google-benchmark, from each bench's main().
/// `--json[=path]` (stripped before google-benchmark sees the args) makes
/// the report's tracked metrics land in BENCH_<experiment>.json.
#define FDR_BENCH_MAIN(report_fn)                                       \
  int main(int argc, char** argv) {                                     \
    ::fdrepair::benchreport::JsonReport::Get().ParseArgs(&argc, argv);  \
    report_fn();                                                        \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {         \
      return 1;                                                         \
    }                                                                   \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    ::fdrepair::benchreport::JsonReport::Get().Write();                 \
    return 0;                                                           \
  }

}  // namespace fdrepair::benchreport

#endif  // FDREPAIR_BENCH_REPORT_UTIL_H_
