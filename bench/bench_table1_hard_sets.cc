// E2 — Table 1: the four APX-hard FD sets. Reproduces the hardness
// footprint: (a) the gadget equivalences the reductions prove (optimal
// S-repair size = MAX-SAT optimum / triangle-packing optimum), (b) the
// exact solver's exponential blowup vs the polynomial 2-approximation, and
// (c) measured approximation ratios <= 2.

#include "report_util.h"
#include "common/random.h"
#include "srepair/srepair_exact.h"
#include "srepair/srepair_vc_approx.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/graph_gen.h"
#include "workloads/sat_gen.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

void Report() {
  Banner("E2", "Table 1 — the four APX-hard gadget FD sets");

  // (a) Gadget equivalences.
  {
    ReportTable table({"gadget", "instance", "combinatorial optimum",
                       "optimal S-repair size", "match"});
    Rng rng(20180611);
    for (int trial = 0; trial < 4; ++trial) {
      NonMixedFormula formula = RandomNonMixedFormula(5, 6, 2, &rng);
      Table gadget = NonMixedSatGadgetTable(formula);
      auto repair = OptSRepairExact(NonMixedSatGadgetFds().fds, gadget, 64);
      auto max_sat = MaxSatisfiableClausesExact(formula);
      FDR_CHECK(repair.ok() && max_sat.ok());
      table.AddRow({"AB->C->B (Lemma A.13)",
                    "non-mixed SAT, 5 vars, 6 clauses", Num(*max_sat),
                    Num(repair->num_tuples()),
                    repair->num_tuples() == *max_sat ? "yes" : "NO"});
    }
    for (int trial = 0; trial < 4; ++trial) {
      NodeWeightedGraph graph = RandomTripartiteGraph(4, 0.4, &rng);
      std::vector<Triangle> triangles = EnumerateTriangles(graph, 4);
      if (triangles.empty() || triangles.size() > 18) continue;
      Table gadget = TrianglePackingGadgetTable(triangles);
      auto repair =
          OptSRepairExact(TrianglePackingGadgetFds().fds, gadget, 64);
      auto packing = MaxEdgeDisjointTrianglesExact(graph, triangles, 4);
      FDR_CHECK(repair.ok() && packing.ok());
      table.AddRow({"AB<->AC<->BC (Lemma A.11)",
                    "tripartite graph, " + std::to_string(triangles.size()) +
                        " triangles",
                    Num(*packing), Num(repair->num_tuples()),
                    repair->num_tuples() == *packing ? "yes" : "NO"});
    }
    table.Print();
  }

  // (b, c) Exact-vs-approx ratios on random dirty tables.
  {
    ReportTable table({"FD set", "n", "exact dist", "2-approx dist", "ratio",
                       "<= 2"});
    Rng rng(7);
    for (const ParsedFdSet& parsed :
         {DeltaAtoBtoC(), DeltaAtoCfromB(), DeltaABtoCtoB(),
          DeltaTriangle()}) {
      double worst = 1.0;
      for (int n : {10, 14, 18}) {
        RandomTableOptions options;
        options.num_tuples = n;
        options.domain_size = 3;
        Rng table_rng = rng.Fork();
        Table t = RandomTable(parsed.schema, options, &table_rng);
        auto exact = OptSRepairExact(parsed.fds, t, 64);
        FDR_CHECK(exact.ok());
        double exact_distance = DistSubOrDie(*exact, t);
        double approx_distance =
            DistSubOrDie(SRepairVcApprox(parsed.fds, t), t);
        double ratio = exact_distance == 0
                           ? 1.0
                           : approx_distance / exact_distance;
        worst = std::max(worst, ratio);
        table.AddRow({parsed.fds.ToString(parsed.schema), Num(n),
                      Num(exact_distance), Num(approx_distance), Num(ratio),
                      ratio <= 2.0 + 1e-9 ? "yes" : "NO"});
      }
    }
    table.Print();
    std::cout << "(exact solver is exponential in the conflicted-tuple "
                 "count; timings below chart the blowup)\n";
  }
}

const ParsedFdSet& HardSet(int index) {
  static const ParsedFdSet sets[4] = {DeltaAtoBtoC(), DeltaAtoCfromB(),
                                      DeltaABtoCtoB(), DeltaTriangle()};
  return sets[index];
}

// Exponential baseline: exact branch and bound, small n only.
void BM_Table1ExactBnB(benchmark::State& state) {
  const ParsedFdSet& parsed = HardSet(static_cast<int>(state.range(0)));
  int n = static_cast<int>(state.range(1));
  Rng rng(1000 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = 3;
  Table table = RandomTable(parsed.schema, options, &rng);
  for (auto _ : state) {
    auto result = OptSRepairExactRows(parsed.fds, TableView(table), 64);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(parsed.fds.ToString(parsed.schema));
}
BENCHMARK(BM_Table1ExactBnB)
    ->ArgsProduct({{0, 1, 2, 3}, {8, 12, 16, 20, 24}})
    ->Unit(benchmark::kMicrosecond);

// Polynomial 2-approximation at scale.
void BM_Table1VcApprox(benchmark::State& state) {
  const ParsedFdSet& parsed = HardSet(static_cast<int>(state.range(0)));
  int n = static_cast<int>(state.range(1));
  Rng rng(2000 + n);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(3, n / 32);
  Table table = RandomTable(parsed.schema, options, &rng);
  for (auto _ : state) {
    auto rows = SRepairVcApproxRows(parsed.fds, TableView(table));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(parsed.fds.ToString(parsed.schema));
}
BENCHMARK(BM_Table1VcApprox)
    ->ArgsProduct({{0, 1, 2, 3}, {256, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
