// E7 — Theorem 3.10 / §3.4: Most Probable Database via the log-odds
// reduction to optimal S-repairing. Report: agreement with brute force on
// random probabilistic tables, and the Comment 3.11 case ∆A↔B→C solved
// exactly in polynomial time.

#include <cmath>

#include "report_util.h"
#include "common/random.h"
#include "mpd/mpd.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

Table RandomProbTable(const Schema& schema, int n, Rng* rng) {
  Table table(schema);
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> values;
    for (int a = 0; a < schema.arity(); ++a) {
      values.push_back("v" + std::to_string(rng->UniformUint64(3)));
    }
    double p;
    switch (rng->UniformUint64(5)) {
      case 0:
        p = 1.0;
        break;
      case 1:
        p = rng->UniformDouble(0.05, 0.5);
        break;
      default:
        p = rng->UniformDouble(0.55, 0.99);
    }
    table.AddTuple(values, p);
  }
  return table;
}

void Report() {
  Banner("E7", "Theorem 3.10 — Most Probable Database via S-repairs");
  ReportTable table({"FD set", "trials", "agreements", "max |Δ log P|"});
  Rng rng(310);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    if (named.parsed.schema.arity() > 5) continue;
    int trials = 0;
    int agreements = 0;
    double max_gap = 0;
    for (int trial = 0; trial < 8; ++trial) {
      Rng table_rng = rng.Fork();
      Table t = RandomProbTable(named.parsed.schema, 9, &table_rng);
      auto fast = MostProbableDatabase(named.parsed.fds, t);
      auto slow = MostProbableDatabaseBruteForce(named.parsed.fds, t);
      if (!fast.ok() || !slow.ok()) continue;
      ++trials;
      double gap;
      if (std::isinf(fast->log_probability) ||
          std::isinf(slow->log_probability)) {
        gap = (std::isinf(fast->log_probability) ==
               std::isinf(slow->log_probability))
                  ? 0
                  : 1;
      } else {
        gap = std::abs(fast->log_probability - slow->log_probability);
      }
      max_gap = std::max(max_gap, gap);
      if (gap < 1e-9) ++agreements;
    }
    if (trials == 0) continue;
    table.AddRow({named.name, Num(trials), Num(agreements), Num(max_gap)});
  }
  table.Print();
  std::cout << "(MPD = brute-force most probable database on every trial "
               "iff agreements == trials)\n";

  // Comment 3.11: ∆A↔B→C is tractable for MPD in our dichotomy.
  ParsedFdSet parsed = DeltaAKeyBToC();
  Rng big_rng(311);
  Table t(parsed.schema);
  for (int i = 0; i < 2000; ++i) {
    t.AddTuple({"a" + std::to_string(big_rng.UniformUint64(50)),
                "b" + std::to_string(big_rng.UniformUint64(50)),
                "c" + std::to_string(big_rng.UniformUint64(4))},
               big_rng.UniformDouble(0.55, 0.99));
  }
  MpdOptions options;
  options.strategy = SRepairStrategy::kExactOnly;  // poly route only
  auto result = MostProbableDatabase(parsed.fds, t, options);
  FDR_CHECK(result.ok());
  std::cout << "Comment 3.11: MPD for ∆A<->B->C on n = 2000 solved exactly "
               "via OptSRepair; kept "
            << result->database.num_tuples() << " tuples, log P = "
            << Num(result->log_probability) << "\n";
}

void BM_MpdTractable(benchmark::State& state) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  int n = static_cast<int>(state.range(0));
  Rng rng(99 + n);
  Table table(parsed.schema);
  for (int i = 0; i < n; ++i) {
    table.AddTuple({"a" + std::to_string(rng.UniformUint64(n / 8 + 2)),
                    "b" + std::to_string(rng.UniformUint64(n / 8 + 2)),
                    "c" + std::to_string(rng.UniformUint64(4))},
                   rng.UniformDouble(0.55, 0.99));
  }
  MpdOptions options;
  options.strategy = SRepairStrategy::kExactOnly;
  for (auto _ : state) {
    auto result = MostProbableDatabase(parsed.fds, table, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MpdTractable)->RangeMultiplier(4)->Range(256, benchreport::SmokeCap(16384, 1024))
    ->Unit(benchmark::kMillisecond);

void BM_MpdBruteForce(benchmark::State& state) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  int n = static_cast<int>(state.range(0));
  Rng rng(17);
  Table table = RandomProbTable(parsed.schema, n, &rng);
  for (auto _ : state) {
    auto result = MostProbableDatabaseBruteForce(parsed.fds, table);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MpdBruteForce)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
