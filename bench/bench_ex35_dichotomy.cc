// E3 — Example 3.5 / Algorithm 2: prints the exact simplification chains of
// the paper's worked examples and the dichotomy verdict for every named FD
// set, then times OSRSucceeds to exhibit its polynomial dependence on |∆|.

#include "report_util.h"
#include "common/random.h"
#include "srepair/planner.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::ReportTable;

void Report() {
  Banner("E3", "Example 3.5 simplification chains + dichotomy verdicts");

  for (const auto& [label, parsed] :
       {std::pair<std::string, ParsedFdSet>{"running example", OfficeFds()},
        {"∆A<->B->C (eq. 1)", DeltaAKeyBToC()},
        {"∆1 of Example 3.1", Example31Ssn()},
        {"{A->B, B->C}", DeltaAtoBtoC()}}) {
    std::cout << "\n-- " << label << " --\n"
              << RunOsrSucceeds(parsed.fds).ToString(parsed.schema) << "\n";
  }

  std::cout << "\n";
  ReportTable table({"FD set", "∆", "paper verdict", "OSRSucceeds",
                     "hard class"});
  // The paper's stated classification for each named set.
  const std::vector<std::pair<std::string, bool>> expectations = {
      {"office", true},        {"A<->B->C", true},
      {"ssn(Ex3.1)", true},    {"A->B->C", false},
      {"A->C<-B", false},      {"AB->C->B", false},
      {"AB<->AC<->BC", false}, {"A->B,C->D", false},
      {"purchase(∆0)", false}, {"email(∆3)", false},
      {"buyer(∆4)", true},     {"passport(Ex4.7)", true},
      {"zip(Ex4.7)", false}};
  int mismatches = 0;
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SRepairVerdict verdict = ClassifySRepair(named.parsed.fds);
    std::string paper = "—";
    for (const auto& [name, poly] : expectations) {
      if (name == named.name) {
        paper = poly ? "polynomial" : "APX-complete";
        if (poly != verdict.polynomial) ++mismatches;
      }
    }
    table.AddRow({named.name, named.parsed.fds.ToString(named.parsed.schema),
                  paper, verdict.polynomial ? "true" : "false",
                  verdict.hard_class
                      ? "class " + std::to_string(verdict.hard_class->fd_class)
                      : "—"});
  }
  table.Print();
  std::cout << (mismatches == 0 ? "all paper verdicts reproduced\n"
                                : "MISMATCHES: " + std::to_string(mismatches) +
                                      "\n");
}

// A random FD set over k attributes with m FDs (lhs width <= 3).
FdSet RandomFdSet(int k, int m, Rng* rng) {
  std::vector<Fd> fds;
  for (int f = 0; f < m; ++f) {
    AttrSet lhs;
    int width = 1 + static_cast<int>(rng->UniformUint64(3));
    for (int w = 0; w < width; ++w) {
      lhs = lhs.With(static_cast<AttrId>(rng->UniformUint64(k)));
    }
    fds.emplace_back(lhs, static_cast<AttrId>(rng->UniformUint64(k)));
  }
  return FdSet::FromFds(fds);
}

void BM_OsrSucceeds(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  int m = static_cast<int>(state.range(1));
  Rng rng(99);
  std::vector<FdSet> sets;
  for (int i = 0; i < 32; ++i) sets.push_back(RandomFdSet(k, m, &rng));
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(OsrSucceeds(sets[cursor++ % sets.size()]));
  }
}
BENCHMARK(BM_OsrSucceeds)
    ->ArgsProduct({{8, 16, 32, 64}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);

void BM_ClassifyHardClass(benchmark::State& state) {
  // Full planner classification including the Figure-2 class.
  ParsedFdSet parsed = Example38Class(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifySRepair(parsed.fds));
  }
}
BENCHMARK(BM_ClassifyHardClass)->DenseRange(1, 5);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
