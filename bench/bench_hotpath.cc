// E13 — Zero-allocation recursion core. The span-based OptSRepair hot path
// (shared row-index buffer + in-place grouping over interned ValueIds +
// per-∆ simplification-chain caching + per-thread scratch arenas) against
// a faithful reimplementation of the pre-span recursion (one materialized
// std::vector<int> per block per level, one heap-allocated ProjectionKey
// per row per level, NextSimplification per node). Single-threaded, since
// the parallel engine multiplies whatever the single-thread core gives it.
// Target: >=2x on deep-recursion instances (>=10k tuples, >=4
// simplification levels); results FDR_CHECKed bit-identical.

#include <chrono>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "report_util.h"
#include "catalog/fd_parser.h"
#include "common/simd.h"
#include "engine/block_partitioner.h"
#include "graph/bipartite_matching.h"
#include "srepair/opt_srepair.h"
#include "srepair/osr_succeeds.h"
#include "srepair/simplification.h"
#include "storage/consistency.h"
#include "storage/row_span.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::JsonReport;
using benchreport::Num;
using benchreport::ReportTable;

// --- The pre-span recursion, preserved here as the comparison baseline.

Status LegacyRecurse(const FdSet& fds, const TableView& view,
                     std::vector<int>* kept, double* kept_weight) {
  if (view.empty()) return Status::OK();
  SimplificationStep step = NextSimplification(fds);
  switch (step.kind) {
    case SimplificationKind::kTrivialTermination: {
      for (int i = 0; i < view.num_tuples(); ++i) {
        kept->push_back(view.row(i));
        *kept_weight += view.weight(i);
      }
      return Status::OK();
    }
    case SimplificationKind::kCommonLhs: {
      for (const TableView& block : view.GroupBy(step.removed)) {
        std::vector<int> rows;
        double weight = 0;
        FDR_RETURN_IF_ERROR(LegacyRecurse(step.after, block, &rows, &weight));
        kept->insert(kept->end(), rows.begin(), rows.end());
        *kept_weight += weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kConsensus: {
      std::vector<std::vector<int>> rows;
      std::vector<double> weights;
      for (const TableView& block : view.GroupBy(step.removed)) {
        std::vector<int> block_rows;
        double weight = 0;
        FDR_RETURN_IF_ERROR(
            LegacyRecurse(step.after, block, &block_rows, &weight));
        rows.push_back(std::move(block_rows));
        weights.push_back(weight);
      }
      int best = -1;
      for (size_t b = 0; b < rows.size(); ++b) {
        if (best < 0 || weights[b] > weights[best]) best = static_cast<int>(b);
      }
      if (best >= 0 && weights[best] > 0) {
        kept->insert(kept->end(), rows[best].begin(), rows[best].end());
        *kept_weight += weights[best];
      }
      return Status::OK();
    }
    case SimplificationKind::kLhsMarriage: {
      BlockPartition partition =
          PartitionForMarriage(view, step.marriage_x1, step.marriage_x2);
      std::vector<std::vector<int>> rows(partition.blocks.size());
      std::vector<BipartiteEdge> edges;
      std::unordered_map<uint64_t, int> block_of;
      for (size_t b = 0; b < partition.blocks.size(); ++b) {
        double weight = 0;
        FDR_RETURN_IF_ERROR(LegacyRecurse(
            step.after, partition.blocks[b].view, &rows[b], &weight));
        edges.push_back(BipartiteEdge{partition.blocks[b].left,
                                      partition.blocks[b].right, weight});
        const uint64_t key =
            (static_cast<uint64_t>(
                 static_cast<uint32_t>(partition.blocks[b].left))
             << 32) |
            static_cast<uint32_t>(partition.blocks[b].right);
        block_of[key] = static_cast<int>(b);
      }
      MatchingResult matching = MaxWeightBipartiteMatching(
          partition.num_left, partition.num_right, edges);
      for (const auto& [left, right] : matching.pairs) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(left)) << 32) |
            static_cast<uint32_t>(right);
        const int b = block_of.at(key);
        kept->insert(kept->end(), rows[b].begin(), rows[b].end());
        *kept_weight += edges[b].weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kStuck:
      return Status::FailedPrecondition("legacy: stuck");
  }
  return Status::Internal("unreachable");
}

StatusOr<std::vector<int>> LegacyOptSRepairRows(const FdSet& fds,
                                                const TableView& view) {
  if (!OsrSucceeds(fds)) return Status::FailedPrecondition("legacy: hard");
  std::vector<int> kept;
  double kept_weight = 0;
  FDR_RETURN_IF_ERROR(LegacyRecurse(fds, view, &kept, &kept_weight));
  std::sort(kept.begin(), kept.end());
  return kept;
}

// --- Workloads.

/// A deep simplification chain over `k` attributes: A0 → A1, A0A1 → A2, …
/// The chain alternates one common-lhs step with k−2 consensus steps —
/// 2(k−1) simplification levels, each re-grouping every surviving tuple.
ParsedFdSet DeepChainFds(int k) {
  std::string spec;
  std::string lhs;
  for (int a = 1; a < k; ++a) {
    if (a > 1) spec += "; ";
    lhs += (a == 1 ? "" : " ");
    lhs += "A" + std::to_string(a - 1);
    spec += lhs + " -> A" + std::to_string(a);
  }
  return ParseFdSetInferSchemaOrDie(spec);
}

double TimeRowsMs(const std::function<StatusOr<std::vector<int>>()>& run,
                  std::vector<int>* rows) {
  // Best of three: min-of-N is the most stable estimator on noisy runners
  // (same protocol as bench_engine_parallel).
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto result = run();
    auto stop = std::chrono::steady_clock::now();
    FDR_CHECK_MSG(result.ok(), result.status().ToString());
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) {
      best = ms;
      *rows = *std::move(result);
    }
  }
  return best;
}

void Report() {
  Banner("hotpath", "Zero-allocation span recursion vs legacy hot path");
  ReportTable table({"workload", "n", "chain", "legacy (ms)", "span (ms)",
                     "speedup"});
  struct Workload {
    std::string label;
    std::string metric;  // JSON metric prefix
    ParsedFdSet parsed;
    int full_n;
    int smoke_n;
  };
  // Deep chain: a 10-step simplification chain (9 attributes: one common
  // lhs, eight consensus steps, termination), re-grouping every surviving
  // tuple at each level; >=10k tuples even in smoke mode, per the
  // acceptance bar for this experiment.
  std::vector<Workload> workloads;
  workloads.push_back(
      {"deep chain (9 attrs)", "deep", DeepChainFds(9), 131072, 16384});
  workloads.push_back(
      {"office chain", "office", OfficeFds(), 262144, 32768});
  workloads.push_back(
      {"marriage (ssn)", "marriage", Example31Ssn(), 65536, 12288});
  for (const Workload& workload : workloads) {
    const int n = static_cast<int>(
        benchreport::SmokeCap(workload.full_n, workload.smoke_n));
    Table t = ScalingFamilyTable(workload.parsed, n, 5 + n);
    TableView view(t);
    const int chain_length =
        SimplificationChain::Compute(workload.parsed.fds).length();

    std::vector<int> legacy_rows;
    double legacy_ms = TimeRowsMs(
        [&] { return LegacyOptSRepairRows(workload.parsed.fds, view); },
        &legacy_rows);
    std::vector<int> span_rows;
    double span_ms = TimeRowsMs(
        [&] { return OptSRepairRows(workload.parsed.fds, view); }, &span_rows);

    // The acceptance bar: same rows, bit for bit, and a consistent repair.
    FDR_CHECK(span_rows == legacy_rows);
    FDR_CHECK(Satisfies(t.SubsetByRows(span_rows), workload.parsed.fds));

    const double speedup = span_ms > 0 ? legacy_ms / span_ms : 0;
    table.AddRow({workload.label, Num(n), Num(chain_length), Num(legacy_ms),
                  Num(span_ms), Num(speedup)});
    JsonReport::Get().Add("hotpath." + workload.metric + "_legacy_us_per_tuple",
                          1000.0 * legacy_ms / n, "us");
    JsonReport::Get().Add("hotpath." + workload.metric + "_span_us_per_tuple",
                          1000.0 * span_ms / n, "us");
    JsonReport::Get().Add("hotpath." + workload.metric + "_speedup_vs_legacy",
                          speedup, "x");
  }
  table.Print();
  std::cout << "span rows bit-identical to the legacy recursion on every "
               "workload (FDR_CHECKed)\n";

  // --- Columnar + SIMD grouping vs the PR 4 row-major scalar path.
  //
  // Same span recursion both times; only the grouping core differs:
  // row-major scalar (the pre-columnar tuple[attr] loops, SIMD pinned off)
  // vs the columnar layout with automatic SIMD dispatch. Grouping-bound
  // workloads only — marriage instances are matching-bound, so the
  // grouping layout barely moves them. Acceptance bar: >= 1.3x on the deep
  // chain / office family, outputs FDR_CHECKed bit-identical.
  Banner("hotpath.columnar",
         "Columnar+SIMD grouping vs row-major scalar (span recursion)");
  std::cout << "active SIMD dispatch: "
            << simd::SimdModeName(simd::ActiveSimdMode()) << "\n";
  ReportTable columnar_table({"workload", "n", "row-major (ms)",
                              "columnar+simd (ms)", "speedup"});
  struct LayoutWorkload {
    std::string label;
    std::string metric;
    ParsedFdSet parsed;
    int full_n;
    int smoke_n;
    int domain_divisor;
  };
  // domain_divisor 512 keeps σ-blocks ~hundreds of rows at every level
  // (domain n/512 instead of the default n/16, whose blocks collapse to
  // singletons after one level and leave per-block recursion overhead —
  // not grouping — as the bottleneck). These are the instances where
  // grouping dominates, which is exactly what the columnar layout targets.
  std::vector<LayoutWorkload> layout_workloads;
  layout_workloads.push_back({"deep chain (grouping-bound)", "deep",
                              DeepChainFds(9), 131072, 16384, 512});
  layout_workloads.push_back(
      {"office chain (grouping-bound)", "office", OfficeFds(), 262144, 32768,
       512});
  for (const LayoutWorkload& workload : layout_workloads) {
    const int n = static_cast<int>(
        benchreport::SmokeCap(workload.full_n, workload.smoke_n));
    Table t = ScalingFamilyTable(workload.parsed, n, 5 + n,
                                 workload.domain_divisor);
    TableView view(t);

    SetGroupingLayout(GroupingLayout::kRowMajor);
    simd::ForceSimdMode(simd::SimdMode::kScalar);
    std::vector<int> row_major_rows;
    double row_major_ms = TimeRowsMs(
        [&] { return OptSRepairRows(workload.parsed.fds, view); },
        &row_major_rows);

    SetGroupingLayout(GroupingLayout::kColumnar);
    simd::ClearForcedSimdMode();
    std::vector<int> columnar_rows;
    double columnar_ms = TimeRowsMs(
        [&] { return OptSRepairRows(workload.parsed.fds, view); },
        &columnar_rows);

    FDR_CHECK(columnar_rows == row_major_rows);
    FDR_CHECK(Satisfies(t.SubsetByRows(columnar_rows), workload.parsed.fds));

    const double speedup = columnar_ms > 0 ? row_major_ms / columnar_ms : 0;
    columnar_table.AddRow({workload.label, Num(n), Num(row_major_ms),
                           Num(columnar_ms), Num(speedup)});
    JsonReport::Get().Add(
        "hotpath." + workload.metric + "_columnar_us_per_tuple",
        1000.0 * columnar_ms / n, "us");
    JsonReport::Get().Add(
        "hotpath." + workload.metric + "_columnar_speedup_vs_rowmajor",
        speedup, "x");
  }
  columnar_table.Print();
  std::cout << "columnar+SIMD rows bit-identical to the row-major scalar "
               "path on every workload (FDR_CHECKed)\n";
}

void BM_SpanRecursionDeepChain(benchmark::State& state) {
  ParsedFdSet parsed = DeepChainFds(9);
  const int n = static_cast<int>(state.range(0));
  Table table = ScalingFamilyTable(parsed, n, 5 + n);
  TableView view(table);
  for (auto _ : state) {
    auto rows = OptSRepairRows(parsed.fds, view);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpanRecursionDeepChain)
    ->Arg(benchreport::SmokeCap(131072, 16384))
    ->Unit(benchmark::kMillisecond);

void BM_LegacyRecursionDeepChain(benchmark::State& state) {
  ParsedFdSet parsed = DeepChainFds(9);
  const int n = static_cast<int>(state.range(0));
  Table table = ScalingFamilyTable(parsed, n, 5 + n);
  TableView view(table);
  for (auto _ : state) {
    auto rows = LegacyOptSRepairRows(parsed.fds, view);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyRecursionDeepChain)
    ->Arg(benchreport::SmokeCap(131072, 16384))
    ->Unit(benchmark::kMillisecond);

void BM_SpanRecursionMarriage(benchmark::State& state) {
  ParsedFdSet parsed = Example31Ssn();
  const int n = static_cast<int>(state.range(0));
  Table table = ScalingFamilyTable(parsed, n, 5 + n);
  TableView view(table);
  for (auto _ : state) {
    auto rows = OptSRepairRows(parsed.fds, view);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpanRecursionMarriage)
    ->Arg(benchreport::SmokeCap(65536, 12288))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
