#!/usr/bin/env python3
"""Perf-trend history accumulator for the CI bench-regression job.

Each CI run produces BENCH_*.json reports (see report_util.h). This script
appends them to a history directory that the workflow persists across runs
(actions/cache) and publishes as a downloadable artifact, so a perf trend
is one artifact download away instead of N separate per-run artifacts:

    perf-trend/
      history.jsonl        one line per run: {"sha", "when", "metrics": {...}}
      runs/<sha>/          that run's raw BENCH_*.json files

Appending is idempotent per sha (a re-run of the same commit replaces its
entry), and the history is pruned to the newest --keep runs so the cache
stays bounded. Stdlib only; `--self-test` runs the script's own checks and
is exercised by CI before the history is trusted.
"""

import argparse
import datetime
import json
import os
import shutil
import sys
import tempfile


def load_history(path):
    entries = []
    if os.path.exists(path):
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    return entries


def collect_metrics(reports_dir):
    """Flattens every BENCH_*.json in reports_dir into one {name: value}."""
    metrics = {}
    files = []
    for fname in sorted(os.listdir(reports_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        files.append(fname)
        with open(os.path.join(reports_dir, fname)) as f:
            report = json.load(f)
        for metric in report.get("metrics", []):
            metrics[metric["name"]] = metric["value"]
    return metrics, files


def append_run(history_dir, reports_dir, sha, when=None, keep=200):
    """Records one run; returns the number of runs now in the history."""
    metrics, files = collect_metrics(reports_dir)
    if not files:
        raise SystemExit("no BENCH_*.json files in %s" % reports_dir)
    os.makedirs(history_dir, exist_ok=True)
    run_dir = os.path.join(history_dir, "runs", sha)
    if os.path.exists(run_dir):
        shutil.rmtree(run_dir)  # same-sha re-run replaces its snapshot
    os.makedirs(run_dir)
    for fname in files:
        shutil.copy(os.path.join(reports_dir, fname), run_dir)

    history_path = os.path.join(history_dir, "history.jsonl")
    entries = [e for e in load_history(history_path) if e.get("sha") != sha]
    entries.append({
        "sha": sha,
        "when": when or datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "metrics": metrics,
    })
    entries = entries[-keep:]
    kept_shas = {e["sha"] for e in entries}
    runs_root = os.path.join(history_dir, "runs")
    for stale in os.listdir(runs_root):
        if stale not in kept_shas:
            shutil.rmtree(os.path.join(runs_root, stale))
    with open(history_path, "w") as f:
        for entry in entries:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
    return len(entries)


def self_test():
    def write_report(directory, name, metrics):
        with open(os.path.join(directory, name), "w") as f:
            json.dump({"experiment": "t", "smoke": True,
                       "metrics": [{"name": k, "value": v, "unit": ""}
                                   for k, v in metrics.items()]}, f)

    checks = 0
    with tempfile.TemporaryDirectory() as tmp:
        reports = os.path.join(tmp, "reports")
        history = os.path.join(tmp, "perf-trend")
        os.makedirs(reports)

        # Appends accumulate distinct shas; metrics are flattened per run.
        write_report(reports, "BENCH_a.json", {"m.x": 1.0})
        write_report(reports, "BENCH_b.json", {"m.y": 2.0})
        assert append_run(history, reports, "sha1", when="t1") == 1
        write_report(reports, "BENCH_a.json", {"m.x": 1.5})
        assert append_run(history, reports, "sha2", when="t2") == 2
        entries = load_history(os.path.join(history, "history.jsonl"))
        assert [e["sha"] for e in entries] == ["sha1", "sha2"], entries
        assert entries[0]["metrics"] == {"m.x": 1.0, "m.y": 2.0}, entries
        assert entries[1]["metrics"]["m.x"] == 1.5, entries
        assert os.path.exists(
            os.path.join(history, "runs", "sha1", "BENCH_a.json"))
        checks += 1

        # Same-sha re-run replaces, never duplicates.
        write_report(reports, "BENCH_a.json", {"m.x": 9.0})
        assert append_run(history, reports, "sha2", when="t3") == 2
        entries = load_history(os.path.join(history, "history.jsonl"))
        assert [e["sha"] for e in entries] == ["sha1", "sha2"], entries
        assert entries[1]["metrics"]["m.x"] == 9.0, entries
        checks += 1

        # Pruning keeps the newest runs and deletes stale snapshots.
        for i in range(3, 8):
            assert append_run(history, reports, "sha%d" % i,
                              when="t%d" % i, keep=3) <= 3
        entries = load_history(os.path.join(history, "history.jsonl"))
        assert [e["sha"] for e in entries] == ["sha5", "sha6", "sha7"], entries
        assert not os.path.exists(os.path.join(history, "runs", "sha1"))
        assert os.path.exists(os.path.join(history, "runs", "sha7"))
        checks += 1

        # An empty reports directory is a hard error, not a silent no-op.
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        try:
            append_run(history, empty, "shaX")
            raise AssertionError("expected SystemExit for empty reports dir")
        except SystemExit:
            pass
        checks += 1

    print("perf-trend self-test OK (%d check groups)" % checks)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history", default="perf-trend",
                        help="history directory (cached across CI runs)")
    parser.add_argument("--dir", default="build/bench",
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--sha", help="commit sha keying this run")
    parser.add_argument("--keep", type=int, default=200,
                        help="maximum runs retained in the history")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.sha:
        parser.error("--sha is required (except with --self-test)")
    count = append_run(args.history, args.dir, args.sha, keep=args.keep)
    print("perf-trend: %d run(s) in %s" % (count, args.history))
    return 0


if __name__ == "__main__":
    sys.exit(main())
