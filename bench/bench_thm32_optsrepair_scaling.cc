// E4 — Theorem 3.2: OptSRepair runs in polynomial time and returns an
// optimum. Report: per-tuple cost stays near-flat as n grows on the three
// tractable families (chain / marriage / Example 3.1), plus the greedy-
// matching ablation from DESIGN.md §6 showing why MarriageRep needs a
// *maximum-weight* matching.

#include <chrono>

#include "report_util.h"
#include "common/random.h"
#include "graph/bipartite_matching.h"
#include "srepair/opt_srepair.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

void Report() {
  Banner("E4", "Theorem 3.2 — OptSRepair optimality and polynomial scaling");
  ReportTable table({"family", "n", "repair dist", "time (ms)",
                     "us per tuple"});
  // The slug names the tracked JSON metric (see bench/baselines.json);
  // keep it stable even if the display label changes.
  for (const auto& [label, slug, parsed] :
       {std::tuple<std::string, std::string, ParsedFdSet>{
            "chain (office)", "chain", OfficeFds()},
        {"marriage (A<->B->C)", "marriage", DeltaAKeyBToC()},
        {"marriage+chain (ssn)", "ssn", Example31Ssn()}}) {
    // The marriage families pay the matching bound; cap their sweep.
    const bool chain = slug == std::string("chain");
    const int max_n = static_cast<int>(
        benchreport::SmokeCap(chain ? 64000 : 16000, 4000));
    for (int n : {1000, 4000, 16000, 64000}) {
      if (n > max_n) continue;
      Table t = ScalingFamilyTable(parsed, n, 5 + n);
      auto start = std::chrono::steady_clock::now();
      auto rows = OptSRepairRows(parsed.fds, TableView(t));
      auto stop = std::chrono::steady_clock::now();
      FDR_CHECK_MSG(rows.ok(), rows.status().ToString());
      double ms = std::chrono::duration<double, std::milli>(stop - start)
                      .count();
      Table repair = t.SubsetByRows(*rows);
      FDR_CHECK(Satisfies(repair, parsed.fds));
      table.AddRow({label, Num(n), Num(DistSubOrDie(repair, t)), Num(ms),
                    Num(1000.0 * ms / n)});
      if (n == max_n) {
        benchreport::JsonReport::Get().Add(
            "optsrepair." + slug + "_us_per_tuple", 1000.0 * ms / n, "us");
      }
    }
  }
  table.Print();

  // Ablation: greedy matching instead of maximum-weight matching inside
  // MarriageRep loses optimality. Adversarial instance: greedy grabs the
  // single heavy block and orphans two medium ones.
  ParsedFdSet marriage = DeltaAKeyBToC();
  Table t(marriage.schema);
  t.AddTuple({"a1", "b1", "c"}, 3);
  t.AddTuple({"a1", "b2", "c"}, 2);
  t.AddTuple({"a2", "b1", "c"}, 2);
  auto optimal = OptSRepair(marriage.fds, t);
  FDR_CHECK(optimal.ok());
  // Greedy: sort blocks by weight, take while endpoints free -> keeps only
  // the weight-3 block, deleting weight 4.
  double greedy_deleted = 7 - 3;
  std::cout << "ablation (greedy vs matching in MarriageRep): optimal "
               "deletes weight "
            << Num(DistSubOrDie(*optimal, t)) << ", greedy would delete "
            << Num(greedy_deleted) << " (ratio "
            << Num(greedy_deleted / DistSubOrDie(*optimal, t)) << ")\n";
}

void BM_OptSRepairChain(benchmark::State& state) {
  ParsedFdSet parsed = OfficeFds();
  int n = static_cast<int>(state.range(0));
  Table table = ScalingFamilyTable(parsed, n, 11);
  for (auto _ : state) {
    auto rows = OptSRepairRows(parsed.fds, TableView(table));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OptSRepairChain)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(262144, 2048))
    ->Unit(benchmark::kMillisecond);

void BM_OptSRepairMarriage(benchmark::State& state) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  int n = static_cast<int>(state.range(0));
  Table table = ScalingFamilyTable(parsed, n, 13);
  for (auto _ : state) {
    auto rows = OptSRepairRows(parsed.fds, TableView(table));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OptSRepairMarriage)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(16384, 2048))
    ->Unit(benchmark::kMillisecond);

void BM_OptSRepairSsn(benchmark::State& state) {
  ParsedFdSet parsed = Example31Ssn();
  int n = static_cast<int>(state.range(0));
  Table table = ScalingFamilyTable(parsed, n, 17);
  for (auto _ : state) {
    auto rows = OptSRepairRows(parsed.fds, TableView(table));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OptSRepairSsn)->RangeMultiplier(4)->Range(1024, benchreport::SmokeCap(8192, 2048))
    ->Unit(benchmark::kMillisecond);

// The matching engine itself, isolated.
void BM_MaxWeightMatching(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(19);
  std::vector<BipartiteEdge> edges;
  for (int e = 0; e < 4 * n; ++e) {
    edges.push_back(BipartiteEdge{static_cast<int>(rng.UniformUint64(n)),
                                  static_cast<int>(rng.UniformUint64(n)),
                                  rng.UniformDouble(0.1, 10)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightBipartiteMatching(n, n, edges));
  }
}
BENCHMARK(BM_MaxWeightMatching)->RangeMultiplier(4)->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
