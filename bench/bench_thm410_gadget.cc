// E11 — Theorem 4.10 / Appendix B.4: the vertex-cover gadget for ∆A↔B→C.
// Report: on random bounded-degree graphs, the update built from a minimum
// vertex cover costs exactly 2|E| + vc(G) (the proven optimal U-repair
// distance), the planner's approximation stays within its bound of that
// optimum, and the tiny-graph exhaustive check confirms optimality.

#include "report_util.h"
#include "common/random.h"
#include "graph/vertex_cover.h"
#include "reductions/gadgets.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "urepair/urepair_exact.h"
#include "workloads/graph_gen.h"

namespace fdrepair {
namespace {

using benchreport::Banner;
using benchreport::Num;
using benchreport::ReportTable;

// The proof's "cover -> update" construction (Theorem 4.10, direction 1).
Table CoverToUpdate(const NodeWeightedGraph& graph, const Table& gadget,
                    const std::vector<int>& cover) {
  std::vector<char> in_cover(graph.num_nodes(), 0);
  for (int v : cover) in_cover[v] = 1;
  Table update = gadget.Clone();
  auto name = [](int v) { return "v" + std::to_string(v); };
  for (int row = 0; row < update.num_tuples(); ++row) {
    std::string a = update.ValueText(row, 0);
    std::string b = update.ValueText(row, 1);
    if (a != b) {
      int u = std::atoi(a.c_str() + 1);
      int v = std::atoi(b.c_str() + 1);
      int target = in_cover[u] ? u : v;
      update.SetValue(row, 0, update.Intern(name(target)));
      update.SetValue(row, 1, update.Intern(name(target)));
    } else if (update.ValueText(row, 2) == "1") {
      int v = std::atoi(a.c_str() + 1);
      if (in_cover[v]) update.SetValue(row, 2, update.Intern("0"));
    }
  }
  return update;
}

void Report() {
  Banner("E11", "Theorem 4.10 — vertex-cover gadget for ∆A<->B->C");
  ParsedFdSet gadget_fds = VertexCoverGadgetFds();

  // Exhaustive confirmation on the smallest graph (P2).
  {
    NodeWeightedGraph p2(2);
    p2.AddEdge(0, 1);
    Table t = VertexCoverGadgetTable(p2);
    ExactURepairOptions options;
    options.max_rows = 4;
    options.max_cells = 12;
    auto exact = OptURepairExact(gadget_fds.fds, t, options);
    FDR_CHECK(exact.ok());
    std::cout << "P2 exhaustive optimum: " << Num(DistUpdOrDie(*exact, t))
              << " (paper: 2|E| + vc = 2·1 + 1 = 3)\n\n";
  }

  ReportTable table({"|V|", "|E|", "vc(G)", "2|E|+vc (optimal)",
                     "cover-update cost", "consistent", "planner cost",
                     "planner/optimal"});
  Rng rng(410);
  for (int n : {6, 8, 10, 12, 14}) {
    NodeWeightedGraph graph = RandomBoundedDegreeGraph(n, 3, 0.8, &rng);
    if (graph.num_edges() == 0) continue;
    Table t = VertexCoverGadgetTable(graph);
    auto cover = MinWeightVertexCoverExact(graph);
    FDR_CHECK(cover.ok());
    double optimal = 2.0 * graph.num_edges() + cover->size();
    Table constructed = CoverToUpdate(graph, t, *cover);
    bool consistent = Satisfies(constructed, gadget_fds.fds);
    double constructed_cost = DistUpdOrDie(constructed, t);
    URepairOptions planner_options;
    planner_options.allow_exact_search = false;
    auto planner = ComputeURepair(gadget_fds.fds, t, planner_options);
    FDR_CHECK(planner.ok());
    table.AddRow({Num(graph.num_nodes()), Num(graph.num_edges()),
                  Num(cover->size()), Num(optimal), Num(constructed_cost),
                  consistent ? "yes" : "NO", Num(planner->distance),
                  Num(planner->distance / optimal)});
  }
  table.Print();
  std::cout << "(Theorem 4.10 proves the optimum is exactly 2|E| + vc(G); "
               "planner/optimal is the measured approximation ratio of the "
               "combined algorithm on this APX-complete family)\n";
}

void BM_GadgetBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(4100 + n);
  NodeWeightedGraph graph = RandomBoundedDegreeGraph(n, 3, 0.8, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VertexCoverGadgetTable(graph));
  }
  state.SetItemsProcessed(state.iterations() *
                          (2 * graph.num_edges() + graph.num_nodes()));
}
BENCHMARK(BM_GadgetBuild)->RangeMultiplier(4)->Range(64, benchreport::SmokeCap(4096, 512))
    ->Unit(benchmark::kMicrosecond);

void BM_GadgetApproxRepair(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(4200 + n);
  NodeWeightedGraph graph = RandomBoundedDegreeGraph(n, 3, 0.8, &rng);
  Table table = VertexCoverGadgetTable(graph);
  ParsedFdSet gadget_fds = VertexCoverGadgetFds();
  URepairOptions options;
  options.allow_exact_search = false;
  for (auto _ : state) {
    auto result = ComputeURepair(gadget_fds.fds, table, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * table.num_tuples());
}
BENCHMARK(BM_GadgetApproxRepair)->RangeMultiplier(4)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fdrepair

FDR_BENCH_MAIN(fdrepair::Report)
