// Most Probable Database (§3.4, Theorem 3.10).
//
// A probabilistic table is a Table whose weights lie in (0, 1] and are read
// as independent tuple probabilities. MPD asks for the consistent subset of
// maximum probability. The reduction to optimal S-repairing:
//   - certain tuples (p = 1) must all be kept; if they conflict, every
//     consistent subset has probability 0 and the empty table is returned;
//   - tuples with p <= 0.5 are dropped outright (removing them never lowers
//     the probability);
//   - remaining tuples get weight log(p / (1 - p)) > 0, and a most probable
//     database is exactly an optimal S-repair of the reweighted table.
// Consequently the Theorem 3.4 dichotomy transfers: MPD is polynomial iff
// OSRSucceeds(∆) — settling the open case of Gribkoff et al. for non-unary
// FDs, including the corrected classification of ∆A↔B→C (Comment 3.11).

#ifndef FDREPAIR_MPD_MPD_H_
#define FDREPAIR_MPD_MPD_H_

#include "catalog/fdset.h"
#include "common/status.h"
#include "srepair/planner.h"
#include "storage/table.h"

namespace fdrepair {

/// Checks weights lie in (0, 1].
Status ValidateProbabilisticTable(const Table& table);

/// log Pr_T(S) per equation (2): Σ_kept log p + Σ_removed log(1 − p);
/// −inf when a removed tuple is certain. `kept_rows` are dense positions.
double SubsetLogProbability(const Table& table,
                            const std::vector<int>& kept_rows);

struct MpdOptions {
  /// Strategy for the underlying S-repair. MPD semantics require exactness;
  /// kAuto still answers exactly on the tractable side and small instances,
  /// and degrades to a heuristic (not a most probable database) beyond.
  SRepairStrategy strategy = SRepairStrategy::kExactOnly;
  int exact_guard = 40;
};

struct MpdResult {
  /// The most probable consistent subset (ids/weights from the input).
  Table database;
  double log_probability = 0;
  /// False only when certain tuples conflict (probability 0 everywhere).
  bool feasible = true;
};

/// Computes a most probable database of `table` under ∆ via the
/// Theorem 3.10 reduction.
StatusOr<MpdResult> MostProbableDatabase(const FdSet& fds, const Table& table,
                                         const MpdOptions& options = {});

/// Exhaustive MPD over all 2^n subsets; ground truth for tests (n <= 20).
StatusOr<MpdResult> MostProbableDatabaseBruteForce(const FdSet& fds,
                                                   const Table& table,
                                                   int max_rows = 20);

// ---------------------------------------------------------------------------
// Noisy-FD extension: soft (finite-weight) FDs as unreliable constraints.
//
// Read a soft FD φ with weight ω(φ) as holding per violating pair with
// failure log-odds −ω: each pair violating φ is independently "excused"
// with probability e^{−ω(φ)} (equivalently, ω = −log(1 − q) for an FD of
// reliability q). The penalized log-probability of a subset S is then
//
//   log Pr_T(S)  −  Σ_{soft φ} ω(φ) · #violating pairs of φ in S
//
// and a soft MPD maximizes it over subsets satisfying the *hard* FDs.
// With all FDs hard this is exactly MostProbableDatabase. The reduction
// mirrors Theorem 3.10: log-odds reweighting turns the maximization into
// an optimal *soft* repair (srepair/soft_repair.h) of the reweighted
// table, so the tractability frontier is inherited from the soft planner.
// ---------------------------------------------------------------------------

/// Penalized log-probability per the noisy-FD model: SubsetLogProbability
/// minus the soft-violation cost of the kept subset. −inf when a removed
/// tuple is certain.
double SoftSubsetLogProbability(const FdSet& fds, const Table& table,
                                const std::vector<int>& kept_rows);

/// Computes a subset maximizing SoftSubsetLogProbability among those
/// satisfying the hard part of ∆. `feasible` is false only when certain
/// tuples conflict under a *hard* FD.
StatusOr<MpdResult> MostProbableDatabaseSoft(const FdSet& fds,
                                             const Table& table,
                                             const MpdOptions& options = {});

/// Exhaustive soft MPD over all 2^n subsets; ground truth for tests.
StatusOr<MpdResult> MostProbableDatabaseSoftBruteForce(const FdSet& fds,
                                                       const Table& table,
                                                       int max_rows = 20);

}  // namespace fdrepair

#endif  // FDREPAIR_MPD_MPD_H_
