#include "mpd/mpd.h"

#include <cmath>
#include <limits>

#include "srepair/soft_repair.h"
#include "storage/consistency.h"
#include "storage/table_view.h"

namespace fdrepair {

Status ValidateProbabilisticTable(const Table& table) {
  for (int row = 0; row < table.num_tuples(); ++row) {
    double p = table.weight(row);
    if (!(p > 0.0) || p > 1.0) {
      return Status::InvalidArgument(
          "probabilistic table requires weights in (0, 1]; tuple id " +
          std::to_string(table.id(row)) + " has " + std::to_string(p));
    }
  }
  return Status::OK();
}

double SubsetLogProbability(const Table& table,
                            const std::vector<int>& kept_rows) {
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;
  double log_probability = 0;
  for (int row = 0; row < table.num_tuples(); ++row) {
    double p = table.weight(row);
    if (kept[row]) {
      log_probability += std::log(p);
    } else if (p >= 1.0) {
      return -std::numeric_limits<double>::infinity();
    } else {
      log_probability += std::log1p(-p);
    }
  }
  return log_probability;
}

StatusOr<MpdResult> MostProbableDatabase(const FdSet& fds, const Table& table,
                                         const MpdOptions& options) {
  FDR_RETURN_IF_ERROR(ValidateProbabilisticTable(table));

  // Partition rows: certain (p = 1), discardable (p <= 0.5), contended.
  std::vector<int> certain_rows;
  std::vector<int> contended_rows;
  for (int row = 0; row < table.num_tuples(); ++row) {
    double p = table.weight(row);
    if (p >= 1.0) {
      certain_rows.push_back(row);
    } else if (p > 0.5) {
      contended_rows.push_back(row);
    }
    // p <= 0.5: always removed.
  }

  // If certain tuples conflict, every consistent subset has probability 0.
  Table certain = table.SubsetByRows(certain_rows);
  if (!Satisfies(certain, fds)) {
    Table empty = table.SubsetByRows({});
    MpdResult result{std::move(empty),
                     -std::numeric_limits<double>::infinity(), false};
    return result;
  }

  // Reweighted instance: log-odds for contended tuples; certain tuples get
  // a weight exceeding the total contended weight, so no optimal (or
  // 2-optimal) S-repair ever deletes one.
  Table reweighted(table.schema(), table.pool());
  double contended_total = 0;
  for (int row : contended_rows) {
    double p = table.weight(row);
    contended_total += std::log(p / (1.0 - p));
  }
  double certain_weight = contended_total + 1.0;
  for (int row : certain_rows) {
    FDR_RETURN_IF_ERROR(reweighted.AddInternedTupleWithId(
        table.id(row), table.tuple(row), certain_weight));
  }
  for (int row : contended_rows) {
    double p = table.weight(row);
    FDR_RETURN_IF_ERROR(reweighted.AddInternedTupleWithId(
        table.id(row), table.tuple(row), std::log(p / (1.0 - p))));
  }

  SRepairOptions srepair_options;
  srepair_options.strategy = options.strategy;
  srepair_options.exact_guard = options.exact_guard;
  FDR_ASSIGN_OR_RETURN(SRepairResult repair,
                       ComputeSRepair(fds, reweighted, srepair_options));

  // Map kept identifiers back to the original rows.
  std::vector<int> kept_rows;
  for (int row = 0; row < repair.repair.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(int original_row,
                         table.RowOf(repair.repair.id(row)));
    kept_rows.push_back(original_row);
  }
  MpdResult result{table.SubsetByRows(kept_rows),
                   SubsetLogProbability(table, kept_rows), true};
  return result;
}

StatusOr<MpdResult> MostProbableDatabaseBruteForce(const FdSet& fds,
                                                   const Table& table,
                                                   int max_rows) {
  FDR_RETURN_IF_ERROR(ValidateProbabilisticTable(table));
  int n = table.num_tuples();
  if (n > max_rows) {
    return Status::ResourceExhausted("brute-force MPD limited to " +
                                     std::to_string(max_rows) + " rows");
  }
  double best_log_probability = -std::numeric_limits<double>::infinity();
  std::vector<int> best_rows;
  bool feasible = false;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::vector<int> rows;
    for (int row = 0; row < n; ++row) {
      if ((mask >> row) & 1) rows.push_back(row);
    }
    if (!Satisfies(table.SubsetByRows(rows), fds)) continue;
    double log_probability = SubsetLogProbability(table, rows);
    if (!feasible || log_probability > best_log_probability) {
      best_log_probability = log_probability;
      best_rows = rows;
      feasible = true;
    }
  }
  // The empty subset is always consistent, so `feasible` is set; it stays
  // "infeasible" in the MPD sense only when the best probability is 0.
  bool positive = best_log_probability >
                  -std::numeric_limits<double>::infinity();
  MpdResult result{table.SubsetByRows(best_rows), best_log_probability,
                   positive};
  return result;
}

double SoftSubsetLogProbability(const FdSet& fds, const Table& table,
                                const std::vector<int>& kept_rows) {
  double log_probability = SubsetLogProbability(table, kept_rows);
  if (log_probability == -std::numeric_limits<double>::infinity()) {
    return log_probability;
  }
  Table kept = table.SubsetByRows(kept_rows);
  return log_probability - SoftViolationCost(fds, TableView(kept));
}

StatusOr<MpdResult> MostProbableDatabaseSoft(const FdSet& fds,
                                             const Table& table,
                                             const MpdOptions& options) {
  FDR_RETURN_IF_ERROR(ValidateProbabilisticTable(table));

  // Same partition as the hard reduction. Dropping p <= 0.5 tuples stays
  // safe in the noisy model: removal never lowers log Pr and can only
  // shed violation penalties.
  std::vector<int> certain_rows;
  std::vector<int> contended_rows;
  for (int row = 0; row < table.num_tuples(); ++row) {
    double p = table.weight(row);
    if (p >= 1.0) {
      certain_rows.push_back(row);
    } else if (p > 0.5) {
      contended_rows.push_back(row);
    }
  }

  // Only a *hard* conflict among certain tuples forces probability 0;
  // soft violations between them are merely penalized.
  Table certain = table.SubsetByRows(certain_rows);
  if (!Satisfies(certain, fds.HardPart())) {
    Table empty = table.SubsetByRows({});
    MpdResult result{std::move(empty),
                     -std::numeric_limits<double>::infinity(), false};
    return result;
  }

  Table reweighted(table.schema(), table.pool());
  double contended_total = 0;
  for (int row : contended_rows) {
    double p = table.weight(row);
    contended_total += std::log(p / (1.0 - p));
  }
  // Certain tuples must survive the soft repair: their weight exceeds every
  // saving a deletion could buy — all contended log-odds plus every soft
  // penalty the full table can incur.
  double certain_weight =
      contended_total + SoftViolationCost(fds, TableView(table)) + 1.0;
  for (int row : certain_rows) {
    FDR_RETURN_IF_ERROR(reweighted.AddInternedTupleWithId(
        table.id(row), table.tuple(row), certain_weight));
  }
  for (int row : contended_rows) {
    double p = table.weight(row);
    FDR_RETURN_IF_ERROR(reweighted.AddInternedTupleWithId(
        table.id(row), table.tuple(row), std::log(p / (1.0 - p))));
  }

  SoftRepairOptions soft_options;
  soft_options.exact_guard = options.exact_guard;
  FDR_ASSIGN_OR_RETURN(SoftRepairResult repair,
                       ComputeSoftRepair(fds, reweighted, soft_options));

  std::vector<int> kept_rows;
  for (int row = 0; row < repair.repair.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(int original_row,
                         table.RowOf(repair.repair.id(row)));
    kept_rows.push_back(original_row);
  }
  MpdResult result{table.SubsetByRows(kept_rows),
                   SoftSubsetLogProbability(fds, table, kept_rows), true};
  return result;
}

StatusOr<MpdResult> MostProbableDatabaseSoftBruteForce(const FdSet& fds,
                                                       const Table& table,
                                                       int max_rows) {
  FDR_RETURN_IF_ERROR(ValidateProbabilisticTable(table));
  int n = table.num_tuples();
  if (n > max_rows) {
    return Status::ResourceExhausted("brute-force soft MPD limited to " +
                                     std::to_string(max_rows) + " rows");
  }
  const FdSet hard = fds.HardPart();
  double best = -std::numeric_limits<double>::infinity();
  std::vector<int> best_rows;
  bool any = false;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::vector<int> rows;
    for (int row = 0; row < n; ++row) {
      if ((mask >> row) & 1) rows.push_back(row);
    }
    if (!Satisfies(table.SubsetByRows(rows), hard)) continue;
    double penalized = SoftSubsetLogProbability(fds, table, rows);
    if (!any || penalized > best) {
      best = penalized;
      best_rows = rows;
      any = true;
    }
  }
  bool positive = best > -std::numeric_limits<double>::infinity();
  MpdResult result{table.SubsetByRows(best_rows), best, positive};
  return result;
}

}  // namespace fdrepair
