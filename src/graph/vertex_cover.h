// Weighted vertex cover.
//
// Proposition 3.3 reduces optimal S-repairing to weighted vertex cover on
// the conflict graph and inherits the classic 2-approximation of Bar-Yehuda
// and Even (local-ratio). The exact solver provides ground truth for the
// approximation-ratio experiments (E5) and for the gadget equivalences.

#ifndef FDREPAIR_GRAPH_VERTEX_COVER_H_
#define FDREPAIR_GRAPH_VERTEX_COVER_H_

#include <chrono>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace fdrepair {

/// Bar-Yehuda–Even local-ratio algorithm: for each edge {u, v}, subtract
/// min(residual(u), residual(v)) from both endpoints; nodes driven to zero
/// form the cover. Guarantees weight(cover) <= 2 · weight(optimal cover).
/// Runs in O(n + m). Edge order affects which 2-approximation is returned
/// (but never the guarantee); pass `edge_order` to ablate (E5). When
/// `dual_lower_bound` is non-null it receives the total subtracted weight —
/// a feasible edge packing, hence a lower bound on the optimal cover.
std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph);
std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph,
                                       const std::vector<int>& edge_order);
std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph,
                                       const std::vector<int>& edge_order,
                                       double* dual_lower_bound);

/// Cooperative limits for the branch-and-bound searches. Both are soft:
/// the search stops at the next node boundary and reports its incumbent.
struct VcSearchLimits {
  /// Wall-clock cutoff, checked every few node expansions.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Maximum branch nodes to expand; < 0 means unlimited.
  long node_budget = -1;
};

/// A (possibly truncated) branch-and-bound run: the best cover found, its
/// weight, and whether the search completed (proving optimality).
struct VcSearchResult {
  std::vector<int> cover;
  double weight = 0;
  /// True iff the search space was exhausted: `cover` is a minimum-weight
  /// vertex cover. False when a limit tripped first — `cover` is then the
  /// best incumbent, still a valid cover.
  bool optimal = false;
  /// Branch nodes expanded.
  long nodes = 0;
};

/// Exact minimum-weight vertex cover by branch and bound (branch on an
/// uncovered edge; prune on the accumulated weight). Exponential; refuses
/// graphs with more than `max_nodes` nodes.
StatusOr<std::vector<int>> MinWeightVertexCoverExact(
    const NodeWeightedGraph& graph, int max_nodes = 40);

/// The same search with cooperative limits: expands nodes until done or a
/// limit trips, then reports the incumbent with `optimal=false`. Unlike
/// MinWeightVertexCoverExact it never refuses an instance — callers gate
/// size via the limits. The search tree and tie-breaks are identical to
/// MinWeightVertexCoverExact, so a completed run returns the same cover.
/// The incumbent starts as the whole non-isolated node set, so `cover` is
/// always valid even on immediate expiry.
VcSearchResult MinWeightVertexCoverBnb(const NodeWeightedGraph& graph,
                                       const VcSearchLimits& limits);

/// Greedily removes redundant nodes from a valid cover (heaviest first);
/// corresponds to turning a consistent subset into a ⊆-maximal S-repair with
/// no distance increase (§2.3).
std::vector<int> MinimizeCover(const NodeWeightedGraph& graph,
                               std::vector<int> cover);

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_VERTEX_COVER_H_
