// Weighted vertex cover.
//
// Proposition 3.3 reduces optimal S-repairing to weighted vertex cover on
// the conflict graph and inherits the classic 2-approximation of Bar-Yehuda
// and Even (local-ratio). The exact solver provides ground truth for the
// approximation-ratio experiments (E5) and for the gadget equivalences.

#ifndef FDREPAIR_GRAPH_VERTEX_COVER_H_
#define FDREPAIR_GRAPH_VERTEX_COVER_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace fdrepair {

/// Bar-Yehuda–Even local-ratio algorithm: for each edge {u, v}, subtract
/// min(residual(u), residual(v)) from both endpoints; nodes driven to zero
/// form the cover. Guarantees weight(cover) <= 2 · weight(optimal cover).
/// Runs in O(n + m). Edge order affects which 2-approximation is returned
/// (but never the guarantee); pass `edge_order` to ablate (E5).
std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph);
std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph,
                                       const std::vector<int>& edge_order);

/// Exact minimum-weight vertex cover by branch and bound (branch on an
/// uncovered edge; prune on the accumulated weight). Exponential; refuses
/// graphs with more than `max_nodes` nodes.
StatusOr<std::vector<int>> MinWeightVertexCoverExact(
    const NodeWeightedGraph& graph, int max_nodes = 40);

/// Greedily removes redundant nodes from a valid cover (heaviest first);
/// corresponds to turning a consistent subset into a ⊆-maximal S-repair with
/// no distance increase (§2.3).
std::vector<int> MinimizeCover(const NodeWeightedGraph& graph,
                               std::vector<int> cover);

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_VERTEX_COVER_H_
