#include "graph/conflict_graph.h"

#include "storage/consistency.h"

namespace fdrepair {

NodeWeightedGraph BuildConflictGraph(const TableView& view, const FdSet& fds) {
  NodeWeightedGraph graph(view.num_tuples());
  for (int i = 0; i < view.num_tuples(); ++i) {
    graph.set_weight(i, view.weight(i));
  }
  // Row position in the underlying table -> view index.
  std::unordered_map<int, int> view_index;
  view_index.reserve(view.num_tuples());
  for (int i = 0; i < view.num_tuples(); ++i) view_index[view.row(i)] = i;
  for (const Violation& violation : FindViolations(view, fds)) {
    graph.AddEdge(view_index.at(violation.row_i),
                  view_index.at(violation.row_j));
  }
  return graph;
}

}  // namespace fdrepair
