// Maximum-weight bipartite matching — the combinatorial core of
// Subroutine 3 (MarriageRep): nodes are the projections of T onto the two
// married lhs's, edge weights are optimal sub-repair weights, and the best
// matching selects which (a1, a2) blocks survive.
//
// "Maximum weight" here means over all matchings of any cardinality (all
// weights are positive in the paper's use, so larger matchings only help,
// but the solver does not assume positivity).

#ifndef FDREPAIR_GRAPH_BIPARTITE_MATCHING_H_
#define FDREPAIR_GRAPH_BIPARTITE_MATCHING_H_

#include <utility>
#include <vector>

#include "common/status.h"

namespace fdrepair {

/// An edge between left node `left` and right node `right` with weight.
struct BipartiteEdge {
  int left;
  int right;
  double weight;
};

struct MatchingResult {
  /// Chosen edges as (left, right) pairs; no node repeats.
  std::vector<std::pair<int, int>> pairs;
  double total_weight = 0;
};

/// Computes a maximum-weight matching of the bipartite graph with
/// `num_left` / `num_right` nodes and the given edges. Duplicate edges keep
/// the heaviest copy. O(V · E · augmentations) via min-cost flow.
MatchingResult MaxWeightBipartiteMatching(int num_left, int num_right,
                                          const std::vector<BipartiteEdge>& edges);

/// Exhaustive matching for cross-checking in tests; edges.size() <= 20.
StatusOr<MatchingResult> MaxWeightMatchingBruteForce(
    int num_left, int num_right, const std::vector<BipartiteEdge>& edges);

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_BIPARTITE_MATCHING_H_
