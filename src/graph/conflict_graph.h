// Conflict graph (§3.1, Proposition 3.3): one node per tuple (weighted by
// the tuple weight), one edge per pair of tuples that jointly violate some
// FD. Deleting a vertex cover of this graph yields a consistent subset, and
// the reduction is strict — the basis of the 2-approximate S-repair.

#ifndef FDREPAIR_GRAPH_CONFLICT_GRAPH_H_
#define FDREPAIR_GRAPH_CONFLICT_GRAPH_H_

#include "catalog/fdset.h"
#include "graph/graph.h"
#include "storage/table_view.h"

namespace fdrepair {

/// Builds the conflict graph of `view` under ∆. Node i corresponds to view
/// row i and carries that tuple's weight. Worst-case Θ(n²) edges (inherent).
NodeWeightedGraph BuildConflictGraph(const TableView& view, const FdSet& fds);

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_CONFLICT_GRAPH_H_
