#include "graph/min_cost_flow.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace fdrepair {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes) {
  FDR_CHECK(num_nodes >= 0);
}

int MinCostFlow::AddEdge(int from, int to, double capacity, double cost) {
  FDR_CHECK_MSG(from >= 0 && from < num_nodes_, "from=" << from);
  FDR_CHECK_MSG(to >= 0 && to < num_nodes_, "to=" << to);
  FDR_CHECK_MSG(capacity >= 0, "capacity=" << capacity);
  int forward = static_cast<int>(edges_.size());
  int backward = forward + 1;
  edges_.push_back(Edge{to, capacity, cost, backward});
  edges_.push_back(Edge{from, 0.0, -cost, forward});
  adjacency_[from].push_back(forward);
  adjacency_[to].push_back(backward);
  public_edges_.push_back(forward);
  return static_cast<int>(public_edges_.size()) - 1;
}

bool MinCostFlow::ShortestPath(int source, int sink, std::vector<double>* dist,
                               std::vector<int>* parent_edge) const {
  // SPFA (queue-based Bellman-Ford); handles the negative costs introduced
  // by weight negation and by residual reverse edges.
  dist->assign(num_nodes_, kInf);
  parent_edge->assign(num_nodes_, -1);
  std::vector<char> in_queue(num_nodes_, 0);
  std::deque<int> queue;
  (*dist)[source] = 0;
  queue.push_back(source);
  in_queue[source] = 1;
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    in_queue[node] = 0;
    for (int edge_index : adjacency_[node]) {
      const Edge& edge = edges_[edge_index];
      if (edge.capacity <= kEps) continue;
      double candidate = (*dist)[node] + edge.cost;
      if (candidate + kEps < (*dist)[edge.to]) {
        (*dist)[edge.to] = candidate;
        (*parent_edge)[edge.to] = edge_index;
        if (!in_queue[edge.to]) {
          // SLF heuristic: promising nodes to the front.
          if (!queue.empty() && candidate < (*dist)[queue.front()]) {
            queue.push_front(edge.to);
          } else {
            queue.push_back(edge.to);
          }
          in_queue[edge.to] = 1;
        }
      }
    }
  }
  return (*dist)[sink] < kInf;
}

MinCostFlow::Result MinCostFlow::Solve(int source, int sink,
                                       bool stop_on_nonnegative_path) {
  FDR_CHECK_MSG(source >= 0 && source < num_nodes_, "source=" << source);
  FDR_CHECK_MSG(sink >= 0 && sink < num_nodes_, "sink=" << sink);
  FDR_CHECK(source != sink);
  Result result;
  std::vector<double> dist;
  std::vector<int> parent_edge;
  while (ShortestPath(source, sink, &dist, &parent_edge)) {
    if (stop_on_nonnegative_path && dist[sink] >= -kEps) break;
    // Bottleneck along the path.
    double bottleneck = kInf;
    for (int node = sink; node != source;) {
      const Edge& edge = edges_[parent_edge[node]];
      bottleneck = std::min(bottleneck, edge.capacity);
      node = edges_[edge.twin].to;
    }
    FDR_CHECK(bottleneck > 0 && bottleneck < kInf);
    for (int node = sink; node != source;) {
      Edge& edge = edges_[parent_edge[node]];
      edge.capacity -= bottleneck;
      edges_[edge.twin].capacity += bottleneck;
      node = edges_[edge.twin].to;
    }
    result.flow += bottleneck;
    result.cost += bottleneck * dist[sink];
  }
  return result;
}

double MinCostFlow::Flow(int edge_index) const {
  FDR_CHECK_MSG(
      edge_index >= 0 && edge_index < static_cast<int>(public_edges_.size()),
      "edge_index=" << edge_index);
  int forward = public_edges_[edge_index];
  // Flow pushed = capacity accumulated on the twin (reverse) edge.
  return edges_[edges_[forward].twin].capacity;
}

}  // namespace fdrepair
