// The LP relaxation of minimum-weight vertex cover, solved exactly.
//
//   min Σ_v w_v·x_v   s.t.  x_u + x_v >= 1 for every edge, x >= 0.
//
// Two classic facts power the hard-side solver backends (srepair/):
//
//  - Half-integrality (Nemhauser–Trotter): the LP has an optimal solution
//    with x_v ∈ {0, ½, 1}, computable in polynomial time by a minimum cut
//    on the bipartite doubling of the graph (left copy L_v, right copy
//    R_v, arcs L_u–R_v and L_v–R_u per edge; s→L_v and R_v→t with
//    capacity w_v). We run an in-tree Dinic max-flow — no external solver.
//
//  - NT persistency: there is an *integral* optimum containing every
//    vertex with x_v = 1 and avoiding every vertex with x_v = 0, so the
//    search can be confined to the kernel {v : x_v = ½}, and
//    opt(G) = w(P1) + opt(G[kernel]).
//
// The LP value is a lower bound on the integral optimum; the dual ascent
// bound below is a cheaper (one pass, no max-flow) under-approximation of
// the same LP value, suitable for per-node pruning in branch and bound.

#ifndef FDREPAIR_GRAPH_VC_LP_H_
#define FDREPAIR_GRAPH_VC_LP_H_

#include <vector>

#include "graph/graph.h"

namespace fdrepair {

/// The half-integral LP optimum, as the Nemhauser–Trotter decomposition.
struct VcLpSolution {
  /// x_v in {0.0, 0.5, 1.0} per node; an optimal LP solution.
  std::vector<double> x;
  /// Σ w_v·x_v — the LP optimum, a lower bound on the min-weight cover.
  double value = 0;
  /// Nodes with x_v = 1: some optimal integral cover contains all of them.
  std::vector<int> ones;
  /// Nodes with x_v = ½: the kernel the integral search is confined to.
  std::vector<int> halves;
};

/// Solves the vertex-cover LP exactly (half-integral optimum) via max-flow
/// on the bipartite doubling. O(V·E²) worst case, far less in practice.
VcLpSolution SolveVcLp(const NodeWeightedGraph& graph);

/// A feasible dual (fractional edge packing) built by one greedy ascent
/// pass over the edges restricted to `alive` nodes: for each alive edge,
/// raise its dual by the smaller endpoint residual. Returns the packing
/// value — a lower bound on the min-weight cover of the alive subgraph,
/// never exceeding its LP optimum. O(V + E).
double VcDualAscentBound(const NodeWeightedGraph& graph,
                         const std::vector<char>& alive);

/// Whole-graph convenience overload.
double VcDualAscentBound(const NodeWeightedGraph& graph);

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_VC_LP_H_
