#include "graph/bipartite_matching.h"

#include <algorithm>
#include <unordered_map>

#include "graph/min_cost_flow.h"

namespace fdrepair {

MatchingResult MaxWeightBipartiteMatching(
    int num_left, int num_right, const std::vector<BipartiteEdge>& edges) {
  FDR_CHECK(num_left >= 0 && num_right >= 0);
  // Collapse duplicates, keeping the heaviest weight per (left, right).
  std::unordered_map<uint64_t, double> best;
  for (const BipartiteEdge& edge : edges) {
    FDR_CHECK_MSG(edge.left >= 0 && edge.left < num_left,
                  "left=" << edge.left);
    FDR_CHECK_MSG(edge.right >= 0 && edge.right < num_right,
                  "right=" << edge.right);
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(edge.left))
                    << 32) |
                   static_cast<uint32_t>(edge.right);
    auto [it, inserted] = best.emplace(key, edge.weight);
    if (!inserted) it->second = std::max(it->second, edge.weight);
  }

  // Network: source 0, left nodes 1..num_left, right nodes follow, sink last.
  const int source = 0;
  const int sink = num_left + num_right + 1;
  MinCostFlow flow(sink + 1);
  for (int u = 0; u < num_left; ++u) flow.AddEdge(source, 1 + u, 1.0, 0.0);
  for (int v = 0; v < num_right; ++v) {
    flow.AddEdge(1 + num_left + v, sink, 1.0, 0.0);
  }
  struct EdgeRef {
    int left;
    int right;
    double weight;
    int flow_edge;
  };
  std::vector<EdgeRef> refs;
  refs.reserve(best.size());
  for (const auto& [key, weight] : best) {
    int left = static_cast<int>(key >> 32);
    int right = static_cast<int>(key & 0xffffffffULL);
    int flow_edge =
        flow.AddEdge(1 + left, 1 + num_left + right, 1.0, -weight);
    refs.push_back(EdgeRef{left, right, weight, flow_edge});
  }

  flow.Solve(source, sink, /*stop_on_nonnegative_path=*/true);

  MatchingResult result;
  for (const EdgeRef& ref : refs) {
    if (flow.Flow(ref.flow_edge) > 0.5) {
      result.pairs.emplace_back(ref.left, ref.right);
      result.total_weight += ref.weight;
    }
  }
  return result;
}

namespace {

void BruteForceSearch(const std::vector<BipartiteEdge>& edges, size_t index,
                      uint64_t used_left, uint64_t used_right, double weight,
                      std::vector<int>* chosen, double* best_weight,
                      std::vector<int>* best_chosen) {
  if (index == edges.size()) {
    if (weight > *best_weight) {
      *best_weight = weight;
      *best_chosen = *chosen;
    }
    return;
  }
  const BipartiteEdge& edge = edges[index];
  // Take the edge if both endpoints are free.
  if (!((used_left >> edge.left) & 1) && !((used_right >> edge.right) & 1)) {
    chosen->push_back(static_cast<int>(index));
    BruteForceSearch(edges, index + 1, used_left | (uint64_t{1} << edge.left),
                     used_right | (uint64_t{1} << edge.right),
                     weight + edge.weight, chosen, best_weight, best_chosen);
    chosen->pop_back();
  }
  // Skip the edge.
  BruteForceSearch(edges, index + 1, used_left, used_right, weight, chosen,
                   best_weight, best_chosen);
}

}  // namespace

StatusOr<MatchingResult> MaxWeightMatchingBruteForce(
    int num_left, int num_right, const std::vector<BipartiteEdge>& edges) {
  if (edges.size() > 20) {
    return Status::ResourceExhausted(
        "brute-force matching limited to 20 edges");
  }
  if (num_left > 64 || num_right > 64) {
    return Status::ResourceExhausted(
        "brute-force matching limited to 64 nodes per side");
  }
  double best_weight = 0;
  std::vector<int> chosen;
  std::vector<int> best_chosen;
  BruteForceSearch(edges, 0, 0, 0, 0.0, &chosen, &best_weight, &best_chosen);
  MatchingResult result;
  result.total_weight = best_weight;
  for (int index : best_chosen) {
    result.pairs.emplace_back(edges[index].left, edges[index].right);
  }
  return result;
}

}  // namespace fdrepair
