#include "graph/graph.h"

#include <algorithm>

namespace fdrepair {

NodeWeightedGraph::NodeWeightedGraph(int n)
    : weights_(n, 1.0), adjacency_(n) {
  FDR_CHECK(n >= 0);
}

double NodeWeightedGraph::weight(int node) const {
  FDR_CHECK_MSG(node >= 0 && node < num_nodes(), "node=" << node);
  return weights_[node];
}

void NodeWeightedGraph::set_weight(int node, double weight) {
  FDR_CHECK_MSG(node >= 0 && node < num_nodes(), "node=" << node);
  FDR_CHECK_MSG(weight > 0, "weight=" << weight);
  weights_[node] = weight;
}

uint64_t NodeWeightedGraph::EdgeKey(int u, int v) const {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

void NodeWeightedGraph::AddEdge(int u, int v) {
  FDR_CHECK_MSG(u >= 0 && u < num_nodes(), "u=" << u);
  FDR_CHECK_MSG(v >= 0 && v < num_nodes(), "v=" << v);
  FDR_CHECK_MSG(u != v, "self-loop at node " << u);
  if (!edge_keys_.insert(EdgeKey(u, v)).second) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
}

bool NodeWeightedGraph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes() || u == v) {
    return false;
  }
  return edge_keys_.count(EdgeKey(u, v)) > 0;
}

const std::vector<int>& NodeWeightedGraph::Neighbors(int node) const {
  FDR_CHECK_MSG(node >= 0 && node < num_nodes(), "node=" << node);
  return adjacency_[node];
}

int NodeWeightedGraph::Degree(int node) const {
  return static_cast<int>(Neighbors(node).size());
}

int NodeWeightedGraph::MaxDegree() const {
  int max_degree = 0;
  for (int v = 0; v < num_nodes(); ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

double NodeWeightedGraph::WeightOf(const std::vector<int>& nodes) const {
  double total = 0;
  for (int node : nodes) total += weight(node);
  return total;
}

bool IsVertexCover(const NodeWeightedGraph& graph,
                   const std::vector<int>& cover) {
  std::vector<char> in_cover(graph.num_nodes(), 0);
  for (int node : cover) {
    if (node < 0 || node >= graph.num_nodes()) return false;
    in_cover[node] = 1;
  }
  for (const auto& [u, v] : graph.edges()) {
    if (!in_cover[u] && !in_cover[v]) return false;
  }
  return true;
}

}  // namespace fdrepair
