#include "graph/vertex_cover.h"

#include <algorithm>
#include <limits>

namespace fdrepair {

std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph) {
  std::vector<int> order(graph.num_edges());
  for (int i = 0; i < graph.num_edges(); ++i) order[i] = i;
  return VertexCoverLocalRatio(graph, order);
}

std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph,
                                       const std::vector<int>& edge_order) {
  std::vector<double> residual(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) residual[v] = graph.weight(v);
  for (int edge_index : edge_order) {
    FDR_CHECK(edge_index >= 0 && edge_index < graph.num_edges());
    auto [u, v] = graph.edges()[edge_index];
    double delta = std::min(residual[u], residual[v]);
    residual[u] -= delta;
    residual[v] -= delta;
  }
  std::vector<int> cover;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (residual[v] <= 1e-12 && graph.Degree(v) > 0) cover.push_back(v);
  }
  FDR_CHECK(IsVertexCover(graph, cover));
  return cover;
}

namespace {

struct BnbState {
  const NodeWeightedGraph* graph;
  std::vector<char> in_cover;
  std::vector<char> excluded;  // nodes decided out of the cover
  double weight = 0;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<int> best_cover;
};

// Finds an edge not covered yet (neither endpoint in the cover); returns
// false when everything is covered.
bool FindUncoveredEdge(const BnbState& state, int* u, int* v) {
  for (const auto& [a, b] : state.graph->edges()) {
    if (!state.in_cover[a] && !state.in_cover[b]) {
      *u = a;
      *v = b;
      return true;
    }
  }
  return false;
}

void Branch(BnbState* state) {
  if (state->weight >= state->best_weight) return;  // prune
  int u, v;
  if (!FindUncoveredEdge(*state, &u, &v)) {
    state->best_weight = state->weight;
    state->best_cover.clear();
    for (int node = 0; node < state->graph->num_nodes(); ++node) {
      if (state->in_cover[node]) state->best_cover.push_back(node);
    }
    return;
  }
  // Branch 1: u joins the cover.
  if (!state->excluded[u]) {
    state->in_cover[u] = 1;
    state->weight += state->graph->weight(u);
    Branch(state);
    state->weight -= state->graph->weight(u);
    state->in_cover[u] = 0;
  }
  // Branch 2: u is excluded; then every neighbor of u must join. For the
  // chosen edge this forces v, which keeps the search tree binary.
  if (!state->excluded[u]) {
    state->excluded[u] = 1;
    std::vector<int> forced;
    bool feasible = true;
    for (int neighbor : state->graph->Neighbors(u)) {
      if (state->in_cover[neighbor]) continue;
      if (state->excluded[neighbor]) {
        feasible = false;  // both endpoints excluded: dead branch
        break;
      }
      forced.push_back(neighbor);
    }
    if (feasible) {
      for (int node : forced) {
        state->in_cover[node] = 1;
        state->weight += state->graph->weight(node);
      }
      Branch(state);
      for (int node : forced) {
        state->in_cover[node] = 0;
        state->weight -= state->graph->weight(node);
      }
    }
    state->excluded[u] = 0;
  }
}

}  // namespace

StatusOr<std::vector<int>> MinWeightVertexCoverExact(
    const NodeWeightedGraph& graph, int max_nodes) {
  if (graph.num_nodes() > max_nodes) {
    return Status::ResourceExhausted(
        "exact vertex cover limited to " + std::to_string(max_nodes) +
        " nodes, got " + std::to_string(graph.num_nodes()));
  }
  BnbState state;
  state.graph = &graph;
  state.in_cover.assign(graph.num_nodes(), 0);
  state.excluded.assign(graph.num_nodes(), 0);
  Branch(&state);
  FDR_CHECK(IsVertexCover(graph, state.best_cover));
  return state.best_cover;
}

std::vector<int> MinimizeCover(const NodeWeightedGraph& graph,
                               std::vector<int> cover) {
  std::vector<char> in_cover(graph.num_nodes(), 0);
  for (int node : cover) in_cover[node] = 1;
  // Try to drop nodes, heaviest first: a node is redundant when all its
  // neighbors are in the cover.
  std::sort(cover.begin(), cover.end(), [&](int a, int b) {
    return graph.weight(a) > graph.weight(b);
  });
  for (int node : cover) {
    bool redundant = true;
    for (int neighbor : graph.Neighbors(node)) {
      if (!in_cover[neighbor]) {
        redundant = false;
        break;
      }
    }
    if (redundant) in_cover[node] = 0;
  }
  std::vector<int> minimized;
  for (int node = 0; node < graph.num_nodes(); ++node) {
    if (in_cover[node]) minimized.push_back(node);
  }
  FDR_CHECK(IsVertexCover(graph, minimized));
  return minimized;
}

}  // namespace fdrepair
