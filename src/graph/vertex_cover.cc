#include "graph/vertex_cover.h"

#include <algorithm>
#include <limits>

namespace fdrepair {

std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph) {
  std::vector<int> order(graph.num_edges());
  for (int i = 0; i < graph.num_edges(); ++i) order[i] = i;
  return VertexCoverLocalRatio(graph, order);
}

std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph,
                                       const std::vector<int>& edge_order) {
  return VertexCoverLocalRatio(graph, edge_order, nullptr);
}

std::vector<int> VertexCoverLocalRatio(const NodeWeightedGraph& graph,
                                       const std::vector<int>& edge_order,
                                       double* dual_lower_bound) {
  std::vector<double> residual(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) residual[v] = graph.weight(v);
  double packed = 0;
  for (int edge_index : edge_order) {
    FDR_CHECK(edge_index >= 0 && edge_index < graph.num_edges());
    auto [u, v] = graph.edges()[edge_index];
    double delta = std::min(residual[u], residual[v]);
    residual[u] -= delta;
    residual[v] -= delta;
    packed += delta;
  }
  if (dual_lower_bound != nullptr) *dual_lower_bound = packed;
  std::vector<int> cover;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (residual[v] <= 1e-12 && graph.Degree(v) > 0) cover.push_back(v);
  }
  FDR_CHECK(IsVertexCover(graph, cover));
  return cover;
}

namespace {

struct BnbState {
  const NodeWeightedGraph* graph;
  std::vector<char> in_cover;
  std::vector<char> excluded;  // nodes decided out of the cover
  double weight = 0;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<int> best_cover;
  /// Cooperative limits: checked at node expansion; once tripped the whole
  /// search unwinds, leaving the incumbent in best_cover.
  VcSearchLimits limits;
  long nodes = 0;
  bool stopped = false;
};

// The deadline clock read is amortized over a small node batch.
constexpr long kDeadlineCheckInterval = 128;

bool LimitTripped(BnbState* state) {
  if (state->stopped) return true;
  ++state->nodes;
  if (state->limits.node_budget >= 0 &&
      state->nodes > state->limits.node_budget) {
    state->stopped = true;
    return true;
  }
  if (state->limits.deadline !=
          std::chrono::steady_clock::time_point::max() &&
      state->nodes % kDeadlineCheckInterval == 0 &&
      std::chrono::steady_clock::now() >= state->limits.deadline) {
    state->stopped = true;
    return true;
  }
  return false;
}

// Finds an edge not covered yet (neither endpoint in the cover); returns
// false when everything is covered.
bool FindUncoveredEdge(const BnbState& state, int* u, int* v) {
  for (const auto& [a, b] : state.graph->edges()) {
    if (!state.in_cover[a] && !state.in_cover[b]) {
      *u = a;
      *v = b;
      return true;
    }
  }
  return false;
}

void Branch(BnbState* state) {
  if (LimitTripped(state)) return;
  if (state->weight >= state->best_weight) return;  // prune
  int u, v;
  if (!FindUncoveredEdge(*state, &u, &v)) {
    state->best_weight = state->weight;
    state->best_cover.clear();
    for (int node = 0; node < state->graph->num_nodes(); ++node) {
      if (state->in_cover[node]) state->best_cover.push_back(node);
    }
    return;
  }
  // Branch 1: u joins the cover.
  if (!state->excluded[u]) {
    state->in_cover[u] = 1;
    state->weight += state->graph->weight(u);
    Branch(state);
    state->weight -= state->graph->weight(u);
    state->in_cover[u] = 0;
  }
  // Branch 2: u is excluded; then every neighbor of u must join. For the
  // chosen edge this forces v, which keeps the search tree binary.
  if (!state->excluded[u]) {
    state->excluded[u] = 1;
    std::vector<int> forced;
    bool feasible = true;
    for (int neighbor : state->graph->Neighbors(u)) {
      if (state->in_cover[neighbor]) continue;
      if (state->excluded[neighbor]) {
        feasible = false;  // both endpoints excluded: dead branch
        break;
      }
      forced.push_back(neighbor);
    }
    if (feasible) {
      for (int node : forced) {
        state->in_cover[node] = 1;
        state->weight += state->graph->weight(node);
      }
      Branch(state);
      for (int node : forced) {
        state->in_cover[node] = 0;
        state->weight -= state->graph->weight(node);
      }
    }
    state->excluded[u] = 0;
  }
}

}  // namespace

StatusOr<std::vector<int>> MinWeightVertexCoverExact(
    const NodeWeightedGraph& graph, int max_nodes) {
  if (graph.num_nodes() > max_nodes) {
    return Status::ResourceExhausted(
        "exact vertex cover limited to " + std::to_string(max_nodes) +
        " nodes, got " + std::to_string(graph.num_nodes()));
  }
  VcSearchResult result = MinWeightVertexCoverBnb(graph, VcSearchLimits{});
  // No limits were set, so the search always runs to completion.
  FDR_CHECK(result.optimal);
  return std::move(result.cover);
}

VcSearchResult MinWeightVertexCoverBnb(const NodeWeightedGraph& graph,
                                       const VcSearchLimits& limits) {
  BnbState state;
  state.graph = &graph;
  state.in_cover.assign(graph.num_nodes(), 0);
  state.excluded.assign(graph.num_nodes(), 0);
  state.limits = limits;
  // Incumbent seed: every non-isolated node is trivially a cover, so even
  // an immediately-expiring search returns something valid. Seeding with a
  // weight (rather than a real incumbent cover) would prune differently
  // and change which of several tied optima the completed search returns —
  // the trivial cover's weight only prunes branches that could never win.
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (graph.Degree(v) > 0) state.best_cover.push_back(v);
  }
  state.best_weight = graph.WeightOf(state.best_cover) +
                      std::numeric_limits<double>::epsilon();
  Branch(&state);
  VcSearchResult result;
  result.cover = std::move(state.best_cover);
  result.weight = graph.WeightOf(result.cover);
  result.optimal = !state.stopped;
  result.nodes = state.nodes;
  FDR_CHECK(IsVertexCover(graph, result.cover));
  return result;
}

std::vector<int> MinimizeCover(const NodeWeightedGraph& graph,
                               std::vector<int> cover) {
  std::vector<char> in_cover(graph.num_nodes(), 0);
  for (int node : cover) in_cover[node] = 1;
  // Try to drop nodes, heaviest first: a node is redundant when all its
  // neighbors are in the cover.
  std::sort(cover.begin(), cover.end(), [&](int a, int b) {
    return graph.weight(a) > graph.weight(b);
  });
  for (int node : cover) {
    bool redundant = true;
    for (int neighbor : graph.Neighbors(node)) {
      if (!in_cover[neighbor]) {
        redundant = false;
        break;
      }
    }
    if (redundant) in_cover[node] = 0;
  }
  std::vector<int> minimized;
  for (int node = 0; node < graph.num_nodes(); ++node) {
    if (in_cover[node]) minimized.push_back(node);
  }
  FDR_CHECK(IsVertexCover(graph, minimized));
  return minimized;
}

}  // namespace fdrepair
