// Min-cost flow via successive shortest augmenting paths (Bellman-Ford /
// SPFA on the residual network). This is the engine behind the maximum
// weight bipartite matching that Subroutine 3 (MarriageRep) requires.
//
// Costs are doubles (tuple weights are real-valued); an epsilon guards the
// "is this path still profitable" test when augmentation may stop early.

#ifndef FDREPAIR_GRAPH_MIN_COST_FLOW_H_
#define FDREPAIR_GRAPH_MIN_COST_FLOW_H_

#include <vector>

#include "common/status.h"

namespace fdrepair {

/// A directed flow network with per-edge capacity and cost.
class MinCostFlow {
 public:
  /// A network with `num_nodes` nodes and no edges.
  explicit MinCostFlow(int num_nodes);

  /// Adds a directed edge; returns its index for later Flow() queries.
  /// Capacity must be non-negative; cost may be negative (max-weight
  /// matching negates weights).
  int AddEdge(int from, int to, double capacity, double cost);

  struct Result {
    double flow = 0;
    double cost = 0;
  };

  /// Repeatedly augments along a minimum-cost path from `source` to `sink`.
  /// With `stop_on_nonnegative_path` set, stops as soon as the cheapest
  /// augmenting path has cost >= -epsilon — exactly the stopping rule that
  /// turns min-cost flow into *maximum-weight* (not maximum-cardinality)
  /// matching.
  Result Solve(int source, int sink, bool stop_on_nonnegative_path = false);

  /// Flow routed through edge `edge_index` (as returned by AddEdge).
  double Flow(int edge_index) const;

 private:
  struct Edge {
    int to;
    double capacity;  // residual capacity
    double cost;
    int twin;  // index of the reverse edge
  };

  // Shortest path by cost from `source`; fills dist/parent_edge. Returns
  // true iff sink reachable.
  bool ShortestPath(int source, int sink, std::vector<double>* dist,
                    std::vector<int>* parent_edge) const;

  int num_nodes_;
  std::vector<Edge> edges_;                // interleaved edge/twin pairs
  std::vector<std::vector<int>> adjacency_;  // node -> edge indices
  std::vector<int> public_edges_;          // AddEdge order -> edges_ index
};

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_MIN_COST_FLOW_H_
