// Node-weighted undirected graphs: the shared currency between the conflict
// graph (tuples + violations), the vertex-cover solvers (Prop 3.3) and the
// hardness-gadget generators (vertex cover, triangle packing).

#ifndef FDREPAIR_GRAPH_GRAPH_H_
#define FDREPAIR_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fdrepair {

/// An undirected graph with positive node weights and a simple edge list.
/// Parallel edges are collapsed; self-loops are rejected.
class NodeWeightedGraph {
 public:
  /// `n` isolated nodes of weight 1.
  explicit NodeWeightedGraph(int n);

  int num_nodes() const { return static_cast<int>(weights_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  double weight(int node) const;
  void set_weight(int node, double weight);

  /// Adds edge {u, v} (u != v); duplicate edges are ignored.
  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const;

  /// Edges as (u, v) with u < v, in insertion order.
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// Neighbor lists (maintained by AddEdge).
  const std::vector<int>& Neighbors(int node) const;
  int Degree(int node) const;

  /// Maximum degree over all nodes (0 for empty graphs).
  int MaxDegree() const;

  /// Sum of weights of the given nodes.
  double WeightOf(const std::vector<int>& nodes) const;

 private:
  uint64_t EdgeKey(int u, int v) const;

  std::vector<double> weights_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adjacency_;
  std::unordered_set<uint64_t> edge_keys_;
};

/// True iff `cover` (a set of node ids) touches every edge.
bool IsVertexCover(const NodeWeightedGraph& graph,
                   const std::vector<int>& cover);

}  // namespace fdrepair

#endif  // FDREPAIR_GRAPH_GRAPH_H_
