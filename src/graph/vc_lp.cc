#include "graph/vc_lp.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace fdrepair {
namespace {

constexpr double kEps = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dinic max-flow on a small arena-allocated arc list. Capacities are
/// doubles (tuple weights); kEps guards the saturation tests, and the phase
/// structure (level strictly increases, each augment saturates an arc)
/// terminates for real-valued capacities just as for integers.
class Dinic {
 public:
  explicit Dinic(int num_nodes)
      : head_(num_nodes, -1), level_(num_nodes), iter_(num_nodes) {}

  void AddArc(int from, int to, double capacity) {
    arcs_.push_back(Arc{to, head_[from], capacity});
    head_[from] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back(Arc{from, head_[to], 0});
    head_[to] = static_cast<int>(arcs_.size()) - 1;
  }

  double MaxFlow(int source, int sink) {
    double flow = 0;
    while (Bfs(source, sink)) {
      iter_ = head_;
      double pushed;
      while ((pushed = Dfs(source, sink, kInf)) > kEps) flow += pushed;
    }
    return flow;
  }

  /// Residual reachability from `source` after MaxFlow: the s-side of a
  /// minimum cut.
  std::vector<char> SourceSide(int source) const {
    std::vector<char> seen(head_.size(), 0);
    std::queue<int> queue;
    queue.push(source);
    seen[source] = 1;
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop();
      for (int a = head_[v]; a != -1; a = arcs_[a].next) {
        if (arcs_[a].capacity > kEps && !seen[arcs_[a].to]) {
          seen[arcs_[a].to] = 1;
          queue.push(arcs_[a].to);
        }
      }
    }
    return seen;
  }

 private:
  struct Arc {
    int to;
    int next;  // previous arc out of the same node (intrusive list)
    double capacity;
  };

  bool Bfs(int source, int sink) {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<int> queue;
    queue.push(source);
    level_[source] = 0;
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop();
      for (int a = head_[v]; a != -1; a = arcs_[a].next) {
        if (arcs_[a].capacity > kEps && level_[arcs_[a].to] < 0) {
          level_[arcs_[a].to] = level_[v] + 1;
          queue.push(arcs_[a].to);
        }
      }
    }
    return level_[sink] >= 0;
  }

  double Dfs(int v, int sink, double limit) {
    if (v == sink) return limit;
    for (int& a = iter_[v]; a != -1; a = arcs_[a].next) {
      Arc& arc = arcs_[a];
      if (arc.capacity <= kEps || level_[arc.to] != level_[v] + 1) continue;
      double pushed = Dfs(arc.to, sink, std::min(limit, arc.capacity));
      if (pushed > kEps) {
        arc.capacity -= pushed;
        arcs_[a ^ 1].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace

VcLpSolution SolveVcLp(const NodeWeightedGraph& graph) {
  const int n = graph.num_nodes();
  VcLpSolution solution;
  solution.x.assign(n, 0.0);
  if (graph.num_edges() == 0) return solution;

  // Bipartite doubling: nodes 0..n-1 are the left copies, n..2n-1 the right
  // copies, 2n the source, 2n+1 the sink. Both copies of v carry w_v; each
  // original edge {u, v} becomes the two uncuttable arcs L_u→R_v, L_v→R_u.
  // max-flow = min-weight vertex cover of the doubling = 2 · LP optimum.
  const int source = 2 * n;
  const int sink = 2 * n + 1;
  Dinic dinic(2 * n + 2);
  for (int v = 0; v < n; ++v) {
    if (graph.Degree(v) == 0) continue;
    dinic.AddArc(source, v, graph.weight(v));
    dinic.AddArc(n + v, sink, graph.weight(v));
  }
  for (const auto& [u, v] : graph.edges()) {
    dinic.AddArc(u, n + v, kInf);
    dinic.AddArc(v, n + u, kInf);
  }
  const double flow = dinic.MaxFlow(source, sink);
  const std::vector<char> s_side = dinic.SourceSide(source);

  // Min-cut → min-weight cover of the doubling: L_v is in the cover iff
  // s→L_v is cut (L_v unreachable), R_v iff R_v→t is cut (R_v reachable).
  // x_v = (in-cover count of v's two copies) / 2 is an optimal half-
  // integral LP solution (Nemhauser–Trotter).
  for (int v = 0; v < n; ++v) {
    if (graph.Degree(v) == 0) continue;
    const int copies = (s_side[v] ? 0 : 1) + (s_side[n + v] ? 1 : 0);
    solution.x[v] = copies / 2.0;
    if (copies == 2) {
      solution.ones.push_back(v);
    } else if (copies == 1) {
      solution.halves.push_back(v);
    }
  }
  solution.value = flow / 2.0;
  return solution;
}

double VcDualAscentBound(const NodeWeightedGraph& graph,
                         const std::vector<char>& alive) {
  std::vector<double> residual(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) residual[v] = graph.weight(v);
  double packed = 0;
  for (const auto& [u, v] : graph.edges()) {
    if (!alive[u] || !alive[v]) continue;
    const double delta = std::min(residual[u], residual[v]);
    if (delta <= kEps) continue;
    residual[u] -= delta;
    residual[v] -= delta;
    packed += delta;
  }
  return packed;
}

double VcDualAscentBound(const NodeWeightedGraph& graph) {
  return VcDualAscentBound(graph,
                           std::vector<char>(graph.num_nodes(), 1));
}

}  // namespace fdrepair
