// TableDelta: the mutation description behind incremental repair serving.
//
// Production repair traffic is not one-shot — a table takes row inserts,
// cell updates and row deletions between requests. Re-hashing the whole
// table after every edit would change the serving cache key and throw away
// the cached repair recipe; a TableDelta instead names exactly which tuple
// identifiers changed and carries a *chain hash*:
//
//   result_hash = H(base_hash, canonicalized delta, new content of the
//                   inserted/updated rows)
//
// so the mutated state has a stable 64-bit identity computed in O(|delta|),
// deltas compose (delta2.base_hash == delta1.result_hash), and cache keys
// stay sound: two different mutations of the same base can never alias,
// because every inserted/updated row's content (id, weight, value texts) is
// bound into the hash with the same framed mixing as TableContentHash.
// Deleted rows are bound by identifier only — their content is already
// bound inside base_hash.
//
// Note the chain hash of a mutated state deliberately differs from
// TableContentHash of the same state: a delta-served entry is keyed by its
// chain, a cold request by its content. The two keys never alias each
// other (both are FNV-1a over differently-framed streams), they just don't
// share cache entries — the price of O(|delta|) instead of O(|table|)
// identity. See docs/ARCHITECTURE.md, "Caching & invalidation semantics".

#ifndef FDREPAIR_STORAGE_TABLE_DELTA_H_
#define FDREPAIR_STORAGE_TABLE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// A canonical description of one mutation step between two table states.
/// The id lists are disjoint and sorted ascending (see Canonicalize):
///   inserted — present only in the mutated state;
///   updated  — present in both, at least one cell rewritten (weight
///              changes also count as updates);
///   deleted  — present only in the base state.
struct TableDelta {
  /// Identity of the pre-mutation state: TableContentHash of the base
  /// table for the first delta in a chain, the previous delta's
  /// result_hash afterwards.
  uint64_t base_hash = 0;
  std::vector<TupleId> inserted;
  std::vector<TupleId> updated;
  std::vector<TupleId> deleted;
  /// Identity of the mutated state; must equal
  /// DeltaChainHash(*this, mutated_table) (ValidateDelta enforces this).
  uint64_t result_hash = 0;

  bool empty() const {
    return inserted.empty() && updated.empty() && deleted.empty();
  }

  /// Sorts the three id lists ascending and drops duplicates, the form
  /// DeltaChainHash expects — so the same logical mutation always hashes
  /// the same regardless of the order edits were recorded in.
  void Canonicalize();
};

/// The chain hash of the mutated state reached by applying `delta` to the
/// state identified by delta.base_hash. Reads the new content of
/// inserted/updated rows from `mutated`; O(|delta|), not O(|table|).
/// Requires the delta to be canonical (sorted, disjoint) and every
/// inserted/updated id to resolve in `mutated` — kInvalidArgument
/// otherwise. delta.result_hash itself is ignored (this function computes
/// it).
StatusOr<uint64_t> DeltaChainHash(const TableDelta& delta,
                                  const Table& mutated);

/// Full structural validation of a delta against the mutated table it
/// claims to describe: canonical id lists, pairwise disjoint, inserted and
/// updated ids present in `mutated`, deleted ids absent, and result_hash
/// equal to DeltaChainHash. The service runs this before trusting a
/// delta-keyed cache entry.
Status ValidateDelta(const TableDelta& delta, const Table& mutated);

/// Records mutations against a working copy of a table and emits canonical
/// TableDeltas whose chain hashes compose. Convenience for tests, benches
/// and the replay example — a real client may assemble TableDeltas itself.
///
/// Within one delta, edits to the same id collapse to the client-visible
/// net effect: insert+update stays an insert (the final content is bound
/// by the chain hash anyway), insert+erase disappears entirely,
/// update+erase is an erase, and re-inserting a previously erased id
/// reports an update (same id, new content). Not thread-safe.
class DeltaBuilder {
 public:
  /// Starts a chain at `base`; base_hash = TableContentHash(base), so the
  /// first emitted delta chains off the base table's *content* identity —
  /// the key a cold request for the base table would be cached under.
  explicit DeltaBuilder(const Table& base);

  /// The current (mutated) state.
  const Table& table() const { return table_; }

  /// Appends a fresh tuple (auto-assigned id, weight 1 unless given).
  TupleId Insert(const std::vector<std::string>& values, double weight = 1.0);
  /// Rewrites one cell of the tuple with identifier `id`.
  Status Update(TupleId id, AttrId attr, const std::string& text);
  /// Removes the tuple with identifier `id` (later rows shift down).
  Status Erase(TupleId id);

  /// The canonical delta for every edit since construction or the last
  /// Finish(), with base_hash/result_hash filled in. Resets the recording:
  /// the next Finish() chains off this one's result_hash.
  TableDelta Finish();

 private:
  enum class Edit { kInserted, kUpdated, kDeleted };

  Table table_;
  uint64_t chain_hash_ = 0;
  /// Net per-id effect of the edits recorded since the last Finish().
  std::unordered_map<TupleId, Edit> edits_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_TABLE_DELTA_H_
