// TableView: a zero-copy view over a subset of a Table's rows.
//
// The OptSRepair recursion repeatedly partitions the input by attribute
// values (σ_{A=a}T in Subroutines 1–3). Views keep those partitions as index
// vectors into the root table, so the recursion's total work follows the
// paper's recurrences (3)–(5) instead of copying tuples at every level.
//
// The GroupRows/GroupBy APIs below materialize one index vector per group;
// the OptSRepair hot path no longer uses them — it permutes a shared
// row-index buffer in place instead (storage/row_span.h) — but they remain
// the convenient interface for everything off the hot path, and the oracle
// the span core is tested against. GroupRows deliberately stays on the
// row-major tuple representation: it is the layout-independent reference
// that the columnar + SIMD grouping fast paths (and the preserved
// row-major span path) are pinned against in tests/row_span_test.cc.

#ifndef FDREPAIR_STORAGE_TABLE_VIEW_H_
#define FDREPAIR_STORAGE_TABLE_VIEW_H_

#include <vector>

#include "catalog/attrset.h"
#include "storage/table.h"

namespace fdrepair {

/// A key for hashing a tuple's projection onto an AttrSet.
struct ProjectionKey {
  std::vector<ValueId> values;
  bool operator==(const ProjectionKey& other) const = default;
};

struct ProjectionKeyHash {
  size_t operator()(const ProjectionKey& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (ValueId v : key.values) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Projects `tuple` onto `attrs` (in increasing attribute order).
ProjectionKey ProjectTuple(const Tuple& tuple, AttrSet attrs);

/// A π_attrs grouping of view rows: keys[g] is group g's projection and
/// rows[g] its dense row positions, in first-appearance order.
struct GroupedRows {
  std::vector<ProjectionKey> keys;
  std::vector<std::vector<int>> rows;
};

/// A lightweight (pointer + indices) view; the Table must outlive it.
/// Views only read the table, so distinct views over one table may be used
/// from different threads concurrently (see the Table thread-safety note).
class TableView {
 public:
  /// A view of every row of `table`.
  explicit TableView(const Table& table);
  /// A view of the given dense row positions of `table`.
  TableView(const Table& table, std::vector<int> rows);

  const Table& table() const { return *table_; }
  int num_tuples() const { return static_cast<int>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  /// The underlying dense row position of the i-th view row.
  int row(int i) const { return rows_[i]; }
  const std::vector<int>& rows() const { return rows_; }

  const Tuple& tuple(int i) const { return table_->tuple(rows_[i]); }
  TupleId id(int i) const { return table_->id(rows_[i]); }
  double weight(int i) const { return table_->weight(rows_[i]); }
  ValueId value(int i, AttrId attr) const {
    return table_->value(rows_[i], attr);
  }

  /// Sum of view-row weights.
  double TotalWeight() const;

  /// Groups the view rows by their projection onto `attrs` (π_attrs),
  /// in first-appearance order, keeping each group's projection key.
  /// This ordering is load-bearing: the parallel engine's bit-identical
  /// guarantee reduces block results in exactly this order.
  GroupedRows GroupRows(AttrSet attrs) const;

  /// GroupRows, with each group wrapped as a view (keys dropped).
  /// Groups come back in first-appearance order; each group is non-empty.
  std::vector<TableView> GroupBy(AttrSet attrs) const;

  /// Materializes the view as a Table (preserving ids and weights).
  Table ToTable() const;

 private:
  const Table* table_;
  std::vector<int> rows_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_TABLE_VIEW_H_
