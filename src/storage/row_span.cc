#include "storage/row_span.h"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace fdrepair {

void GroupScratch::GroupInPlace(RowSpan span, AttrSet attrs,
                                std::vector<int>* group_ends) {
  group_ends->clear();
  const int n = span.num_tuples();
  if (n == 0) return;
  if (attrs.empty()) {
    // π_∅ puts every row in one trivial group; nothing to permute.
    group_ends->push_back(n);
    return;
  }
  if (static_cast<int>(group_of_row_.size()) < n) group_of_row_.resize(n);
  int num_groups;
  if (attrs.size() == 1) {
    num_groups = AssignGroupsSingleAttr(span, attrs.First());
  } else if (attrs.size() == 2) {
    const AttrId a1 = attrs.First();
    const AttrId a2 = attrs.Minus(AttrSet::Singleton(a1)).First();
    num_groups = AssignGroupsPackedPair(span, a1, a2);
  } else {
    num_groups = AssignGroupsGeneric(span, attrs);
  }
  if (num_groups == 1) {
    // Already contiguous; skip the scatter.
    group_ends->push_back(n);
    return;
  }
  ScatterByGroup(span, num_groups, group_ends);
}

int GroupScratch::AssignGroupsSingleAttr(RowSpan span, AttrId attr) {
  const int n = span.num_tuples();
  // Epoch stamping makes the dense slot table reusable without clearing:
  // a slot belongs to this call iff its epoch matches.
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    value_slot_.assign(value_slot_.size(), ValueSlot{});
    epoch_ = 0;
  }
  ++epoch_;
  ValueId max_value = 0;
  for (int i = 0; i < n; ++i) {
    const ValueId v = span.value(i, attr);
    FDR_DCHECK_MSG(v >= 0, "value id " << v);
    max_value = std::max(max_value, v);
  }
  if (static_cast<size_t>(max_value) >= value_slot_.size()) {
    value_slot_.resize(static_cast<size_t>(max_value) + 1);
  }
  int num_groups = 0;
  for (int i = 0; i < n; ++i) {
    ValueSlot& slot = value_slot_[span.value(i, attr)];
    if (slot.epoch != epoch_) {
      slot.epoch = epoch_;
      slot.group = num_groups++;
    }
    group_of_row_[i] = slot.group;
  }
  return num_groups;
}

int GroupScratch::AssignGroupsPackedPair(RowSpan span, AttrId a1, AttrId a2) {
  const int n = span.num_tuples();
  packed_group_.clear();
  int num_groups = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(span.value(i, a1)))
         << 32) |
        static_cast<uint32_t>(span.value(i, a2));
    auto [it, inserted] = packed_group_.emplace(key, num_groups);
    if (inserted) ++num_groups;
    group_of_row_[i] = it->second;
  }
  return num_groups;
}

int GroupScratch::AssignGroupsGeneric(RowSpan span, AttrSet attrs) {
  const int n = span.num_tuples();
  projection_index_.Clear();
  witness_.clear();
  auto witness_tuple = [&](int g) -> const Tuple& {
    return span.table().tuple(witness_[g]);
  };
  for (int i = 0; i < n; ++i) {
    bool created = false;
    const int group = projection_index_.FindOrCreate(span.tuple(i), attrs,
                                                     witness_tuple, &created);
    if (created) witness_.push_back(span.row(i));
    group_of_row_[i] = group;
  }
  return projection_index_.size();
}

void GroupScratch::ScatterByGroup(RowSpan span, int num_groups,
                                  std::vector<int>* group_ends) {
  const int n = span.num_tuples();
  group_start_.assign(num_groups, 0);
  for (int i = 0; i < n; ++i) ++group_start_[group_of_row_[i]];
  int total = 0;
  group_ends->reserve(num_groups);
  for (int g = 0; g < num_groups; ++g) {
    const int size = group_start_[g];
    group_start_[g] = total;
    total += size;
    group_ends->push_back(total);
  }
  if (static_cast<int>(scatter_.size()) < n) scatter_.resize(n);
  int* data = span.data();
  for (int i = 0; i < n; ++i) {
    scatter_[group_start_[group_of_row_[i]]++] = data[i];
  }
  std::copy(scatter_.begin(), scatter_.begin() + n, data);
}

int GroupScratch::AssignDistinctIndices(RowSpan span,
                                        const std::vector<int>& group_ends,
                                        AttrSet attrs,
                                        std::vector<int>* index_of_group) {
  index_of_group->clear();
  const int num_groups = static_cast<int>(group_ends.size());
  index_of_group->reserve(num_groups);
  projection_index_.Clear();
  witness_.clear();
  auto witness_tuple = [&](int d) -> const Tuple& {
    return span.table().tuple(witness_[d]);
  };
  int begin = 0;
  for (int g = 0; g < num_groups; ++g) {
    const int witness_row = span.row(begin);
    bool created = false;
    const int index = projection_index_.FindOrCreate(
        span.table().tuple(witness_row), attrs, witness_tuple, &created);
    if (created) witness_.push_back(witness_row);
    index_of_group->push_back(index);
    begin = group_ends[g];
  }
  return projection_index_.size();
}

std::vector<int> GroupScratch::AcquireIntBuffer() {
  if (free_buffers_.empty()) return {};
  std::vector<int> buffer = std::move(free_buffers_.back());
  free_buffers_.pop_back();
  buffer.clear();
  return buffer;
}

void GroupScratch::ReleaseIntBuffer(std::vector<int> buffer) {
  free_buffers_.push_back(std::move(buffer));
}

}  // namespace fdrepair
