#include "storage/row_span.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

namespace fdrepair {

namespace {
std::atomic<int> active_layout{static_cast<int>(GroupingLayout::kColumnar)};
}  // namespace

void SetGroupingLayout(GroupingLayout layout) {
  active_layout.store(static_cast<int>(layout), std::memory_order_relaxed);
}

GroupingLayout ActiveGroupingLayout() {
  return static_cast<GroupingLayout>(
      active_layout.load(std::memory_order_relaxed));
}

void GroupScratch::GroupInPlace(RowSpan span, AttrSet attrs,
                                std::vector<int>* group_ends) {
  group_ends->clear();
  const int n = span.num_tuples();
  if (n == 0) return;
  if (attrs.empty()) {
    // π_∅ puts every row in one trivial group; nothing to permute.
    group_ends->push_back(n);
    return;
  }
  if (static_cast<int>(group_of_row_.size()) < n) group_of_row_.resize(n);
  const bool columnar = ActiveGroupingLayout() == GroupingLayout::kColumnar;
  int num_groups;
  if (attrs.size() == 1) {
    num_groups = columnar ? AssignGroupsSingleAttr(span, attrs.First())
                          : AssignGroupsSingleAttrRowMajor(span, attrs.First());
  } else if (attrs.size() == 2) {
    const AttrId a1 = attrs.First();
    const AttrId a2 = attrs.Minus(AttrSet::Singleton(a1)).First();
    num_groups = columnar ? AssignGroupsPackedPair(span, a1, a2)
                          : AssignGroupsPackedPairRowMajor(span, a1, a2);
  } else {
    num_groups = AssignGroupsGeneric(span, attrs);
  }
  if (num_groups == 1) {
    // Already contiguous; skip the scatter.
    group_ends->push_back(n);
    return;
  }
  if (num_groups == n) {
    // Every row is its own group, so first-appearance order IS the current
    // order: the permutation is the identity. Skip the scatter.
    for (int i = 1; i <= n; ++i) group_ends->push_back(i);
    return;
  }
  ScatterByGroup(span, num_groups, group_ends);
}

int GroupScratch::AssignGroupsSingleAttr(RowSpan span, AttrId attr) {
  const int n = span.num_tuples();
  const ValueId* column = span.table().ColumnData(attr);
  const int* rows = span.data();
  value_index_.Clear();
  bool created = false;
  if (n >= kSimdStagingMinRows &&
      simd::ActiveSimdMode() == simd::SimdMode::kAvx2) {
    // Large windows: one 8-lane gather+max pass stages the key values into
    // a dense buffer (sizing the slot table in the same pass); the dedup
    // loop then streams the staging buffer sequentially. Group ids come
    // out in first-appearance order on every path, so all three variants
    // (staged, fused, row-major) are bit-identical.
    if (static_cast<int>(gathered_values_.size()) < n) {
      gathered_values_.resize(n);
    }
    const ValueId max_value =
        simd::GatherWithMax(column, rows, n, gathered_values_.data());
    value_index_.Reserve(max_value);
    for (int i = 0; i < n; ++i) {
      group_of_row_[i] =
          value_index_.FindOrCreate(gathered_values_[i], &created);
    }
    return value_index_.size();
  }
  // Small windows (or scalar dispatch): a fused single pass straight off
  // the contiguous column — no staging, no max prescan (the slot table
  // grows on demand and retains its high-water capacity across calls).
  // This is where the columnar layout beats the row-major path even
  // without SIMD: the pre-columnar loop made two strided passes through
  // tuple[attr], chasing one Tuple pointer per row per pass.
  for (int i = 0; i < n; ++i) {
    group_of_row_[i] = value_index_.FindOrCreate(column[rows[i]], &created);
  }
  return value_index_.size();
}

int GroupScratch::AssignGroupsSingleAttrRowMajor(RowSpan span, AttrId attr) {
  // The pre-columnar path: two strided passes through tuple[attr].
  // Preserved verbatim as the bench/test oracle for the columnar path.
  const int n = span.num_tuples();
  value_index_.Clear();
  ValueId max_value = 0;
  for (int i = 0; i < n; ++i) {
    const ValueId v = span.value(i, attr);
    FDR_DCHECK_MSG(v >= 0, "value id " << v);
    max_value = std::max(max_value, v);
  }
  value_index_.Reserve(max_value);
  for (int i = 0; i < n; ++i) {
    bool created = false;
    group_of_row_[i] = value_index_.FindOrCreate(span.value(i, attr), &created);
  }
  return value_index_.size();
}

int GroupScratch::AssignGroupsPackedPair(RowSpan span, AttrId a1, AttrId a2) {
  const int n = span.num_tuples();
  const ValueId* c1 = span.table().ColumnData(a1);
  const ValueId* c2 = span.table().ColumnData(a2);
  const int* rows = span.data();
  packed_group_.clear();
  int num_groups = 0;
  if (n >= kSimdStagingMinRows &&
      simd::ActiveSimdMode() == simd::SimdMode::kAvx2) {
    // Large windows: gather both key columns and pack the exact 64-bit
    // keys 8 rows per iteration; the hash-map dedup then streams a dense
    // buffer.
    if (static_cast<int>(gathered_pairs_.size()) < n) {
      gathered_pairs_.resize(n);
    }
    simd::GatherPackPairs(c1, c2, rows, n, gathered_pairs_.data());
    for (int i = 0; i < n; ++i) {
      auto [it, inserted] =
          packed_group_.emplace(gathered_pairs_[i], num_groups);
      if (inserted) ++num_groups;
      group_of_row_[i] = it->second;
    }
    return num_groups;
  }
  // Small windows (or scalar dispatch): fused pack straight off the two
  // contiguous columns.
  for (int i = 0; i < n; ++i) {
    const int row = rows[i];
    auto [it, inserted] =
        packed_group_.emplace(simd::PackPair(c1[row], c2[row]), num_groups);
    if (inserted) ++num_groups;
    group_of_row_[i] = it->second;
  }
  return num_groups;
}

int GroupScratch::AssignGroupsPackedPairRowMajor(RowSpan span, AttrId a1,
                                                 AttrId a2) {
  const int n = span.num_tuples();
  packed_group_.clear();
  int num_groups = 0;
  for (int i = 0; i < n; ++i) {
    auto [it, inserted] = packed_group_.emplace(
        simd::PackPair(span.value(i, a1), span.value(i, a2)), num_groups);
    if (inserted) ++num_groups;
    group_of_row_[i] = it->second;
  }
  return num_groups;
}

int GroupScratch::AssignGroupsGeneric(RowSpan span, AttrSet attrs) {
  const int n = span.num_tuples();
  projection_index_.Clear();
  witness_.clear();
  auto witness_tuple = [&](int g) -> const Tuple& {
    return span.table().tuple(witness_[g]);
  };
  for (int i = 0; i < n; ++i) {
    bool created = false;
    const int group = projection_index_.FindOrCreate(span.tuple(i), attrs,
                                                     witness_tuple, &created);
    if (created) witness_.push_back(span.row(i));
    group_of_row_[i] = group;
  }
  return projection_index_.size();
}

void GroupScratch::ScatterByGroup(RowSpan span, int num_groups,
                                  std::vector<int>* group_ends) {
  const int n = span.num_tuples();
  group_start_.assign(num_groups, 0);
  for (int i = 0; i < n; ++i) ++group_start_[group_of_row_[i]];
  int total = 0;
  group_ends->reserve(num_groups);
  for (int g = 0; g < num_groups; ++g) {
    const int size = group_start_[g];
    group_start_[g] = total;
    total += size;
    group_ends->push_back(total);
  }
  if (static_cast<int>(scatter_.size()) < n) scatter_.resize(n);
  int* data = span.data();
  for (int i = 0; i < n; ++i) {
    scatter_[group_start_[group_of_row_[i]]++] = data[i];
  }
  std::copy(scatter_.begin(), scatter_.begin() + n, data);
}

int GroupScratch::AssignDistinctIndices(RowSpan span,
                                        const std::vector<int>& group_ends,
                                        AttrSet attrs,
                                        std::vector<int>* index_of_group) {
  index_of_group->clear();
  const int num_groups = static_cast<int>(group_ends.size());
  index_of_group->reserve(num_groups);
  if (attrs.size() == 1 &&
      ActiveGroupingLayout() == GroupingLayout::kColumnar) {
    // Single-attribute side (the common marriage shape): resolve each
    // group's witness value straight out of the column store.
    const ValueId* column = span.table().ColumnData(attrs.First());
    value_index_.Clear();
    int begin = 0;
    for (int g = 0; g < num_groups; ++g) {
      bool created = false;
      index_of_group->push_back(
          value_index_.FindOrCreate(column[span.row(begin)], &created));
      begin = group_ends[g];
    }
    return value_index_.size();
  }
  projection_index_.Clear();
  witness_.clear();
  auto witness_tuple = [&](int d) -> const Tuple& {
    return span.table().tuple(witness_[d]);
  };
  int begin = 0;
  for (int g = 0; g < num_groups; ++g) {
    const int witness_row = span.row(begin);
    bool created = false;
    const int index = projection_index_.FindOrCreate(
        span.table().tuple(witness_row), attrs, witness_tuple, &created);
    if (created) witness_.push_back(witness_row);
    index_of_group->push_back(index);
    begin = group_ends[g];
  }
  return projection_index_.size();
}

std::vector<int> GroupScratch::AcquireIntBuffer() {
  if (free_buffers_.empty()) return {};
  std::vector<int> buffer = std::move(free_buffers_.back());
  free_buffers_.pop_back();
  buffer.clear();
  return buffer;
}

void GroupScratch::ReleaseIntBuffer(std::vector<int> buffer) {
  free_buffers_.push_back(std::move(buffer));
}

}  // namespace fdrepair
