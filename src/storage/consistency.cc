#include "storage/consistency.h"

#include <unordered_map>

namespace fdrepair {

bool Satisfies(const TableView& view, const FdSet& fds) {
  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    // Map lhs projection -> the rhs value every tuple in the group must share.
    std::unordered_map<ProjectionKey, ValueId, ProjectionKeyHash> rhs_of;
    for (int i = 0; i < view.num_tuples(); ++i) {
      ProjectionKey key = ProjectTuple(view.tuple(i), fd.lhs);
      ValueId rhs = view.value(i, fd.rhs);
      auto [it, inserted] = rhs_of.emplace(std::move(key), rhs);
      if (!inserted && it->second != rhs) return false;
    }
  }
  return true;
}

bool Satisfies(const Table& table, const FdSet& fds) {
  return Satisfies(TableView(table), fds);
}

std::vector<Violation> FindViolations(const TableView& view, const FdSet& fds) {
  std::vector<Violation> out;
  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    // Group rows by lhs projection; within a group, tuples with different
    // rhs values pairwise violate the FD.
    std::unordered_map<ProjectionKey, std::vector<int>, ProjectionKeyHash>
        groups;
    for (int i = 0; i < view.num_tuples(); ++i) {
      groups[ProjectTuple(view.tuple(i), fd.lhs)].push_back(i);
    }
    for (const auto& [key, members] : groups) {
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          int i = members[a];
          int j = members[b];
          if (view.value(i, fd.rhs) != view.value(j, fd.rhs)) {
            out.push_back(Violation{view.row(i), view.row(j), fd});
          }
        }
      }
    }
  }
  return out;
}

bool PairConsistent(const Tuple& t, const Tuple& s, const FdSet& fds) {
  for (const Fd& fd : fds.fds()) {
    bool lhs_agree = true;
    ForEachAttr(fd.lhs, [&](AttrId attr) {
      if (t[attr] != s[attr]) lhs_agree = false;
    });
    if (lhs_agree && t[fd.rhs] != s[fd.rhs]) return false;
  }
  return true;
}

}  // namespace fdrepair
