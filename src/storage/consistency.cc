#include "storage/consistency.h"

#include <unordered_map>

#include "storage/row_span.h"

namespace fdrepair {

bool Satisfies(const TableView& view, const FdSet& fds) {
  // Hash-plus-witness lhs grouping (ProjectionIndex, storage/row_span.h):
  // no per-row ProjectionKey is ever materialized. Satisfies sits on the
  // verify and serving paths, where it runs once per candidate repair.
  // Single-attribute lhs (the common FD shape) takes a columnar fast path:
  // one SIMD gather per column and an epoch-stamped DenseValueIndex sweep
  // instead of per-row tuple reads and projection hashing.
  const int n = view.num_tuples();
  DenseValueIndex lhs_values;
  std::vector<ValueId> lhs_staged;  // gathered lhs values, dense by view row
  ProjectionIndex lhs_index;
  std::vector<int> witness;    // entry -> view index of the group's first row
  std::vector<ValueId> rhs;    // entry -> the rhs value the group must share
  auto witness_tuple = [&](int g) -> const Tuple& {
    return view.tuple(witness[g]);
  };
  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    if (fd.lhs.size() == 1) {
      // Same size dispatch as the grouping core: small views run a fused
      // single pass straight off the two columns (keeping the row-by-row
      // early exit at the first violation); large views stage the lhs
      // column through the SIMD gather first. rhs values are read straight
      // from their column in both shapes — staging them would cost a full
      // pass before the first violation check.
      const ValueId* lhs_column = view.table().ColumnData(fd.lhs.First());
      const ValueId* rhs_column = view.table().ColumnData(fd.rhs);
      const int* rows = view.rows().data();
      lhs_values.Clear();
      rhs.clear();
      if (n >= kSimdStagingMinRows &&
          simd::ActiveSimdMode() == simd::SimdMode::kAvx2) {
        lhs_staged.resize(n);
        const ValueId max_lhs =
            simd::GatherWithMax(lhs_column, rows, n, lhs_staged.data());
        lhs_values.Reserve(max_lhs);
        for (int i = 0; i < n; ++i) {
          bool created = false;
          const int g = lhs_values.FindOrCreate(lhs_staged[i], &created);
          const ValueId r = rhs_column[rows[i]];
          if (created) {
            rhs.push_back(r);
          } else if (rhs[g] != r) {
            return false;
          }
        }
      } else {
        for (int i = 0; i < n; ++i) {
          bool created = false;
          const int g = lhs_values.FindOrCreate(lhs_column[rows[i]], &created);
          const ValueId r = rhs_column[rows[i]];
          if (created) {
            rhs.push_back(r);
          } else if (rhs[g] != r) {
            return false;
          }
        }
      }
      continue;
    }
    lhs_index.Clear();
    witness.clear();
    rhs.clear();
    for (int i = 0; i < n; ++i) {
      const Tuple& tuple = view.tuple(i);
      bool created = false;
      const int g =
          lhs_index.FindOrCreate(tuple, fd.lhs, witness_tuple, &created);
      if (created) {
        witness.push_back(i);
        rhs.push_back(tuple[fd.rhs]);
      } else if (rhs[g] != tuple[fd.rhs]) {
        return false;
      }
    }
  }
  return true;
}

bool Satisfies(const Table& table, const FdSet& fds) {
  return Satisfies(TableView(table), fds);
}

std::vector<Violation> FindViolations(const TableView& view, const FdSet& fds) {
  std::vector<Violation> out;
  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    // Group rows by lhs projection; within a group, tuples with different
    // rhs values pairwise violate the FD.
    std::unordered_map<ProjectionKey, std::vector<int>, ProjectionKeyHash>
        groups;
    for (int i = 0; i < view.num_tuples(); ++i) {
      groups[ProjectTuple(view.tuple(i), fd.lhs)].push_back(i);
    }
    for (const auto& [key, members] : groups) {
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          int i = members[a];
          int j = members[b];
          if (view.value(i, fd.rhs) != view.value(j, fd.rhs)) {
            out.push_back(Violation{view.row(i), view.row(j), fd});
          }
        }
      }
    }
  }
  return out;
}

bool PairConsistent(const Tuple& t, const Tuple& s, const FdSet& fds) {
  for (const Fd& fd : fds.fds()) {
    bool lhs_agree = true;
    ForEachAttr(fd.lhs, [&](AttrId attr) {
      if (t[attr] != s[attr]) lhs_agree = false;
    });
    if (lhs_agree && t[fd.rhs] != s[fd.rhs]) return false;
  }
  return true;
}

}  // namespace fdrepair
