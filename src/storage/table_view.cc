#include "storage/table_view.h"

#include <numeric>
#include <unordered_map>

namespace fdrepair {

TableView::TableView(const Table& table) : table_(&table) {
  rows_.resize(table.num_tuples());
  std::iota(rows_.begin(), rows_.end(), 0);
}

TableView::TableView(const Table& table, std::vector<int> rows)
    : table_(&table), rows_(std::move(rows)) {
  // Debug-only: this constructor runs once per block per recursion level on
  // the OptSRepair hot path, so release builds skip the O(rows) validation.
#ifndef NDEBUG
  for (int row : rows_) {
    FDR_DCHECK_MSG(row >= 0 && row < table.num_tuples(), "row=" << row);
  }
#endif
}

double TableView::TotalWeight() const {
  double total = 0;
  for (int i = 0; i < num_tuples(); ++i) total += weight(i);
  return total;
}

ProjectionKey ProjectTuple(const Tuple& tuple, AttrSet attrs) {
  ProjectionKey key;
  key.values.reserve(attrs.size());
  ForEachAttr(attrs, [&](AttrId attr) { key.values.push_back(tuple[attr]); });
  return key;
}

GroupedRows TableView::GroupRows(AttrSet attrs) const {
  GroupedRows out;
  std::unordered_map<ProjectionKey, int, ProjectionKeyHash> group_of;
  for (int i = 0; i < num_tuples(); ++i) {
    ProjectionKey key = ProjectTuple(tuple(i), attrs);
    auto [it, inserted] =
        group_of.emplace(std::move(key), static_cast<int>(out.rows.size()));
    if (inserted) {
      // Copy from the stable map node: one copy per distinct group, not
      // one per row.
      out.keys.push_back(it->first);
      out.rows.emplace_back();
    }
    out.rows[it->second].push_back(rows_[i]);
  }
  return out;
}

std::vector<TableView> TableView::GroupBy(AttrSet attrs) const {
  GroupedRows groups = GroupRows(attrs);
  std::vector<TableView> out;
  out.reserve(groups.rows.size());
  for (auto& group : groups.rows) out.emplace_back(*table_, std::move(group));
  return out;
}

Table TableView::ToTable() const { return table_->SubsetByRows(rows_); }

}  // namespace fdrepair
