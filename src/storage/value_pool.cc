#include "storage/value_pool.h"

#include <mutex>

namespace fdrepair {

ValueId ValuePool::InternLocked(const std::string& text) {
  auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(texts_.size());
  index_.emplace(text, id);
  texts_.push_back(text);
  fresh_.push_back(false);
  return id;
}

ValueId ValuePool::Intern(const std::string& text) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InternLocked(text);
}

StatusOr<ValueId> ValuePool::Lookup(const std::string& text) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(text);
  if (it == index_.end()) {
    return Status::NotFound("value '" + text + "' not in pool");
  }
  return it->second;
}

ValueId ValuePool::FreshValue() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string name;
  do {
    name = "⊥" + std::to_string(fresh_counter_++);
  } while (index_.find(name) != index_.end());
  ValueId id = InternLocked(name);
  fresh_[id] = true;
  return id;
}

ValueId ValuePool::FreshValueNamed(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string candidate = name;
  while (true) {
    auto it = index_.find(candidate);
    if (it == index_.end()) {
      ValueId id = InternLocked(candidate);
      fresh_[id] = true;
      return id;
    }
    if (fresh_[it->second]) return it->second;
    // User data occupies the name: disambiguate deterministically. The
    // bumped name depends only on the colliding user content, so identical
    // tables (even on different pools) still agree on it.
    candidate += "'";
  }
}

bool ValuePool::IsFresh(ValueId value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  FDR_CHECK(value >= 0 && value < static_cast<ValueId>(fresh_.size()));
  return fresh_[value];
}

const std::string& ValuePool::Text(ValueId value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  FDR_CHECK_MSG(value >= 0 && value < static_cast<ValueId>(texts_.size()),
                "value id " << value << " out of range");
  return texts_[value];
}

int64_t ValuePool::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(texts_.size());
}

}  // namespace fdrepair
