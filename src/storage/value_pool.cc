#include "storage/value_pool.h"

namespace fdrepair {

ValueId ValuePool::Intern(const std::string& text) {
  auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(texts_.size());
  index_.emplace(text, id);
  texts_.push_back(text);
  fresh_.push_back(false);
  return id;
}

StatusOr<ValueId> ValuePool::Lookup(const std::string& text) const {
  auto it = index_.find(text);
  if (it == index_.end()) {
    return Status::NotFound("value '" + text + "' not in pool");
  }
  return it->second;
}

ValueId ValuePool::FreshValue() {
  std::string name;
  do {
    name = "⊥" + std::to_string(fresh_counter_++);
  } while (index_.find(name) != index_.end());
  ValueId id = Intern(name);
  fresh_[id] = true;
  return id;
}

bool ValuePool::IsFresh(ValueId value) const {
  FDR_CHECK(value >= 0 && value < static_cast<ValueId>(fresh_.size()));
  return fresh_[value];
}

const std::string& ValuePool::Text(ValueId value) const {
  FDR_CHECK_MSG(value >= 0 && value < static_cast<ValueId>(texts_.size()),
                "value id " << value << " out of range");
  return texts_[value];
}

}  // namespace fdrepair
