// CSV import/export for tables.
//
// Format: first line is the header. Two optional reserved columns are
// recognized by name: "id" (tuple identifier, integer) and "w" (weight,
// a positive *finite* float — zero, negative, NaN and infinite weights are
// rejected with InvalidArgument); all remaining columns become schema
// attributes in order.
//
// Quoting follows RFC 4180: a field may be wrapped in double quotes, inside
// which the separator, CR/LF newlines and doubled quotes ("") are literal
// data. The writer quotes exactly the fields that need it — those containing
// the separator, a quote, a newline, or leading/trailing whitespace (which
// the unquoted reader would strip) — so TableFromCsv(TableToCsv(t))
// round-trips arbitrary values while plain data stays plain. Unquoted
// fields are trimmed of surrounding ASCII whitespace; quoted fields are
// taken verbatim.

#ifndef FDREPAIR_STORAGE_TABLE_IO_H_
#define FDREPAIR_STORAGE_TABLE_IO_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// Parses CSV text into a table over an inferred schema.
StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const std::string& relation_name = "T",
                             char sep = ',');

/// Reads a CSV file from disk.
StatusOr<Table> TableFromCsvFile(const std::string& path,
                                 const std::string& relation_name = "T",
                                 char sep = ',');

/// Serializes a table to CSV (with id and w columns), quoting fields that
/// contain the separator, quotes, newlines or surrounding whitespace.
std::string TableToCsv(const Table& table, char sep = ',');

/// Writes CSV to disk.
Status TableToCsvFile(const Table& table, const std::string& path,
                      char sep = ',');

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_TABLE_IO_H_
