// CSV import/export for tables.
//
// Format: first line is the header. Two optional reserved columns are
// recognized by name: "id" (tuple identifier, integer) and "w" (weight,
// positive float); all remaining columns become schema attributes in order.
// Values are unquoted and must not contain the separator.

#ifndef FDREPAIR_STORAGE_TABLE_IO_H_
#define FDREPAIR_STORAGE_TABLE_IO_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// Parses CSV text into a table over an inferred schema.
StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const std::string& relation_name = "T",
                             char sep = ',');

/// Reads a CSV file from disk.
StatusOr<Table> TableFromCsvFile(const std::string& path,
                                 const std::string& relation_name = "T",
                                 char sep = ',');

/// Serializes a table to CSV (with id and w columns).
std::string TableToCsv(const Table& table, char sep = ',');

/// Writes CSV to disk.
Status TableToCsvFile(const Table& table, const std::string& path,
                      char sep = ',');

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_TABLE_IO_H_
