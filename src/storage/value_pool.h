// ValuePool: interning of attribute values.
//
// The paper's domain Val is a countably infinite set of values; tables store
// dense integer ids instead of strings so tuple comparisons, group-by and
// FD checks are integer operations. The pool also manufactures *fresh
// constants* — values guaranteed different from every value seen so far —
// which the U-repair constructions rely on (Proposition 4.4 updates lhs-cover
// cells "to a fresh constant from our infinite domain Val").

#ifndef FDREPAIR_STORAGE_VALUE_POOL_H_
#define FDREPAIR_STORAGE_VALUE_POOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fdrepair {

/// Dense id of an interned value. Ids are pool-local.
using ValueId = int32_t;

/// A bidirectional string <-> ValueId dictionary plus a fresh-value factory.
class ValuePool {
 public:
  ValuePool() = default;

  /// Returns the id of `text`, interning it on first sight.
  ValueId Intern(const std::string& text);

  /// Returns the id of `text` or kNotFound if it was never interned.
  StatusOr<ValueId> Lookup(const std::string& text) const;

  /// A value distinct from every value interned or manufactured so far.
  /// Rendered as "⊥<n>"; collisions with user data are prevented by
  /// suffixing until unique.
  ValueId FreshValue();

  /// True iff `value` was manufactured by FreshValue. Lets tests assert that
  /// repairs only introduce fresh constants where the constructions say so.
  bool IsFresh(ValueId value) const;

  /// The text of an id; requires a valid id from this pool.
  const std::string& Text(ValueId value) const;

  /// Number of distinct values (interned + fresh).
  int64_t size() const { return static_cast<int64_t>(texts_.size()); }

 private:
  std::unordered_map<std::string, ValueId> index_;
  std::vector<std::string> texts_;
  std::vector<bool> fresh_;
  int64_t fresh_counter_ = 0;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_VALUE_POOL_H_
