// ValuePool: interning of attribute values.
//
// The paper's domain Val is a countably infinite set of values; tables store
// dense integer ids instead of strings so tuple comparisons, group-by and
// FD checks are integer operations. The pool also manufactures *fresh
// constants* — values guaranteed different from every value seen so far —
// which the U-repair constructions rely on (Proposition 4.4 updates lhs-cover
// cells "to a fresh constant from our infinite domain Val").
//
// Thread safety: the pool is internally synchronized with a shared_mutex —
// any number of concurrent readers (Lookup/Text/IsFresh/size), and writers
// (Intern/FreshValue) exclusive against both. This is what lets the repair
// engine's blocks share one parent table, and derived repairs share one
// dictionary, across worker threads without copies. References returned by
// Text() stay valid for the pool's lifetime even across concurrent
// interning (values live in a deque, which never relocates elements).

#ifndef FDREPAIR_STORAGE_VALUE_POOL_H_
#define FDREPAIR_STORAGE_VALUE_POOL_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fdrepair {

/// Dense id of an interned value. Ids are pool-local.
using ValueId = int32_t;

/// A bidirectional string <-> ValueId dictionary plus a fresh-value factory.
class ValuePool {
 public:
  ValuePool() = default;

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the id of `text`, interning it on first sight.
  ValueId Intern(const std::string& text);

  /// Returns the id of `text` or kNotFound if it was never interned.
  StatusOr<ValueId> Lookup(const std::string& text) const;

  /// A value distinct from every value interned or manufactured so far.
  /// Rendered as "⊥<n>"; collisions with user data are prevented by
  /// suffixing until unique.
  ValueId FreshValue();

  /// A fresh value with a caller-chosen *deterministic* name. Unlike
  /// FreshValue, the result depends only on `name` and the pool's user
  /// content, never on how many fresh values were manufactured before:
  ///   - `name` never interned      -> intern it, mark fresh;
  ///   - `name` already fresh       -> return the existing id (replay- and
  ///     re-plan-stable: asking twice is idempotent);
  ///   - `name` interned as user data -> append "'" and retry, so the
  ///     result still differs from every user value, and deterministically
  ///     so for identical user content.
  /// This is what lets update repairs derive ⊥ names from (TupleId, attr)
  /// so cached cell-edit recipes replay bit-identically across pools,
  /// re-plans and thread counts (see urepair/fresh.h).
  ValueId FreshValueNamed(const std::string& name);

  /// True iff `value` was manufactured by FreshValue. Lets tests assert that
  /// repairs only introduce fresh constants where the constructions say so.
  bool IsFresh(ValueId value) const;

  /// The text of an id; requires a valid id from this pool. The reference
  /// is stable for the pool's lifetime.
  const std::string& Text(ValueId value) const;

  /// Number of distinct values (interned + fresh).
  int64_t size() const;

 private:
  /// Intern with mu_ already held exclusively.
  ValueId InternLocked(const std::string& text);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, ValueId> index_;
  /// deque, not vector: growth must not relocate strings that concurrent
  /// readers hold references into.
  std::deque<std::string> texts_;
  std::vector<bool> fresh_;
  int64_t fresh_counter_ = 0;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_VALUE_POOL_H_
