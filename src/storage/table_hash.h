// Stable 64-bit content hashing for tables and request keys.
//
// The serving layer (src/service/) keys its repair cache on table *content*
// — schema, tuple identifiers, values and weights — so two requests carrying
// equal data hash equal regardless of which Table object or ValuePool they
// arrived in. std::hash is deliberately avoided: its values differ across
// standard libraries and runs, and cache keys must be reproducible enough to
// log, compare and test against.
//
// The hasher is FNV-1a over a framed byte stream: every field is prefixed
// with its length (strings) or fed as a fixed-width little-endian word
// (integers, doubles via their IEEE-754 bit pattern), so concatenation
// ambiguities ("ab"+"c" vs "a"+"bc") cannot collide by construction.

#ifndef FDREPAIR_STORAGE_TABLE_HASH_H_
#define FDREPAIR_STORAGE_TABLE_HASH_H_

#include <cstdint>
#include <string_view>

#include "storage/table.h"

namespace fdrepair {

/// An incremental FNV-1a 64-bit hasher with framed mixing primitives.
class StableHasher {
 public:
  StableHasher() = default;

  /// Mixes a fixed-width word (little-endian byte order).
  void MixUint64(uint64_t value);
  /// Mixes a signed word via its two's-complement bit pattern.
  void MixInt64(int64_t value) { MixUint64(static_cast<uint64_t>(value)); }
  /// Mixes a double via its IEEE-754 bit pattern (NaNs are caller-rejected
  /// upstream; +0.0 and -0.0 hash differently, as they should).
  void MixDouble(double value);
  /// Mixes a string with a length prefix.
  void MixString(std::string_view text);

  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

/// Hashes the full content of `table`: relation-independent schema (the
/// ordered attribute names), then per row the tuple identifier, weight and
/// value texts in schema order. Equal content ⇒ equal hash across pools,
/// processes and runs; the relation name is deliberately excluded so "T"
/// vs "Office" copies of the same data share a cache entry.
uint64_t TableContentHash(const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_TABLE_HASH_H_
