// Repair distances (§2.3): dist_sub(S, T) — the weighted sum of deleted
// tuples — and dist_upd(U, T) — the weighted Hamming distance of an update.

#ifndef FDREPAIR_STORAGE_DISTANCE_H_
#define FDREPAIR_STORAGE_DISTANCE_H_

#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// dist_sub(S, T) = Σ_{i ∈ ids(T) ∖ ids(S)} w_T(i). Fails unless S is a
/// subset of T: same schema, ids(S) ⊆ ids(T), identical tuples and weights.
StatusOr<double> DistSub(const Table& subset, const Table& table);

/// Hamming distance H(u, t): number of attributes where the tuples differ.
int HammingDistance(const Tuple& u, const Tuple& t);

/// dist_upd(U, T) = Σ_i w_T(i) · H(T[i], U[i]). Fails unless U is an update
/// of T: same schema, same identifiers, same weights.
StatusOr<double> DistUpd(const Table& update, const Table& table);

/// Convenience for verified inputs; aborts on malformed pairs.
double DistSubOrDie(const Table& subset, const Table& table);
double DistUpdOrDie(const Table& update, const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_DISTANCE_H_
