#include "storage/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/strings.h"

namespace fdrepair {

Table::Table(Schema schema)
    : Table(std::move(schema), std::make_shared<ValuePool>()) {}

Table::Table(Schema schema, std::shared_ptr<ValuePool> pool)
    : schema_(std::move(schema)), pool_(std::move(pool)) {
  FDR_CHECK(pool_ != nullptr);
  columns_.resize(schema_.arity());
}

TupleId Table::AddTuple(const std::vector<std::string>& values) {
  return AddTuple(values, 1.0);
}

TupleId Table::AddTuple(const std::vector<std::string>& values, double weight) {
  TupleId id = next_id_;
  Status status = AddTupleWithId(id, values, weight);
  FDR_CHECK_MSG(status.ok(), status.ToString());
  return id;
}

Status Table::AddTupleWithId(TupleId id, const std::vector<std::string>& values,
                             double weight) {
  if (static_cast<int>(values.size()) != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(schema_.arity()));
  }
  Tuple tuple;
  tuple.reserve(values.size());
  for (const std::string& value : values) tuple.push_back(pool_->Intern(value));
  return AddInternedTupleWithId(id, std::move(tuple), weight);
}

Status Table::AddInternedTupleWithId(TupleId id, Tuple values, double weight) {
  if (static_cast<int>(values.size()) != schema_.arity()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  if (!(weight > 0)) {
    return Status::InvalidArgument("tuple weight must be positive, got " +
                                   FormatDouble(weight));
  }
  if (id_index_.find(id) != id_index_.end()) {
    return Status::InvalidArgument("duplicate tuple identifier " +
                                   std::to_string(id));
  }
  // All validation passed: update the row store and its column-major
  // mirror together, so no failure path can leave them disagreeing.
  id_index_.emplace(id, num_tuples());
  ids_.push_back(id);
  weights_.push_back(weight);
  for (int a = 0; a < schema_.arity(); ++a) columns_[a].push_back(values[a]);
  tuples_.push_back(std::move(values));
  next_id_ = std::max(next_id_, id + 1);
  return Status::OK();
}

StatusOr<int> Table::RowOf(TupleId id) const {
  auto it = id_index_.find(id);
  if (it == id_index_.end()) {
    return Status::NotFound("no tuple with identifier " + std::to_string(id));
  }
  return it->second;
}

const std::string& Table::ValueText(int row, AttrId attr) const {
  return pool_->Text(value(row, attr));
}

double Table::TotalWeight() const {
  double total = 0;
  for (double w : weights_) total += w;
  return total;
}

bool Table::IsUnweighted() const {
  for (double w : weights_) {
    if (w != weights_.front()) return false;
  }
  return true;
}

bool Table::IsDuplicateFree() const {
  // Hash rows; compare only within buckets.
  std::unordered_map<uint64_t, std::vector<int>> buckets;
  for (int i = 0; i < num_tuples(); ++i) {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a over the value ids
    for (ValueId v : tuples_[i]) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ULL;
    }
    for (int j : buckets[h]) {
      if (tuples_[i] == tuples_[j]) return false;
    }
    buckets[h].push_back(i);
  }
  return true;
}

Table Table::SubsetByRows(const std::vector<int>& rows) const {
  Table out(schema_, pool_);
  // Reserve everything up front — in particular id_index_, whose
  // per-append rehash churn dominated large subsets — and append directly:
  // the source rows already satisfy the append invariants (positive
  // weights, matching arity), leaving only the duplicate-row check.
  out.ids_.reserve(rows.size());
  out.weights_.reserve(rows.size());
  out.tuples_.reserve(rows.size());
  out.id_index_.reserve(rows.size());
  for (auto& column : out.columns_) column.reserve(rows.size());
  for (int row : rows) {
    FDR_CHECK_MSG(row >= 0 && row < num_tuples(), "row=" << row);
    auto [it, inserted] = out.id_index_.emplace(ids_[row], out.num_tuples());
    FDR_CHECK_MSG(inserted, "duplicate row " << row << " (tuple identifier "
                                             << ids_[row] << ")");
    out.ids_.push_back(ids_[row]);
    out.weights_.push_back(weights_[row]);
    out.tuples_.push_back(tuples_[row]);
    out.next_id_ = std::max(out.next_id_, ids_[row] + 1);
  }
  // Column mirror, filled per attribute (contiguous source sweeps) rather
  // than per row: columns_[a] here is a gather of this->columns_[a].
  for (int a = 0; a < schema_.arity(); ++a) {
    const ValueId* source = columns_[a].data();
    for (int row : rows) out.columns_[a].push_back(source[row]);
  }
  return out;
}

Table Table::Clone() const {
  // Whole-container copies: id_index_ is copied as one map (bucket array
  // sized once), never rebuilt entry by entry.
  Table out(schema_, pool_);
  out.ids_ = ids_;
  out.weights_ = weights_;
  out.tuples_ = tuples_;
  out.columns_ = columns_;
  out.id_index_ = id_index_;
  out.next_id_ = next_id_;
  return out;
}

void Table::SetValue(int row, AttrId attr, ValueId value) {
  FDR_CHECK_MSG(row >= 0 && row < num_tuples(), "row=" << row);
  FDR_CHECK_MSG(attr >= 0 && attr < schema_.arity(), "attr=" << attr);
  tuples_[row][attr] = value;
  columns_[attr][row] = value;
}

void Table::EraseRow(int row) {
  FDR_CHECK_MSG(row >= 0 && row < num_tuples(), "row=" << row);
  id_index_.erase(ids_[row]);
  ids_.erase(ids_.begin() + row);
  weights_.erase(weights_.begin() + row);
  tuples_.erase(tuples_.begin() + row);
  for (auto& column : columns_) column.erase(column.begin() + row);
  // Every surviving row after the gap moved down one position.
  for (int r = row; r < num_tuples(); ++r) id_index_[ids_[r]] = r;
}

Status Table::EraseTuple(TupleId id) {
  FDR_ASSIGN_OR_RETURN(int row, RowOf(id));
  EraseRow(row);
  return Status::OK();
}

bool Table::ColumnStoreConsistent() const {
  if (static_cast<int>(columns_.size()) != schema_.arity()) return false;
  for (int a = 0; a < schema_.arity(); ++a) {
    if (static_cast<int>(columns_[a].size()) != num_tuples()) return false;
    for (int row = 0; row < num_tuples(); ++row) {
      if (columns_[a][row] != tuples_[row][a]) return false;
    }
  }
  return true;
}

std::string Table::ToString() const {
  // Column widths: id, attributes, weight.
  std::vector<size_t> widths(schema_.arity() + 2, 2);
  widths[0] = std::max<size_t>(2, std::string("id").size());
  for (int a = 0; a < schema_.arity(); ++a) {
    widths[a + 1] = schema_.AttributeName(a).size();
  }
  std::vector<std::vector<std::string>> cells;
  for (int row = 0; row < num_tuples(); ++row) {
    std::vector<std::string> line;
    line.push_back(std::to_string(ids_[row]));
    for (int a = 0; a < schema_.arity(); ++a) line.push_back(ValueText(row, a));
    line.push_back(FormatDouble(weights_[row]));
    for (size_t c = 0; c < line.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(widths[0])) << "id" << "  ";
  for (int a = 0; a < schema_.arity(); ++a) {
    os << std::setw(static_cast<int>(widths[a + 1])) << schema_.AttributeName(a)
       << "  ";
  }
  os << "w\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << line[c]
         << (c + 1 < line.size() ? "  " : "");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fdrepair
