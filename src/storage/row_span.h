// RowSpan + GroupScratch: the zero-allocation grouping core behind the
// OptSRepair recursion.
//
// Algorithm 1 spends essentially all of its time partitioning tuples into
// σ-blocks and recursing on them. The TableView-based recursion materialized
// a fresh std::vector<int> per block per level and heap-allocated a
// ProjectionKey per row; on deep simplification chains that is O(n · depth)
// allocations. The span core removes them:
//
//   - one row-index buffer is owned by the top-level call; RowSpan hands
//     (pointer, size) windows of it to child recursions;
//   - GroupInPlace *permutes* a span's window so each π_attrs group becomes
//     contiguous — groups in first-appearance order, rows within a group in
//     original order (a stable counting scatter, not a comparison sort) —
//     and only reports the group boundaries;
//   - group identity is resolved over interned ValueIds: a dense
//     epoch-stamped slot table for single attributes (the common-lhs /
//     consensus fast path), an exact packed 64-bit key for two attributes
//     (the 2-set marriage case), and hash-plus-witness verification beyond
//     that — never a heap-allocated projection key;
//   - the 1- and 2-attribute paths read the Table's contiguous per-attribute
//     column store (storage/table.h) instead of striding across Tuple rows:
//     one SIMD gather (common/simd.h — AVX2 with a bit-identical scalar
//     fallback) pulls the window's key values into a dense scratch buffer,
//     and the dedup loop runs over that buffer. The pre-columnar row-major
//     loops are preserved behind SetGroupingLayout(kRowMajor) so tests and
//     bench_hotpath can pin the old path and verify/measure against it.
//
// Distinct spans cover disjoint buffer ranges, so concurrent recursions may
// permute their own spans without synchronization (each worker additionally
// uses its own GroupScratch; the scratch itself is not thread-safe).
//
// First-appearance group order is load-bearing: the parallel engine's
// bit-identical guarantee reduces block results in exactly this order (see
// srepair/opt_srepair.h).

#ifndef FDREPAIR_STORAGE_ROW_SPAN_H_
#define FDREPAIR_STORAGE_ROW_SPAN_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "catalog/attrset.h"
#include "common/simd.h"
#include "storage/table.h"

namespace fdrepair {

/// Which storage layout GroupScratch's 1-/2-attribute fast paths read.
/// kColumnar (the default) sweeps the Table's column store through the SIMD
/// gather kernels; kRowMajor is the pre-columnar tuple[attr] path, kept so
/// benches and property tests can pin the old behavior as an oracle.
enum class GroupingLayout {
  kColumnar,
  kRowMajor,
};

/// Process-wide layout switch (tests/benches only; production code leaves
/// it at kColumnar). Not synchronized against in-flight grouping — flip it
/// only from single-threaded setup code.
void SetGroupingLayout(GroupingLayout layout);
GroupingLayout ActiveGroupingLayout();

/// Below this window size a SIMD staging pass costs more than it saves
/// (kernel call + staging write/read per row vs a handful of scalar
/// loads); measured crossover is around a few hundred rows. Shared by the
/// grouping fast paths and Satisfies' columnar sweep.
inline constexpr int kSimdStagingMinRows = 256;

/// A non-owning window over a contiguous range of a shared row-index
/// buffer. The Table and the buffer must outlive the span. Reads go through
/// the table (const, thread-safe); the window's indices themselves may be
/// permuted in place by GroupScratch::GroupInPlace.
class RowSpan {
 public:
  RowSpan() = default;
  RowSpan(const Table& table, int* data, int size)
      : table_(&table), data_(data), size_(size) {
    FDR_DCHECK(size >= 0);
  }

  const Table& table() const { return *table_; }
  int num_tuples() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The underlying dense row position of the i-th span row.
  int row(int i) const { return data_[i]; }
  /// Mutable access to the window (GroupScratch permutes through this).
  int* data() const { return data_; }

  const Tuple& tuple(int i) const { return table_->tuple(data_[i]); }
  TupleId id(int i) const { return table_->id(data_[i]); }
  double weight(int i) const { return table_->weight(data_[i]); }
  ValueId value(int i, AttrId attr) const {
    return table_->value(data_[i], attr);
  }

  /// The sub-window [offset, offset + count) over the same buffer.
  RowSpan Subspan(int offset, int count) const {
    FDR_DCHECK_MSG(offset >= 0 && count >= 0 && offset + count <= size_,
                   "offset=" << offset << " count=" << count
                             << " size=" << size_);
    return RowSpan(*table_, data_ + offset, count);
  }

 private:
  const Table* table_ = nullptr;
  int* data_ = nullptr;
  int size_ = 0;
};

/// FNV-1a over a tuple's projection onto `attrs`, without materializing it.
/// Matches ProjectionKeyHash on the equivalent ProjectionKey.
inline uint64_t ProjectionHash(const Tuple& tuple, AttrSet attrs) {
  uint64_t h = 1469598103934665603ULL;
  ForEachAttr(attrs, [&](AttrId attr) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(tuple[attr]));
    h *= 1099511628211ULL;
  });
  return h;
}

/// True iff two tuples agree on every attribute of `attrs`.
inline bool ProjectionEquals(const Tuple& a, const Tuple& b, AttrSet attrs) {
  uint64_t bits = attrs.bits();
  while (bits != 0) {
    AttrId attr = __builtin_ctzll(bits);
    if (a[attr] != b[attr]) return false;
    bits &= bits - 1;
  }
  return true;
}

/// A dense first-appearance index over tuple projections: entry i is the
/// i-th distinct π_attrs projection encountered. Keyed by ProjectionHash;
/// same-hash entries form a chain resolved by comparing against each
/// entry's *witness* tuple, which the caller resolves through a callback —
/// so no projection is ever materialized, and callers keep their payloads
/// (witness rows, rhs values, member lists) in plain parallel vectors.
/// One shared implementation for every hash-plus-witness grouping in the
/// tree (GroupScratch's generic paths, Satisfies, the vc-approx route).
class ProjectionIndex {
 public:
  void Clear() {
    first_of_hash_.clear();  // keeps bucket capacity
    next_same_hash_.clear();
  }

  int size() const { return static_cast<int>(next_same_hash_.size()); }

  /// The entry whose witness projection equals `tuple`'s, or -1.
  /// `witness_tuple(e)` must return entry e's witness Tuple.
  template <typename WitnessTupleFn>
  int Find(const Tuple& tuple, AttrSet attrs,
           const WitnessTupleFn& witness_tuple) const {
    auto it = first_of_hash_.find(ProjectionHash(tuple, attrs));
    if (it == first_of_hash_.end()) return -1;
    for (int e = it->second; e != -1; e = next_same_hash_[e]) {
      if (ProjectionEquals(tuple, witness_tuple(e), attrs)) return e;
    }
    return -1;
  }

  /// Find, creating a new entry (dense, in first-appearance order) when
  /// absent; *created reports which. On creation the callback is never
  /// invoked for the new entry, so the caller may append its payload (and
  /// witness) right after the call returns.
  template <typename WitnessTupleFn>
  int FindOrCreate(const Tuple& tuple, AttrSet attrs,
                   const WitnessTupleFn& witness_tuple, bool* created) {
    const uint64_t h = ProjectionHash(tuple, attrs);
    auto it = first_of_hash_.find(h);
    if (it != first_of_hash_.end()) {
      for (int e = it->second; e != -1; e = next_same_hash_[e]) {
        if (ProjectionEquals(tuple, witness_tuple(e), attrs)) {
          *created = false;
          return e;
        }
      }
    }
    const int e = size();
    // New same-hash entries are prepended to the chain; entry ids (and so
    // first-appearance order) never depend on the chain order.
    next_same_hash_.push_back(it != first_of_hash_.end() ? it->second : -1);
    if (it != first_of_hash_.end()) {
      it->second = e;
    } else {
      first_of_hash_.emplace(h, e);
    }
    *created = true;
    return e;
  }

 private:
  std::unordered_map<uint64_t, int> first_of_hash_;
  std::vector<int> next_same_hash_;
};

/// An epoch-stamped dense map from ValueId to a small dense id assigned in
/// first-appearance order: the single-attribute counterpart of
/// ProjectionIndex, shared by GroupScratch's 1-attribute path, marriage
/// endpoint assignment, Satisfies' single-attribute-lhs fast path and the
/// vc-approx route. Clear() is O(1) (an epoch bump); slot storage grows to
/// the largest ValueId seen and is retained across Clear()s, so a reused
/// index allocates only on new high-water marks. Not thread-safe.
class DenseValueIndex {
 public:
  void Clear() {
    if (epoch_ == std::numeric_limits<uint32_t>::max()) {
      slots_.assign(slots_.size(), Slot{});
      epoch_ = 0;
    }
    ++epoch_;
    count_ = 0;
  }

  /// Pre-grows slot storage so FindOrCreate never resizes mid-loop.
  /// Negative maxima (e.g. the gather kernel's INT32_MIN on an empty
  /// window) are no-ops.
  void Reserve(ValueId max_value) {
    if (max_value >= 0 && static_cast<size_t>(max_value) >= slots_.size()) {
      slots_.resize(static_cast<size_t>(max_value) + 1);
    }
  }

  /// The dense id of `value`, assigning the next one on first sight.
  /// Requires value >= 0; grows storage on demand (use Reserve to hoist
  /// the growth check out of hot loops).
  int FindOrCreate(ValueId value, bool* created) {
    FDR_DCHECK_MSG(value >= 0, "value id " << value);
    if (static_cast<size_t>(value) >= slots_.size()) {
      slots_.resize(static_cast<size_t>(value) + 1);
    }
    Slot& slot = slots_[value];
    *created = slot.epoch != epoch_;
    if (*created) {
      slot.epoch = epoch_;
      slot.id = count_++;
    }
    return slot.id;
  }

  /// The dense id of `value`, or -1 if it was never seen this epoch.
  int Find(ValueId value) const {
    if (value < 0 || static_cast<size_t>(value) >= slots_.size()) return -1;
    const Slot& slot = slots_[value];
    return slot.epoch == epoch_ ? slot.id : -1;
  }

  int size() const { return count_; }

 private:
  struct Slot {
    uint32_t epoch = 0;
    int id = -1;
  };
  std::vector<Slot> slots_;
  /// Starts at 1 so default-epoch (0) slots are never mistaken as current.
  uint32_t epoch_ = 1;
  int count_ = 0;
};

/// Reusable buffers for in-place span grouping plus a small arena of int
/// vectors for recursion-local data (group boundaries, kept-row buffers).
///
/// One scratch serves any number of sequential GroupInPlace calls; no state
/// is live across calls, so a recursion may reuse a single (e.g.
/// thread_local) instance at every level. NOT thread-safe: concurrent
/// recursions need one scratch each.
class GroupScratch {
 public:
  GroupScratch() = default;
  GroupScratch(const GroupScratch&) = delete;
  GroupScratch& operator=(const GroupScratch&) = delete;

  /// Permutes `span`'s window in place so that rows with equal π_attrs
  /// projections become contiguous: groups in first-appearance order, rows
  /// within a group in their original span order. Clears *group_ends and
  /// fills it with each group's end offset — group g occupies
  /// [g == 0 ? 0 : (*group_ends)[g - 1], (*group_ends)[g]).
  /// An empty span produces no groups; empty `attrs` produces one group.
  void GroupInPlace(RowSpan span, AttrSet attrs, std::vector<int>* group_ends);

  /// Given the grouping of `span` described by `group_ends`, assigns each
  /// group the dense first-appearance index of its π_attrs projection
  /// (witnessed by the group's first row) among all groups. Clears and
  /// fills *index_of_group (one entry per group); returns the number of
  /// distinct projections. This is how marriage blocks get their bipartite
  /// endpoints: distinct π_X1 (resp. π_X2) values index the two sides.
  int AssignDistinctIndices(RowSpan span, const std::vector<int>& group_ends,
                            AttrSet attrs, std::vector<int>* index_of_group);

  /// Int-vector arena: Acquire returns an empty vector that keeps whatever
  /// capacity it accumulated in earlier rounds; Release returns it to the
  /// freelist. Releasing into a different scratch than the one that acquired
  /// is harmless (the buffer simply changes homes).
  std::vector<int> AcquireIntBuffer();
  void ReleaseIntBuffer(std::vector<int> buffer);

 private:
  /// Phase 1 helpers: fill group_of_row_[0..n) with dense group ids in
  /// first-appearance order and return the group count. The columnar
  /// variants (default layout) gather the key attribute's column(s) through
  /// the SIMD kernels; the row-major variants are the preserved
  /// pre-columnar loops, dispatched via ActiveGroupingLayout().
  int AssignGroupsSingleAttr(RowSpan span, AttrId attr);
  int AssignGroupsSingleAttrRowMajor(RowSpan span, AttrId attr);
  int AssignGroupsPackedPair(RowSpan span, AttrId a1, AttrId a2);
  int AssignGroupsPackedPairRowMajor(RowSpan span, AttrId a1, AttrId a2);
  int AssignGroupsGeneric(RowSpan span, AttrSet attrs);

  /// Phase 2: stable counting scatter of span rows by group_of_row_.
  void ScatterByGroup(RowSpan span, int num_groups,
                      std::vector<int>* group_ends);

  std::vector<int> group_of_row_;
  std::vector<int> group_start_;
  std::vector<int> scatter_;
  /// Single-attribute fast path: ValueId -> dense group id (epoch-stamped,
  /// O(1) clear); also resolves marriage endpoints for 1-attribute sides.
  DenseValueIndex value_index_;
  /// Columnar staging: the gathered key values / packed pair keys of the
  /// span's window, dense and contiguous for the dedup loop.
  std::vector<ValueId> gathered_values_;
  std::vector<uint64_t> gathered_pairs_;
  /// Two-attribute fast path: exact packed (v1, v2) key.
  std::unordered_map<uint64_t, int> packed_group_;
  /// Generic path: hash-plus-witness projection index; witness_[g] is the
  /// dense table row witnessing group g.
  ProjectionIndex projection_index_;
  std::vector<int> witness_;
  std::vector<std::vector<int>> free_buffers_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_ROW_SPAN_H_
