// RowSpan + GroupScratch: the zero-allocation grouping core behind the
// OptSRepair recursion.
//
// Algorithm 1 spends essentially all of its time partitioning tuples into
// σ-blocks and recursing on them. The TableView-based recursion materialized
// a fresh std::vector<int> per block per level and heap-allocated a
// ProjectionKey per row; on deep simplification chains that is O(n · depth)
// allocations. The span core removes them:
//
//   - one row-index buffer is owned by the top-level call; RowSpan hands
//     (pointer, size) windows of it to child recursions;
//   - GroupInPlace *permutes* a span's window so each π_attrs group becomes
//     contiguous — groups in first-appearance order, rows within a group in
//     original order (a stable counting scatter, not a comparison sort) —
//     and only reports the group boundaries;
//   - group identity is resolved over interned ValueIds: a dense
//     epoch-stamped slot table for single attributes (the common-lhs /
//     consensus fast path), an exact packed 64-bit key for two attributes
//     (the 2-set marriage case), and hash-plus-witness verification beyond
//     that — never a heap-allocated projection key.
//
// Distinct spans cover disjoint buffer ranges, so concurrent recursions may
// permute their own spans without synchronization (each worker additionally
// uses its own GroupScratch; the scratch itself is not thread-safe).
//
// First-appearance group order is load-bearing: the parallel engine's
// bit-identical guarantee reduces block results in exactly this order (see
// srepair/opt_srepair.h).

#ifndef FDREPAIR_STORAGE_ROW_SPAN_H_
#define FDREPAIR_STORAGE_ROW_SPAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/attrset.h"
#include "storage/table.h"

namespace fdrepair {

/// A non-owning window over a contiguous range of a shared row-index
/// buffer. The Table and the buffer must outlive the span. Reads go through
/// the table (const, thread-safe); the window's indices themselves may be
/// permuted in place by GroupScratch::GroupInPlace.
class RowSpan {
 public:
  RowSpan() = default;
  RowSpan(const Table& table, int* data, int size)
      : table_(&table), data_(data), size_(size) {
    FDR_DCHECK(size >= 0);
  }

  const Table& table() const { return *table_; }
  int num_tuples() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The underlying dense row position of the i-th span row.
  int row(int i) const { return data_[i]; }
  /// Mutable access to the window (GroupScratch permutes through this).
  int* data() const { return data_; }

  const Tuple& tuple(int i) const { return table_->tuple(data_[i]); }
  TupleId id(int i) const { return table_->id(data_[i]); }
  double weight(int i) const { return table_->weight(data_[i]); }
  ValueId value(int i, AttrId attr) const {
    return table_->value(data_[i], attr);
  }

  /// The sub-window [offset, offset + count) over the same buffer.
  RowSpan Subspan(int offset, int count) const {
    FDR_DCHECK_MSG(offset >= 0 && count >= 0 && offset + count <= size_,
                   "offset=" << offset << " count=" << count
                             << " size=" << size_);
    return RowSpan(*table_, data_ + offset, count);
  }

 private:
  const Table* table_ = nullptr;
  int* data_ = nullptr;
  int size_ = 0;
};

/// FNV-1a over a tuple's projection onto `attrs`, without materializing it.
/// Matches ProjectionKeyHash on the equivalent ProjectionKey.
inline uint64_t ProjectionHash(const Tuple& tuple, AttrSet attrs) {
  uint64_t h = 1469598103934665603ULL;
  ForEachAttr(attrs, [&](AttrId attr) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(tuple[attr]));
    h *= 1099511628211ULL;
  });
  return h;
}

/// True iff two tuples agree on every attribute of `attrs`.
inline bool ProjectionEquals(const Tuple& a, const Tuple& b, AttrSet attrs) {
  uint64_t bits = attrs.bits();
  while (bits != 0) {
    AttrId attr = __builtin_ctzll(bits);
    if (a[attr] != b[attr]) return false;
    bits &= bits - 1;
  }
  return true;
}

/// A dense first-appearance index over tuple projections: entry i is the
/// i-th distinct π_attrs projection encountered. Keyed by ProjectionHash;
/// same-hash entries form a chain resolved by comparing against each
/// entry's *witness* tuple, which the caller resolves through a callback —
/// so no projection is ever materialized, and callers keep their payloads
/// (witness rows, rhs values, member lists) in plain parallel vectors.
/// One shared implementation for every hash-plus-witness grouping in the
/// tree (GroupScratch's generic paths, Satisfies, the vc-approx route).
class ProjectionIndex {
 public:
  void Clear() {
    first_of_hash_.clear();  // keeps bucket capacity
    next_same_hash_.clear();
  }

  int size() const { return static_cast<int>(next_same_hash_.size()); }

  /// The entry whose witness projection equals `tuple`'s, or -1.
  /// `witness_tuple(e)` must return entry e's witness Tuple.
  template <typename WitnessTupleFn>
  int Find(const Tuple& tuple, AttrSet attrs,
           const WitnessTupleFn& witness_tuple) const {
    auto it = first_of_hash_.find(ProjectionHash(tuple, attrs));
    if (it == first_of_hash_.end()) return -1;
    for (int e = it->second; e != -1; e = next_same_hash_[e]) {
      if (ProjectionEquals(tuple, witness_tuple(e), attrs)) return e;
    }
    return -1;
  }

  /// Find, creating a new entry (dense, in first-appearance order) when
  /// absent; *created reports which. On creation the callback is never
  /// invoked for the new entry, so the caller may append its payload (and
  /// witness) right after the call returns.
  template <typename WitnessTupleFn>
  int FindOrCreate(const Tuple& tuple, AttrSet attrs,
                   const WitnessTupleFn& witness_tuple, bool* created) {
    const uint64_t h = ProjectionHash(tuple, attrs);
    auto it = first_of_hash_.find(h);
    if (it != first_of_hash_.end()) {
      for (int e = it->second; e != -1; e = next_same_hash_[e]) {
        if (ProjectionEquals(tuple, witness_tuple(e), attrs)) {
          *created = false;
          return e;
        }
      }
    }
    const int e = size();
    // New same-hash entries are prepended to the chain; entry ids (and so
    // first-appearance order) never depend on the chain order.
    next_same_hash_.push_back(it != first_of_hash_.end() ? it->second : -1);
    if (it != first_of_hash_.end()) {
      it->second = e;
    } else {
      first_of_hash_.emplace(h, e);
    }
    *created = true;
    return e;
  }

 private:
  std::unordered_map<uint64_t, int> first_of_hash_;
  std::vector<int> next_same_hash_;
};

/// Reusable buffers for in-place span grouping plus a small arena of int
/// vectors for recursion-local data (group boundaries, kept-row buffers).
///
/// One scratch serves any number of sequential GroupInPlace calls; no state
/// is live across calls, so a recursion may reuse a single (e.g.
/// thread_local) instance at every level. NOT thread-safe: concurrent
/// recursions need one scratch each.
class GroupScratch {
 public:
  GroupScratch() = default;
  GroupScratch(const GroupScratch&) = delete;
  GroupScratch& operator=(const GroupScratch&) = delete;

  /// Permutes `span`'s window in place so that rows with equal π_attrs
  /// projections become contiguous: groups in first-appearance order, rows
  /// within a group in their original span order. Clears *group_ends and
  /// fills it with each group's end offset — group g occupies
  /// [g == 0 ? 0 : (*group_ends)[g - 1], (*group_ends)[g]).
  /// An empty span produces no groups; empty `attrs` produces one group.
  void GroupInPlace(RowSpan span, AttrSet attrs, std::vector<int>* group_ends);

  /// Given the grouping of `span` described by `group_ends`, assigns each
  /// group the dense first-appearance index of its π_attrs projection
  /// (witnessed by the group's first row) among all groups. Clears and
  /// fills *index_of_group (one entry per group); returns the number of
  /// distinct projections. This is how marriage blocks get their bipartite
  /// endpoints: distinct π_X1 (resp. π_X2) values index the two sides.
  int AssignDistinctIndices(RowSpan span, const std::vector<int>& group_ends,
                            AttrSet attrs, std::vector<int>* index_of_group);

  /// Int-vector arena: Acquire returns an empty vector that keeps whatever
  /// capacity it accumulated in earlier rounds; Release returns it to the
  /// freelist. Releasing into a different scratch than the one that acquired
  /// is harmless (the buffer simply changes homes).
  std::vector<int> AcquireIntBuffer();
  void ReleaseIntBuffer(std::vector<int> buffer);

 private:
  /// Phase 1 helpers: fill group_of_row_[0..n) with dense group ids in
  /// first-appearance order and return the group count.
  int AssignGroupsSingleAttr(RowSpan span, AttrId attr);
  int AssignGroupsPackedPair(RowSpan span, AttrId a1, AttrId a2);
  int AssignGroupsGeneric(RowSpan span, AttrSet attrs);

  /// Phase 2: stable counting scatter of span rows by group_of_row_.
  void ScatterByGroup(RowSpan span, int num_groups,
                      std::vector<int>* group_ends);

  std::vector<int> group_of_row_;
  std::vector<int> group_start_;
  std::vector<int> scatter_;
  /// Single-attribute fast path: slot per ValueId, stamped with epoch_ so
  /// clearing between calls is O(1).
  struct ValueSlot {
    uint32_t epoch = 0;
    int group = -1;
  };
  std::vector<ValueSlot> value_slot_;
  uint32_t epoch_ = 0;
  /// Two-attribute fast path: exact packed (v1, v2) key.
  std::unordered_map<uint64_t, int> packed_group_;
  /// Generic path: hash-plus-witness projection index; witness_[g] is the
  /// dense table row witnessing group g.
  ProjectionIndex projection_index_;
  std::vector<int> witness_;
  std::vector<std::vector<int>> free_buffers_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_ROW_SPAN_H_
