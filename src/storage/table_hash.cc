#include "storage/table_hash.h"

#include <cstring>

namespace fdrepair {
namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

void StableHasher::MixUint64(uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    state_ ^= (value >> (8 * byte)) & 0xffu;
    state_ *= kFnvPrime;
  }
}

void StableHasher::MixDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  MixUint64(bits);
}

void StableHasher::MixString(std::string_view text) {
  MixUint64(text.size());
  for (char c : text) {
    state_ ^= static_cast<unsigned char>(c);
    state_ *= kFnvPrime;
  }
}

uint64_t TableContentHash(const Table& table) {
  StableHasher hasher;
  const Schema& schema = table.schema();
  hasher.MixUint64(static_cast<uint64_t>(schema.arity()));
  for (AttrId a = 0; a < schema.arity(); ++a) {
    hasher.MixString(schema.AttributeName(a));
  }
  hasher.MixUint64(static_cast<uint64_t>(table.num_tuples()));
  for (int row = 0; row < table.num_tuples(); ++row) {
    hasher.MixInt64(table.id(row));
    hasher.MixDouble(table.weight(row));
    for (AttrId a = 0; a < schema.arity(); ++a) {
      hasher.MixString(table.ValueText(row, a));
    }
  }
  return hasher.digest();
}

}  // namespace fdrepair
