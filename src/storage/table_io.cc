#include "storage/table_io.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace fdrepair {
namespace {

/// One CSV record with the 1-based line number it started on (for errors).
struct CsvRecord {
  std::vector<std::string> fields;
  int line = 0;
};

bool IsBlankChar(char c) { return c == ' ' || c == '\t'; }

/// Splits `text` into records of fields per RFC 4180: a field starting with
/// a double quote (after optional blanks) runs until its closing quote, with
/// "" as a literal quote and separators/newlines inside taken verbatim;
/// anything else is the unquoted fast path, trimmed of surrounding
/// whitespace. Records that are entirely blank are dropped.
StatusOr<std::vector<CsvRecord>> ParseCsvRecords(const std::string& text,
                                                 char sep) {
  std::vector<CsvRecord> records;
  size_t i = 0;
  int line = 1;
  const size_t n = text.size();
  while (i < n) {
    CsvRecord record;
    record.line = line;
    bool saw_quoted = false;
    while (true) {
      // One field: detect the quoted form, else take the unquoted fast path.
      size_t start = i;
      while (start < n && IsBlankChar(text[start])) ++start;
      std::string field;
      if (start < n && text[start] == '"') {
        saw_quoted = true;
        i = start + 1;
        bool closed = false;
        while (i < n) {
          char c = text[i];
          if (c == '"') {
            if (i + 1 < n && text[i + 1] == '"') {
              field += '"';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            if (c == '\n') ++line;
            field += c;
            ++i;
          }
        }
        if (!closed) {
          return Status::InvalidArgument(
              "unterminated quoted field starting on CSV line " +
              std::to_string(record.line));
        }
        while (i < n && IsBlankChar(text[i])) ++i;
        if (i < n && text[i] != sep && text[i] != '\n' && text[i] != '\r') {
          return Status::InvalidArgument(
              "unexpected character after closing quote on CSV line " +
              std::to_string(line));
        }
      } else {
        while (i < n && text[i] != sep && text[i] != '\n' && text[i] != '\r') {
          ++i;
        }
        field = std::string(StripAsciiWhitespace(
            std::string_view(text).substr(start, i - start)));
      }
      record.fields.push_back(std::move(field));
      if (i < n && text[i] == sep) {
        ++i;
        continue;  // next field of the same record
      }
      break;  // newline or end of input: record complete
    }
    // Consume the record terminator (\n, \r or \r\n).
    if (i < n && text[i] == '\r') ++i;
    if (i < n && text[i] == '\n') {
      ++i;
      ++line;
    }
    // Drop blank lines (a single empty unquoted field, e.g. trailing
    // newlines); `,,` still parses as a record of empty fields, and a
    // quoted "" counts as intentional data.
    bool blank = !saw_quoted && record.fields.size() == 1 &&
                 record.fields[0].empty();
    if (!blank) records.push_back(std::move(record));
  }
  return records;
}

/// True when `field` cannot survive the unquoted path: it contains the
/// separator, a quote, a newline, or surrounding whitespace the reader
/// would strip. The whitespace predicate must match StripAsciiWhitespace
/// (isspace — space, \t, \n, \r, \v, \f), not just space/tab, or values
/// framed by \v or \f would silently lose them on the way back in.
bool NeedsQuoting(const std::string& field, char sep) {
  if (field.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(field.front())) ||
      std::isspace(static_cast<unsigned char>(field.back()))) {
    return true;
  }
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendCsvField(std::ostream& os, const std::string& field, char sep) {
  if (!NeedsQuoting(field, sep)) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';  // RFC 4180: a literal quote is doubled
    os << c;
  }
  os << '"';
}

}  // namespace

StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const std::string& relation_name, char sep) {
  FDR_ASSIGN_OR_RETURN(std::vector<CsvRecord> records,
                       ParseCsvRecords(csv_text, sep));
  if (records.empty()) return Status::InvalidArgument("empty CSV input");

  const std::vector<std::string>& header = records[0].fields;
  int id_col = -1;
  int w_col = -1;
  std::vector<std::string> attr_names;
  std::vector<int> attr_cols;
  for (size_t c = 0; c < header.size(); ++c) {
    const std::string& name = header[c];
    if (name == "id" && id_col < 0) {
      id_col = static_cast<int>(c);
    } else if (name == "w" && w_col < 0) {
      w_col = static_cast<int>(c);
    } else {
      attr_names.push_back(name);
      attr_cols.push_back(static_cast<int>(c));
    }
  }
  FDR_ASSIGN_OR_RETURN(Schema schema,
                       Schema::Make(relation_name, attr_names));
  Table table(std::move(schema));

  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& fields = records[r].fields;
    const std::string line_no = std::to_string(records[r].line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV line " + line_no + " has " + std::to_string(fields.size()) +
          " fields, expected " + std::to_string(header.size()));
    }
    std::vector<std::string> values;
    values.reserve(attr_cols.size());
    for (int c : attr_cols) values.push_back(fields[c]);
    double weight = 1.0;
    if (w_col >= 0) {
      char* end = nullptr;
      const std::string& w_text = fields[w_col];
      weight = std::strtod(w_text.c_str(), &end);
      if (end == w_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad weight on CSV line " + line_no);
      }
      // The w column is documented as a positive float; zero, negative and
      // non-finite weights would silently corrupt every downstream
      // distance/matching computation, so they are rejected here.
      if (!std::isfinite(weight) || weight <= 0) {
        return Status::InvalidArgument(
            "weight on CSV line " + line_no + " must be a positive finite " +
            "number, got \"" + w_text + "\"");
      }
    }
    if (id_col >= 0) {
      char* end = nullptr;
      const std::string& id_text = fields[id_col];
      long long id = std::strtoll(id_text.c_str(), &end, 10);
      if (end == id_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad id on CSV line " + line_no);
      }
      FDR_RETURN_IF_ERROR(table.AddTupleWithId(id, values, weight));
    } else {
      table.AddTuple(values, weight);
    }
  }
  return table;
}

StatusOr<Table> TableFromCsvFile(const std::string& path,
                                 const std::string& relation_name, char sep) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsv(buffer.str(), relation_name, sep);
}

std::string TableToCsv(const Table& table, char sep) {
  std::ostringstream os;
  os << "id";
  for (int a = 0; a < table.schema().arity(); ++a) {
    os << sep;
    AppendCsvField(os, table.schema().AttributeName(a), sep);
  }
  os << sep << "w\n";
  for (int row = 0; row < table.num_tuples(); ++row) {
    os << table.id(row);
    for (int a = 0; a < table.schema().arity(); ++a) {
      os << sep;
      AppendCsvField(os, table.ValueText(row, a), sep);
    }
    os << sep << FormatDouble(table.weight(row)) << "\n";
  }
  return os.str();
}

Status TableToCsvFile(const Table& table, const std::string& path, char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << TableToCsv(table, sep);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace fdrepair
