#include "storage/table_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace fdrepair {

StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const std::string& relation_name, char sep) {
  std::vector<std::string> lines = Split(csv_text, '\n');
  // Drop trailing blank lines.
  while (!lines.empty() && StripAsciiWhitespace(lines.back()).empty()) {
    lines.pop_back();
  }
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> header = Split(lines[0], sep);
  int id_col = -1;
  int w_col = -1;
  std::vector<std::string> attr_names;
  std::vector<int> attr_cols;
  for (size_t c = 0; c < header.size(); ++c) {
    std::string name(StripAsciiWhitespace(header[c]));
    if (name == "id" && id_col < 0) {
      id_col = static_cast<int>(c);
    } else if (name == "w" && w_col < 0) {
      w_col = static_cast<int>(c);
    } else {
      attr_names.push_back(name);
      attr_cols.push_back(static_cast<int>(c));
    }
  }
  FDR_ASSIGN_OR_RETURN(Schema schema,
                       Schema::Make(relation_name, attr_names));
  Table table(std::move(schema));

  for (size_t ln = 1; ln < lines.size(); ++ln) {
    if (StripAsciiWhitespace(lines[ln]).empty()) continue;
    std::vector<std::string> fields = Split(lines[ln], sep);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(ln + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    std::vector<std::string> values;
    values.reserve(attr_cols.size());
    for (int c : attr_cols) {
      values.emplace_back(StripAsciiWhitespace(fields[c]));
    }
    double weight = 1.0;
    if (w_col >= 0) {
      char* end = nullptr;
      std::string w_text(StripAsciiWhitespace(fields[w_col]));
      weight = std::strtod(w_text.c_str(), &end);
      if (end == w_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad weight on CSV line " +
                                       std::to_string(ln + 1));
      }
    }
    if (id_col >= 0) {
      char* end = nullptr;
      std::string id_text(StripAsciiWhitespace(fields[id_col]));
      long long id = std::strtoll(id_text.c_str(), &end, 10);
      if (end == id_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad id on CSV line " +
                                       std::to_string(ln + 1));
      }
      FDR_RETURN_IF_ERROR(table.AddTupleWithId(id, values, weight));
    } else {
      table.AddTuple(values, weight);
    }
  }
  return table;
}

StatusOr<Table> TableFromCsvFile(const std::string& path,
                                 const std::string& relation_name, char sep) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsv(buffer.str(), relation_name, sep);
}

std::string TableToCsv(const Table& table, char sep) {
  std::ostringstream os;
  os << "id";
  for (int a = 0; a < table.schema().arity(); ++a) {
    os << sep << table.schema().AttributeName(a);
  }
  os << sep << "w\n";
  for (int row = 0; row < table.num_tuples(); ++row) {
    os << table.id(row);
    for (int a = 0; a < table.schema().arity(); ++a) {
      os << sep << table.ValueText(row, a);
    }
    os << sep << FormatDouble(table.weight(row)) << "\n";
  }
  return os.str();
}

Status TableToCsvFile(const Table& table, const std::string& path, char sep) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << TableToCsv(table, sep);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace fdrepair
