#include "storage/table_delta.h"

#include <algorithm>
#include <utility>

#include "storage/table_hash.h"

namespace fdrepair {
namespace {

void SortUnique(std::vector<TupleId>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

bool IsSortedUnique(const std::vector<TupleId>& ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

bool Disjoint(const std::vector<TupleId>& a, const std::vector<TupleId>& b) {
  // Both sorted: one merge pass.
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

/// Mixes one mutated row's full content — the same framed fields, in the
/// same order, as TableContentHash mixes per row.
Status MixRowContent(StableHasher* hasher, const Table& mutated, TupleId id,
                     const char* role) {
  StatusOr<int> row = mutated.RowOf(id);
  if (!row.ok()) {
    return Status::InvalidArgument(std::string(role) + " id " +
                                   std::to_string(id) +
                                   " not present in the mutated table");
  }
  hasher->MixInt64(id);
  hasher->MixDouble(mutated.weight(*row));
  for (AttrId a = 0; a < mutated.schema().arity(); ++a) {
    hasher->MixString(mutated.ValueText(*row, a));
  }
  return Status::OK();
}

}  // namespace

void TableDelta::Canonicalize() {
  SortUnique(&inserted);
  SortUnique(&updated);
  SortUnique(&deleted);
}

StatusOr<uint64_t> DeltaChainHash(const TableDelta& delta,
                                  const Table& mutated) {
  if (!IsSortedUnique(delta.inserted) || !IsSortedUnique(delta.updated) ||
      !IsSortedUnique(delta.deleted)) {
    return Status::InvalidArgument(
        "delta id lists must be sorted and duplicate-free (call "
        "TableDelta::Canonicalize)");
  }
  StableHasher hasher;
  hasher.MixUint64(delta.base_hash);
  // Section markers disambiguate the three framed lists (an id moving from
  // `updated` to `inserted` must change the hash even though the raw byte
  // streams of the two rows are identical).
  hasher.MixUint64(delta.inserted.size());
  for (TupleId id : delta.inserted) {
    FDR_RETURN_IF_ERROR(MixRowContent(&hasher, mutated, id, "inserted"));
  }
  hasher.MixUint64(delta.updated.size());
  for (TupleId id : delta.updated) {
    FDR_RETURN_IF_ERROR(MixRowContent(&hasher, mutated, id, "updated"));
  }
  hasher.MixUint64(delta.deleted.size());
  for (TupleId id : delta.deleted) hasher.MixInt64(id);
  return hasher.digest();
}

Status ValidateDelta(const TableDelta& delta, const Table& mutated) {
  if (!Disjoint(delta.inserted, delta.updated) ||
      !Disjoint(delta.inserted, delta.deleted) ||
      !Disjoint(delta.updated, delta.deleted)) {
    return Status::InvalidArgument(
        "delta id lists must be pairwise disjoint");
  }
  for (TupleId id : delta.deleted) {
    if (mutated.RowOf(id).ok()) {
      return Status::InvalidArgument("deleted id " + std::to_string(id) +
                                     " is still present in the mutated "
                                     "table");
    }
  }
  // DeltaChainHash checks canonical form and inserted/updated presence.
  FDR_ASSIGN_OR_RETURN(uint64_t expected, DeltaChainHash(delta, mutated));
  if (expected != delta.result_hash) {
    return Status::InvalidArgument(
        "delta result_hash does not match the chain hash of the mutated "
        "table (stale or corrupted delta)");
  }
  return Status::OK();
}

DeltaBuilder::DeltaBuilder(const Table& base)
    : table_(base.Clone()), chain_hash_(TableContentHash(base)) {}

TupleId DeltaBuilder::Insert(const std::vector<std::string>& values,
                             double weight) {
  TupleId id = table_.AddTuple(values, weight);
  auto it = edits_.find(id);
  if (it != edits_.end() && it->second == Edit::kDeleted) {
    // Erase + re-insert under the same id nets out to new content.
    it->second = Edit::kUpdated;
  } else {
    edits_[id] = Edit::kInserted;
  }
  return id;
}

Status DeltaBuilder::Update(TupleId id, AttrId attr, const std::string& text) {
  FDR_ASSIGN_OR_RETURN(int row, table_.RowOf(id));
  if (attr < 0 || attr >= table_.schema().arity()) {
    return Status::InvalidArgument("attribute " + std::to_string(attr) +
                                   " out of range");
  }
  table_.SetValue(row, attr, table_.Intern(text));
  // An update of a freshly inserted id stays an insert.
  edits_.emplace(id, Edit::kUpdated);
  return Status::OK();
}

Status DeltaBuilder::Erase(TupleId id) {
  FDR_ASSIGN_OR_RETURN(int row, table_.RowOf(id));
  table_.EraseRow(row);
  auto it = edits_.find(id);
  if (it != edits_.end() && it->second == Edit::kInserted) {
    // Inserted and erased within one delta: invisible to the base state.
    edits_.erase(it);
  } else {
    edits_[id] = Edit::kDeleted;
  }
  return Status::OK();
}

TableDelta DeltaBuilder::Finish() {
  TableDelta delta;
  delta.base_hash = chain_hash_;
  for (const auto& [id, edit] : edits_) {
    switch (edit) {
      case Edit::kInserted:
        delta.inserted.push_back(id);
        break;
      case Edit::kUpdated:
        delta.updated.push_back(id);
        break;
      case Edit::kDeleted:
        delta.deleted.push_back(id);
        break;
    }
  }
  edits_.clear();
  delta.Canonicalize();
  StatusOr<uint64_t> result = DeltaChainHash(delta, table_);
  FDR_CHECK_MSG(result.ok(), result.status().ToString());
  delta.result_hash = *result;
  chain_hash_ = *result;
  return delta;
}

}  // namespace fdrepair
