// Consistency checking (§2.2): T ⊧ ∆ iff every two tuples agreeing on the
// lhs of an FD also agree on its rhs, plus violation enumeration used by the
// conflict graph and by tests.

#ifndef FDREPAIR_STORAGE_CONSISTENCY_H_
#define FDREPAIR_STORAGE_CONSISTENCY_H_

#include <vector>

#include "catalog/fdset.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

/// True iff the view satisfies every FD of ∆. Runs in O(|∆| · |T|) expected
/// time via hashing on lhs projections.
bool Satisfies(const TableView& view, const FdSet& fds);
bool Satisfies(const Table& table, const FdSet& fds);

/// A single FD violation: view rows i < j disagree on fd.rhs while agreeing
/// on fd.lhs.
struct Violation {
  int row_i;  // dense row position in the underlying table
  int row_j;
  Fd fd;
};

/// Enumerates every violating pair for every FD. Quadratic in the worst case
/// (inherent: the conflict graph can have Θ(n²) edges); callers that only
/// need existence should use Satisfies.
std::vector<Violation> FindViolations(const TableView& view, const FdSet& fds);

/// True iff tuples t and s (jointly) satisfy ∆ — the pairwise test used by
/// fact-wise reductions.
bool PairConsistent(const Tuple& t, const Tuple& s, const FdSet& fds);

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_CONSISTENCY_H_
