// Table: the paper's data model (§2.1) — a single relation whose tuples
// carry stable identifiers and positive weights. Duplicate tuples (equal
// values, distinct identifiers) are explicitly supported, as are weighted
// tuples; the dichotomy's hard side holds even without either.

#ifndef FDREPAIR_STORAGE_TABLE_H_
#define FDREPAIR_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/value_pool.h"

namespace fdrepair {

/// Stable tuple identifier (the paper's ids(T)); survives subsetting.
using TupleId = int64_t;

/// A tuple as a dense row of interned values, one per schema attribute.
using Tuple = std::vector<ValueId>;

/// A contiguous, read-only window over one attribute's ValueIds, indexed by
/// dense row position. Borrowed from a Table: any Table mutation may grow
/// or rewrite the underlying column, so a ColumnView must not be held
/// across mutators — re-fetch it instead (Table::Column is O(1)).
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(const ValueId* data, int size) : data_(data), size_(size) {}

  const ValueId* data() const { return data_; }
  int size() const { return size_; }
  ValueId operator[](int row) const { return data_[row]; }

 private:
  const ValueId* data_ = nullptr;
  int size_ = 0;
};

/// The column-major half of the hybrid layout: one ValueId vector per
/// schema attribute, each indexed by dense row position.
using ColumnSet = std::vector<std::vector<ValueId>>;

/// A weighted, identified relation instance over one Schema.
///
/// Tuples are stored in a hybrid layout: row-major (`Tuple` rows, the
/// witness-comparison and whole-tuple interface every consumer already
/// uses) plus a column-major mirror (one contiguous ValueId vector per
/// attribute) that turns single-attribute scans — the grouping hot path —
/// into contiguous sweeps and feeds the SIMD gather kernels
/// (common/simd.h). Both representations are updated together inside every
/// mutator, after all argument validation, so no caller can ever observe a
/// column that disagrees with its row (tests/table_test.cc audits this per
/// mutator). The ValuePool is shared via shared_ptr so repairs (subsets,
/// updates) of the same table can intern new values — in particular fresh
/// constants — without copying the dictionary.
///
/// Thread safety (audited for the parallel repair engine): every const
/// member function is a pure read of immutable-after-append state, so any
/// number of threads may read one Table concurrently — this is what lets
/// OptSRepair's blocks share the parent table without copies. Mutators
/// (AddTuple*, SetValue, Intern, FreshValue) are NOT synchronized and must
/// not run concurrently with reads of the same Table. The shared ValuePool
/// *is* internally synchronized (see value_pool.h), so derived tables may
/// intern on a pool that other threads are reading through.
class Table {
 public:
  /// An empty table over `schema` with a private value pool.
  explicit Table(Schema schema);
  /// An empty table sharing an existing pool (for derived tables).
  Table(Schema schema, std::shared_ptr<ValuePool> pool);

  const Schema& schema() const { return schema_; }
  const std::shared_ptr<ValuePool>& pool() const { return pool_; }

  int num_tuples() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Appends a tuple with an auto-assigned identifier (max id + 1) and
  /// weight 1. Returns its identifier.
  TupleId AddTuple(const std::vector<std::string>& values);
  /// Appends a weighted tuple; weight must be positive.
  TupleId AddTuple(const std::vector<std::string>& values, double weight);
  /// Appends with an explicit identifier; fails if it already exists, if the
  /// arity mismatches, or if weight <= 0.
  Status AddTupleWithId(TupleId id, const std::vector<std::string>& values,
                        double weight);
  /// Low-level append of pre-interned values.
  Status AddInternedTupleWithId(TupleId id, Tuple values, double weight);

  /// Row access by dense position (0..num_tuples-1).
  const Tuple& tuple(int row) const { return tuples_[row]; }
  TupleId id(int row) const { return ids_[row]; }
  double weight(int row) const { return weights_[row]; }
  ValueId value(int row, AttrId attr) const { return tuples_[row][attr]; }

  /// Column-major access: attribute `attr`'s values for all rows, as one
  /// contiguous array indexed by dense row position. Invariant:
  /// Column(a)[r] == value(r, a) for every valid (r, a); see the class
  /// comment for how mutators maintain it. The view/pointer is invalidated
  /// by any mutation of this table.
  ColumnView Column(AttrId attr) const {
    return ColumnView(columns_[attr].data(), num_tuples());
  }
  const ValueId* ColumnData(AttrId attr) const {
    return columns_[attr].data();
  }

  /// Audit helper (tests, debug checks): true iff the column store mirrors
  /// the row store exactly. O(rows × arity).
  bool ColumnStoreConsistent() const;

  /// The row position of identifier `id`, or kNotFound.
  StatusOr<int> RowOf(TupleId id) const;

  /// Value text of a cell (through the pool).
  const std::string& ValueText(int row, AttrId attr) const;

  /// Sum of all tuple weights (w_T(T)).
  double TotalWeight() const;

  /// §2.1 predicates: all weights equal / all value-rows distinct.
  bool IsUnweighted() const;
  bool IsDuplicateFree() const;

  /// The subset of this table keeping exactly the rows in `rows`
  /// (dense positions); identifiers and weights are preserved (§2.3).
  Table SubsetByRows(const std::vector<int>& rows) const;

  /// A deep copy sharing the value pool; starting point for updates.
  Table Clone() const;

  /// Overwrites one cell; the basis of update repairs. `attr` must be valid.
  void SetValue(int row, AttrId attr, ValueId value);

  /// Removes the row at dense position `row`; later rows shift down one
  /// position (relative order of the survivors is preserved — the delta
  /// path's clean-block soundness depends on this). O(num_tuples) for the
  /// shift and the id-index fixup. The identifier is NOT recycled:
  /// re-adding after an erase never aliases an old id.
  void EraseRow(int row);
  /// EraseRow addressed by tuple identifier; kNotFound if absent.
  Status EraseTuple(TupleId id);

  /// Interns through the shared pool.
  ValueId Intern(const std::string& text) { return pool_->Intern(text); }
  ValueId FreshValue() { return pool_->FreshValue(); }
  ValueId FreshValueNamed(const std::string& name) {
    return pool_->FreshValueNamed(name);
  }

  /// Pretty-prints in the style of Figure 1: id | values... | weight.
  std::string ToString() const;

 private:
  Schema schema_;
  std::shared_ptr<ValuePool> pool_;
  std::vector<TupleId> ids_;
  std::vector<double> weights_;
  std::vector<Tuple> tuples_;
  /// Column-major mirror of tuples_: columns_[a][r] == tuples_[r][a].
  ColumnSet columns_;
  std::unordered_map<TupleId, int> id_index_;
  TupleId next_id_ = 1;
};

}  // namespace fdrepair

#endif  // FDREPAIR_STORAGE_TABLE_H_
