#include "storage/distance.h"

namespace fdrepair {

StatusOr<double> DistSub(const Table& subset, const Table& table) {
  if (!(subset.schema() == table.schema())) {
    return Status::InvalidArgument("schema mismatch in DistSub");
  }
  if (subset.pool() != table.pool()) {
    return Status::InvalidArgument(
        "DistSub requires tables sharing a value pool");
  }
  double kept = 0;
  for (int row = 0; row < subset.num_tuples(); ++row) {
    auto parent_row = table.RowOf(subset.id(row));
    if (!parent_row.ok()) {
      return Status::InvalidArgument(
          "subset tuple id " + std::to_string(subset.id(row)) +
          " not present in the original table");
    }
    if (subset.tuple(row) != table.tuple(*parent_row)) {
      return Status::InvalidArgument(
          "subset changed the values of tuple id " +
          std::to_string(subset.id(row)));
    }
    if (subset.weight(row) != table.weight(*parent_row)) {
      return Status::InvalidArgument(
          "subset changed the weight of tuple id " +
          std::to_string(subset.id(row)));
    }
    kept += table.weight(*parent_row);
  }
  return table.TotalWeight() - kept;
}

int HammingDistance(const Tuple& u, const Tuple& t) {
  FDR_CHECK(u.size() == t.size());
  int distance = 0;
  for (size_t a = 0; a < u.size(); ++a) {
    if (u[a] != t[a]) ++distance;
  }
  return distance;
}

StatusOr<double> DistUpd(const Table& update, const Table& table) {
  if (!(update.schema() == table.schema())) {
    return Status::InvalidArgument("schema mismatch in DistUpd");
  }
  if (update.num_tuples() != table.num_tuples()) {
    return Status::InvalidArgument("update must keep every tuple identifier");
  }
  double distance = 0;
  for (int row = 0; row < update.num_tuples(); ++row) {
    auto parent_row = table.RowOf(update.id(row));
    if (!parent_row.ok()) {
      return Status::InvalidArgument(
          "update tuple id " + std::to_string(update.id(row)) +
          " not present in the original table");
    }
    if (update.weight(row) != table.weight(*parent_row)) {
      return Status::InvalidArgument("update changed a tuple weight");
    }
    distance += table.weight(*parent_row) *
                HammingDistance(update.tuple(row), table.tuple(*parent_row));
  }
  return distance;
}

double DistSubOrDie(const Table& subset, const Table& table) {
  auto result = DistSub(subset, table);
  FDR_CHECK_MSG(result.ok(), result.status().ToString());
  return *result;
}

double DistUpdOrDie(const Table& update, const Table& table) {
  auto result = DistUpd(update, table);
  FDR_CHECK_MSG(result.ok(), result.status().ToString());
  return *result;
}

}  // namespace fdrepair
