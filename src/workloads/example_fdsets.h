// Every named FD set the paper discusses, as ready-made (Schema, FdSet)
// pairs. Tests assert the paper's classifications of these sets; benches
// sweep them (E3, E6, E9, E10).

#ifndef FDREPAIR_WORKLOADS_EXAMPLE_FDSETS_H_
#define FDREPAIR_WORKLOADS_EXAMPLE_FDSETS_H_

#include <string>
#include <vector>

#include "catalog/fd_parser.h"

namespace fdrepair {

/// The running example (Example 2.2): Office(facility, room, floor, city),
/// ∆ = {facility → city, facility room → floor}. Chain set; common lhs.
ParsedFdSet OfficeFds();

/// ∆A↔B→C (equation (1)): {A → B, B → A, B → C}. Poly for S-repairs,
/// APX-complete for U-repairs (Theorem 4.10); MPD tractable (Comment 3.11).
ParsedFdSet DeltaAKeyBToC();

/// Example 3.1 ∆1: ssn/first/last/address/office/phone/fax — lhs marriage
/// ({ssn}, {first, last}); tractable (Example 3.5).
ParsedFdSet Example31Ssn();

/// Table 1, the four APX-hard gadget sets over R(A, B, C).
ParsedFdSet DeltaAtoBtoC();        // {A → B, B → C}
ParsedFdSet DeltaAtoCfromB();      // {A → C, B → C}
ParsedFdSet DeltaABtoCtoB();       // {AB → C, C → B}
ParsedFdSet DeltaTriangle();       // {AB → C, AC → B, BC → A}

/// {A → B, C → D}: hard for S-repairs, polynomial for U-repairs
/// (Example 3.5 / Example 4.2) — Corollary 4.11 direction 2.
ParsedFdSet DeltaTwoDisjoint();

/// ∆0 (introduction): Purchase(product, price, buyer, email, address) with
/// {product → price, buyer → email}.
ParsedFdSet Delta0Purchase();

/// ∆3 (introduction): {email → buyer, buyer → address} — hard both ways.
ParsedFdSet Delta3Email();

/// ∆4 (introduction): {buyer → email, email → buyer, buyer → address} —
/// S poly, U APX-complete.
ParsedFdSet Delta4Buyer();

/// Example 4.2: {item → cost, buyer → address} and the APX-hard extension
/// {item → cost, buyer → address, address → state}.
ParsedFdSet Example42Tractable();
ParsedFdSet Example42Hard();

/// Example 4.7: ∆1 = {id country → passport, id passport → country} (poly);
/// ∆2 = {state city → zip, state zip → country} (APX-complete).
ParsedFdSet Example47Passport();
ParsedFdSet Example47Zip();

/// Example 3.8's class representatives ∆1..∆5 (Figure 2 classes 1..5).
ParsedFdSet Example38Class(int fd_class);

/// §4.4 families: ∆k = {A0…Ak → B0, B0 → C, B1 → A0, …, Bk → A0} over
/// R(A0..Ak, B0..Bk, C) — our ratio 2(k+2) = Θ(k), KL ratio Θ(k²).
ParsedFdSet DeltaKFamily(int k);

/// ∆'k = {A0A1 → B0, A1A2 → B1, …, AkAk+1 → Bk} — our ratio Θ(k),
/// KL ratio constant (= 9).
ParsedFdSet DeltaPrimeKFamily(int k);

/// Every named set above (except the parameterized families), with labels —
/// convenient for sweep tests/benches.
struct NamedFdSet {
  std::string name;
  ParsedFdSet parsed;
};
std::vector<NamedFdSet> AllNamedFdSets();

}  // namespace fdrepair

#endif  // FDREPAIR_WORKLOADS_EXAMPLE_FDSETS_H_
