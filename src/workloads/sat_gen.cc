#include "workloads/sat_gen.h"

#include <algorithm>

namespace fdrepair {

NonMixedFormula RandomNonMixedFormula(int num_variables, int num_clauses,
                                      int clause_size, Rng* rng) {
  FDR_CHECK(num_variables >= 1 && clause_size >= 1 &&
            clause_size <= num_variables);
  NonMixedFormula formula;
  formula.num_variables = num_variables;
  for (int c = 0; c < num_clauses; ++c) {
    NonMixedFormula::Clause clause;
    clause.positive = rng->Bernoulli(0.5);
    while (static_cast<int>(clause.variables.size()) < clause_size) {
      int variable = static_cast<int>(rng->UniformUint64(num_variables));
      if (std::find(clause.variables.begin(), clause.variables.end(),
                    variable) == clause.variables.end()) {
        clause.variables.push_back(variable);
      }
    }
    std::sort(clause.variables.begin(), clause.variables.end());
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

int SatisfiedClauses(const NonMixedFormula& formula, uint64_t assignment) {
  int satisfied = 0;
  for (const NonMixedFormula::Clause& clause : formula.clauses) {
    bool ok = false;
    for (int variable : clause.variables) {
      bool value = (assignment >> variable) & 1;
      if (value == clause.positive) {
        ok = true;
        break;
      }
    }
    if (ok) ++satisfied;
  }
  return satisfied;
}

StatusOr<int> MaxSatisfiableClausesExact(const NonMixedFormula& formula,
                                         int max_variables) {
  if (formula.num_variables > max_variables) {
    return Status::ResourceExhausted(
        "exact MAX-SAT limited to " + std::to_string(max_variables) +
        " variables");
  }
  int best = 0;
  for (uint64_t assignment = 0;
       assignment < (uint64_t{1} << formula.num_variables); ++assignment) {
    best = std::max(best, SatisfiedClauses(formula, assignment));
  }
  return best;
}

}  // namespace fdrepair
