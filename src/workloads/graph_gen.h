// Random graph workloads for the hardness gadgets: bounded-degree graphs
// (vertex cover), tripartite graphs and triangle enumeration / exact
// edge-disjoint triangle packing (MECT-B, Lemma A.11).

#ifndef FDREPAIR_WORKLOADS_GRAPH_GEN_H_
#define FDREPAIR_WORKLOADS_GRAPH_GEN_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "reductions/gadgets.h"

namespace fdrepair {

/// An Erdős–Rényi-style graph with `num_edges` distinct edges.
NodeWeightedGraph RandomGraph(int num_nodes, int num_edges, Rng* rng);

/// A random graph in which every node's degree stays <= `max_degree`
/// (the APX-hardness of vertex cover needs bounded degree; §4.3).
NodeWeightedGraph RandomBoundedDegreeGraph(int num_nodes, int max_degree,
                                           double edge_density, Rng* rng);

/// A random tripartite graph with parts of `part_size` nodes and the given
/// cross-part edge probability. Nodes 0..p-1 / p..2p-1 / 2p..3p-1.
NodeWeightedGraph RandomTripartiteGraph(int part_size, double edge_probability,
                                        Rng* rng);

/// All triangles (a, b, c) of a tripartite graph with parts as above,
/// rendered with part-local names a<i>, b<j>, c<k> for the gadget builder.
std::vector<Triangle> EnumerateTriangles(const NodeWeightedGraph& graph,
                                         int part_size);

/// Maximum number of edge-disjoint triangles, by exhaustive branch and
/// bound; refuses instances with more than `max_triangles` triangles.
StatusOr<int> MaxEdgeDisjointTrianglesExact(
    const NodeWeightedGraph& graph, const std::vector<Triangle>& triangles,
    int part_size, int max_triangles = 24);

}  // namespace fdrepair

#endif  // FDREPAIR_WORKLOADS_GRAPH_GEN_H_
