#include "workloads/example_fdsets.h"

namespace fdrepair {

ParsedFdSet OfficeFds() {
  auto parsed = ParseFdSetInferSchema(
      "facility -> city; facility room -> floor", "Office");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet DeltaAKeyBToC() {
  return ParseFdSetInferSchemaOrDie("A -> B; B -> A; B -> C");
}

ParsedFdSet Example31Ssn() {
  auto parsed = ParseFdSetInferSchema(
      "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
      "ssn office -> phone; ssn office -> fax",
      "Person");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet DeltaAtoBtoC() {
  return ParseFdSetInferSchemaOrDie("A -> B; B -> C");
}

ParsedFdSet DeltaAtoCfromB() {
  // Infer with C before B so the schema still reads R(A, B, C): declare the
  // attribute order explicitly instead.
  Schema schema = Schema::Anonymous(3);
  FdSet fds = ParseFdSetOrDie(schema, "A -> C; B -> C");
  return ParsedFdSet{schema, fds};
}

ParsedFdSet DeltaABtoCtoB() {
  return ParseFdSetInferSchemaOrDie("A B -> C; C -> B");
}

ParsedFdSet DeltaTriangle() {
  return ParseFdSetInferSchemaOrDie("A B -> C; A C -> B; B C -> A");
}

ParsedFdSet DeltaTwoDisjoint() {
  return ParseFdSetInferSchemaOrDie("A -> B; C -> D");
}

ParsedFdSet Delta0Purchase() {
  auto parsed = ParseFdSetInferSchema(
      "product -> price; buyer -> email", "Purchase");
  FDR_CHECK(parsed.ok());
  ParsedFdSet out = std::move(parsed).value();
  return out;
}

ParsedFdSet Delta3Email() {
  auto parsed = ParseFdSetInferSchema(
      "email -> buyer; buyer -> address", "Purchase");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet Delta4Buyer() {
  auto parsed = ParseFdSetInferSchema(
      "buyer -> email; email -> buyer; buyer -> address", "Purchase");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet Example42Tractable() {
  auto parsed = ParseFdSetInferSchema(
      "item -> cost; buyer -> address", "Order");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet Example42Hard() {
  auto parsed = ParseFdSetInferSchema(
      "item -> cost; buyer -> address; address -> state", "Order");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet Example47Passport() {
  auto parsed = ParseFdSetInferSchema(
      "id country -> passport; id passport -> country", "Citizen");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet Example47Zip() {
  auto parsed = ParseFdSetInferSchema(
      "state city -> zip; state zip -> county", "Address");
  FDR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

ParsedFdSet Example38Class(int fd_class) {
  switch (fd_class) {
    case 1:
      return ParseFdSetInferSchemaOrDie("A -> B; C -> D");
    case 2:
      return ParseFdSetInferSchemaOrDie("A -> C D; B -> C E");
    case 3:
      return ParseFdSetInferSchemaOrDie("A -> B C; B -> D");
    case 4:
      return ParseFdSetInferSchemaOrDie("A B -> C; A C -> B; B C -> A");
    case 5:
      return ParseFdSetInferSchemaOrDie("A B -> C; C -> A D");
    default:
      FDR_CHECK_MSG(false, "Example 3.8 classes are 1..5, got " << fd_class);
  }
}

ParsedFdSet DeltaKFamily(int k) {
  FDR_CHECK_MSG(k >= 1, "DeltaKFamily requires k >= 1, got " << k);
  // R(A0..Ak, B0..Bk, C); ∆k = {A0…Ak → B0, B0 → C, Bi → A0 for i = 1..k}.
  std::vector<std::string> names;
  for (int i = 0; i <= k; ++i) names.push_back("A" + std::to_string(i));
  for (int i = 0; i <= k; ++i) names.push_back("B" + std::to_string(i));
  names.push_back("C");
  Schema schema = Schema::MakeOrDie("R", names);
  std::string text;
  for (int i = 0; i <= k; ++i) text += "A" + std::to_string(i) + " ";
  text += "-> B0; B0 -> C";
  for (int i = 1; i <= k; ++i) text += "; B" + std::to_string(i) + " -> A0";
  FdSet fds = ParseFdSetOrDie(schema, text);
  return ParsedFdSet{schema, fds};
}

ParsedFdSet DeltaPrimeKFamily(int k) {
  FDR_CHECK_MSG(k >= 1, "DeltaPrimeKFamily requires k >= 1, got " << k);
  // R(A0..Ak+1, B0..Bk); ∆'k = {Ai Ai+1 → Bi for i = 0..k}.
  std::vector<std::string> names;
  for (int i = 0; i <= k + 1; ++i) names.push_back("A" + std::to_string(i));
  for (int i = 0; i <= k; ++i) names.push_back("B" + std::to_string(i));
  Schema schema = Schema::MakeOrDie("R", names);
  std::string text;
  for (int i = 0; i <= k; ++i) {
    if (i > 0) text += "; ";
    text += "A" + std::to_string(i) + " A" + std::to_string(i + 1) + " -> B" +
            std::to_string(i);
  }
  FdSet fds = ParseFdSetOrDie(schema, text);
  return ParsedFdSet{schema, fds};
}

std::vector<NamedFdSet> AllNamedFdSets() {
  std::vector<NamedFdSet> out;
  out.push_back({"office", OfficeFds()});
  out.push_back({"A<->B->C", DeltaAKeyBToC()});
  out.push_back({"ssn(Ex3.1)", Example31Ssn()});
  out.push_back({"A->B->C", DeltaAtoBtoC()});
  out.push_back({"A->C<-B", DeltaAtoCfromB()});
  out.push_back({"AB->C->B", DeltaABtoCtoB()});
  out.push_back({"AB<->AC<->BC", DeltaTriangle()});
  out.push_back({"A->B,C->D", DeltaTwoDisjoint()});
  out.push_back({"purchase(∆0)", Delta0Purchase()});
  out.push_back({"email(∆3)", Delta3Email()});
  out.push_back({"buyer(∆4)", Delta4Buyer()});
  out.push_back({"order(Ex4.2-)", Example42Tractable()});
  out.push_back({"order(Ex4.2+)", Example42Hard()});
  out.push_back({"passport(Ex4.7)", Example47Passport()});
  out.push_back({"zip(Ex4.7)", Example47Zip()});
  for (int fd_class = 1; fd_class <= 5; ++fd_class) {
    out.push_back({"class" + std::to_string(fd_class) + "(Ex3.8)",
                   Example38Class(fd_class)});
  }
  return out;
}

}  // namespace fdrepair
