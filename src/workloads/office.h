// The Figure 1 running example, verbatim: table T over
// Office(facility, room, floor, city) with weights, the consistent subsets
// S1, S2, S3 and the consistent updates U1, U2, U3 of Examples 2.1–2.3.

#ifndef FDREPAIR_WORKLOADS_OFFICE_H_
#define FDREPAIR_WORKLOADS_OFFICE_H_

#include "catalog/fd_parser.h"
#include "storage/table.h"

namespace fdrepair {

/// All of Figure 1. The subsets/updates share T's value pool and tuple
/// identifiers, so DistSub / DistUpd apply directly.
struct OfficeExample {
  Schema schema;
  FdSet fds;          // facility → city, facility room → floor
  Table table;        // Figure 1(a)
  Table subset_s1;    // Figure 1(b), dist_sub = 2 (optimal)
  Table subset_s2;    // Figure 1(c), dist_sub = 2 (optimal)
  Table subset_s3;    // Figure 1(d), dist_sub = 3 (1.5-optimal)
  Table update_u1;    // Figure 1(e), dist_upd = 2 (optimal)
  Table update_u2;    // Figure 1(f), dist_upd = 3
  Table update_u3;    // Figure 1(g), dist_upd = 4
};

/// Builds the example; every piece checked against the paper in tests.
OfficeExample MakeOfficeExample();

}  // namespace fdrepair

#endif  // FDREPAIR_WORKLOADS_OFFICE_H_
