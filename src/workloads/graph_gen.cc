#include "workloads/graph_gen.h"

#include <algorithm>
#include <cstdlib>

namespace fdrepair {

NodeWeightedGraph RandomGraph(int num_nodes, int num_edges, Rng* rng) {
  FDR_CHECK(num_nodes >= 0);
  NodeWeightedGraph graph(num_nodes);
  int64_t max_edges =
      static_cast<int64_t>(num_nodes) * (num_nodes - 1) / 2;
  FDR_CHECK_MSG(num_edges <= max_edges,
                "requested " << num_edges << " edges, max " << max_edges);
  while (graph.num_edges() < num_edges) {
    int u = static_cast<int>(rng->UniformUint64(num_nodes));
    int v = static_cast<int>(rng->UniformUint64(num_nodes));
    if (u != v) graph.AddEdge(u, v);
  }
  return graph;
}

NodeWeightedGraph RandomBoundedDegreeGraph(int num_nodes, int max_degree,
                                           double edge_density, Rng* rng) {
  FDR_CHECK(num_nodes >= 0 && max_degree >= 1);
  NodeWeightedGraph graph(num_nodes);
  int64_t target = static_cast<int64_t>(edge_density * num_nodes *
                                        max_degree / 2.0);
  int64_t attempts = 20 * target + 100;
  while (target > graph.num_edges() && attempts-- > 0) {
    int u = static_cast<int>(rng->UniformUint64(num_nodes));
    int v = static_cast<int>(rng->UniformUint64(num_nodes));
    if (u == v) continue;
    if (graph.Degree(u) >= max_degree || graph.Degree(v) >= max_degree) {
      continue;
    }
    graph.AddEdge(u, v);
  }
  return graph;
}

NodeWeightedGraph RandomTripartiteGraph(int part_size, double edge_probability,
                                        Rng* rng) {
  FDR_CHECK(part_size >= 1);
  NodeWeightedGraph graph(3 * part_size);
  for (int part1 = 0; part1 < 3; ++part1) {
    for (int part2 = part1 + 1; part2 < 3; ++part2) {
      for (int i = 0; i < part_size; ++i) {
        for (int j = 0; j < part_size; ++j) {
          if (rng->Bernoulli(edge_probability)) {
            graph.AddEdge(part1 * part_size + i, part2 * part_size + j);
          }
        }
      }
    }
  }
  return graph;
}

std::vector<Triangle> EnumerateTriangles(const NodeWeightedGraph& graph,
                                         int part_size) {
  std::vector<Triangle> out;
  for (int i = 0; i < part_size; ++i) {
    for (int j = 0; j < part_size; ++j) {
      if (!graph.HasEdge(i, part_size + j)) continue;
      for (int k = 0; k < part_size; ++k) {
        if (graph.HasEdge(i, 2 * part_size + k) &&
            graph.HasEdge(part_size + j, 2 * part_size + k)) {
          out.push_back(Triangle{"a" + std::to_string(i),
                                 "b" + std::to_string(j),
                                 "c" + std::to_string(k)});
        }
      }
    }
  }
  return out;
}

namespace {

struct TriangleEdges {
  uint64_t ab;
  uint64_t ac;
  uint64_t bc;
};

uint64_t EdgeKey(int u, int v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

void PackingSearch(const std::vector<TriangleEdges>& triangles, size_t index,
                   std::vector<uint64_t>* used, int chosen, int* best) {
  if (index == triangles.size()) {
    *best = std::max(*best, chosen);
    return;
  }
  // Prune: even taking every remaining triangle cannot beat the best.
  if (chosen + static_cast<int>(triangles.size() - index) <= *best) return;
  const TriangleEdges& t = triangles[index];
  bool free = std::find(used->begin(), used->end(), t.ab) == used->end() &&
              std::find(used->begin(), used->end(), t.ac) == used->end() &&
              std::find(used->begin(), used->end(), t.bc) == used->end();
  if (free) {
    used->push_back(t.ab);
    used->push_back(t.ac);
    used->push_back(t.bc);
    PackingSearch(triangles, index + 1, used, chosen + 1, best);
    used->resize(used->size() - 3);
  }
  PackingSearch(triangles, index + 1, used, chosen, best);
}

}  // namespace

StatusOr<int> MaxEdgeDisjointTrianglesExact(
    const NodeWeightedGraph& graph, const std::vector<Triangle>& triangles,
    int part_size, int max_triangles) {
  (void)graph;
  if (static_cast<int>(triangles.size()) > max_triangles) {
    return Status::ResourceExhausted(
        "exact triangle packing limited to " + std::to_string(max_triangles) +
        " triangles, got " + std::to_string(triangles.size()));
  }
  std::vector<TriangleEdges> edge_triples;
  for (const Triangle& t : triangles) {
    int a = std::atoi(t.a.c_str() + 1);
    int b = part_size + std::atoi(t.b.c_str() + 1);
    int c = 2 * part_size + std::atoi(t.c.c_str() + 1);
    edge_triples.push_back(
        TriangleEdges{EdgeKey(a, b), EdgeKey(a, c), EdgeKey(b, c)});
  }
  int best = 0;
  std::vector<uint64_t> used;
  PackingSearch(edge_triples, 0, &used, 0, &best);
  return best;
}

}  // namespace fdrepair
