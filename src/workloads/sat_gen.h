// Non-mixed SAT workloads for the Lemma A.13 gadget: random formulas whose
// clauses are all-positive or all-negative, plus an exact MAX-SAT solver
// for ground truth.

#ifndef FDREPAIR_WORKLOADS_SAT_GEN_H_
#define FDREPAIR_WORKLOADS_SAT_GEN_H_

#include "common/random.h"
#include "common/status.h"
#include "reductions/gadgets.h"

namespace fdrepair {

/// A random non-mixed formula: each clause flips a fair coin for polarity
/// and draws `clause_size` distinct variables.
NonMixedFormula RandomNonMixedFormula(int num_variables, int num_clauses,
                                      int clause_size, Rng* rng);

/// The number of clauses `assignment` satisfies (bit i = variable i).
int SatisfiedClauses(const NonMixedFormula& formula, uint64_t assignment);

/// Exhaustive MAX-SAT over 2^num_variables assignments; num_variables <= 24.
StatusOr<int> MaxSatisfiableClausesExact(const NonMixedFormula& formula,
                                         int max_variables = 24);

}  // namespace fdrepair

#endif  // FDREPAIR_WORKLOADS_SAT_GEN_H_
