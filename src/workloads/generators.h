// Synthetic dirty-table generators: the workload side of every experiment.
// All generators are deterministic functions of an explicit Rng.

#ifndef FDREPAIR_WORKLOADS_GENERATORS_H_
#define FDREPAIR_WORKLOADS_GENERATORS_H_

#include "catalog/fd_parser.h"
#include "catalog/fdset.h"
#include "common/random.h"
#include "storage/table.h"

namespace fdrepair {

struct RandomTableOptions {
  int num_tuples = 100;
  /// Values per column are drawn uniformly from {v0..v(domain_size-1)};
  /// small domains make FD violations frequent.
  int domain_size = 4;
  /// With probability `heavy_fraction` a tuple gets weight
  /// uniform[1, max_weight]; otherwise weight 1. 0 keeps it unweighted.
  double heavy_fraction = 0.0;
  double max_weight = 4.0;
};

/// A fully random table: uniform per-cell values. Violations arise
/// naturally; expected violation density grows as tuples²/domain^|lhs|.
Table RandomTable(const Schema& schema, const RandomTableOptions& options,
                  Rng* rng);

struct PlantedTableOptions {
  int num_tuples = 100;
  /// Number of distinct lhs "entities" per FD-closure class; controls how
  /// often tuples collide on lhs values.
  int num_entities = 20;
  int domain_size = 16;
  /// Cells corrupted after planting a consistent table (each corruption
  /// overwrites one uniformly chosen cell with a random domain value).
  int corruptions = 10;
  double heavy_fraction = 0.0;
  double max_weight = 4.0;
};

/// A table planted to satisfy ∆ — every rhs is a deterministic function of
/// the lhs values — then corrupted with `corruptions` random cell edits.
/// Mirrors the paper's cleaning motivation: mostly-clean data plus noise.
Table PlantedDirtyTable(const Schema& schema, const FdSet& fds,
                        const PlantedTableOptions& options, Rng* rng);

/// The Theorem 3.2 scaling-family instance shared by the OptSRepair and
/// engine benches and the engine tests: n uniform tuples over the family's
/// schema with domain max(4, n / domain_divisor) and 30% heavy weights.
/// One definition on purpose — bench/baselines.json numbers are only
/// comparable across binaries because they all draw from this generator.
Table ScalingFamilyTable(const ParsedFdSet& parsed, int n, uint64_t seed,
                         int domain_divisor = 16);

}  // namespace fdrepair

#endif  // FDREPAIR_WORKLOADS_GENERATORS_H_
