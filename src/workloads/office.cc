#include "workloads/office.h"

#include <utility>

#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

void AddOrDie(Table* table, TupleId id, const std::vector<std::string>& values,
              double weight) {
  Status status = table->AddTupleWithId(id, values, weight);
  FDR_CHECK_MSG(status.ok(), status.ToString());
}

}  // namespace

OfficeExample MakeOfficeExample() {
  // Figure 1's column order (the inferred order of OfficeFds() differs).
  Schema schema = Schema::MakeOrDie(
      "Office", {"facility", "room", "floor", "city"});
  FdSet fds = ParseFdSetOrDie(schema,
                              "facility -> city; facility room -> floor");

  Table table(schema);
  AddOrDie(&table, 1, {"HQ", "322", "3", "Paris"}, 2);
  AddOrDie(&table, 2, {"HQ", "322", "30", "Madrid"}, 1);
  AddOrDie(&table, 3, {"HQ", "122", "1", "Madrid"}, 1);
  AddOrDie(&table, 4, {"Lab1", "B35", "3", "London"}, 2);

  auto subset = [&](std::vector<TupleId> ids) {
    std::vector<int> rows;
    for (TupleId id : ids) {
      auto row = table.RowOf(id);
      FDR_CHECK(row.ok());
      rows.push_back(*row);
    }
    return table.SubsetByRows(rows);
  };

  Table subset_s1 = subset({2, 3, 4});
  Table subset_s2 = subset({1, 4});
  Table subset_s3 = subset({3, 4});
  // Only the three update tables get mutated below, so only they need
  // private copies; the base table is moved into the example as-is.
  Table update_u1 = table.Clone();
  Table update_u2 = table.Clone();
  Table update_u3 = table.Clone();

  auto set = [&](Table* t, TupleId id, const std::string& attr,
                 const std::string& value) {
    auto row = t->RowOf(id);
    FDR_CHECK(row.ok());
    auto attr_id = schema.AttributeId(attr);
    FDR_CHECK(attr_id.ok());
    t->SetValue(*row, *attr_id, t->Intern(value));
  };

  // U1 (Figure 1(e)): tuple 1's facility becomes F01.
  set(&update_u1, 1, "facility", "F01");
  // U2 (Figure 1(f)): tuple 2 gets floor 3 and city Paris; tuple 3 Paris.
  set(&update_u2, 2, "floor", "3");
  set(&update_u2, 2, "city", "Paris");
  set(&update_u2, 3, "city", "Paris");
  // U3 (Figure 1(g)): tuple 1 gets floor 30 and city Madrid.
  set(&update_u3, 1, "floor", "30");
  set(&update_u3, 1, "city", "Madrid");

  return OfficeExample{schema,
                       fds,
                       std::move(table),
                       std::move(subset_s1),
                       std::move(subset_s2),
                       std::move(subset_s3),
                       std::move(update_u1),
                       std::move(update_u2),
                       std::move(update_u3)};
}

}  // namespace fdrepair
