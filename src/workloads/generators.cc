#include "workloads/generators.h"

#include <algorithm>

namespace fdrepair {
namespace {

double DrawWeight(double heavy_fraction, double max_weight, Rng* rng) {
  if (heavy_fraction > 0 && rng->Bernoulli(heavy_fraction)) {
    return rng->UniformDouble(1.0, max_weight);
  }
  return 1.0;
}

}  // namespace

Table RandomTable(const Schema& schema, const RandomTableOptions& options,
                  Rng* rng) {
  FDR_CHECK(options.num_tuples >= 0 && options.domain_size >= 1);
  Table table(schema);
  for (int i = 0; i < options.num_tuples; ++i) {
    std::vector<std::string> values;
    values.reserve(schema.arity());
    for (int a = 0; a < schema.arity(); ++a) {
      values.push_back(
          "v" + std::to_string(rng->UniformUint64(options.domain_size)));
    }
    table.AddTuple(values,
                   DrawWeight(options.heavy_fraction, options.max_weight, rng));
  }
  return table;
}

Table PlantedDirtyTable(const Schema& schema, const FdSet& fds,
                        const PlantedTableOptions& options, Rng* rng) {
  FDR_CHECK(options.num_tuples >= 0 && options.num_entities >= 1);
  // Entity-keyed values: every attribute value is a function of the tuple's
  // entity, so any lhs agreement implies the same entity and hence rhs
  // agreement — the planted table satisfies every FD (duplicates included).
  auto entity_value = [](AttrId attr, int64_t entity) {
    return "a" + std::to_string(attr) + "_e" + std::to_string(entity);
  };
  Table table(schema);
  for (int i = 0; i < options.num_tuples; ++i) {
    int64_t entity =
        static_cast<int64_t>(rng->UniformUint64(options.num_entities));
    std::vector<std::string> values;
    values.reserve(schema.arity());
    for (int a = 0; a < schema.arity(); ++a) {
      values.push_back(entity_value(a, entity));
    }
    table.AddTuple(values,
                   DrawWeight(options.heavy_fraction, options.max_weight, rng));
  }
  // Corruption: overwrite random cells with another entity's value for that
  // attribute, creating realistic cross-entity collisions.
  AttrSet relevant = fds.Attrs();
  std::vector<AttrId> attrs =
      relevant.empty() ? schema.AllAttrs().ToVector() : relevant.ToVector();
  for (int c = 0; c < options.corruptions && table.num_tuples() > 0; ++c) {
    int row = static_cast<int>(rng->UniformUint64(table.num_tuples()));
    AttrId attr = attrs[rng->UniformIndex(attrs.size())];
    int64_t entity =
        static_cast<int64_t>(rng->UniformUint64(options.num_entities));
    table.SetValue(row, attr, table.Intern(entity_value(attr, entity)));
  }
  return table;
}

Table ScalingFamilyTable(const ParsedFdSet& parsed, int n, uint64_t seed,
                         int domain_divisor) {
  Rng rng(seed);
  RandomTableOptions options;
  options.num_tuples = n;
  options.domain_size = std::max(4, n / domain_divisor);
  options.heavy_fraction = 0.3;
  return RandomTable(parsed.schema, options, &rng);
}

}  // namespace fdrepair
