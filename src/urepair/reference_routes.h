// ===========================================================================
// REFERENCE IMPLEMENTATIONS — test/bench oracle only. Not a production path.
// ===========================================================================
//
// The pre-span §4 route implementations, preserved verbatim when the live
// routes were ported onto the columnar grouping core (DenseValueIndex +
// Table::Column scans) — exactly as PR 4 preserved the materializing
// OptSRepair recursion when the span core replaced it. The only change
// relative to the historical code is fresh-constant naming, which switched
// to the deterministic (TupleId, attr)-derived scheme of urepair/fresh.h in
// the same PR on both sides, so reference and live outputs stay comparable
// cell for cell.
//
// tests/urepair_routes_test.cc pins the live routes bit-identical to these
// across all named FD sets, thread counts and SIMD dispatch modes;
// bench/bench_sec4_urepair_routes.cc measures the live routes against them
// (the tracked `urepair.span_speedup` floor).

#ifndef FDREPAIR_UREPAIR_REFERENCE_ROUTES_H_
#define FDREPAIR_UREPAIR_REFERENCE_ROUTES_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"
#include "urepair/planner.h"

namespace fdrepair {

/// Hash-map weighted-plurality consensus repair / cost (the pre-port
/// urepair_consensus.cc bodies).
Table ReferenceConsensusPluralityRepair(const Table& table, AttrSet attrs);
double ReferenceConsensusPluralityCost(const Table& table, AttrSet attrs);

/// Hash-map subset-to-update conversion (Proposition 4.4 direction 2) with
/// deterministic freshening.
StatusOr<Table> ReferenceSubsetToUpdate(const FdSet& fds, const Table& table,
                                        const std::vector<int>& kept_rows);

/// Hash-map key-cycle alignment (Proposition 4.9).
StatusOr<Table> ReferenceKeyCycleURepair(const FdSet& fds, const Table& table);

/// Hash-map core-implicant baseline and the best-of-both combination.
StatusOr<Table> ReferenceKlApproxURepair(const FdSet& fds, const Table& table);
StatusOr<Table> ReferenceCombinedApproxURepair(const FdSet& fds,
                                               const Table& table);

/// The full reference U-planner executor: PlanURepair + the reference
/// routes, merged per component exactly as ComputeURepair merges the live
/// ones. The oracle for whole-plan bit-identity.
StatusOr<URepairResult> ReferenceComputeURepair(
    const FdSet& fds, const Table& table, const URepairOptions& options = {});

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_REFERENCE_ROUTES_H_
