// URepairPlanner: the user-facing facade for update repairing (§4).
//
// The plan mirrors the paper's reduction toolkit:
//   1. peel off consensus attributes cl∆(∅) and repair them by weighted
//      plurality — a strict, cost-separable reduction (Theorem 4.3,
//      Proposition B.2);
//   2. split the remaining ∆ into attribute-disjoint components and solve
//      each independently (Theorem 4.1);
//   3. per component, in order:
//        - common lhs + OSRSucceeds      -> exact via S-repair (Cor 4.6);
//        - key cycle {A→B, B→A}          -> exact (Proposition 4.9);
//        - tiny instance                 -> exact exhaustive search;
//        - otherwise                     -> best of the 2·mlc route
//          (Theorem 4.12) and the core-implicant route (Theorem 4.13
//          style), per the §4.4 closing recommendation.
//
// Unlike S-repairs, no full dichotomy is known for U-repairs (§5); the
// verdict therefore distinguishes "known polynomial", "known APX-hard" and
// "open", with the reasons recorded per component.

#ifndef FDREPAIR_UREPAIR_PLANNER_H_
#define FDREPAIR_UREPAIR_PLANNER_H_

#include <string>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// How a component was (or would be) solved.
enum class URepairRoute {
  /// No nontrivial FDs left: nothing to do.
  kNoop,
  /// Weighted plurality on consensus attributes (Prop B.2 / Thm 4.3).
  kConsensusPlurality,
  /// Optimal S-repair + lhs-cover freshening, mlc = 1 (Cor 4.6).
  kCommonLhsExact,
  /// {A→B, B→A} alignment (Prop 4.9).
  kKeyCycleExact,
  /// Exhaustive search (tiny instances only).
  kExactSearch,
  /// Best of Theorem 4.12 and the Theorem-4.13-style baseline.
  kCombinedApprox,
};

const char* URepairRouteToString(URepairRoute route);

/// What is provable about the component's data complexity.
enum class URepairComplexity {
  /// A known polynomial-time exact algorithm applies.
  kPolynomial,
  /// Known APX-hard (e.g. common lhs whose S-problem is hard — Cor 4.6 —
  /// or a component matching a hardness family of §4).
  kApxHard,
  /// Not covered by the paper's conditions either way (§5 open problem).
  kOpen,
};

const char* URepairComplexityToString(URepairComplexity complexity);

/// Per-component plan entry.
struct URepairComponentPlan {
  FdSet fds;
  URepairRoute route = URepairRoute::kNoop;
  URepairComplexity complexity = URepairComplexity::kOpen;
  /// The guaranteed approximation factor of `route` on this component
  /// (1 for exact routes).
  double ratio_bound = 1;
  std::string reason;
};

struct URepairPlan {
  /// Consensus attributes handled by plurality (may be empty).
  AttrSet consensus_attrs;
  std::vector<URepairComponentPlan> components;
  /// Whole-problem complexity: polynomial iff every component is.
  URepairComplexity complexity = URepairComplexity::kPolynomial;
  /// max over components of ratio_bound (costs add across components).
  double ratio_bound = 1;

  std::string ToString(const Schema& schema) const;
};

struct URepairOptions {
  /// Use the exhaustive exact solver on hard/open components whose instance
  /// fits (rows <= exact_rows_guard and cells <= exact_cells_guard).
  bool allow_exact_search = true;
  int exact_rows_guard = 6;
  int exact_cells_guard = 24;
};

/// Classifies ∆ without touching data. Pure function of the FD set.
StatusOr<URepairPlan> PlanURepair(const FdSet& fds);

struct URepairResult {
  Table update;
  /// dist_upd(update, T).
  double distance = 0;
  /// True iff the update is provably an optimal U-repair.
  bool optimal = false;
  /// Upper bound on distance / optimal distance.
  double ratio_bound = 1;
  URepairPlan plan;
};

/// Plans and executes an update repair of `table` under ∆.
StatusOr<URepairResult> ComputeURepair(const FdSet& fds, const Table& table,
                                       const URepairOptions& options = {});

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_PLANNER_H_
