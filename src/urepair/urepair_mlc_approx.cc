#include "urepair/urepair_mlc_approx.h"

#include "srepair/srepair_vc_approx.h"
#include "urepair/urepair_common_lhs.h"

namespace fdrepair {

StatusOr<Table> MlcApproxURepair(const FdSet& fds, const Table& table) {
  FdSet delta = fds.WithoutTrivial();
  if (!delta.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "MlcApproxURepair requires a consensus-free FD set");
  }
  // Theorem 4.1 composition: repair each attribute-disjoint component with
  // its own (smaller) lhs cover, so the guarantee is
  // 2 · max_i mlc(∆_i) rather than 2 · mlc(∆).
  Table update = table.Clone();
  for (const FdSet& component : delta.AttributeDisjointComponents()) {
    std::vector<int> kept_rows =
        SRepairVcApproxRows(component, TableView(table));
    FDR_ASSIGN_OR_RETURN(Table sub, SubsetToUpdate(component, table,
                                                   kept_rows));
    // Merge the component's freshened cells (all inside attr(∆_i)).
    AttrSet attrs = component.Attrs();
    for (int row = 0; row < table.num_tuples(); ++row) {
      ForEachAttr(attrs, [&](AttrId attr) {
        if (sub.value(row, attr) != update.value(row, attr)) {
          update.SetValue(row, attr, sub.value(row, attr));
        }
      });
    }
  }
  return update;
}

}  // namespace fdrepair
