#include "urepair/urepair_kl_approx.h"

#include <optional>
#include <vector>

#include "srepair/srepair_vc_approx.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/covers.h"
#include "urepair/fresh.h"
#include "urepair/urepair_mlc_approx.h"

namespace fdrepair {

StatusOr<Table> KlApproxURepair(const FdSet& fds, const Table& table) {
  FdSet delta = fds.WithoutTrivial();
  if (!delta.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "KlApproxURepair requires a consensus-free FD set");
  }
  TableView view(table);

  // Step 1: tuples to repair = complement of an (approximately maximal)
  // consistent subset — i.e. an approximate vertex cover of conflicts.
  std::vector<int> kept_rows = SRepairVcApproxRows(delta, view);
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  // The rhs attributes each covered tuple violates (against anybody).
  std::vector<AttrSet> violated_rhs(table.num_tuples());
  for (const Violation& violation : FindViolations(view, delta)) {
    violated_rhs[violation.row_i] =
        violated_rhs[violation.row_i].With(violation.fd.rhs);
    violated_rhs[violation.row_j] =
        violated_rhs[violation.row_j].With(violation.fd.rhs);
  }

  // Minimum core implicants, memoized per attribute in a dense vector
  // (AttrIds are dense schema positions — no hash map needed).
  std::vector<std::optional<AttrSet>> core_of(table.schema().arity());
  auto core = [&](AttrId attr) -> StatusOr<AttrSet> {
    if (core_of[attr].has_value()) return *core_of[attr];
    FDR_ASSIGN_OR_RETURN(AttrSet result, MinimumCoreImplicant(delta, attr));
    core_of[attr] = result;
    return result;
  };

  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    // Step 2: seed with the core implicants of the attributes this tuple
    // was caught violating.
    AttrSet cells;
    Status failure = Status::OK();
    ForEachAttr(violated_rhs[row], [&](AttrId attr) {
      if (!failure.ok()) return;
      auto c = core(attr);
      if (!c.ok()) {
        failure = c.status();
        return;
      }
      cells = cells.Union(*c);
    });
    FDR_RETURN_IF_ERROR(failure);
    // Step 3: close under "updated rhs needs its lhs broken".
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Fd& fd : delta.fds()) {
        if (cells.Contains(fd.rhs) && !fd.lhs.Intersects(cells)) {
          FDR_ASSIGN_OR_RETURN(AttrSet c, core(fd.rhs));
          AttrSet grown = cells.Union(c);
          if (!(grown == cells)) {
            cells = grown;
            changed = true;
          } else {
            // The core implicant was already inside `cells` yet fd.lhs is
            // still untouched — impossible, since the core implicant hits
            // every implicant of fd.rhs including fd.lhs.
            return Status::Internal(
                "core-implicant closure failed to break " + fd.ToString());
          }
        }
      }
    }
    ForEachAttr(cells, [&](AttrId attr) {
      update.SetValue(row, attr, FreshCellValue(update, update.id(row), attr));
    });
  }
  return update;
}

StatusOr<Table> CombinedApproxURepair(const FdSet& fds, const Table& table) {
  FDR_ASSIGN_OR_RETURN(Table mlc_update, MlcApproxURepair(fds, table));
  FDR_ASSIGN_OR_RETURN(double mlc_cost, DistUpd(mlc_update, table));
  auto kl_update = KlApproxURepair(fds, table);
  if (!kl_update.ok()) {
    // The KL route needs core implicants, which the cover guard may refuse
    // on very wide schemas; the mlc route alone still carries its bound.
    if (kl_update.status().code() == StatusCode::kResourceExhausted) {
      return mlc_update;
    }
    return kl_update.status();
  }
  FDR_ASSIGN_OR_RETURN(double kl_cost, DistUpd(*kl_update, table));
  return kl_cost < mlc_cost ? std::move(kl_update).value()
                            : std::move(mlc_update);
}

}  // namespace fdrepair
