// Reference (pre-span) §4 route implementations — see reference_routes.h.
// Deliberately kept on per-row std::unordered_map/std::unordered_set
// grouping: these bodies are the historical code the live routes were
// ported from, and their hash containers are exactly what the port removed.

#include "urepair/reference_routes.h"

#include <unordered_map>

#include "srepair/opt_srepair.h"
#include "srepair/srepair_vc_approx.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/covers.h"
#include "urepair/fresh.h"
#include "urepair/urepair_exact.h"
#include "urepair/urepair_key_cycle.h"

namespace fdrepair {
namespace {

// The weighted-plurality value of a column (first-seen wins ties).
ValueId ReferencePluralityValue(const Table& table, AttrId attr) {
  FDR_CHECK(table.num_tuples() > 0);
  std::unordered_map<ValueId, double> weight_of;
  std::vector<ValueId> order;
  for (int row = 0; row < table.num_tuples(); ++row) {
    ValueId value = table.value(row, attr);
    auto [it, inserted] = weight_of.emplace(value, 0.0);
    if (inserted) order.push_back(value);
    it->second += table.weight(row);
  }
  ValueId best = order.front();
  for (ValueId value : order) {
    if (weight_of[value] > weight_of[best]) best = value;
  }
  return best;
}

StatusOr<Table> ReferenceMlcApproxURepair(const FdSet& fds,
                                          const Table& table) {
  FdSet delta = fds.WithoutTrivial();
  if (!delta.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "MlcApproxURepair requires a consensus-free FD set");
  }
  Table update = table.Clone();
  for (const FdSet& component : delta.AttributeDisjointComponents()) {
    std::vector<int> kept_rows =
        SRepairVcApproxRows(component, TableView(table));
    FDR_ASSIGN_OR_RETURN(Table sub, ReferenceSubsetToUpdate(component, table,
                                                            kept_rows));
    AttrSet attrs = component.Attrs();
    for (int row = 0; row < table.num_tuples(); ++row) {
      ForEachAttr(attrs, [&](AttrId attr) {
        if (sub.value(row, attr) != update.value(row, attr)) {
          update.SetValue(row, attr, sub.value(row, attr));
        }
      });
    }
  }
  return update;
}

StatusOr<Table> ReferenceCommonLhsURepair(const FdSet& fds,
                                          const Table& table) {
  FdSet delta = fds.WithoutTrivial();
  if (!delta.FindCommonLhsAttr().has_value()) {
    return Status::FailedPrecondition(
        "CommonLhsOptimalURepair requires an FD set with a common lhs");
  }
  if (!delta.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "CommonLhsOptimalURepair requires a consensus-free FD set");
  }
  FDR_ASSIGN_OR_RETURN(std::vector<int> kept_rows,
                       OptSRepairRows(delta, TableView(table)));
  return ReferenceSubsetToUpdate(delta, table, kept_rows);
}

}  // namespace

Table ReferenceConsensusPluralityRepair(const Table& table, AttrSet attrs) {
  Table update = table.Clone();
  if (table.num_tuples() == 0) return update;
  ForEachAttr(attrs, [&](AttrId attr) {
    ValueId plurality = ReferencePluralityValue(table, attr);
    for (int row = 0; row < update.num_tuples(); ++row) {
      if (update.value(row, attr) != plurality) {
        update.SetValue(row, attr, plurality);
      }
    }
  });
  return update;
}

double ReferenceConsensusPluralityCost(const Table& table, AttrSet attrs) {
  if (table.num_tuples() == 0) return 0;
  double cost = 0;
  ForEachAttr(attrs, [&](AttrId attr) {
    ValueId plurality = ReferencePluralityValue(table, attr);
    for (int row = 0; row < table.num_tuples(); ++row) {
      if (table.value(row, attr) != plurality) cost += table.weight(row);
    }
  });
  return cost;
}

StatusOr<Table> ReferenceSubsetToUpdate(const FdSet& fds, const Table& table,
                                        const std::vector<int>& kept_rows) {
  if (!fds.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "SubsetToUpdate requires a consensus-free FD set (Theorem 4.3 "
        "removes consensus attributes first)");
  }
  FDR_ASSIGN_OR_RETURN(AttrSet cover, MinimumLhsCover(fds));
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) {
    FDR_CHECK(row >= 0 && row < table.num_tuples());
    kept[row] = 1;
  }
  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    ForEachAttr(cover, [&](AttrId attr) {
      update.SetValue(row, attr, FreshCellValue(update, update.id(row), attr));
    });
  }
  return update;
}

StatusOr<Table> ReferenceKeyCycleURepair(const FdSet& fds,
                                         const Table& table) {
  auto cycle = DetectKeyCycle(fds);
  if (!cycle) {
    return Status::FailedPrecondition(
        "KeyCycleOptimalURepair requires ∆ = {A -> B, B -> A}");
  }
  const auto [a, b] = *cycle;
  FdSet delta = fds.WithoutTrivial();
  FDR_ASSIGN_OR_RETURN(std::vector<int> kept_rows,
                       OptSRepairRows(delta, TableView(table)));
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  std::unordered_map<ValueId, ValueId> b_of_a;
  std::unordered_map<ValueId, ValueId> a_of_b;
  for (int row : kept_rows) {
    b_of_a.emplace(table.value(row, a), table.value(row, b));
    a_of_b.emplace(table.value(row, b), table.value(row, a));
  }

  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    ValueId value_a = table.value(row, a);
    ValueId value_b = table.value(row, b);
    auto via_a = b_of_a.find(value_a);
    if (via_a != b_of_a.end()) {
      update.SetValue(row, b, via_a->second);
      continue;
    }
    auto via_b = a_of_b.find(value_b);
    if (via_b != a_of_b.end()) {
      update.SetValue(row, a, via_b->second);
      continue;
    }
    b_of_a.emplace(value_a, value_b);
    a_of_b.emplace(value_b, value_a);
  }
  return update;
}

StatusOr<Table> ReferenceKlApproxURepair(const FdSet& fds,
                                         const Table& table) {
  FdSet delta = fds.WithoutTrivial();
  if (!delta.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "KlApproxURepair requires a consensus-free FD set");
  }
  TableView view(table);

  std::vector<int> kept_rows = SRepairVcApproxRows(delta, view);
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  std::vector<AttrSet> violated_rhs(table.num_tuples());
  for (const Violation& violation : FindViolations(view, delta)) {
    violated_rhs[violation.row_i] =
        violated_rhs[violation.row_i].With(violation.fd.rhs);
    violated_rhs[violation.row_j] =
        violated_rhs[violation.row_j].With(violation.fd.rhs);
  }

  std::unordered_map<AttrId, AttrSet> core_of;
  auto core = [&](AttrId attr) -> StatusOr<AttrSet> {
    auto it = core_of.find(attr);
    if (it != core_of.end()) return it->second;
    FDR_ASSIGN_OR_RETURN(AttrSet result, MinimumCoreImplicant(delta, attr));
    core_of.emplace(attr, result);
    return result;
  };

  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    AttrSet cells;
    Status failure = Status::OK();
    ForEachAttr(violated_rhs[row], [&](AttrId attr) {
      if (!failure.ok()) return;
      auto c = core(attr);
      if (!c.ok()) {
        failure = c.status();
        return;
      }
      cells = cells.Union(*c);
    });
    FDR_RETURN_IF_ERROR(failure);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Fd& fd : delta.fds()) {
        if (cells.Contains(fd.rhs) && !fd.lhs.Intersects(cells)) {
          FDR_ASSIGN_OR_RETURN(AttrSet c, core(fd.rhs));
          AttrSet grown = cells.Union(c);
          if (!(grown == cells)) {
            cells = grown;
            changed = true;
          } else {
            return Status::Internal(
                "core-implicant closure failed to break " + fd.ToString());
          }
        }
      }
    }
    ForEachAttr(cells, [&](AttrId attr) {
      update.SetValue(row, attr, FreshCellValue(update, update.id(row), attr));
    });
  }
  return update;
}

StatusOr<Table> ReferenceCombinedApproxURepair(const FdSet& fds,
                                               const Table& table) {
  FDR_ASSIGN_OR_RETURN(Table mlc_update, ReferenceMlcApproxURepair(fds, table));
  FDR_ASSIGN_OR_RETURN(double mlc_cost, DistUpd(mlc_update, table));
  auto kl_update = ReferenceKlApproxURepair(fds, table);
  if (!kl_update.ok()) {
    if (kl_update.status().code() == StatusCode::kResourceExhausted) {
      return mlc_update;
    }
    return kl_update.status();
  }
  FDR_ASSIGN_OR_RETURN(double kl_cost, DistUpd(*kl_update, table));
  return kl_cost < mlc_cost ? std::move(kl_update).value()
                            : std::move(mlc_update);
}

StatusOr<URepairResult> ReferenceComputeURepair(const FdSet& fds,
                                                const Table& table,
                                                const URepairOptions& options) {
  FDR_ASSIGN_OR_RETURN(URepairPlan plan, PlanURepair(fds));
  Table update = table.Clone();

  auto merge = [&](const Table& sub, AttrSet attrs) {
    FDR_CHECK(sub.num_tuples() == update.num_tuples());
    for (int row = 0; row < sub.num_tuples(); ++row) {
      FDR_CHECK(sub.id(row) == update.id(row));
      ForEachAttr(attrs, [&](AttrId attr) {
        if (update.value(row, attr) != sub.value(row, attr)) {
          update.SetValue(row, attr, sub.value(row, attr));
        }
      });
    }
  };

  bool all_exact = true;
  double achieved_bound = 1.0;

  if (!plan.consensus_attrs.empty()) {
    merge(ReferenceConsensusPluralityRepair(table, plan.consensus_attrs),
          plan.consensus_attrs);
  }

  for (URepairComponentPlan& component : plan.components) {
    const AttrSet attrs = component.fds.Attrs();
    switch (component.route) {
      case URepairRoute::kNoop:
      case URepairRoute::kConsensusPlurality:
        break;
      case URepairRoute::kCommonLhsExact: {
        FDR_ASSIGN_OR_RETURN(Table sub,
                             ReferenceCommonLhsURepair(component.fds, table));
        merge(sub, attrs);
        break;
      }
      case URepairRoute::kKeyCycleExact: {
        FDR_ASSIGN_OR_RETURN(Table sub,
                             ReferenceKeyCycleURepair(component.fds, table));
        merge(sub, attrs);
        break;
      }
      case URepairRoute::kExactSearch:
      case URepairRoute::kCombinedApprox: {
        if (options.allow_exact_search) {
          // The exhaustive search is not a grouping-bound route; the shared
          // implementation (already deterministic via the canonical column
          // symbols of urepair/fresh.h) serves both oracle and live plans.
          ExactURepairOptions exact_options;
          exact_options.max_rows = options.exact_rows_guard;
          exact_options.max_cells = options.exact_cells_guard;
          exact_options.mutable_attrs = attrs;
          auto exact = OptURepairExact(component.fds, table, exact_options);
          if (exact.ok()) {
            merge(*exact, attrs);
            component.route = URepairRoute::kExactSearch;
            component.ratio_bound = 1.0;
            break;
          }
          if (exact.status().code() != StatusCode::kResourceExhausted) {
            return exact.status();
          }
        }
        FDR_ASSIGN_OR_RETURN(
            Table sub, ReferenceCombinedApproxURepair(component.fds, table));
        merge(sub, attrs);
        component.route = URepairRoute::kCombinedApprox;
        all_exact = false;
        break;
      }
    }
    achieved_bound = std::max(achieved_bound, component.ratio_bound);
  }

  FDR_ASSIGN_OR_RETURN(double distance, DistUpd(update, table));
  FDR_CHECK_MSG(Satisfies(update, fds),
                "reference planner produced an inconsistent update for " +
                    fds.ToString());
  URepairResult result{std::move(update), distance, all_exact,
                       all_exact ? 1.0 : achieved_bound, std::move(plan)};
  return result;
}

}  // namespace fdrepair
