#include "urepair/covers.h"

#include <algorithm>

namespace fdrepair {

StatusOr<AttrSet> MinimumHittingSet(const std::vector<AttrSet>& family,
                                    AttrSet universe) {
  if (universe.size() > kMaxCoverAttrs) {
    return Status::ResourceExhausted(
        "hitting-set universe exceeds " + std::to_string(kMaxCoverAttrs) +
        " attributes");
  }
  for (const AttrSet& member : family) {
    if (!member.Intersects(universe) && !member.empty()) {
      return Status::InvalidArgument(
          "family member " + member.ToString() +
          " shares no attribute with the universe");
    }
    if (member.empty()) {
      return Status::InvalidArgument(
          "family contains the empty set: no hitting set exists");
    }
  }
  AttrSet best = universe;
  bool found = family.empty();
  if (family.empty()) return AttrSet();
  ForEachSubset(universe, [&](AttrSet candidate) {
    if (found && candidate.size() > best.size()) return;
    for (const AttrSet& member : family) {
      if (!member.Intersects(candidate)) return;
    }
    if (!found || candidate.size() < best.size() ||
        (candidate.size() == best.size() && candidate < best)) {
      best = candidate;
      found = true;
    }
  });
  FDR_CHECK(found);
  return best;
}

StatusOr<AttrSet> MinimumLhsCover(const FdSet& fds) {
  std::vector<AttrSet> lhss;
  for (const Fd& fd : fds.fds()) {
    if (fd.IsConsensus()) {
      return Status::InvalidArgument(
          "lhs cover undefined: FD set contains a consensus FD");
    }
    lhss.push_back(fd.lhs);
  }
  AttrSet universe;
  for (const AttrSet& lhs : lhss) universe = universe.Union(lhs);
  return MinimumHittingSet(lhss, universe);
}

StatusOr<int> Mlc(const FdSet& fds) {
  FDR_ASSIGN_OR_RETURN(AttrSet cover, MinimumLhsCover(fds));
  return cover.size();
}

int Mfs(const FdSet& fds) {
  int max_lhs = 0;
  for (const Fd& fd : fds.fds()) max_lhs = std::max(max_lhs, fd.lhs.size());
  return max_lhs;
}

StatusOr<std::vector<AttrSet>> MinimalImplicants(const FdSet& fds,
                                                 AttrId attr) {
  AttrSet universe = fds.Attrs().Without(attr);
  if (universe.size() > kMaxCoverAttrs) {
    return Status::ResourceExhausted("implicant universe exceeds " +
                                     std::to_string(kMaxCoverAttrs) +
                                     " attributes");
  }
  // Collect every implicant, then prune non-minimal ones.
  std::vector<AttrSet> implicants;
  ForEachSubset(universe, [&](AttrSet candidate) {
    if (fds.Closure(candidate).Contains(attr)) implicants.push_back(candidate);
  });
  std::vector<AttrSet> minimal;
  for (const AttrSet& x : implicants) {
    bool is_minimal = true;
    for (const AttrSet& y : implicants) {
      if (y.IsStrictSubsetOf(x)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(x);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

StatusOr<AttrSet> MinimumCoreImplicant(const FdSet& fds, AttrId attr) {
  FDR_ASSIGN_OR_RETURN(std::vector<AttrSet> implicants,
                       MinimalImplicants(fds, attr));
  if (implicants.empty()) return AttrSet();
  // An implicant can be empty iff attr is a consensus attribute; then no
  // core implicant exists — Theorem 4.3 removes consensus attributes before
  // these measures are consulted.
  AttrSet universe;
  for (const AttrSet& x : implicants) universe = universe.Union(x);
  return MinimumHittingSet(implicants, universe);
}

StatusOr<int> Mci(const FdSet& fds) {
  int max_size = 0;
  Status failure = Status::OK();
  ForEachAttr(fds.Attrs(), [&](AttrId attr) {
    if (!failure.ok()) return;
    auto core = MinimumCoreImplicant(fds, attr);
    if (!core.ok()) {
      failure = core.status();
      return;
    }
    max_size = std::max(max_size, core->size());
  });
  FDR_RETURN_IF_ERROR(failure);
  return max_size;
}

StatusOr<double> MlcApproxRatioBound(const FdSet& fds) {
  // Theorem 4.12 refined by Theorem 4.1: decompose into attribute-disjoint
  // components and take the worst component's mlc.
  int worst_mlc = 0;
  for (const FdSet& component : fds.AttributeDisjointComponents()) {
    FDR_ASSIGN_OR_RETURN(int component_mlc, Mlc(component));
    worst_mlc = std::max(worst_mlc, component_mlc);
  }
  if (worst_mlc == 0) return 1.0;  // nothing to repair
  return 2.0 * worst_mlc;
}

StatusOr<double> KlApproxRatioBound(const FdSet& fds) {
  if (fds.WithoutTrivial().empty()) return 1.0;
  FDR_ASSIGN_OR_RETURN(int mci, Mci(fds));
  int mfs = Mfs(fds);
  return (mci + 2.0) * (2.0 * mfs - 1.0);
}

}  // namespace fdrepair
