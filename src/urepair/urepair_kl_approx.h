// A Kolahi–Lakshmanan-style core-implicant U-repair baseline
// (Theorem 4.13's companion algorithm).
//
// The original ICDT'09 algorithm's text is not part of this reproduction;
// this baseline is re-derived from the structure of their published bound
// (MCI(∆) + 2) · (2 · MFS(∆) − 1) — see DESIGN.md §2. It repairs per tuple
// with core implicants instead of lhs covers:
//   1. take a 2-approximate vertex cover C of the conflict graph;
//   2. for each covered tuple t, freshen the cells of a minimum core
//      implicant of each rhs attribute t was caught violating;
//   3. close the freshened set U_t: while some FD X → A has A ∈ U_t but
//      X ∩ U_t = ∅, add A's minimum core implicant — a core implicant of A
//      hits every implicant of A, in particular X, so the closed U_t can
//      never let t re-enter a violation on an updated attribute.
//
// Per-tuple cost is driven by MCI(∆) (not mlc), so on families like ∆'_k of
// §4.4 this baseline stays constant-factor while the mlc route degrades
// linearly — and vice versa on ∆_k. CombinedApproxURepair takes the best of
// both, the paper's closing recommendation in §4.4.

#ifndef FDREPAIR_UREPAIR_UREPAIR_KL_APPROX_H_
#define FDREPAIR_UREPAIR_UREPAIR_KL_APPROX_H_

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// The core-implicant baseline. Requires consensus-free ∆.
StatusOr<Table> KlApproxURepair(const FdSet& fds, const Table& table);

/// Runs both approximation algorithms (Theorems 4.12 and 4.13 styles) and
/// returns the cheaper update (§4.4: "one can take the benefit of both").
StatusOr<Table> CombinedApproxURepair(const FdSet& fds, const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UREPAIR_KL_APPROX_H_
