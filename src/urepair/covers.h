// Cover measures on FD sets (§4): mlc(∆) — the minimum-cardinality lhs
// cover; MFS(∆) and MCI(∆) — the measures behind Kolahi & Lakshmanan's
// approximation ratio (Theorem 4.13); and minimal core implicants.
//
// All are minimum hitting sets over families of attribute sets. The paper's
// data-complexity stance allows exponential dependence on the (fixed)
// schema, and these routines are exponential in |attr(∆)|, guarded at
// kMaxCoverAttrs attributes.

#ifndef FDREPAIR_UREPAIR_COVERS_H_
#define FDREPAIR_UREPAIR_COVERS_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"

namespace fdrepair {

/// Hitting-set computations refuse universes beyond this many attributes.
inline constexpr int kMaxCoverAttrs = 24;

/// A minimum-cardinality set intersecting every set in `family`, drawn from
/// `universe`. Ties break to the lexicographically smallest bitmask. Fails
/// (kInvalidArgument) if some family member does not intersect `universe`
/// (an empty member makes any hitting set impossible), or
/// (kResourceExhausted) if the universe exceeds kMaxCoverAttrs.
StatusOr<AttrSet> MinimumHittingSet(const std::vector<AttrSet>& family,
                                    AttrSet universe);

/// An lhs cover of minimum cardinality: hits the lhs of every FD (§4).
/// Fails for FD sets containing a consensus FD (empty lhs cannot be hit).
StatusOr<AttrSet> MinimumLhsCover(const FdSet& fds);

/// mlc(∆) = |MinimumLhsCover(∆)|; 0 for the empty set.
StatusOr<int> Mlc(const FdSet& fds);

/// MFS(∆): the maximum number of attributes in any lhs (§4.4).
int Mfs(const FdSet& fds);

/// The minimal *nontrivial* implicants of attribute `attr`: the ⊆-minimal
/// sets X with attr ∉ X and ∆ ⊧ X → attr. (Trivial implicants — those
/// containing attr — are excluded, matching MCI(∆'_k) = 1 in §4.4.)
StatusOr<std::vector<AttrSet>> MinimalImplicants(const FdSet& fds,
                                                 AttrId attr);

/// A minimum core implicant of `attr`: a smallest set hitting every
/// (minimal) implicant of attr. Empty when attr has no nontrivial implicant.
StatusOr<AttrSet> MinimumCoreImplicant(const FdSet& fds, AttrId attr);

/// MCI(∆): the largest minimum-core-implicant size over attributes of
/// attr(∆) (§4.4).
StatusOr<int> Mci(const FdSet& fds);

/// The proven approximation ratios compared in §4.4:
/// ours (Theorem 4.12): 2 · max over attribute-disjoint components of mlc;
StatusOr<double> MlcApproxRatioBound(const FdSet& fds);
/// Kolahi–Lakshmanan (Theorem 4.13): (MCI(∆) + 2) · (2 · MFS(∆) − 1).
StatusOr<double> KlApproxRatioBound(const FdSet& fds);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_COVERS_H_
