// Subset-to-update conversion (Proposition 4.4, direction 2) and the exact
// common-lhs route (Corollary 4.6).
//
// For consensus-free ∆, a consistent subset S becomes a consistent update by
// overwriting, in every deleted tuple, each attribute of a minimum lhs cover
// with a fresh constant: fresh values break every lhs agreement, so updated
// tuples conflict with nothing. The cost is mlc(∆) · dist_sub(S, T).
// When ∆ has a common lhs, mlc = 1, the conversion is free, and combining
// with direction 1 shows the optima coincide: an optimal U-repair is
// obtained from an optimal S-repair (Corollary 4.6) — so the S-repair
// dichotomy transfers verbatim to U-repairs for such ∆.

#ifndef FDREPAIR_UREPAIR_UREPAIR_COMMON_LHS_H_
#define FDREPAIR_UREPAIR_UREPAIR_COMMON_LHS_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "srepair/opt_srepair.h"
#include "storage/table.h"

namespace fdrepair {

/// Proposition 4.4 (2): turns a consistent subset (given as kept dense row
/// positions of `table`) into a consistent update by freshening a minimum
/// lhs cover in every deleted tuple. Requires consensus-free ∆; the result
/// satisfies dist_upd = mlc(∆) · dist_sub.
StatusOr<Table> SubsetToUpdate(const FdSet& fds, const Table& table,
                               const std::vector<int>& kept_rows);

/// Corollary 4.6: the exact optimal U-repair for a consensus-free ∆ with a
/// common lhs, provided OSRSucceeds(∆) (otherwise OptSRepair — and by the
/// corollary the U-problem too — is APX-complete, and this returns
/// kFailedPrecondition). The exec overload fans the inner S-repair's blocks
/// out to exec.pool (the freshening pass stays sequential, so results are
/// bit-identical for every thread count) and, when `capture` is non-null,
/// records the inner S-repair's top-level plan — the seed the delta splice
/// path (urepair/opt_urepair.cc) re-runs dirty blocks against.
StatusOr<Table> CommonLhsOptimalURepair(const FdSet& fds, const Table& table);
StatusOr<Table> CommonLhsOptimalURepair(const FdSet& fds, const Table& table,
                                        const OptSRepairExec& exec,
                                        SRepairPlanCache* capture);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UREPAIR_COMMON_LHS_H_
