// The key-cycle route (Proposition 4.9): for ∆ = {A → B, B → A} an optimal
// U-repair costs exactly as much as an optimal S-repair even though
// mlc(∆) = 2. Construction: compute an optimal S-repair S* (via lhs
// marriage); every deleted tuple t must share its A value or its B value
// with some kept tuple s (else S* ∪ {t} would be consistent, contradicting
// optimality), so copying s's other attribute into t costs one cell.

#ifndef FDREPAIR_UREPAIR_UREPAIR_KEY_CYCLE_H_
#define FDREPAIR_UREPAIR_UREPAIR_KEY_CYCLE_H_

#include <optional>
#include <utility>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "srepair/opt_srepair.h"
#include "storage/table.h"

namespace fdrepair {

/// Detects whether ∆ (trivial FDs ignored) is exactly a two-cycle of unary
/// FDs {A → B, B → A}; returns the attribute pair (A, B) when so.
std::optional<std::pair<AttrId, AttrId>> DetectKeyCycle(const FdSet& fds);

/// Computes an *optimal* U-repair for a key-cycle FD set. Fails with
/// kFailedPrecondition when DetectKeyCycle returns nothing. The exec
/// overload fans the inner S-repair's blocks out to exec.pool; the
/// alignment pass below is sequential either way, so results are
/// bit-identical for every thread count.
StatusOr<Table> KeyCycleOptimalURepair(const FdSet& fds, const Table& table);
StatusOr<Table> KeyCycleOptimalURepair(const FdSet& fds, const Table& table,
                                       const OptSRepairExec& exec);

/// The Proposition 4.9 alignment pass alone: given the (A, B) cycle pair
/// and the dense row positions of an optimal S-repair of `table`, rewrites
/// each deleted tuple's one disagreeing cell. O(n) over the column store.
/// Split out so the delta splice path (urepair/opt_urepair.cc) can re-run
/// it over a spliced inner S-repair without re-detecting the cycle.
Table KeyCycleAlignRows(AttrId a, AttrId b, const Table& table,
                        const std::vector<int>& kept_rows);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UREPAIR_KEY_CYCLE_H_
