#include "urepair/urepair_exact.h"

#include <algorithm>

#include "storage/consistency.h"
#include "storage/distance.h"
#include "storage/row_span.h"
#include "urepair/fresh.h"
#include "urepair/urepair_kl_approx.h"

namespace fdrepair {
namespace {

constexpr double kEps = 1e-9;

struct SearchState {
  const Table* table;
  FdSet delta;
  std::vector<AttrId> mutable_attrs;           // sorted
  std::vector<std::vector<ValueId>> candidates;  // per mutable attr (no fresh)
  std::vector<std::vector<ValueId>> fresh_ids;   // per mutable attr, n symbols
  std::vector<Tuple> assignment;               // working copy of all rows
  std::vector<int> fresh_used;                 // per mutable attr: count used
  double cost = 0;
  double best_cost = 0;
  std::vector<Tuple> best_assignment;
  bool improved = false;
};

// Do complete rows r and s satisfy every FD under the working assignment?
bool RowsConsistent(const SearchState& state, int r, int s) {
  const Tuple& t = state.assignment[r];
  const Tuple& u = state.assignment[s];
  return PairConsistent(t, u, state.delta);
}

void Search(SearchState* state, int cell);

// Advances past a completed row: check it against all earlier rows.
void CompleteRow(SearchState* state, int row, int next_cell) {
  for (int earlier = 0; earlier < row; ++earlier) {
    if (!RowsConsistent(*state, earlier, row)) return;
  }
  Search(state, next_cell);
}

void Search(SearchState* state, int cell) {
  const int num_attrs = static_cast<int>(state->mutable_attrs.size());
  const int num_cells = state->table->num_tuples() * num_attrs;
  if (cell == num_cells) {
    if (state->cost < state->best_cost - kEps) {
      state->best_cost = state->cost;
      state->best_assignment = state->assignment;
      state->improved = true;
    }
    return;
  }
  if (state->cost >= state->best_cost - kEps) return;  // prune

  const int row = cell / num_attrs;
  const int slot = cell % num_attrs;
  const AttrId attr = state->mutable_attrs[slot];
  const ValueId original = state->table->value(row, attr);
  const double weight = state->table->weight(row);
  const bool row_done = (slot == num_attrs - 1);
  const int next_cell = cell + 1;

  auto descend = [&](ValueId value, double delta_cost) {
    state->assignment[row][attr] = value;
    state->cost += delta_cost;
    if (row_done) {
      CompleteRow(state, row, next_cell);
    } else {
      Search(state, next_cell);
    }
    state->cost -= delta_cost;
  };

  // Original value first (free), then active-domain alternatives, then the
  // canonical next fresh symbols.
  descend(original, 0.0);
  if (state->cost + weight < state->best_cost - kEps) {
    for (ValueId value : state->candidates[slot]) {
      if (value == original) continue;
      descend(value, weight);
    }
    int usable_fresh =
        std::min(state->fresh_used[slot] + 1,
                 static_cast<int>(state->fresh_ids[slot].size()));
    for (int j = 0; j < usable_fresh; ++j) {
      bool is_new = (j == state->fresh_used[slot]);
      if (is_new) state->fresh_used[slot] = j + 1;
      descend(state->fresh_ids[slot][j], weight);
      if (is_new) state->fresh_used[slot] = j;
    }
  }
  state->assignment[row][attr] = original;
}

}  // namespace

StatusOr<Table> OptURepairExact(const FdSet& fds, const Table& table,
                                const ExactURepairOptions& options) {
  FdSet delta = fds.WithoutTrivial();
  if (delta.empty() || table.num_tuples() == 0 || Satisfies(table, delta)) {
    return table.Clone();
  }
  if (table.num_tuples() > options.max_rows) {
    return Status::ResourceExhausted(
        "exact U-repair limited to " + std::to_string(options.max_rows) +
        " rows, got " + std::to_string(table.num_tuples()));
  }
  AttrSet mutable_set = options.mutable_attrs.empty()
                            ? delta.Attrs()
                            : options.mutable_attrs.Intersect(delta.Attrs());
  // Updating attributes outside attr(∆) can never pay off: dropping such an
  // update preserves consistency and lowers the cost.
  const int num_cells = table.num_tuples() * mutable_set.size();
  if (num_cells > options.max_cells) {
    return Status::ResourceExhausted(
        "exact U-repair limited to " + std::to_string(options.max_cells) +
        " mutable cells, got " + std::to_string(num_cells));
  }

  SearchState state;
  state.table = &table;
  state.delta = delta;
  state.mutable_attrs = mutable_set.ToVector();

  // Candidate values: the column's active domain plus n canonical fresh
  // symbols (shared within the column — equal fresh values are part of the
  // search space, so the symbols are named per (attr, index), not per cell;
  // see urepair/fresh.h).
  Table scratch = table.Clone();  // interns fresh symbols into the pool
  DenseValueIndex seen;
  seen.Reserve(static_cast<ValueId>(table.pool()->size()) - 1);
  for (AttrId attr : state.mutable_attrs) {
    std::vector<ValueId> domain;
    seen.Clear();
    const ColumnView column = table.Column(attr);
    for (int row = 0; row < column.size(); ++row) {
      bool created = false;
      seen.FindOrCreate(column[row], &created);
      if (created) domain.push_back(column[row]);
    }
    std::sort(domain.begin(), domain.end());
    state.candidates.push_back(std::move(domain));
    std::vector<ValueId> fresh;
    if (!options.active_domain_only) {
      for (int j = 0; j < table.num_tuples(); ++j) {
        fresh.push_back(
            scratch.FreshValueNamed(FreshColumnSymbolName(attr, j)));
      }
    }
    state.fresh_ids.push_back(std::move(fresh));
  }
  state.fresh_used.assign(state.mutable_attrs.size(), 0);
  state.assignment.reserve(table.num_tuples());
  for (int row = 0; row < table.num_tuples(); ++row) {
    state.assignment.push_back(table.tuple(row));
  }

  // Seed the bound with the combined approximation; if the search cannot
  // beat it, the approximation already achieved the optimum.
  Table seed = table.Clone();
  double seed_cost = 0;
  auto approx = options.active_domain_only
                    ? StatusOr<Table>(Status::FailedPrecondition(
                          "fresh constants disallowed"))
                    : CombinedApproxURepair(delta, table);
  if (approx.ok()) {
    seed = std::move(approx).value();
    FDR_ASSIGN_OR_RETURN(seed_cost, DistUpd(seed, table));
  } else {
    // Fall back to copying row 0's values across every mutable attribute:
    // all rows then agree on attr(∆), satisfying every FD (consensus FDs
    // included, which the approximation routes refuse).
    for (int row = 1; row < seed.num_tuples(); ++row) {
      for (AttrId attr : state.mutable_attrs) {
        if (seed.value(row, attr) != seed.value(0, attr)) {
          seed.SetValue(row, attr, seed.value(0, attr));
          seed_cost += seed.weight(row);
        }
      }
    }
    if (!Satisfies(seed, delta)) {
      return Status::FailedPrecondition(
          "no consistent update exists within the mutable attributes");
    }
  }
  state.best_cost = seed_cost;

  Search(&state, 0);

  if (!state.improved) return seed;
  Table update = scratch;
  for (int row = 0; row < table.num_tuples(); ++row) {
    for (AttrId attr : state.mutable_attrs) {
      update.SetValue(row, attr, state.best_assignment[row][attr]);
    }
  }
  FDR_CHECK(Satisfies(update, delta));
  return update;
}

}  // namespace fdrepair
