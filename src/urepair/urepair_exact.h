// Exact optimal U-repair by exhaustive search — ground truth for the
// polynomial routes and the approximation-ratio experiments (E8–E11).
//
// Soundness of the candidate domain: an optimal update assigns each column
// at most n distinct values that are not in the column's active domain
// (there are only n cells per column), so searching over
//   activedom(column) ∪ {n fresh symbols shared within the column}
// is lossless. Fresh symbols are canonicalized (a cell may use fresh_j only
// after fresh_{j-1} appears earlier in the same column) to break symmetry.
//
// The search is a branch-and-bound over cells in row-major order with FD
// checks at each completed row and cost pruning against the best solution,
// seeded with the combined approximation so only near-optimal assignments
// are explored. Exponential — guarded by instance size.

#ifndef FDREPAIR_UREPAIR_UREPAIR_EXACT_H_
#define FDREPAIR_UREPAIR_UREPAIR_EXACT_H_

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

struct ExactURepairOptions {
  /// Refuse tables with more tuples than this.
  int max_rows = 6;
  /// Refuse instances whose mutable-cell count exceeds this.
  int max_cells = 24;
  /// Restrict updates to these attributes (others stay fixed). The planner
  /// passes a component's attr(∆i); an unset (empty) value means attr(∆).
  AttrSet mutable_attrs;
  /// §5's restriction: only values from the column's active domain may be
  /// written (no fresh constants). A consistent restricted update always
  /// exists (copy one tuple's attr(∆) values everywhere), but its optimum
  /// can be strictly worse than the unrestricted one — see the tests.
  bool active_domain_only = false;
};

/// Computes an optimal U-repair of `table` under ∆ by exhaustive search.
StatusOr<Table> OptURepairExact(const FdSet& fds, const Table& table,
                                const ExactURepairOptions& options = {});

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UREPAIR_EXACT_H_
