#include "urepair/urepair_common_lhs.h"

#include "urepair/covers.h"
#include "urepair/fresh.h"

namespace fdrepair {

StatusOr<Table> SubsetToUpdate(const FdSet& fds, const Table& table,
                               const std::vector<int>& kept_rows) {
  if (!fds.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "SubsetToUpdate requires a consensus-free FD set (Theorem 4.3 "
        "removes consensus attributes first)");
  }
  FDR_ASSIGN_OR_RETURN(AttrSet cover, MinimumLhsCover(fds));
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) {
    FDR_CHECK(row >= 0 && row < table.num_tuples());
    kept[row] = 1;
  }
  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    // A fresh constant per cell: the deleted tuple can no longer agree with
    // anything on any lhs (the cover hits every lhs), so it is inert. The
    // constant's name is derived from (TupleId, attr) — see urepair/fresh.h
    // — so the same deleted cell freshens to the same symbol in every run,
    // which is what lets cell-edit recipes replay across re-plans.
    ForEachAttr(cover, [&](AttrId attr) {
      update.SetValue(row, attr, FreshCellValue(update, update.id(row), attr));
    });
  }
  return update;
}

StatusOr<Table> CommonLhsOptimalURepair(const FdSet& fds, const Table& table,
                                        const OptSRepairExec& exec,
                                        SRepairPlanCache* capture) {
  FdSet delta = fds.WithoutTrivial();
  if (!delta.FindCommonLhsAttr().has_value()) {
    return Status::FailedPrecondition(
        "CommonLhsOptimalURepair requires an FD set with a common lhs");
  }
  if (!delta.IsConsensusFree()) {
    return Status::FailedPrecondition(
        "CommonLhsOptimalURepair requires a consensus-free FD set");
  }
  // Optimal S-repair (fails exactly when the problem is APX-complete), then
  // the cost-preserving conversion: mlc = 1 because of the common lhs.
  OptSRepairRowsOptions row_options;
  row_options.exec = exec;
  FDR_ASSIGN_OR_RETURN(
      std::vector<int> kept_rows,
      OptSRepairRows(delta, TableView(table), row_options, capture));
  return SubsetToUpdate(delta, table, kept_rows);
}

StatusOr<Table> CommonLhsOptimalURepair(const FdSet& fds, const Table& table) {
  return CommonLhsOptimalURepair(fds, table, OptSRepairExec{}, nullptr);
}

}  // namespace fdrepair
