#include "urepair/urepair_consensus.h"

#include <vector>

#include "storage/row_span.h"

namespace fdrepair {
namespace {

// The weighted-plurality value of a column (first-seen wins ties).
//
// Grouping runs on the shared columnar core: one contiguous Column(attr)
// sweep resolving each ValueId to a dense first-appearance id through
// DenseValueIndex (O(1) epoch-stamped clear), with the per-value weights in
// a plain dense vector. Bit-identical to the historical unordered_map body
// (ReferencePluralityValue): accumulation visits rows in the same order,
// and the argmax scans candidates in the same first-appearance order with
// the same strict `>`, so ties break to the same value.
ValueId PluralityValue(const Table& table, AttrId attr, DenseValueIndex& index,
                       std::vector<double>& weight_of,
                       std::vector<ValueId>& order) {
  FDR_CHECK(table.num_tuples() > 0);
  index.Clear();
  index.Reserve(static_cast<ValueId>(table.pool()->size()) - 1);
  weight_of.clear();
  order.clear();
  const ColumnView column = table.Column(attr);
  for (int row = 0; row < column.size(); ++row) {
    bool created = false;
    const int dense = index.FindOrCreate(column[row], &created);
    if (created) {
      order.push_back(column[row]);
      weight_of.push_back(0.0);
    }
    weight_of[dense] += table.weight(row);
  }
  int best = 0;
  for (int dense = 1; dense < static_cast<int>(order.size()); ++dense) {
    if (weight_of[dense] > weight_of[best]) best = dense;
  }
  return order[best];
}

}  // namespace

Table ConsensusPluralityRepair(const Table& table, AttrSet attrs) {
  Table update = table.Clone();
  if (table.num_tuples() == 0) return update;
  DenseValueIndex index;
  std::vector<double> weight_of;
  std::vector<ValueId> order;
  ForEachAttr(attrs, [&](AttrId attr) {
    ValueId plurality = PluralityValue(table, attr, index, weight_of, order);
    for (int row = 0; row < update.num_tuples(); ++row) {
      if (update.value(row, attr) != plurality) {
        update.SetValue(row, attr, plurality);
      }
    }
  });
  return update;
}

std::vector<std::pair<AttrId, ValueId>> ConsensusPluralityValues(
    const Table& table, AttrSet attrs) {
  std::vector<std::pair<AttrId, ValueId>> result;
  if (table.num_tuples() == 0) return result;
  DenseValueIndex index;
  std::vector<double> weight_of;
  std::vector<ValueId> order;
  ForEachAttr(attrs, [&](AttrId attr) {
    result.emplace_back(attr,
                        PluralityValue(table, attr, index, weight_of, order));
  });
  return result;
}

double ConsensusPluralityCost(const Table& table, AttrSet attrs) {
  if (table.num_tuples() == 0) return 0;
  double cost = 0;
  DenseValueIndex index;
  std::vector<double> weight_of;
  std::vector<ValueId> order;
  ForEachAttr(attrs, [&](AttrId attr) {
    ValueId plurality = PluralityValue(table, attr, index, weight_of, order);
    const ColumnView column = table.Column(attr);
    for (int row = 0; row < column.size(); ++row) {
      if (column[row] != plurality) cost += table.weight(row);
    }
  });
  return cost;
}

}  // namespace fdrepair
