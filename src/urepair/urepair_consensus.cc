#include "urepair/urepair_consensus.h"

#include <unordered_map>

namespace fdrepair {
namespace {

// The weighted-plurality value of a column (first-seen wins ties).
ValueId PluralityValue(const Table& table, AttrId attr) {
  FDR_CHECK(table.num_tuples() > 0);
  std::unordered_map<ValueId, double> weight_of;
  std::vector<ValueId> order;
  for (int row = 0; row < table.num_tuples(); ++row) {
    ValueId value = table.value(row, attr);
    auto [it, inserted] = weight_of.emplace(value, 0.0);
    if (inserted) order.push_back(value);
    it->second += table.weight(row);
  }
  ValueId best = order.front();
  for (ValueId value : order) {
    if (weight_of[value] > weight_of[best]) best = value;
  }
  return best;
}

}  // namespace

Table ConsensusPluralityRepair(const Table& table, AttrSet attrs) {
  Table update = table.Clone();
  if (table.num_tuples() == 0) return update;
  ForEachAttr(attrs, [&](AttrId attr) {
    ValueId plurality = PluralityValue(table, attr);
    for (int row = 0; row < update.num_tuples(); ++row) {
      if (update.value(row, attr) != plurality) {
        update.SetValue(row, attr, plurality);
      }
    }
  });
  return update;
}

double ConsensusPluralityCost(const Table& table, AttrSet attrs) {
  if (table.num_tuples() == 0) return 0;
  double cost = 0;
  ForEachAttr(attrs, [&](AttrId attr) {
    ValueId plurality = PluralityValue(table, attr);
    for (int row = 0; row < table.num_tuples(); ++row) {
      if (table.value(row, attr) != plurality) cost += table.weight(row);
    }
  });
  return cost;
}

}  // namespace fdrepair
