// The 2·mlc(∆)-approximate U-repair (Theorem 4.12): a 2-approximate
// S-repair via weighted vertex cover (Proposition 3.3) converted by
// Proposition 4.4 (2) — freshen a minimum lhs cover in every deleted tuple.
// Cost <= mlc · dist_sub(2-approx S) <= 2 · mlc · dist_sub(S*)
//      <= 2 · mlc · dist_upd(U*) (Corollary 4.5).

#ifndef FDREPAIR_UREPAIR_UREPAIR_MLC_APPROX_H_
#define FDREPAIR_UREPAIR_UREPAIR_MLC_APPROX_H_

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// Computes a 2·mlc(∆)-optimal U-repair. Requires consensus-free ∆
/// (the planner peels consensus attributes off first, Theorem 4.3).
StatusOr<Table> MlcApproxURepair(const FdSet& fds, const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UREPAIR_MLC_APPROX_H_
