// Optimal U-repair for consensus FDs (Proposition B.2 / Corollary B.3):
// for ∅ → A the cheapest consistent update keeps the weighted-plurality
// value of column A and overwrites the rest. Distinct consensus attributes
// are attribute-disjoint FD sets {∅→A}, so each column is repaired to its
// own plurality value independently (Theorem 4.1).

#ifndef FDREPAIR_UREPAIR_UREPAIR_CONSENSUS_H_
#define FDREPAIR_UREPAIR_UREPAIR_CONSENSUS_H_

#include <utility>
#include <vector>

#include "catalog/attrset.h"
#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// Overwrites, for each attribute in `attrs`, every cell that does not hold
/// the column's weighted-plurality value (ties break to the first-seen
/// value). Returns the updated table; the incurred dist_upd is the sum over
/// columns of (total weight − plurality weight).
Table ConsensusPluralityRepair(const Table& table, AttrSet attrs);

/// The cost the plurality repair will incur, without building it.
double ConsensusPluralityCost(const Table& table, AttrSet attrs);

/// The plurality values themselves, one entry per attribute of `attrs` in
/// ascending order — for callers (the delta splice path) that apply or
/// diff the consensus repair without cloning the table. Empty when the
/// table is empty.
std::vector<std::pair<AttrId, ValueId>> ConsensusPluralityValues(
    const Table& table, AttrSet attrs);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UREPAIR_CONSENSUS_H_
