// Deterministic fresh-constant (⊥) naming for update repairs.
//
// The §4 constructions only require fresh values to differ from everything
// else in the table; *which* fresh value a cell receives is arbitrary. The
// historical choice — ValuePool::FreshValue()'s pool-global counter — made
// ⊥ names depend on allocation order, so a re-plan against a pool whose
// counter had advanced (or a differently-threaded run that interleaved
// allocations) produced different names for the same repair. That blocked
// cell-edit recipes from replaying bit-identically across re-plans.
//
// These helpers derive the name from stable coordinates instead:
//   - FreshCellName(id, attr): the per-cell freshening of SubsetToUpdate
//     (Proposition 4.4) and the core-implicant route — one symbol per
//     (TupleId, attribute) cell, so distinct cells never share a symbol
//     (sharing would re-create lhs agreements) and the same cell gets the
//     same symbol in every run;
//   - FreshColumnSymbolName(attr, j): the exact search's canonical column
//     symbols, which rows deliberately MAY share (equal fresh values are
//     part of its search space) — one symbol per (attribute, index).
// The prefixes differ ("⊥t" vs "⊥e"), so the two families never collide.
// ValuePool::FreshValueNamed resolves collisions with user data by
// deterministic "'"-suffixing (see value_pool.h).

#ifndef FDREPAIR_UREPAIR_FRESH_H_
#define FDREPAIR_UREPAIR_FRESH_H_

#include <string>

#include "storage/table.h"

namespace fdrepair {

/// The deterministic ⊥ name for freshening cell (id, attr).
inline std::string FreshCellName(TupleId id, AttrId attr) {
  return "⊥t" + std::to_string(id) + "." + std::to_string(attr);
}

/// The deterministic name of the exact search's j-th canonical fresh
/// symbol for column `attr`.
inline std::string FreshColumnSymbolName(AttrId attr, int j) {
  return "⊥e" + std::to_string(attr) + "." + std::to_string(j);
}

/// Interns the deterministic fresh constant for cell (id, attr) into the
/// table's pool and returns its id.
inline ValueId FreshCellValue(Table& table, TupleId id, AttrId attr) {
  return table.FreshValueNamed(FreshCellName(id, attr));
}

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_FRESH_H_
