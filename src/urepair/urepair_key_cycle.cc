#include "urepair/urepair_key_cycle.h"

#include <unordered_map>

#include "srepair/opt_srepair.h"

namespace fdrepair {

std::optional<std::pair<AttrId, AttrId>> DetectKeyCycle(const FdSet& fds) {
  FdSet delta = fds.WithoutTrivial();
  if (delta.size() != 2) return std::nullopt;
  const Fd& first = delta.fds()[0];
  const Fd& second = delta.fds()[1];
  if (first.lhs.size() != 1 || second.lhs.size() != 1) return std::nullopt;
  AttrId a = first.lhs.First();
  AttrId b = second.lhs.First();
  if (first.rhs == b && second.rhs == a && a != b) {
    return std::make_pair(a, b);
  }
  return std::nullopt;
}

StatusOr<Table> KeyCycleOptimalURepair(const FdSet& fds, const Table& table) {
  auto cycle = DetectKeyCycle(fds);
  if (!cycle) {
    return Status::FailedPrecondition(
        "KeyCycleOptimalURepair requires ∆ = {A -> B, B -> A}");
  }
  const auto [a, b] = *cycle;
  FdSet delta = fds.WithoutTrivial();
  // {A → B, B → A} passes OSRSucceeds via lhs marriage, so this cannot fail.
  FDR_ASSIGN_OR_RETURN(std::vector<int> kept_rows,
                       OptSRepairRows(delta, TableView(table)));
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  // Kept tuples define a partial bijection between A values and B values.
  std::unordered_map<ValueId, ValueId> b_of_a;
  std::unordered_map<ValueId, ValueId> a_of_b;
  for (int row : kept_rows) {
    b_of_a.emplace(table.value(row, a), table.value(row, b));
    a_of_b.emplace(table.value(row, b), table.value(row, a));
  }

  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    ValueId value_a = table.value(row, a);
    ValueId value_b = table.value(row, b);
    auto via_a = b_of_a.find(value_a);
    if (via_a != b_of_a.end()) {
      // Align the deleted tuple with the kept tuple sharing its A value.
      update.SetValue(row, b, via_a->second);
      continue;
    }
    auto via_b = a_of_b.find(value_b);
    if (via_b != a_of_b.end()) {
      update.SetValue(row, a, via_b->second);
      continue;
    }
    // Unreachable for a true optimum (the tuple could have been kept);
    // leaving the tuple unchanged keeps the update consistent regardless,
    // since its A and B values match no kept tuple. New (A, B) pair joins
    // the bijection to stay safe against later deleted tuples.
    b_of_a.emplace(value_a, value_b);
    a_of_b.emplace(value_b, value_a);
  }
  return update;
}

}  // namespace fdrepair
