#include "urepair/urepair_key_cycle.h"

#include "storage/row_span.h"

namespace fdrepair {

std::optional<std::pair<AttrId, AttrId>> DetectKeyCycle(const FdSet& fds) {
  FdSet delta = fds.WithoutTrivial();
  if (delta.size() != 2) return std::nullopt;
  const Fd& first = delta.fds()[0];
  const Fd& second = delta.fds()[1];
  if (first.lhs.size() != 1 || second.lhs.size() != 1) return std::nullopt;
  AttrId a = first.lhs.First();
  AttrId b = second.lhs.First();
  if (first.rhs == b && second.rhs == a && a != b) {
    return std::make_pair(a, b);
  }
  return std::nullopt;
}

Table KeyCycleAlignRows(AttrId a, AttrId b, const Table& table,
                        const std::vector<int>& kept_rows) {
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  // Kept tuples define a partial bijection between A values and B values.
  // Stored as two DenseValueIndex-backed parallel vectors instead of the
  // historical unordered_maps: first-appearance assignment reproduces
  // emplace's first-binding-wins semantics exactly, and both the build and
  // the lookup sweep the contiguous column store.
  const ValueId reserve = static_cast<ValueId>(table.pool()->size()) - 1;
  DenseValueIndex index_a;
  DenseValueIndex index_b;
  index_a.Reserve(reserve);
  index_b.Reserve(reserve);
  std::vector<ValueId> b_of_a;
  std::vector<ValueId> a_of_b;
  const ColumnView col_a = table.Column(a);
  const ColumnView col_b = table.Column(b);
  auto bind = [&](ValueId value_a, ValueId value_b) {
    bool created = false;
    index_a.FindOrCreate(value_a, &created);
    if (created) b_of_a.push_back(value_b);
    index_b.FindOrCreate(value_b, &created);
    if (created) a_of_b.push_back(value_a);
  };
  for (int row : kept_rows) bind(col_a[row], col_b[row]);

  Table update = table.Clone();
  for (int row = 0; row < table.num_tuples(); ++row) {
    if (kept[row]) continue;
    ValueId value_a = col_a[row];
    ValueId value_b = col_b[row];
    int via_a = index_a.Find(value_a);
    if (via_a >= 0) {
      // Align the deleted tuple with the kept tuple sharing its A value.
      update.SetValue(row, b, b_of_a[via_a]);
      continue;
    }
    int via_b = index_b.Find(value_b);
    if (via_b >= 0) {
      update.SetValue(row, a, a_of_b[via_b]);
      continue;
    }
    // Unreachable for a true optimum (the tuple could have been kept);
    // leaving the tuple unchanged keeps the update consistent regardless,
    // since its A and B values match no kept tuple. New (A, B) pair joins
    // the bijection to stay safe against later deleted tuples.
    bind(value_a, value_b);
  }
  return update;
}

StatusOr<Table> KeyCycleOptimalURepair(const FdSet& fds, const Table& table,
                                       const OptSRepairExec& exec) {
  auto cycle = DetectKeyCycle(fds);
  if (!cycle) {
    return Status::FailedPrecondition(
        "KeyCycleOptimalURepair requires ∆ = {A -> B, B -> A}");
  }
  const auto [a, b] = *cycle;
  FdSet delta = fds.WithoutTrivial();
  // {A → B, B → A} passes OSRSucceeds via lhs marriage, so this cannot fail.
  OptSRepairRowsOptions row_options;
  row_options.exec = exec;
  FDR_ASSIGN_OR_RETURN(std::vector<int> kept_rows,
                       OptSRepairRows(delta, TableView(table), row_options));
  return KeyCycleAlignRows(a, b, table, kept_rows);
}

StatusOr<Table> KeyCycleOptimalURepair(const FdSet& fds, const Table& table) {
  return KeyCycleOptimalURepair(fds, table, OptSRepairExec{});
}

}  // namespace fdrepair
