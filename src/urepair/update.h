// Update-repair plumbing (§2.3, §4): an update U of T is a table with the
// same identifiers and weights whose values may differ; its cost is the
// weighted Hamming distance dist_upd. This header provides validation and
// direction 1 of Proposition 4.4 (update -> consistent subset).

#ifndef FDREPAIR_UREPAIR_UPDATE_H_
#define FDREPAIR_UREPAIR_UPDATE_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/distance.h"
#include "storage/table.h"

namespace fdrepair {

/// Checks that `update` is an update of `table`: same schema, identical
/// identifier set, identical weights.
Status ValidateUpdate(const Table& update, const Table& table);

/// Proposition 4.4 (1): from a consistent update U, the rows of T whose
/// tuples U left untouched form a consistent subset S with
/// dist_sub(S, T) <= dist_upd(U, T). Returns those dense row positions.
StatusOr<std::vector<int>> UpdateToConsistentSubsetRows(const Table& table,
                                                        const Table& update);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_UPDATE_H_
