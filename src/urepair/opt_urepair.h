// OptURepairCells: the §4 U-repair planner as a *cell-edit* producer, plus
// plan capture and delta splicing — the update-mode counterpart of
// srepair/opt_srepair.h's row-level plan cache.
//
// Where an S-repair is a kept-id set, a U-repair is a set of cell
// rewrites; the natural recipe unit is therefore a (position, attribute,
// replacement text) triple, not a row list. OptURepairCells runs exactly
// the ComputeURepair pipeline (consensus peeling, attribute-disjoint
// components, the per-component route table) and returns the update as a
// canonical edit list — sorted by (dense row position, attribute), one
// entry per cell that actually changed — together with the DistUpd
// distance, computed over the materialized update before it is discarded.
// ComputeURepair itself is a thin wrapper: clone + apply edits.
//
// Plan capture records, per component, the inner S-repair's
// SRepairPlanCache (common-lhs and key-cycle routes both reduce to
// Algorithm 1) and — for common-lhs components — one URepairBlockRecipe
// per top-level S-repair block: the freshening edits of that block's
// deleted rows. A later delta run splices each component:
//
//   - consensus attributes: recomputed outright (one contiguous column
//     sweep per attribute — already O(n), nothing worth caching);
//   - common-lhs: OptSRepairRowsDelta re-runs dirty blocks only; a clean
//     block's *edit recipe* is reused by shared_ptr identity with the
//     refreshed S-plan's recipe (recipes are immutable once published, so
//     pointer equality proves the block — ids, kept set and hence its
//     freshening — is unchanged), skipping the per-cell name
//     construction and pool interning entirely;
//   - key-cycle: the inner S-repair splices; the Proposition 4.9
//     alignment pass is recomputed over the spliced kept set (it is a
//     single O(n) column sweep and its bijection depends on the *global*
//     kept order, so it cannot be cached per block);
//   - exact-search / combined-approx components make the whole plan
//     non-spliceable (kFailedPrecondition → callers fall back to a full
//     re-plan, exactly as the service does for non-spliceable S-plans).
//
// Bit-identity of the splice with a cold OptURepairCells run follows from
// the S-repair splice guarantee (opt_srepair.h) plus determinism of the
// freshening: fresh-constant names derive from (TupleId, attribute) — see
// urepair/fresh.h — so a clean block's cached edit texts are literally
// what a cold run would re-derive, and the sequential merge/diff order is
// unchanged. tests/delta_test.cc property-tests this across random
// mutation sequences and thread counts.

#ifndef FDREPAIR_UREPAIR_OPT_UREPAIR_H_
#define FDREPAIR_UREPAIR_OPT_UREPAIR_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "srepair/opt_srepair.h"
#include "storage/table.h"
#include "urepair/planner.h"

namespace fdrepair {

/// One cell rewrite, addressed by stable TupleId (pool- and
/// position-independent, like SRepairBlockRecipe's id sequences) with the
/// replacement as text (ValueIds are pool-dependent).
struct URepairCellEdit {
  TupleId id = 0;
  AttrId attr = 0;
  std::string text;
};

struct URepairPlanCache;

/// Everything one OptURepairCells run needs beyond (∆, T): planner knobs,
/// execution limits, and the optional delta-splice inputs — the
/// update-mode mirror of OptSRepairRowsOptions.
struct OptURepairOptions {
  URepairOptions planner;
  /// Inner S-repairs (common-lhs, key-cycle) fan their blocks out under
  /// this exec; every freshening/alignment/diff pass is sequential, so
  /// results are bit-identical for every thread count.
  OptSRepairExec exec;
  /// Non-null: splice this plan — captured on the PRE-mutation table —
  /// instead of a cold run (see the file comment for what each component
  /// route reuses).
  const URepairPlanCache* delta_base = nullptr;
  /// Delta runs only: tuple ids whose content changed in place. Null means
  /// "no in-place edits".
  const std::vector<TupleId>* delta_updated_ids = nullptr;
  /// Delta runs only (optional): accumulates the inner splices'
  /// clean/dirty block counts.
  SRepairSpliceStats* splice_stats = nullptr;
};

/// The edit-list form of a U-repair.
struct OptURepairResult {
  /// Canonical order: ascending (dense row position, attribute); each
  /// edited cell appears exactly once, and every entry really differs
  /// from the input cell.
  std::vector<URepairCellEdit> edits;
  /// dist_upd(update, T), bit-exact with DistUpd on the materialized
  /// update.
  double distance = 0;
  bool optimal = false;
  double ratio_bound = 1;
  URepairPlan plan;
};

/// The freshening edits of one top-level S-repair block of a common-lhs
/// component: positions index into the paired SRepairBlockRecipe's `ids`.
/// Immutable once published and SHARED between chained plans, exactly like
/// SRepairBlockRecipe.
struct URepairBlockRecipe {
  struct Edit {
    int pos = 0;
    AttrId attr = 0;
    std::string text;
  };
  std::vector<Edit> edits;
};

/// Captured execution state of one component.
struct URepairComponentCache {
  URepairRoute route = URepairRoute::kNoop;
  FdSet fds;
  AttrSet attrs;
  /// Common-lhs only: the minimum lhs cover whose cells get freshened.
  AttrSet cover;
  /// Key-cycle only: the (A, B) pair.
  std::optional<std::pair<AttrId, AttrId>> cycle;
  /// The inner S-repair's captured plan (common-lhs and key-cycle).
  std::shared_ptr<SRepairPlanCache> splan;
  /// Common-lhs only: aligned 1:1 with splan->blocks.
  std::vector<std::shared_ptr<URepairBlockRecipe>> block_edits;
};

/// The captured top-level structure of one OptURepairCells run.
struct URepairPlanCache {
  /// Spliceable iff every component routes to kNoop / kCommonLhsExact /
  /// kKeyCycleExact and every inner S-plan is itself spliceable.
  bool spliceable = false;
  AttrSet consensus_attrs;
  std::vector<URepairComponentCache> components;
};

/// Plans and executes an update repair, returning the canonical edit
/// list. With `capture` non-null additionally records the run's plan
/// (capture->spliceable tells whether it can seed a delta run).
///
/// With options.delta_base non-null, repairs `table` (the MUTATED table)
/// by splicing the captured plan; bit-identical to a cold run on `table`
/// for every thread count, and `capture` then receives the refreshed plan
/// (so delta runs chain). Fails with kFailedPrecondition when the base
/// plan is not spliceable (or an inner S-plan refuses to splice) —
/// callers fall back to a full re-plan.
StatusOr<OptURepairResult> OptURepairCells(const FdSet& fds,
                                           const Table& table,
                                           const OptURepairOptions& options = {},
                                           URepairPlanCache* capture = nullptr);

/// DEPRECATED shim — calls the canonical OptURepairCells with the delta
/// fields of OptURepairOptions populated.
StatusOr<OptURepairResult> OptURepairCellsDelta(
    const FdSet& fds, const Table& table, const OptURepairOptions& options,
    const URepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    URepairPlanCache* capture, SRepairSpliceStats* stats);

}  // namespace fdrepair

#endif  // FDREPAIR_UREPAIR_OPT_UREPAIR_H_
