#include "urepair/opt_urepair.h"

#include <algorithm>
#include <unordered_map>

#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/covers.h"
#include "urepair/fresh.h"
#include "urepair/urepair_common_lhs.h"
#include "urepair/urepair_consensus.h"
#include "urepair/urepair_exact.h"
#include "urepair/urepair_key_cycle.h"
#include "urepair/urepair_kl_approx.h"

namespace fdrepair {
namespace {

/// The freshening edits of one S-repair block of a common-lhs component:
/// every non-kept position gets one edit per cover attribute. Names are
/// the deterministic (TupleId, attr) scheme, so this derivation matches
/// SubsetToUpdate's materialized freshening cell for cell (FreshValueNamed
/// is idempotent, so re-deriving never mints a second symbol).
std::shared_ptr<URepairBlockRecipe> BuildBlockEdits(
    ValuePool& pool, const SRepairBlockRecipe& block, AttrSet cover) {
  auto recipe = std::make_shared<URepairBlockRecipe>();
  std::vector<char> kept(block.ids.size(), 0);
  for (int pos : block.kept_pos) kept[pos] = 1;
  for (int pos = 0; pos < static_cast<int>(block.ids.size()); ++pos) {
    if (kept[pos]) continue;
    ForEachAttr(cover, [&](AttrId attr) {
      ValueId value = pool.FreshValueNamed(FreshCellName(block.ids[pos], attr));
      recipe->edits.push_back({pos, attr, pool.Text(value)});
    });
  }
  return recipe;
}

/// Working edit form carrying the dense row position for canonical
/// ordering and the row-order distance sum.
struct PosEdit {
  int row = 0;
  AttrId attr = 0;
  TupleId id = 0;
  std::string text;
};

/// Sorts into canonical (row, attr) order and replays DistUpd's exact
/// expression tree: per row in row order, distance += weight * edit count
/// (rows without edits contribute an exact +0.0 there, so skipping them is
/// bit-identical).
OptURepairResult AssembleResult(const Table& table, std::vector<PosEdit> edits,
                                bool all_exact, double achieved_bound,
                                URepairPlan plan) {
  std::sort(edits.begin(), edits.end(), [](const PosEdit& a, const PosEdit& b) {
    return a.row != b.row ? a.row < b.row : a.attr < b.attr;
  });
  OptURepairResult result;
  double distance = 0;
  for (size_t i = 0; i < edits.size();) {
    size_t j = i;
    while (j < edits.size() && edits[j].row == edits[i].row) ++j;
    distance += table.weight(edits[i].row) * static_cast<int>(j - i);
    i = j;
  }
  result.distance = distance;
  result.optimal = all_exact;
  result.ratio_bound = all_exact ? 1.0 : achieved_bound;
  result.edits.reserve(edits.size());
  for (PosEdit& edit : edits) {
    result.edits.push_back(
        URepairCellEdit{edit.id, edit.attr, std::move(edit.text)});
  }
  result.plan = std::move(plan);
  return result;
}

/// The delta-splice path of the canonical OptURepairCells (defined below;
/// see the header comment there for the contract).
StatusOr<OptURepairResult> DeltaCells(
    const FdSet& fds, const Table& table, const OptURepairOptions& options,
    const URepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    URepairPlanCache* capture, SRepairSpliceStats* stats);

}  // namespace

StatusOr<OptURepairResult> OptURepairCells(const FdSet& fds,
                                           const Table& table,
                                           const OptURepairOptions& options,
                                           URepairPlanCache* capture) {
  if (options.delta_base != nullptr) {
    static const std::vector<TupleId> kNoUpdatedIds;
    const std::vector<TupleId>& updated = options.delta_updated_ids != nullptr
                                              ? *options.delta_updated_ids
                                              : kNoUpdatedIds;
    return DeltaCells(fds, table, options, *options.delta_base, updated,
                      capture, options.splice_stats);
  }
  FDR_ASSIGN_OR_RETURN(URepairPlan plan, PlanURepair(fds));
  Table update = table.Clone();

  // Copies the cells of `attrs` from a component's sub-update into the
  // global update. Sub-updates are clones of `table`, so rows align.
  auto merge = [&](const Table& sub, AttrSet attrs) {
    FDR_CHECK(sub.num_tuples() == update.num_tuples());
    for (int row = 0; row < sub.num_tuples(); ++row) {
      FDR_CHECK(sub.id(row) == update.id(row));
      ForEachAttr(attrs, [&](AttrId attr) {
        if (update.value(row, attr) != sub.value(row, attr)) {
          update.SetValue(row, attr, sub.value(row, attr));
        }
      });
    }
  };

  if (capture != nullptr) {
    *capture = URepairPlanCache{};
    capture->spliceable = true;
    capture->consensus_attrs = plan.consensus_attrs;
  }

  bool all_exact = true;
  double achieved_bound = 1.0;

  if (!plan.consensus_attrs.empty()) {
    merge(ConsensusPluralityRepair(table, plan.consensus_attrs),
          plan.consensus_attrs);
  }

  for (URepairComponentPlan& component : plan.components) {
    const AttrSet attrs = component.fds.Attrs();
    URepairComponentCache cache;
    cache.route = component.route;
    cache.fds = component.fds;
    cache.attrs = attrs;
    switch (component.route) {
      case URepairRoute::kNoop:
      case URepairRoute::kConsensusPlurality:
        break;
      case URepairRoute::kCommonLhsExact: {
        FdSet delta = component.fds.WithoutTrivial();
        FDR_ASSIGN_OR_RETURN(cache.cover, MinimumLhsCover(delta));
        auto splan = capture != nullptr ? std::make_shared<SRepairPlanCache>()
                                        : nullptr;
        FDR_ASSIGN_OR_RETURN(
            Table sub, CommonLhsOptimalURepair(component.fds, table,
                                               options.exec, splan.get()));
        merge(sub, attrs);
        if (capture != nullptr) {
          if (!splan->spliceable) capture->spliceable = false;
          for (const auto& block : splan->blocks) {
            cache.block_edits.push_back(
                BuildBlockEdits(*table.pool(), *block, cache.cover));
          }
          cache.splan = std::move(splan);
        }
        break;
      }
      case URepairRoute::kKeyCycleExact: {
        cache.cycle = DetectKeyCycle(component.fds);
        FDR_CHECK(cache.cycle.has_value());
        FdSet delta = component.fds.WithoutTrivial();
        auto splan = capture != nullptr ? std::make_shared<SRepairPlanCache>()
                                        : nullptr;
        OptSRepairRowsOptions row_options;
        row_options.exec = options.exec;
        FDR_ASSIGN_OR_RETURN(
            std::vector<int> kept_rows,
            OptSRepairRows(delta, TableView(table), row_options, splan.get()));
        merge(KeyCycleAlignRows(cache.cycle->first, cache.cycle->second, table,
                                kept_rows),
              attrs);
        if (capture != nullptr) {
          if (!splan->spliceable) capture->spliceable = false;
          cache.splan = std::move(splan);
        }
        break;
      }
      case URepairRoute::kExactSearch:
      case URepairRoute::kCombinedApprox: {
        if (capture != nullptr) capture->spliceable = false;
        if (options.planner.allow_exact_search) {
          ExactURepairOptions exact_options;
          exact_options.max_rows = options.planner.exact_rows_guard;
          exact_options.max_cells = options.planner.exact_cells_guard;
          exact_options.mutable_attrs = attrs;
          auto exact = OptURepairExact(component.fds, table, exact_options);
          if (exact.ok()) {
            merge(*exact, attrs);
            component.route = URepairRoute::kExactSearch;
            component.ratio_bound = 1.0;
            break;
          }
          if (exact.status().code() != StatusCode::kResourceExhausted) {
            return exact.status();
          }
        }
        FDR_ASSIGN_OR_RETURN(Table sub,
                             CombinedApproxURepair(component.fds, table));
        merge(sub, attrs);
        component.route = URepairRoute::kCombinedApprox;
        all_exact = false;
        break;
      }
    }
    if (capture != nullptr) capture->components.push_back(std::move(cache));
    achieved_bound = std::max(achieved_bound, component.ratio_bound);
  }

  FDR_ASSIGN_OR_RETURN(double distance, DistUpd(update, table));
  // The combined update must satisfy ∆ (components are attribute-disjoint
  // and the consensus part is separated by Theorem 4.3).
  FDR_CHECK_MSG(Satisfies(update, fds),
                "planner produced an inconsistent update for " +
                    fds.ToString());

  OptURepairResult result;
  result.distance = distance;
  result.optimal = all_exact;
  result.ratio_bound = all_exact ? 1.0 : achieved_bound;
  const int arity = table.schema().arity();
  for (int row = 0; row < table.num_tuples(); ++row) {
    for (AttrId attr = 0; attr < arity; ++attr) {
      if (update.value(row, attr) != table.value(row, attr)) {
        result.edits.push_back(URepairCellEdit{
            table.id(row), attr, update.ValueText(row, attr)});
      }
    }
  }
  result.plan = std::move(plan);
  return result;
}

namespace {

StatusOr<OptURepairResult> DeltaCells(
    const FdSet& fds, const Table& table, const OptURepairOptions& options,
    const URepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    URepairPlanCache* capture, SRepairSpliceStats* stats) {
  if (!base.spliceable) {
    return Status::FailedPrecondition(
        "captured U-plan is not spliceable — run a full re-plan");
  }
  FDR_ASSIGN_OR_RETURN(URepairPlan plan, PlanURepair(fds));
  // The plan is a pure function of ∆, so a shape mismatch means the plan
  // was captured under a different FD set.
  if (plan.components.size() != base.components.size() ||
      !(plan.consensus_attrs == base.consensus_attrs)) {
    return Status::FailedPrecondition(
        "captured U-plan does not match this FD set");
  }

  ValuePool& pool = *table.pool();
  std::vector<PosEdit> edits;
  SRepairSpliceStats total;

  if (capture != nullptr) {
    *capture = URepairPlanCache{};
    capture->spliceable = true;
    capture->consensus_attrs = plan.consensus_attrs;
  }

  // Consensus columns: recomputed outright — one contiguous sweep per
  // attribute, already O(n); the diff below reproduces the cold run's
  // merge-vs-input edit set exactly.
  for (const auto& [attr, plurality] :
       ConsensusPluralityValues(table, plan.consensus_attrs)) {
    const ColumnView column = table.Column(attr);
    const std::string& text = pool.Text(plurality);
    for (int row = 0; row < column.size(); ++row) {
      if (column[row] != plurality) {
        edits.push_back(PosEdit{row, attr, table.id(row), text});
      }
    }
  }

  bool all_exact = true;
  double achieved_bound = 1.0;

  for (size_t c = 0; c < plan.components.size(); ++c) {
    URepairComponentPlan& component = plan.components[c];
    const URepairComponentCache& bc = base.components[c];
    if (component.route != bc.route) {
      return Status::FailedPrecondition(
          "captured U-plan does not match this FD set");
    }
    const AttrSet attrs = component.fds.Attrs();
    URepairComponentCache cache;
    cache.route = component.route;
    cache.fds = component.fds;
    cache.attrs = attrs;
    cache.cover = bc.cover;
    cache.cycle = bc.cycle;
    switch (component.route) {
      case URepairRoute::kNoop:
      case URepairRoute::kConsensusPlurality:
        break;
      case URepairRoute::kCommonLhsExact: {
        if (bc.splan == nullptr ||
            bc.block_edits.size() != bc.splan->blocks.size()) {
          return Status::FailedPrecondition(
              "captured U-plan is missing its inner S-plan");
        }
        FdSet delta = component.fds.WithoutTrivial();
        auto fresh = std::make_shared<SRepairPlanCache>();
        SRepairSpliceStats cstats;
        OptSRepairRowsOptions row_options;
        row_options.exec = options.exec;
        row_options.delta_base = bc.splan.get();
        row_options.delta_updated_ids = &updated_ids;
        row_options.splice_stats = &cstats;
        FDR_ASSIGN_OR_RETURN(
            std::vector<int> kept_rows,
            OptSRepairRows(delta, TableView(table), row_options, fresh.get()));
        (void)kept_rows;  // The edits derive from the refreshed blocks.
        total.blocks_total += cstats.blocks_total;
        total.blocks_clean += cstats.blocks_clean;
        total.blocks_dirty += cstats.blocks_dirty;
        // A clean block's refreshed recipe IS the base recipe (the splice
        // aliases it), so pointer identity proves the block's membership
        // and kept set — and hence its freshening — are unchanged, and the
        // cached edit recipe replays verbatim.
        std::unordered_map<const SRepairBlockRecipe*,
                           const std::shared_ptr<URepairBlockRecipe>*>
            reuse;
        reuse.reserve(bc.splan->blocks.size());
        for (size_t i = 0; i < bc.splan->blocks.size(); ++i) {
          reuse.emplace(bc.splan->blocks[i].get(), &bc.block_edits[i]);
        }
        for (const auto& block : fresh->blocks) {
          auto it = reuse.find(block.get());
          std::shared_ptr<URepairBlockRecipe> recipe =
              it != reuse.end() ? *it->second
                                : BuildBlockEdits(pool, *block, bc.cover);
          for (const URepairBlockRecipe::Edit& edit : recipe->edits) {
            const TupleId id = block->ids[edit.pos];
            FDR_ASSIGN_OR_RETURN(int row, table.RowOf(id));
            edits.push_back(PosEdit{row, edit.attr, id, edit.text});
          }
          cache.block_edits.push_back(std::move(recipe));
        }
        if (capture != nullptr && !fresh->spliceable) {
          capture->spliceable = false;
        }
        cache.splan = std::move(fresh);
        break;
      }
      case URepairRoute::kKeyCycleExact: {
        if (bc.splan == nullptr || !bc.cycle.has_value()) {
          return Status::FailedPrecondition(
              "captured U-plan is missing its inner S-plan");
        }
        FdSet delta = component.fds.WithoutTrivial();
        auto fresh = std::make_shared<SRepairPlanCache>();
        SRepairSpliceStats cstats;
        OptSRepairRowsOptions row_options;
        row_options.exec = options.exec;
        row_options.delta_base = bc.splan.get();
        row_options.delta_updated_ids = &updated_ids;
        row_options.splice_stats = &cstats;
        FDR_ASSIGN_OR_RETURN(
            std::vector<int> kept_rows,
            OptSRepairRows(delta, TableView(table), row_options, fresh.get()));
        total.blocks_total += cstats.blocks_total;
        total.blocks_clean += cstats.blocks_clean;
        total.blocks_dirty += cstats.blocks_dirty;
        // The Proposition 4.9 alignment depends on the *global* kept order
        // (its partial bijection is built first-kept-wins across blocks),
        // so it is recomputed over the spliced kept set — one O(n) column
        // sweep; only the S-repair recursion was worth caching.
        Table sub = KeyCycleAlignRows(bc.cycle->first, bc.cycle->second, table,
                                      kept_rows);
        for (AttrId attr : {bc.cycle->first, bc.cycle->second}) {
          const ColumnView before = table.Column(attr);
          const ColumnView after = sub.Column(attr);
          for (int row = 0; row < before.size(); ++row) {
            if (before[row] != after[row]) {
              edits.push_back(
                  PosEdit{row, attr, table.id(row), sub.ValueText(row, attr)});
            }
          }
        }
        if (capture != nullptr && !fresh->spliceable) {
          capture->spliceable = false;
        }
        cache.splan = std::move(fresh);
        break;
      }
      case URepairRoute::kExactSearch:
      case URepairRoute::kCombinedApprox:
        return Status::FailedPrecondition(
            "captured U-plan contains a non-spliceable route");
    }
    if (capture != nullptr) capture->components.push_back(std::move(cache));
    achieved_bound = std::max(achieved_bound, component.ratio_bound);
  }

  if (stats != nullptr) {
    stats->blocks_total += total.blocks_total;
    stats->blocks_clean += total.blocks_clean;
    stats->blocks_dirty += total.blocks_dirty;
  }
  // No Satisfies() audit here: the splice path exists to skip O(n · arity)
  // re-work, and its bit-identity with the cold run (which does audit) is
  // property-tested in tests/delta_test.cc.
  return AssembleResult(table, std::move(edits), all_exact, achieved_bound,
                        std::move(plan));
}

}  // namespace

StatusOr<OptURepairResult> OptURepairCellsDelta(
    const FdSet& fds, const Table& table, const OptURepairOptions& options,
    const URepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    URepairPlanCache* capture, SRepairSpliceStats* stats) {
  OptURepairOptions delta_options = options;
  delta_options.delta_base = &base;
  delta_options.delta_updated_ids = &updated_ids;
  delta_options.splice_stats = stats;
  return OptURepairCells(fds, table, delta_options, capture);
}

}  // namespace fdrepair
