#include "urepair/update.h"

namespace fdrepair {

Status ValidateUpdate(const Table& update, const Table& table) {
  if (!(update.schema() == table.schema())) {
    return Status::InvalidArgument("update schema differs from table schema");
  }
  if (update.num_tuples() != table.num_tuples()) {
    return Status::InvalidArgument(
        "update has " + std::to_string(update.num_tuples()) +
        " tuples, table has " + std::to_string(table.num_tuples()));
  }
  for (int row = 0; row < update.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(int parent_row, table.RowOf(update.id(row)));
    if (update.weight(row) != table.weight(parent_row)) {
      return Status::InvalidArgument(
          "update changed the weight of tuple id " +
          std::to_string(update.id(row)));
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int>> UpdateToConsistentSubsetRows(const Table& table,
                                                        const Table& update) {
  FDR_RETURN_IF_ERROR(ValidateUpdate(update, table));
  std::vector<int> rows;
  for (int row = 0; row < update.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(int parent_row, table.RowOf(update.id(row)));
    if (update.tuple(row) == table.tuple(parent_row)) {
      rows.push_back(parent_row);
    }
  }
  return rows;
}

}  // namespace fdrepair
