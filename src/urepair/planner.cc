#include "urepair/planner.h"

#include <algorithm>
#include <sstream>

#include "srepair/osr_succeeds.h"
#include "urepair/covers.h"
#include "urepair/opt_urepair.h"
#include "urepair/urepair_key_cycle.h"

namespace fdrepair {

const char* URepairRouteToString(URepairRoute route) {
  switch (route) {
    case URepairRoute::kNoop:
      return "noop";
    case URepairRoute::kConsensusPlurality:
      return "consensus-plurality";
    case URepairRoute::kCommonLhsExact:
      return "common-lhs-exact";
    case URepairRoute::kKeyCycleExact:
      return "key-cycle-exact";
    case URepairRoute::kExactSearch:
      return "exact-search";
    case URepairRoute::kCombinedApprox:
      return "combined-approx";
  }
  return "unknown";
}

const char* URepairComplexityToString(URepairComplexity complexity) {
  switch (complexity) {
    case URepairComplexity::kPolynomial:
      return "polynomial";
    case URepairComplexity::kApxHard:
      return "APX-hard";
    case URepairComplexity::kOpen:
      return "open";
  }
  return "unknown";
}

namespace {

// {A → B, B → C} up to renaming: two unary FDs chained through distinct
// attributes — APX-hard for U-repairs (Kolahi & Lakshmanan; Example 4.2).
bool IsUnaryChainOfTwo(const FdSet& fds) {
  if (fds.size() != 2) return false;
  const Fd& f0 = fds.fds()[0];
  const Fd& f1 = fds.fds()[1];
  if (f0.lhs.size() != 1 || f1.lhs.size() != 1) return false;
  AttrId a0 = f0.lhs.First();
  AttrId a1 = f1.lhs.First();
  // One FD's rhs feeds the other's lhs, and the three attributes differ.
  if (f0.rhs == a1 && f1.rhs != a0 && f1.rhs != a1 && a0 != a1) return true;
  if (f1.rhs == a0 && f0.rhs != a1 && f0.rhs != a0 && a0 != a1) return true;
  return false;
}

// ∆A↔B→C up to renaming: {A → B, B → A, B → C} — APX-hard for U-repairs
// (Theorem 4.10) although polynomial for S-repairs.
bool IsKeyCyclePlusOut(const FdSet& fds) {
  if (fds.size() != 3) return false;
  for (const Fd& fd : fds.fds()) {
    if (fd.lhs.size() != 1) return false;
  }
  // Find the 2-cycle.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      const Fd& f = fds.fds()[i];
      const Fd& g = fds.fds()[j];
      AttrId a = f.lhs.First();
      AttrId b = g.lhs.First();
      if (f.rhs != b || g.rhs != a || a == b) continue;
      const Fd& h = fds.fds()[3 - i - j];
      AttrId c = h.rhs;
      if (c == a || c == b) continue;
      if (h.lhs.First() == a || h.lhs.First() == b) return true;
    }
  }
  return false;
}

StatusOr<URepairComponentPlan> PlanComponent(const FdSet& component) {
  URepairComponentPlan plan;
  plan.fds = component;
  if (component.IsTrivial()) {
    plan.route = URepairRoute::kNoop;
    plan.complexity = URepairComplexity::kPolynomial;
    plan.reason = "no nontrivial FDs";
    return plan;
  }
  if (component.FindCommonLhsAttr().has_value()) {
    if (OsrSucceeds(component)) {
      plan.route = URepairRoute::kCommonLhsExact;
      plan.complexity = URepairComplexity::kPolynomial;
      plan.reason =
          "common lhs and OSRSucceeds: optimal S-repair converts at cost 1 "
          "per deleted tuple (Corollary 4.6)";
      return plan;
    }
    plan.route = URepairRoute::kCombinedApprox;
    plan.complexity = URepairComplexity::kApxHard;
    plan.ratio_bound = 2.0;  // mlc = 1 with a common lhs
    plan.reason =
        "common lhs but OSRSucceeds fails: APX-complete by the strict "
        "reduction of Corollary 4.6 and Theorem 3.4; 2-approximation";
    return plan;
  }
  if (DetectKeyCycle(component)) {
    plan.route = URepairRoute::kKeyCycleExact;
    plan.complexity = URepairComplexity::kPolynomial;
    plan.reason = "key cycle {A->B, B->A}: optima coincide with S-repairs "
                  "(Proposition 4.9)";
    return plan;
  }
  plan.route = URepairRoute::kCombinedApprox;
  FDR_ASSIGN_OR_RETURN(double mlc_bound, MlcApproxRatioBound(component));
  double bound = mlc_bound;
  auto kl_bound = KlApproxRatioBound(component);
  if (kl_bound.ok()) bound = std::min(bound, *kl_bound);
  plan.ratio_bound = bound;
  if (IsUnaryChainOfTwo(component)) {
    plan.complexity = URepairComplexity::kApxHard;
    plan.reason =
        "matches {A->B, B->C}: APX-hard (Kolahi & Lakshmanan, Example 4.2)";
  } else if (IsKeyCyclePlusOut(component)) {
    plan.complexity = URepairComplexity::kApxHard;
    plan.reason = "matches {A->B, B->A, B->C}: APX-complete (Theorem 4.10)";
  } else {
    plan.complexity = URepairComplexity::kOpen;
    plan.reason =
        "no exact condition of Section 4 applies; U-repair dichotomy is open "
        "(Section 5)";
  }
  return plan;
}

}  // namespace

std::string URepairPlan::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (!consensus_attrs.empty()) {
    os << "consensus attributes " << schema.NamesOf(consensus_attrs)
       << ": weighted plurality (Prop B.2 / Thm 4.3)\n";
  }
  for (size_t c = 0; c < components.size(); ++c) {
    const URepairComponentPlan& component = components[c];
    os << "component " << (c + 1) << " {" << component.fds.ToString(schema)
       << "}: route=" << URepairRouteToString(component.route)
       << ", complexity=" << URepairComplexityToString(component.complexity)
       << ", ratio<=" << component.ratio_bound << " — " << component.reason
       << "\n";
  }
  os << "overall: " << URepairComplexityToString(complexity)
     << ", ratio<=" << ratio_bound;
  return os.str();
}

StatusOr<URepairPlan> PlanURepair(const FdSet& fds) {
  URepairPlan plan;
  FdSet delta = fds.WithoutTrivial();
  plan.consensus_attrs = delta.ConsensusAttrs();
  FdSet core = delta.MinusAttrs(plan.consensus_attrs).WithoutTrivial();
  for (const FdSet& component : core.AttributeDisjointComponents()) {
    FDR_ASSIGN_OR_RETURN(URepairComponentPlan component_plan,
                         PlanComponent(component));
    plan.components.push_back(std::move(component_plan));
  }
  plan.complexity = URepairComplexity::kPolynomial;
  for (const URepairComponentPlan& component : plan.components) {
    plan.ratio_bound = std::max(plan.ratio_bound, component.ratio_bound);
    if (component.complexity == URepairComplexity::kApxHard) {
      plan.complexity = URepairComplexity::kApxHard;
    } else if (component.complexity == URepairComplexity::kOpen &&
               plan.complexity == URepairComplexity::kPolynomial) {
      plan.complexity = URepairComplexity::kOpen;
    }
  }
  return plan;
}

StatusOr<URepairResult> ComputeURepair(const FdSet& fds, const Table& table,
                                       const URepairOptions& options) {
  // The execution pipeline lives in OptURepairCells (urepair/opt_urepair.cc)
  // — one implementation serves both the Table-producing facade and the
  // service's edit-list / delta-splice path. Applying the canonical edits
  // to a clone reproduces the pipeline's internal update bit for bit: the
  // edit texts are already interned in the shared pool, so Intern returns
  // the very ValueIds the pipeline wrote.
  OptURepairOptions cell_options;
  cell_options.planner = options;
  FDR_ASSIGN_OR_RETURN(OptURepairResult cells,
                       OptURepairCells(fds, table, cell_options, nullptr));
  Table update = table.Clone();
  for (const URepairCellEdit& edit : cells.edits) {
    FDR_ASSIGN_OR_RETURN(int row, update.RowOf(edit.id));
    update.SetValue(row, edit.attr, update.Intern(edit.text));
  }
  URepairResult result{std::move(update), cells.distance, cells.optimal,
                       cells.ratio_bound, std::move(cells.plan)};
  return result;
}

}  // namespace fdrepair
