#include "engine/repair_engine.h"

#include <algorithm>
#include <thread>

namespace fdrepair {
namespace {

using Clock = std::chrono::steady_clock;

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

RepairEngine::RepairEngine(const EngineOptions& options) : options_(options) {
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.threads));
}

RepairEngine::~RepairEngine() = default;

int RepairEngine::threads() const { return pool_->num_threads(); }

std::vector<StatusOr<SRepairResult>> RepairEngine::RepairBatch(
    const std::vector<RepairJob>& jobs) {
  const Clock::time_point admitted = Clock::now();
  // Per-job absolute deadlines are fixed at admission, so queueing time
  // counts against the budget — a job stuck behind a slow batch expires
  // instead of running late.
  std::vector<Clock::time_point> deadlines(jobs.size(),
                                           Clock::time_point::max());
  // Budgets near the representable range (e.g. milliseconds::max() to mean
  // "unlimited") must saturate instead of overflowing into instant expiry.
  const auto max_budget = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::time_point::max() - admitted);
  for (size_t j = 0; j < jobs.size(); ++j) {
    std::optional<std::chrono::milliseconds> budget =
        jobs[j].deadline ? jobs[j].deadline : options_.default_deadline;
    if (budget && *budget < max_budget) deadlines[j] = admitted + *budget;
  }

  std::vector<StatusOr<SRepairResult>> results(
      jobs.size(), Status::Internal("job never ran"));
  auto run_job = [&](int j) {
    const RepairJob& job = jobs[j];
    if (job.table == nullptr) {
      results[j] = Status::InvalidArgument("RepairJob.table is null");
      return;
    }
    if (Clock::now() >= deadlines[j]) {
      results[j] = Status::DeadlineExceeded(
          "repair job " + std::to_string(j) + " expired before starting");
      return;
    }
    SRepairOptions options = job.options;
    options.exec.pool = options_.parallel_blocks ? pool_.get() : nullptr;
    options.exec.parallel_cutoff = options_.parallel_cutoff;
    options.exec.deadline = deadlines[j];
    results[j] = ComputeSRepair(job.fds, *job.table, options);
  };
  pool_->ParallelFor(static_cast<int>(jobs.size()), run_job);
  return results;
}

StatusOr<SRepairResult> RepairEngine::Repair(const RepairJob& job) {
  std::vector<StatusOr<SRepairResult>> results = RepairBatch({job});
  return std::move(results[0]);
}

}  // namespace fdrepair
