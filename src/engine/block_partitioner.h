// BlockPartitioner: the σ-selection block structure behind Algorithm 1.
//
// Every simplification step solves independent sub-instances: σ_{A=a}T
// groups for common-lhs/consensus steps and σ_{X1=a1,X2=a2}T blocks for an
// lhs marriage. This module computes that partition once — views into the
// parent table, in first-appearance order, each tagged with its projection
// key and (for marriages) its bipartite endpoints — so callers can hand the
// blocks to a ThreadPool without re-deriving group membership. It absorbs
// the grouping logic that used to live inline in srepair/opt_srepair.cc.
//
// Blocks only *read* the parent table (see storage/table.h for the
// concurrent-reader contract), so no copies are made.

#ifndef FDREPAIR_ENGINE_BLOCK_PARTITIONER_H_
#define FDREPAIR_ENGINE_BLOCK_PARTITIONER_H_

#include <unordered_map>
#include <vector>

#include "catalog/attrset.h"
#include "storage/row_span.h"
#include "storage/table_view.h"

namespace fdrepair {

/// One independent sub-instance of a simplification step.
struct RepairBlock {
  /// The block's rows, as a view into the parent table.
  TableView view;
  /// The witness projection onto the partition attributes (the block's
  /// "a" in σ_{A=a}T, resp. "(a1, a2)" in σ_{X1=a1,X2=a2}T).
  ProjectionKey key;
  /// Marriage only: dense index of the block's π_X1 (left) and π_X2
  /// (right) value among the distinct projections; -1 otherwise.
  int left = -1;
  int right = -1;
};

struct BlockPartition {
  /// Non-empty blocks in first-appearance order of their key.
  std::vector<RepairBlock> blocks;
  /// Marriage only: number of distinct π_X1 / π_X2 values (the two sides
  /// of the matching); 0 otherwise.
  int num_left = 0;
  int num_right = 0;
};

/// Partitions `view` into the σ_{attrs=·} groups (Subroutines 1 and 2).
BlockPartition PartitionByAttrs(const TableView& view, AttrSet attrs);

/// Partitions `view` into the σ_{X1=a1,X2=a2} marriage blocks (Subroutine
/// 3), assigning each block its left/right matching endpoints.
BlockPartition PartitionForMarriage(const TableView& view, AttrSet x1,
                                    AttrSet x2);

// Span-based in-place partitioning — the OptSRepair hot path. Instead of
// materializing per-block index vectors (as the BlockPartition APIs above
// do), these permute the caller's shared row-index buffer so each block
// becomes a contiguous sub-window, and only report block boundaries. Block
// order (first-appearance of the projection) and within-block row order are
// identical to the materializing APIs; `scratch` supplies the reusable
// grouping buffers (one per concurrent caller — see storage/row_span.h).

/// Permutes `span` in place into the σ_{attrs=·} groups; clears and fills
/// *group_ends with each group's end offset (group g occupies
/// [g == 0 ? 0 : ends[g-1], ends[g])).
void PartitionSpanByAttrs(RowSpan span, AttrSet attrs, GroupScratch* scratch,
                          std::vector<int>* group_ends);

/// Permutes `span` in place into the σ_{X1=a1,X2=a2} marriage blocks
/// (grouping by X1 ∪ X2) and assigns every block its dense left (π_X1) and
/// right (π_X2) matching endpoint. Clears and fills *group_ends, *left and
/// *right (one entry per block); *num_left / *num_right receive the two
/// side sizes of the bipartite matching.
void PartitionSpanForMarriage(RowSpan span, AttrSet x1, AttrSet x2,
                              GroupScratch* scratch,
                              std::vector<int>* group_ends,
                              std::vector<int>* left, std::vector<int>* right,
                              int* num_left, int* num_right);

/// Structural block matching for the delta path (incremental re-repair
/// under mutation). Built from the top-level block structure of a *base*
/// partition — each block named by its TupleId membership sequence, in
/// block row order — it answers, for a block of the *mutated* table's
/// partition, which base block (if any) has the identical id sequence.
/// Whether a matched block is actually *clean* (no member content-updated
/// in place) is the caller's check: updated ids keep their sequence
/// position, so the index cannot see them, and the caller can test
/// membership far cheaper than a per-id set probe inside the match.
///
/// Matching is by identifier sequence, not by projection key: ValueIds are
/// pool-dependent, and the mutation that dirtied a block may have moved its
/// rows to a *different* key (an lhs-cell update) — the sequence is the
/// only pool- and mutation-independent name a block has. An inserted row
/// carries a never-before-seen id, and a deletion changes the survivor
/// sequence, so both automatically fail the match.
///
/// The index borrows the registered sequences — they must outlive it (it is
/// built per delta request over the cached plan's blocks). Not thread-safe.
class BaseBlockIndex {
 public:
  /// Registers the next base block's membership sequence (blocks are
  /// registered in base block order; sequences across blocks are disjoint).
  void Add(const std::vector<TupleId>& ids);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  /// The index of the base block whose id sequence is exactly
  /// [ids, ids + n), or -1 (re-repair needed). O(n) verify after an O(1)
  /// first-id lookup — block membership is disjoint, so the first id pins
  /// the only possible candidate.
  int Match(const TupleId* ids, int n) const;

 private:
  std::vector<const std::vector<TupleId>*> blocks_;
  std::unordered_map<TupleId, int> block_of_first_id_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_ENGINE_BLOCK_PARTITIONER_H_
