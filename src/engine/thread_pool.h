// ThreadPool: a work-stealing pool sized to the hardware.
//
// OptSRepair's recursion decomposes every tractable instance into
// independent blocks (σ_{A=a}T groups, σ_{X1=a1,X2=a2}T marriage blocks);
// the pool is how those blocks actually run concurrently. Design:
//
//   - one deque per worker: a worker pops its own deque LIFO (cache-warm)
//     and steals from a victim's deque FIFO (oldest task first);
//   - ParallelFor is the fork-join primitive: the *calling* thread claims
//     loop indices alongside the workers, and — while waiting for stragglers
//     — helps by executing unrelated queued tasks. Nested ParallelFor calls
//     therefore never deadlock even on a 1-thread pool: the caller simply
//     runs every index itself.
//
// The pool never cancels a task; cancellation is cooperative (tasks check
// their own deadlines, see OptSRepairExec). The destructor drains every
// queued task before joining, so no submitted work is ever leaked.

#ifndef FDREPAIR_ENGINE_THREAD_POOL_H_
#define FDREPAIR_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fdrepair {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 are clamped to 1. A 1-thread
  /// pool still accepts Submit/ParallelFor but ParallelFor degenerates to a
  /// sequential loop on the calling thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(queues_.size()); }

  /// Enqueues a task. From a worker thread it lands on that worker's own
  /// deque (LIFO hot path); from any other thread it is distributed
  /// round-robin.
  void Submit(std::function<void()> task);

  /// Runs body(0..n-1), potentially in parallel, and returns when all n
  /// calls have finished. The calling thread participates. Deterministic
  /// callers must not depend on execution order — only on the index.
  void ParallelFor(int n, const std::function<void(int)>& body);

  /// Pops and runs one queued task on the calling thread; false if every
  /// deque was empty. Exposed so blocked callers can help drain the pool.
  bool RunOneTask();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  struct ForState {
    std::function<void(int)> body;
    int n = 0;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };

  void WorkerLoop(int self);
  /// Claims indices of `state` until none remain; returns true if the last
  /// index completed during this call.
  static bool ClaimIndices(const std::shared_ptr<ForState>& state);
  bool PopTask(int self, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<int> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<unsigned> submit_cursor_{0};
};

}  // namespace fdrepair

#endif  // FDREPAIR_ENGINE_THREAD_POOL_H_
