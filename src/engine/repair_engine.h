// RepairEngine: the batch serving surface of the repair stack.
//
// A production deployment repairs many (∆, T) instances at once — one per
// tenant, shard, or request. The engine owns one work-stealing ThreadPool
// and schedules a whole batch across it at two levels: jobs run
// concurrently with each other, and each tractable job's OptSRepair
// recursion fans its independent blocks out to the same pool (Algorithm 1's
// σ_{A=a}T / σ_{X1=a1,X2=a2}T decomposition — see block_partitioner.h).
//
// Guarantees:
//   - deterministic results: results[i] always answers jobs[i], and every
//     repair is bit-identical to what the sequential planner produces,
//     regardless of the thread count;
//   - per-job deadlines: an expired job reports kDeadlineExceeded and
//     never leaks tasks — RepairBatch joins all work before returning.
//     The deadline is cooperative on every route: checked at admission, at
//     every recursion node on the OptSRepair route, and during node
//     expansion inside the hard-side search backends, which degrade to
//     their incumbent (kAuto) or kDeadlineExceeded (kExactOnly) instead of
//     overshooting (see planner.h and srepair/solver_backend.h);
//   - no cross-job interference: jobs read their own tables only; blocks
//     within a job share the parent table read-only (see storage/table.h).

#ifndef FDREPAIR_ENGINE_REPAIR_ENGINE_H_
#define FDREPAIR_ENGINE_REPAIR_ENGINE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/thread_pool.h"
#include "srepair/planner.h"

namespace fdrepair {

/// One subset-repair request: repair `*table` under `fds`.
struct RepairJob {
  FdSet fds;
  /// Borrowed; must outlive the RepairBatch call.
  const Table* table = nullptr;
  /// Route selection and guards, as for ComputeSRepair. The exec field is
  /// overwritten by the engine (pool + deadline).
  SRepairOptions options;
  /// Time budget from the moment RepairBatch is called. Unset: no limit
  /// (beyond EngineOptions::default_deadline).
  std::optional<std::chrono::milliseconds> deadline;
};

struct EngineOptions {
  /// Worker threads. 0 picks std::thread::hardware_concurrency(); 1 runs
  /// everything on the calling thread (the bit-identical baseline).
  int threads = 0;
  /// Also parallelize *within* a job (OptSRepair block fan-out). Disable
  /// to parallelize across jobs only — useful when batches are wide.
  bool parallel_blocks = true;
  /// Fallback budget for jobs that set no deadline of their own.
  std::optional<std::chrono::milliseconds> default_deadline;
  /// Passed through to OptSRepairExec::parallel_cutoff.
  int parallel_cutoff = 2048;
};

class RepairEngine {
 public:
  explicit RepairEngine(const EngineOptions& options = {});
  ~RepairEngine();

  RepairEngine(const RepairEngine&) = delete;
  RepairEngine& operator=(const RepairEngine&) = delete;

  int threads() const;

  /// Repairs every job, in parallel across `threads()` workers. Returns
  /// one result per job, in job order. A job whose deadline expires yields
  /// kDeadlineExceeded; other jobs are unaffected. All scheduled work is
  /// joined before returning.
  std::vector<StatusOr<SRepairResult>> RepairBatch(
      const std::vector<RepairJob>& jobs);

  /// Single-job convenience (still honors deadlines and block fan-out).
  StatusOr<SRepairResult> Repair(const RepairJob& job);

  /// The engine's pool, for callers that want to run their own work on it.
  ThreadPool* pool() { return pool_.get(); }

 private:
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_ENGINE_REPAIR_ENGINE_H_
