#include "engine/block_partitioner.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace fdrepair {

BlockPartition PartitionByAttrs(const TableView& view, AttrSet attrs) {
  // One shared grouping implementation (TableView::GroupRows): the
  // first-appearance order it produces is what the bit-identical ordered
  // reduction in opt_srepair.cc relies on.
  GroupedRows groups = view.GroupRows(attrs);
  BlockPartition out;
  out.blocks.reserve(groups.rows.size());
  for (size_t g = 0; g < groups.rows.size(); ++g) {
    out.blocks.push_back(RepairBlock{
        TableView(view.table(), std::move(groups.rows[g])),
        std::move(groups.keys[g]), -1, -1});
  }
  return out;
}

BlockPartition PartitionForMarriage(const TableView& view, AttrSet x1,
                                    AttrSet x2) {
  BlockPartition out = PartitionByAttrs(view, x1.Union(x2));
  std::unordered_map<ProjectionKey, int, ProjectionKeyHash> left_index;
  std::unordered_map<ProjectionKey, int, ProjectionKeyHash> right_index;
  for (RepairBlock& block : out.blocks) {
    const Tuple& witness = block.view.tuple(0);
    auto [it1, inserted1] = left_index.emplace(
        ProjectTuple(witness, x1), static_cast<int>(left_index.size()));
    auto [it2, inserted2] = right_index.emplace(
        ProjectTuple(witness, x2), static_cast<int>(right_index.size()));
    block.left = it1->second;
    block.right = it2->second;
  }
  out.num_left = static_cast<int>(left_index.size());
  out.num_right = static_cast<int>(right_index.size());
  return out;
}

void PartitionSpanByAttrs(RowSpan span, AttrSet attrs, GroupScratch* scratch,
                          std::vector<int>* group_ends) {
  scratch->GroupInPlace(span, attrs, group_ends);
}

void BaseBlockIndex::Add(const std::vector<TupleId>& ids) {
  const int block = num_blocks();
  blocks_.push_back(&ids);
  if (!ids.empty()) block_of_first_id_.emplace(ids.front(), block);
}

int BaseBlockIndex::Match(const TupleId* ids, int n) const {
  if (n == 0) return -1;
  auto it = block_of_first_id_.find(ids[0]);
  if (it == block_of_first_id_.end()) return -1;
  const std::vector<TupleId>& base = *blocks_[it->second];
  if (static_cast<int>(base.size()) != n) return -1;
  if (!std::equal(base.begin(), base.end(), ids)) return -1;
  return it->second;
}

void PartitionSpanForMarriage(RowSpan span, AttrSet x1, AttrSet x2,
                              GroupScratch* scratch,
                              std::vector<int>* group_ends,
                              std::vector<int>* left, std::vector<int>* right,
                              int* num_left, int* num_right) {
  scratch->GroupInPlace(span, x1.Union(x2), group_ends);
  *num_left = scratch->AssignDistinctIndices(span, *group_ends, x1, left);
  *num_right = scratch->AssignDistinctIndices(span, *group_ends, x2, right);
}

}  // namespace fdrepair
