#include "engine/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace fdrepair {
namespace {

// Which pool (if any) owns the current thread, and its worker slot. Lets
// Submit target the calling worker's own deque and lets RunOneTask pop
// LIFO from it.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    // Pair the flag write with the workers' predicate check.
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  // Workers drain every queued task before exiting, so nothing leaks.
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  int target = (tls_pool == this && tls_index >= 0)
                   ? tls_index
                   : static_cast<int>(submit_cursor_.fetch_add(
                         1, std::memory_order_relaxed)) %
                         num_threads();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopTask(int self, std::function<void()>* task) {
  const int n = num_threads();
  auto take = [&](Queue& queue, bool lifo) {
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.tasks.empty()) return false;
    if (lifo) {
      *task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {
      *task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  };
  // Own deque first, newest task (LIFO keeps the working set warm).
  if (self >= 0 && take(*queues_[self], /*lifo=*/true)) return true;
  // Steal the oldest task from some other deque (FIFO takes the biggest
  // remaining subtree off a busy worker).
  const int start = self >= 0 ? self : 0;
  for (int k = 1; k <= n; ++k) {
    if (take(*queues_[(start + k) % n], /*lifo=*/false)) return true;
  }
  return false;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  const int self = (tls_pool == this) ? tls_index : -1;
  if (!PopTask(self, &task)) return false;
  task();
  return true;
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_index = self;
  std::function<void()> task;
  while (true) {
    if (PopTask(self, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) <= 0) {
      return;
    }
  }
}

bool ThreadPool::ClaimIndices(const std::shared_ptr<ForState>& state) {
  bool finished_last = false;
  while (true) {
    const int i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) break;
    state->body(i);
    const int done = state->done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == state->n) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
      }
      state->cv.notify_all();
      finished_last = true;
    }
  }
  return finished_last;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (n == 1 || num_threads() <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->body = body;  // copied: late stealers touch state after we return
  state->n = n;
  const int spawn = std::min(num_threads(), n - 1);
  for (int s = 0; s < spawn; ++s) {
    Submit([state] { ClaimIndices(state); });
  }
  ClaimIndices(state);
  // Our indices are claimed but stragglers may still be running theirs;
  // help with unrelated queued work instead of blocking a core.
  while (state->done.load(std::memory_order_acquire) < n) {
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return state->done.load(std::memory_order_acquire) >= n;
    });
  }
}

}  // namespace fdrepair
