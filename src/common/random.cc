#include "common/random.h"

#include "common/status.h"

namespace fdrepair {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  FDR_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FDR_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::UniformIndex(size_t size) {
  FDR_CHECK(size > 0);
  return static_cast<size_t>(UniformUint64(size));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace fdrepair
