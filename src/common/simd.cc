#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#if FDREPAIR_SIMD_AVX2_KERNELS
#include <immintrin.h>
#endif

namespace fdrepair {
namespace simd {
namespace {

// -1 = automatic; otherwise a pinned SimdMode.
std::atomic<int> forced_mode{-1};

bool EnvForcesScalar() {
  const char* env = std::getenv("FDREPAIR_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
         std::strcmp(env, "scalar") == 0 || std::strcmp(env, "0") == 0;
}

SimdMode AutoSimdMode() {
  // Decided once: the environment and the CPU do not change mid-process.
  static const SimdMode mode = []() {
    if (!FDREPAIR_SIMD_AVX2_KERNELS || EnvForcesScalar() ||
        !CpuSupportsAvx2()) {
      return SimdMode::kScalar;
    }
    return SimdMode::kAvx2;
  }();
  return mode;
}

int32_t GatherWithMaxScalar(const int32_t* column, const int* rows, int n,
                            int32_t* out) {
  int32_t max_value = std::numeric_limits<int32_t>::min();
  for (int i = 0; i < n; ++i) {
    const int32_t v = column[rows[i]];
    out[i] = v;
    if (v > max_value) max_value = v;
  }
  return max_value;
}

void GatherPackPairsScalar(const int32_t* c1, const int32_t* c2,
                           const int* rows, int n, uint64_t* out) {
  for (int i = 0; i < n; ++i) {
    const int row = rows[i];
    out[i] = PackPair(c1[row], c2[row]);
  }
}

#if FDREPAIR_SIMD_AVX2_KERNELS

__attribute__((target("avx2"))) int32_t GatherWithMaxAvx2(
    const int32_t* column, const int* rows, int n, int32_t* out) {
  __m256i max8 = _mm256_set1_epi32(std::numeric_limits<int32_t>::min());
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i vals = _mm256_i32gather_epi32(column, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
    max8 = _mm256_max_epi32(max8, vals);
  }
  __m128i max4 = _mm_max_epi32(_mm256_castsi256_si128(max8),
                               _mm256_extracti128_si256(max8, 1));
  max4 = _mm_max_epi32(max4, _mm_shuffle_epi32(max4, _MM_SHUFFLE(1, 0, 3, 2)));
  max4 = _mm_max_epi32(max4, _mm_shuffle_epi32(max4, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t max_value = _mm_cvtsi128_si32(max4);
  for (; i < n; ++i) {
    const int32_t v = column[rows[i]];
    out[i] = v;
    if (v > max_value) max_value = v;
  }
  return max_value;
}

__attribute__((target("avx2"))) void GatherPackPairsAvx2(
    const int32_t* c1, const int32_t* c2, const int* rows, int n,
    uint64_t* out) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i hi = _mm256_i32gather_epi32(c1, idx, 4);  // key bits 63..32
    const __m256i lo = _mm256_i32gather_epi32(c2, idx, 4);  // key bits 31..0
    // Interleave 32-bit lanes into 64-bit keys. unpacklo/unpackhi work per
    // 128-bit half, yielding keys {0,1,4,5} and {2,3,6,7}; the two
    // permute2x128 restore key order 0..7 across the stores.
    const __m256i keys_0145 = _mm256_unpacklo_epi32(lo, hi);
    const __m256i keys_2367 = _mm256_unpackhi_epi32(lo, hi);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_permute2x128_si256(keys_0145, keys_2367, 0x20));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i + 4),
        _mm256_permute2x128_si256(keys_0145, keys_2367, 0x31));
  }
  for (; i < n; ++i) {
    const int row = rows[i];
    out[i] = PackPair(c1[row], c2[row]);
  }
}

#endif  // FDREPAIR_SIMD_AVX2_KERNELS

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdMode ActiveSimdMode() {
  const int forced = forced_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdMode>(forced);
  return AutoSimdMode();
}

void ForceSimdMode(SimdMode mode) {
  if (mode == SimdMode::kAvx2 &&
      (!FDREPAIR_SIMD_AVX2_KERNELS || !CpuSupportsAvx2())) {
    // Cannot honor an AVX2 pin without the kernels; stay scalar.
    mode = SimdMode::kScalar;
  }
  forced_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ClearForcedSimdMode() {
  forced_mode.store(-1, std::memory_order_relaxed);
}

const char* SimdModeName(SimdMode mode) {
  return mode == SimdMode::kAvx2 ? "avx2" : "scalar";
}

int32_t GatherWithMax(const int32_t* column, const int* rows, int n,
                      int32_t* out) {
#if FDREPAIR_SIMD_AVX2_KERNELS
  if (ActiveSimdMode() == SimdMode::kAvx2) {
    return GatherWithMaxAvx2(column, rows, n, out);
  }
#endif
  return GatherWithMaxScalar(column, rows, n, out);
}

void GatherPackPairs(const int32_t* c1, const int32_t* c2, const int* rows,
                     int n, uint64_t* out) {
#if FDREPAIR_SIMD_AVX2_KERNELS
  if (ActiveSimdMode() == SimdMode::kAvx2) {
    GatherPackPairsAvx2(c1, c2, rows, n, out);
    return;
  }
#endif
  GatherPackPairsScalar(c1, c2, rows, n, out);
}

}  // namespace simd
}  // namespace fdrepair
