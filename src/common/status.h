// Status / StatusOr: exception-free error propagation in the style of
// Arrow and RocksDB. Every fallible public API in fdrepair returns one of
// these; internal invariant violations use the FDR_CHECK macros instead.

#ifndef FDREPAIR_COMMON_STATUS_H_
#define FDREPAIR_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace fdrepair {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  /// The caller passed something malformed (bad FD string, unknown attribute,
  /// mismatched schema, non-positive weight, ...).
  kInvalidArgument = 1,
  /// The request is well-formed but this build cannot honor it
  /// (e.g. more than kMaxAttributes attributes).
  kNotSupported = 2,
  /// An instance-size guard tripped (exact solvers on oversized inputs).
  kResourceExhausted = 3,
  /// The algorithm's precondition on the FD set does not hold
  /// (e.g. OptSRepair on a set that fails the dichotomy test).
  kFailedPrecondition = 4,
  /// A named entity was not found (attribute, tuple identifier, file).
  kNotFound = 5,
  /// I/O failure while reading or writing tables.
  kIoError = 6,
  /// Internal invariant violation that was recoverable enough to report.
  kInternal = 7,
  /// A per-job deadline expired before the computation finished (the
  /// RepairEngine's cooperative cancellation; partial work is discarded).
  kDeadlineExceeded = 8,
  /// The server is over capacity right now; the request was rejected at
  /// admission instead of queueing unboundedly. Retrying later may succeed.
  kUnavailable = 9,
};

/// Returns the canonical lowercase name of a code ("ok", "invalid-argument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result without a payload.
///
/// Cheap to copy in the success case (single enum); error messages are
/// heap-allocated only on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T or a failure Status. Modeled on arrow::Result /
/// absl::StatusOr; the subset used by this codebase.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `return table;`.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status: `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors abort on misuse (accessing the value of an error result);
  /// call sites must test ok() first, as enforced in tests.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::cerr << "FATAL: StatusOr value access on error status: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Prints `msg` with source location and aborts. Used by the check macros.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);
}  // namespace internal

}  // namespace fdrepair

/// Aborts with a diagnostic when `cond` is false. Enabled in all build types:
/// repair algorithms are correctness-critical and the cost of the checks is
/// negligible next to the combinatorial work they guard.
#define FDR_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::fdrepair::internal::CheckFailed(__FILE__, __LINE__,                 \
                                        "FDR_CHECK failed: " #cond);        \
    }                                                                       \
  } while (0)

/// FDR_CHECK with a streamed explanation: FDR_CHECK_MSG(x > 0, "x=" << x).
#define FDR_CHECK_MSG(cond, stream_expr)                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream fdr_check_oss_;                                    \
      fdr_check_oss_ << "FDR_CHECK failed: " #cond ": " << stream_expr;     \
      ::fdrepair::internal::CheckFailed(__FILE__, __LINE__,                 \
                                        fdr_check_oss_.str());              \
    }                                                                       \
  } while (0)

/// Debug-only variants, compiled out under NDEBUG. For checks that sit on a
/// per-row hot path (e.g. view bounds validation, which runs once per block
/// per recursion level in OptSRepair): the invariant is still exercised by
/// every debug and sanitizer build, but release builds pay nothing.
#ifdef NDEBUG
#define FDR_DCHECK(cond) \
  do {                   \
  } while (0)
#define FDR_DCHECK_MSG(cond, stream_expr) \
  do {                                    \
  } while (0)
#else
#define FDR_DCHECK(cond) FDR_CHECK(cond)
#define FDR_DCHECK_MSG(cond, stream_expr) FDR_CHECK_MSG(cond, stream_expr)
#endif

/// Propagates an error Status from the current function.
#define FDR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::fdrepair::Status fdr_status_ = (expr);       \
    if (!fdr_status_.ok()) return fdr_status_;     \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binds the value:
///   FDR_ASSIGN_OR_RETURN(auto table, Table::FromCsv(...));
#define FDR_ASSIGN_OR_RETURN(decl, expr)                        \
  auto FDR_CONCAT_(fdr_sor_, __LINE__) = (expr);                \
  if (!FDR_CONCAT_(fdr_sor_, __LINE__).ok())                    \
    return FDR_CONCAT_(fdr_sor_, __LINE__).status();            \
  decl = std::move(FDR_CONCAT_(fdr_sor_, __LINE__)).value()

#define FDR_CONCAT_INNER_(a, b) a##b
#define FDR_CONCAT_(a, b) FDR_CONCAT_INNER_(a, b)

#endif  // FDREPAIR_COMMON_STATUS_H_
