// Small string utilities shared across the library: splitting, joining,
// trimming and printf-free numeric formatting. Kept dependency-free.

#ifndef FDREPAIR_COMMON_STRINGS_H_
#define FDREPAIR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fdrepair {

/// Splits `text` on `sep`, optionally keeping empty fields.
/// Split("a,,b", ',') == {"a", "", "b"}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace; never yields empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `text` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a double with up to `precision` significant digits, trimming
/// trailing zeros ("2", "2.5", "0.0312"). Used by report printers.
std::string FormatDouble(double value, int precision = 6);

}  // namespace fdrepair

#endif  // FDREPAIR_COMMON_STRINGS_H_
