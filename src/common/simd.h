// SIMD kernels for the columnar grouping hot path.
//
// The OptSRepair recursion (and everything else built on GroupScratch)
// spends its time sweeping one attribute's ValueIds for a window of rows.
// With the column store (storage/table.h) those sweeps are gathers from one
// contiguous int32 array, which AVX2 turns into 8-lane vpgatherdd loops.
// This header is the single dispatch point:
//
//   - compile-time gate: the FDREPAIR_SIMD CMake option (default ON)
//     defines FDREPAIR_SIMD_DISABLED when OFF, compiling the AVX2 kernels
//     out entirely — the portable scalar loops are all that remains;
//   - runtime gate: even when compiled in, the AVX2 kernels only run when
//     the CPU reports AVX2 support AND the FDREPAIR_SIMD environment
//     variable does not force the scalar path ("off"/"scalar"/"0");
//   - test/bench override: ForceSimdMode pins one path for A/B timing and
//     for the bit-identity property tests.
//
// Every kernel is pure integer arithmetic, so the AVX2 and scalar paths
// produce bit-identical outputs by construction; tests/simd_test.cc and the
// grouping oracle in tests/row_span_test.cc pin that, and bench_hotpath
// FDR_CHECKs full repair outputs across dispatch modes.
//
// The AVX2 bodies carry __attribute__((target("avx2"))), so no global
// -mavx2 flag is needed: default builds include both paths and choose at
// runtime. (Building with -mavx2 anyway is fine and exercises the
// compile-time side of the dispatch; CI's simd-matrix leg does both.)

#ifndef FDREPAIR_COMMON_SIMD_H_
#define FDREPAIR_COMMON_SIMD_H_

#include <cstdint>

// The AVX2 kernels are available when the build did not disable them, the
// target is x86-64, and the compiler understands the target attribute
// (GCC/Clang — the only compilers the build configures flags for).
#if !defined(FDREPAIR_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FDREPAIR_SIMD_AVX2_KERNELS 1
#else
#define FDREPAIR_SIMD_AVX2_KERNELS 0
#endif

namespace fdrepair {
namespace simd {

enum class SimdMode {
  kScalar,
  kAvx2,
};

/// True iff the running CPU supports AVX2 (independent of build flags).
bool CpuSupportsAvx2();

/// The mode the kernels below actually dispatch to: kAvx2 iff the kernels
/// were compiled in, the CPU supports them, and neither ForceSimdMode nor
/// the FDREPAIR_SIMD environment variable ("off"/"scalar"/"0") pinned the
/// scalar path. The environment decision is made once and cached.
SimdMode ActiveSimdMode();

/// Pins dispatch for tests/benches (kScalar is always honored; kAvx2 only
/// when compiled in and CPU-supported). Not thread-safe against concurrent
/// kernel calls — flip only from single-threaded test/bench setup code.
void ForceSimdMode(SimdMode mode);
/// Returns dispatch to the automatic (CPU + environment) decision.
void ClearForcedSimdMode();

const char* SimdModeName(SimdMode mode);

/// out[i] = column[rows[i]] for i in [0, n); returns the maximum gathered
/// value (INT32_MIN when n == 0). The gather and the max are fused so the
/// single-attribute grouping path reads the column exactly once.
int32_t GatherWithMax(const int32_t* column, const int* rows, int n,
                      int32_t* out);

/// The packed two-attribute grouping key: v1 in the high 32 bits. The ONE
/// definition of the packing — the scalar kernel, the AVX2 tail loop and
/// the fused small-window grouping path all call this, so the
/// scalar/AVX2/fused bit-identity contract cannot drift.
inline uint64_t PackPair(int32_t v1, int32_t v2) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(v1)) << 32) |
         static_cast<uint32_t>(v2);
}

/// out[i] = PackPair(c1[rows[i]], c2[rows[i]]): the packed two-attribute
/// grouping key, 8 rows per AVX2 iteration.
void GatherPackPairs(const int32_t* c1, const int32_t* c2, const int* rows,
                     int n, uint64_t* out);

}  // namespace simd
}  // namespace fdrepair

#endif  // FDREPAIR_COMMON_SIMD_H_
