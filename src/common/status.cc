#include "common/status.h"

namespace fdrepair {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotSupported:
      return "not-supported";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::cerr << file << ":" << line << ": " << msg << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace fdrepair
