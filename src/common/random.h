// Deterministic pseudo-random number generation for workload generators,
// property tests and benches. A fixed, self-contained generator (SplitMix64
// seeding a xoshiro256**) keeps every experiment reproducible across
// platforms and standard-library versions, unlike std::mt19937 distributions
// whose outputs are implementation-defined.

#ifndef FDREPAIR_COMMON_RANDOM_H_
#define FDREPAIR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fdrepair {

/// A small, fast, reproducible PRNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed; equal seeds give equal streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be positive.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t UniformIndex(size_t size);

  /// Derives an independent child generator; used to give each generated
  /// instance in a sweep its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace fdrepair

#endif  // FDREPAIR_COMMON_RANDOM_H_
