#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace fdrepair {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return std::string(buf);
}

}  // namespace fdrepair
