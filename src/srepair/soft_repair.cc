#include "srepair/soft_repair.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "srepair/solver_backend.h"
#include "storage/distance.h"

namespace fdrepair {
namespace {

constexpr double kEps = 1e-9;
/// Auto-routed "ilp" cores self-limit exactly like the hard planner's
/// kAuto fallback (planner.cc): structured instances prove optimality in
/// tens of nodes; dense ones degrade to the factor-3 incumbent.
constexpr long kAutoSoftNodeBudget = 2000;

/// Accumulated provenance across the peel recursion.
struct SoftAggregate {
  double lower_bound = 0;
  bool optimal = true;
  double ratio_bound = 1.0;
  int peels = 0;
  int cores = 0;
  std::vector<std::string> backends;  // unique, in first-use order

  void NoteBackend(const std::string& name) {
    for (const std::string& seen : backends) {
      if (seen == name) return;
    }
    backends.push_back(name);
  }
};

/// One violating pair's accumulated price: hard if any hard FD fires on
/// it (deletion is then forced, so soft penalties on the same pair are
/// moot), otherwise the soft weights add.
struct PairInfo {
  double penalty = 0;
  bool hard = false;
};

/// Enumerates every violating pair of `fds` within the view, keyed by
/// view-local (i, j) with i < j. std::map iteration order makes the core
/// graph construction deterministic.
std::map<std::pair<int, int>, PairInfo> CollectViolatingPairs(
    const FdSet& fds, const TableView& view) {
  std::map<std::pair<int, int>, PairInfo> pairs;
  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    GroupedRows groups = view.GroupRows(fd.lhs);
    // GroupRows returns *dense* positions; remap to view-local indices.
    std::unordered_map<int, int> local;
    local.reserve(view.num_tuples());
    for (int i = 0; i < view.num_tuples(); ++i) local[view.row(i)] = i;
    for (const std::vector<int>& group : groups.rows) {
      for (size_t a = 0; a < group.size(); ++a) {
        for (size_t b = a + 1; b < group.size(); ++b) {
          const int ia = local[group[a]];
          const int ib = local[group[b]];
          if (view.table().value(group[a], fd.rhs) ==
              view.table().value(group[b], fd.rhs)) {
            continue;
          }
          auto key = std::minmax(ia, ib);
          PairInfo& info = pairs[{key.first, key.second}];
          if (fd.IsHard()) {
            info.hard = true;
          } else {
            info.penalty += fd.weight;
          }
        }
      }
    }
  }
  return pairs;
}

struct BlockSolve {
  std::vector<int> kept;  // dense row positions, ascending
};

Status SolveSoftView(const FdSet& fds, const TableView& view,
                     const SoftRepairOptions& options, SoftAggregate* agg,
                     BlockSolve* out);

/// The soft conflicted core: solve the pair instance with a registry
/// backend and complement back to kept rows.
Status SolveSoftCore(const FdSet& fds, const TableView& view,
                     const SoftRepairOptions& options, SoftAggregate* agg,
                     BlockSolve* out) {
  std::map<std::pair<int, int>, PairInfo> pairs =
      CollectViolatingPairs(fds, view);
  if (pairs.empty()) {
    out->kept = view.rows();
    std::sort(out->kept.begin(), out->kept.end());
    return Status::OK();
  }
  ++agg->cores;
  // Conflicted core: only nodes with at least one violating pair matter;
  // isolated tuples are always kept for free.
  std::vector<int> core;
  std::vector<int> core_index(view.num_tuples(), -1);
  for (const auto& [key, info] : pairs) {
    for (int node : {key.first, key.second}) {
      if (core_index[node] < 0) {
        core_index[node] = static_cast<int>(core.size());
        core.push_back(node);
      }
    }
  }
  NodeWeightedGraph graph(static_cast<int>(core.size()));
  for (size_t c = 0; c < core.size(); ++c) {
    graph.set_weight(static_cast<int>(c), view.weight(core[c]));
  }
  std::vector<double> penalties;
  penalties.reserve(pairs.size());
  for (const auto& [key, info] : pairs) {
    graph.AddEdge(core_index[key.first], core_index[key.second]);
    penalties.push_back(info.hard ? kHardFdWeight : info.penalty);
  }

  const SolverBackend* backend = nullptr;
  SolverExec exec;
  exec.deadline = options.exec.deadline;
  exec.node_budget = options.node_budget;
  if (!options.backend.empty()) {
    backend = FindSolverBackend(options.backend);
    if (backend == nullptr) {
      return Status::InvalidArgument("unknown solver backend '" +
                                     options.backend + "'");
    }
  } else if (static_cast<int>(core.size()) <= options.exact_guard) {
    backend = FindSolverBackend(kSolverBnb);
  } else {
    backend = FindSolverBackend(kSolverIlp);
    if (options.node_budget < 0) exec.node_budget = kAutoSoftNodeBudget;
  }
  FDR_CHECK(backend != nullptr);
  FDR_ASSIGN_OR_RETURN(SolverCover cover,
                       backend->SolveSoftCover(graph, penalties, exec));
  agg->NoteBackend(backend->name());
  agg->lower_bound += cover.lower_bound;
  agg->optimal = agg->optimal && cover.optimal;
  agg->ratio_bound = std::max(agg->ratio_bound, cover.ratio_bound);

  std::vector<char> deleted(view.num_tuples(), 0);
  for (int c : cover.cover) deleted[core[c]] = 1;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!deleted[i]) out->kept.push_back(view.row(i));
  }
  std::sort(out->kept.begin(), out->kept.end());
  return Status::OK();
}

Status SolveSoftView(const FdSet& fds, const TableView& view,
                     const SoftRepairOptions& options, SoftAggregate* agg,
                     BlockSolve* out) {
  if (options.exec.has_deadline() &&
      std::chrono::steady_clock::now() >= options.exec.deadline) {
    return Status::DeadlineExceeded("soft-repair deadline expired");
  }
  const FdSet active = fds.WithoutTrivial();
  if (active.empty() || view.num_tuples() <= 1) {
    out->kept = view.rows();
    std::sort(out->kept.begin(), out->kept.end());
    return Status::OK();
  }
  // The weighted common-lhs simplification: an attribute in EVERY lhs
  // (hard and soft alike) makes σ_{A=a} blocks independent even for the
  // soft objective — any violating pair agrees on the block attribute.
  if (std::optional<AttrId> attr = active.FindCommonLhsAttr()) {
    ++agg->peels;
    const FdSet reduced = active.MinusAttrs(AttrSet().With(*attr));
    for (const TableView& block : view.GroupBy(AttrSet().With(*attr))) {
      BlockSolve block_solve;
      FDR_RETURN_IF_ERROR(
          SolveSoftView(reduced, block, options, agg, &block_solve));
      out->kept.insert(out->kept.end(), block_solve.kept.begin(),
                       block_solve.kept.end());
    }
    std::sort(out->kept.begin(), out->kept.end());
    return Status::OK();
  }
  return SolveSoftCore(active, view, options, agg, out);
}

}  // namespace

double SoftViolationCost(const FdSet& fds, const TableView& view) {
  double cost = 0;
  for (const Fd& fd : fds.fds()) {
    if (!fd.IsSoft() || fd.IsTrivial()) continue;
    GroupedRows groups = view.GroupRows(fd.lhs);
    for (const std::vector<int>& group : groups.rows) {
      // Violating pairs = C(g, 2) − Σ_value C(c_value, 2).
      const double g = static_cast<double>(group.size());
      double same = 0;
      std::unordered_map<ValueId, double> counts;
      for (int row : group) {
        counts[view.table().value(row, fd.rhs)] += 1;
      }
      for (const auto& [value, c] : counts) same += c * (c - 1) / 2;
      cost += fd.weight * (g * (g - 1) / 2 - same);
    }
  }
  return cost;
}

StatusOr<SoftRepairResult> ComputeSoftRepair(const FdSet& fds,
                                             const Table& table,
                                             const SoftRepairOptions& options) {
  if (!fds.HasSoftFds()) {
    // ω ≡ ∞: soft repairing IS subset repairing. Delegating wholesale —
    // same routing, same span recursion, same backends, same thread
    // fan-out — is what makes the pin bit-identical by construction.
    SRepairOptions sub;
    sub.strategy = SRepairStrategy::kAuto;
    sub.backend = options.backend;
    sub.exact_guard = options.exact_guard;
    sub.node_budget = options.node_budget;
    sub.max_ratio = options.max_ratio;
    sub.exec = options.exec;
    FDR_ASSIGN_OR_RETURN(SRepairResult result,
                         ComputeSRepair(fds, table, sub));
    SoftRepairResult out{std::move(result.repair)};
    out.cost = result.distance;
    out.deleted_weight = result.distance;
    out.violation_cost = 0;
    out.optimal = result.optimal;
    out.ratio_bound = result.ratio_bound;
    out.route =
        std::string("soft[") + SRepairAlgorithmToString(result.algorithm) +
        "]";
    out.backend = result.backend;
    out.lower_bound = result.lower_bound;
    out.achieved_ratio = result.achieved_ratio;
    return out;
  }

  const TableView view(table);
  SoftAggregate agg;
  BlockSolve solve;
  FDR_RETURN_IF_ERROR(SolveSoftView(fds, view, options, &agg, &solve));

  SoftRepairResult out{table.SubsetByRows(solve.kept)};
  FDR_ASSIGN_OR_RETURN(out.deleted_weight, DistSub(out.repair, table));
  out.violation_cost = SoftViolationCost(fds, TableView(out.repair));
  out.cost = out.deleted_weight + out.violation_cost;
  out.optimal = agg.optimal;
  out.ratio_bound = agg.optimal ? 1.0 : agg.ratio_bound;
  const double proved = agg.optimal ? out.cost : agg.lower_bound;
  out.lower_bound = proved;
  out.achieved_ratio =
      proved > kEps ? std::max(1.0, out.cost / proved) : 1.0;
  {
    std::ostringstream route;
    route << "soft[peels=" << agg.peels << ",cores=" << agg.cores << "]";
    out.route = route.str();
  }
  for (const std::string& name : agg.backends) {
    if (!out.backend.empty()) out.backend += "+";
    out.backend += name;
  }
  if (options.max_ratio > 0) {
    const double certified = std::min(out.ratio_bound, out.achieved_ratio);
    if (certified > options.max_ratio + kEps) {
      return Status::ResourceExhausted(
          "repair certified only within ratio " + std::to_string(certified) +
          ", above the requested max_ratio " +
          std::to_string(options.max_ratio));
    }
  }
  return out;
}

}  // namespace fdrepair
