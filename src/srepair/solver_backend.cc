#include "srepair/solver_backend.h"

#include <mutex>
#include <utility>

#include "catalog/fd.h"
#include "graph/vc_lp.h"
#include "graph/vertex_cover.h"
#include "srepair/soft_cover.h"
#include "srepair/srepair_vc_approx.h"

namespace fdrepair {
namespace {

constexpr double kEps = 1e-12;

SolverCover FromSoftResult(SoftCoverResult result) {
  SolverCover out;
  out.cover = std::move(result.cover);
  out.weight = result.node_weight;
  out.penalty = result.penalty;
  out.lower_bound = result.lower_bound;
  out.optimal = result.optimal;
  out.ratio_bound = result.ratio_bound;
  out.nodes = result.nodes;
  return out;
}

/// "local-ratio": Bar-Yehuda–Even on the explicit graph, or — preferred by
/// the planner — the fused table-level route that never materializes the
/// Θ(n²) edge set. Both report the local-ratio burn (a feasible edge
/// packing) as the proved lower bound.
class LocalRatioBackend : public SolverBackend {
 public:
  const char* name() const override { return kSolverLocalRatio; }
  bool exact() const override { return false; }

  StatusOr<SolverCover> SolveCover(const NodeWeightedGraph& graph,
                                   const SolverExec& exec) const override {
    (void)exec;  // one O(n + m) pass; nothing to interrupt
    std::vector<int> order(graph.num_edges());
    for (int i = 0; i < graph.num_edges(); ++i) order[i] = i;
    SolverCover out;
    out.cover = VertexCoverLocalRatio(graph, order, &out.lower_bound);
    out.weight = graph.WeightOf(out.cover);
    out.optimal = out.weight <= out.lower_bound + kEps;
    out.ratio_bound = out.optimal ? 1.0 : 2.0;
    return out;
  }

  bool soft_capable() const override { return true; }

  StatusOr<SolverCover> SolveSoftCover(
      const NodeWeightedGraph& graph, const std::vector<double>& penalties,
      const SolverExec& exec) const override {
    (void)exec;  // one pass; nothing to interrupt
    return FromSoftResult(SoftCoverLocalRatio(graph, penalties));
  }

  bool has_fused_rows() const override { return true; }

  StatusOr<std::vector<int>> SolveRowsFused(
      const FdSet& fds, const TableView& view, const SolverExec& exec,
      double* lower_bound) const override {
    (void)exec;
    return SRepairVcApproxRows(fds, view, lower_bound);
  }
};

/// "bnb": the classic prune-on-weight branch and bound, now cooperative.
/// Exact when it completes; on deadline/budget expiry it returns the
/// incumbent with the root dual-ascent packing as the proved lower bound.
class BnbBackend : public SolverBackend {
 public:
  const char* name() const override { return kSolverBnb; }
  bool exact() const override { return true; }

  StatusOr<SolverCover> SolveCover(const NodeWeightedGraph& graph,
                                   const SolverExec& exec) const override {
    VcSearchLimits limits;
    limits.deadline = exec.deadline;
    limits.node_budget = exec.node_budget;
    VcSearchResult search = MinWeightVertexCoverBnb(graph, limits);
    SolverCover out;
    out.cover = std::move(search.cover);
    out.weight = search.weight;
    out.nodes = search.nodes;
    out.optimal = search.optimal;
    if (search.optimal) {
      out.lower_bound = search.weight;
      out.ratio_bound = 1.0;
    } else {
      out.lower_bound = VcDualAscentBound(graph);
      // The incumbent may be far from optimal (it starts at the trivial
      // cover); the only proved guarantee is weight / lower_bound.
      out.ratio_bound = out.lower_bound > kEps && out.weight > kEps
                            ? out.weight / out.lower_bound
                            : 1.0;
    }
    return out;
  }

  bool soft_capable() const override { return true; }

  StatusOr<SolverCover> SolveSoftCover(
      const NodeWeightedGraph& graph, const std::vector<double>& penalties,
      const SolverExec& exec) const override {
    return FromSoftResult(SoftCoverBranchAndBound(graph, penalties, exec,
                                                  /*use_lp_bound=*/false));
  }
};

struct Registry {
  std::mutex mu;
  /// Owned backends in registration order; in-tree ones first.
  std::vector<std::unique_ptr<SolverBackend>> backends;
};

Registry& GetRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->backends.push_back(std::make_unique<LocalRatioBackend>());
    r->backends.push_back(std::make_unique<BnbBackend>());
    r->backends.push_back(MakeIlpBnbBackend());
    r->backends.push_back(MakeLpRoundingBackend());
    return r;
  }();
  return *registry;
}

}  // namespace

StatusOr<SolverCover> SolverBackend::SolveSoftCover(
    const NodeWeightedGraph& graph, const std::vector<double>& penalties,
    const SolverExec& exec) const {
  for (double penalty : penalties) {
    if (penalty != kHardFdWeight) {
      return Status::InvalidArgument(
          std::string("solver backend '") + name() +
          "' cannot solve soft-cover instances (finite edge penalties)");
    }
  }
  // All penalties infinite: the instance IS plain vertex cover.
  return SolveCover(graph, exec);
}

StatusOr<std::vector<int>> SolverBackend::SolveRowsFused(
    const FdSet& fds, const TableView& view, const SolverExec& exec,
    double* lower_bound) const {
  (void)fds;
  (void)view;
  (void)exec;
  (void)lower_bound;
  return Status::Internal(std::string("backend ") + name() +
                          " has no fused table-level route");
}

const SolverBackend* FindSolverBackend(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  // Later registrations win, so externally-registered overrides shadow the
  // in-tree backend of the same name.
  for (auto it = registry.backends.rbegin(); it != registry.backends.rend();
       ++it) {
    if (name == (*it)->name()) return it->get();
  }
  return nullptr;
}

std::vector<const SolverBackend*> AllSolverBackends() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<const SolverBackend*> out;
  out.reserve(registry.backends.size());
  for (const auto& backend : registry.backends) out.push_back(backend.get());
  return out;
}

void RegisterSolverBackend(std::unique_ptr<SolverBackend> backend) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.backends.push_back(std::move(backend));
}

}  // namespace fdrepair
