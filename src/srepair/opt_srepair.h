// OptSRepair (Algorithm 1): the polynomial-time optimal subset repair for
// every FD set on the tractable side of the Theorem 3.4 dichotomy.
//
// The algorithm repeatedly simplifies (∆, T):
//   - trivial ∆: T itself is the optimal S-repair;
//   - common lhs A: solve each σ_{A=a}T under ∆ − A and union
//     (Subroutine 1, CommonLHSRep);
//   - consensus FD ∅ → A: solve each σ_{A=a}T under ∆ − A and keep the
//     heaviest (Subroutine 2, ConsensusRep);
//   - lhs marriage (X1, X2): solve every block σ_{X1=a1,X2=a2}T under
//     ∆ − X1X2, then pick blocks by a maximum-weight bipartite matching
//     between π_X1 T and π_X2 T (Subroutine 3, MarriageRep);
//   - otherwise fail (the problem is APX-complete; Theorem 3.4).
//
// Weighted tuples and duplicates are fully supported (Theorem 3.2).
//
// Every simplification step decomposes the instance into independent
// blocks; OptSRepairExec lets callers run those blocks on a ThreadPool.
// Results are bit-identical for every thread count: blocks are solved into
// block-local accumulators and merged in first-appearance block order, so
// the reduction — including floating-point weight summation — follows the
// same expression tree whether blocks run sequentially or concurrently.
//
// The recursion runs on the zero-allocation span core (storage/row_span.h):
// one shared row-index buffer is permuted in place per level, blocks are
// (begin, end) windows of it (disjoint, so concurrent blocks never touch
// the same element), grouping is a stable counting scatter over interned
// ValueIds, the simplification chain is computed once per top-level ∆
// (§3.2: it depends only on ∆, not on T) and indexed by depth, and
// per-thread scratch arenas recycle every block-local buffer. See
// bench/bench_hotpath.cc for the measured win over the materializing
// recursion it replaced.

#ifndef FDREPAIR_SREPAIR_OPT_SREPAIR_H_
#define FDREPAIR_SREPAIR_OPT_SREPAIR_H_

#include <chrono>
#include <memory>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "srepair/simplification.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

class ThreadPool;

/// How (and how long) the Algorithm-1 recursion may execute.
struct OptSRepairExec {
  /// Blocks of a simplification step run on this pool when set (and the
  /// pool has more than one thread). Null: the classic sequential path.
  ThreadPool* pool = nullptr;
  /// A step only fans its blocks out to the pool when its view still holds
  /// at least this many tuples; smaller sub-instances stay on the calling
  /// thread. Purely a performance knob — results never depend on it.
  int parallel_cutoff = 2048;
  /// Cooperative deadline, checked at every recursion node. Once passed,
  /// the recursion unwinds with kDeadlineExceeded (all in-flight blocks
  /// still run to their own deadline check; nothing is leaked).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

// Plan capture & delta splicing — incremental re-repair under mutation.
//
// The recursion's first simplification step decomposes the table into
// independent top-level σ-blocks; an edited tuple only touches the blocks
// sharing its partition-attribute values (§3.2 locality). A capturing run
// records, per top-level block, its TupleId membership sequence, the
// TupleIds it kept, and its repair weight. A later delta run re-partitions
// the *mutated* table, classifies each block clean/dirty against the
// captured plan (engine/BaseBlockIndex), re-runs the span recursion on
// dirty blocks only, and replays clean blocks' kept ids verbatim — then
// redoes the top-level merge (union / consensus argmax / marriage
// matching) over the mixed per-block results.
//
// Bit-identity of the splice with a cold full run rests on two facts:
//   1. a clean block holds the same rows, with the same content, in the
//      same relative order as its base-run counterpart (mutators preserve
//      survivor order; see storage/table.h EraseRow), so the cold
//      recursion on it would retrace the identical expression tree — the
//      captured kept set and weight double ARE the cold run's values;
//   2. the top-level merge consumes only per-block (rows, weight) results
//      in first-appearance block order, so feeding it captured values for
//      clean blocks and freshly recursed values for dirty blocks follows
//      the same reduction a cold run performs.
// Blocks are named by TupleId sequences (never ProjectionKeys or ValueIds,
// which are pool-dependent), so plans survive re-interning and compose
// across chained deltas.

/// One top-level block of a captured plan.
struct SRepairBlockRecipe {
  /// The block's membership, in block row order (the clean/dirty name).
  std::vector<TupleId> ids;
  /// The block's optimal S-repair as *positions into `ids`* rather than
  /// TupleIds: a clean block's window holds the same id sequence in the
  /// same order, so replay is a direct window lookup per position — no
  /// per-id hash resolution against the mutated table (the id form made
  /// RowOf the splice's hottest instruction).
  std::vector<int> kept_pos;
  /// The block's repair weight exactly as the recursion accumulated it;
  /// bit-exact replay of this double is what keeps consensus argmax and
  /// marriage matching identical across splices.
  double weight = 0;
};

/// The captured top-level structure of one OptSRepairRows run. Spliceable
/// only when the first chain step actually decomposed into blocks —
/// trivial ∆, single-row tables and stuck chains are not (callers fall
/// back to a full re-plan, which is cheap in exactly those cases).
struct SRepairPlanCache {
  bool spliceable = false;
  /// First chain step's kind when spliceable: kCommonLhs, kConsensus or
  /// kLhsMarriage (determines the merge the splice re-runs).
  SimplificationKind top_kind = SimplificationKind::kStuck;
  /// Top-level blocks in first-appearance partition order. Recipes are
  /// treated as immutable once a run completes and are SHARED between
  /// chained plans: a splice's refreshed plan aliases every clean block's
  /// recipe, so refresh cost scales with the dirty set rather than the
  /// table (plans live in a concurrently-read cache — never mutate a
  /// published recipe).
  std::vector<std::shared_ptr<SRepairBlockRecipe>> blocks;
};

/// Observability of one splice: how much cached work survived.
struct SRepairSpliceStats {
  int blocks_total = 0;
  int blocks_clean = 0;
  int blocks_dirty = 0;
};

/// Everything one OptSRepairRows run needs beyond (∆, view): execution
/// limits plus the optional delta-splice inputs. One struct, one entry
/// point — cold runs leave the delta fields null, delta runs point them at
/// the captured plan. (The capture *sink* stays a separate parameter: it is
/// an output, and keeping it out of the options keeps `options` const.)
struct OptSRepairRowsOptions {
  OptSRepairExec exec;
  /// Non-null: splice this plan — captured on the PRE-mutation table —
  /// instead of a cold run, re-running the recursion only on blocks
  /// dirtied by the mutation.
  const SRepairPlanCache* delta_base = nullptr;
  /// Delta runs only: tuple ids whose content changed in place
  /// (inserted/deleted rows are detected from the membership sequences
  /// themselves). Null means "no in-place edits".
  const std::vector<TupleId>* delta_updated_ids = nullptr;
  /// Delta runs only (optional): receives clean/dirty block counts.
  SRepairSpliceStats* splice_stats = nullptr;
};

/// Runs Algorithm 1 on a view; returns the dense row positions (into the
/// underlying table) of an optimal S-repair, in increasing order.
///
/// With `capture` non-null, additionally fills it with the run's top-level
/// plan (capture->spliceable tells whether it can seed a delta run). The
/// returned rows are bit-identical to a non-capturing run's — the only
/// behavioral difference is that capture runs take the general block path
/// at depth 0 where the plain run may take an all-singleton shortcut (the
/// shortcuts are themselves bit-identical to that path by design).
///
/// With options.delta_base non-null, repairs `view` (the MUTATED table) by
/// splicing the captured plan; bit-identical to a cold run on `view` for
/// every thread count, and `capture` then receives the mutated table's
/// refreshed plan (so delta runs chain).
///
/// Fails with kFailedPrecondition iff OSRSucceeds(∆) is false, or — delta
/// runs only — when the base plan is not spliceable or the table is too
/// small to splice (callers fall back to a full re-plan); fails with
/// kDeadlineExceeded when exec.deadline expires mid-run.
StatusOr<std::vector<int>> OptSRepairRows(
    const FdSet& fds, const TableView& view,
    const OptSRepairRowsOptions& options = {},
    SRepairPlanCache* capture = nullptr);

/// DEPRECATED shim — calls the canonical OptSRepairRows with {exec}.
StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec);

/// DEPRECATED shim — calls the canonical OptSRepairRows with {exec} and
/// the capture sink.
StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec,
                                          SRepairPlanCache* capture);

/// DEPRECATED shim — calls the canonical OptSRepairRows with the delta
/// fields of OptSRepairRowsOptions populated.
StatusOr<std::vector<int>> OptSRepairRowsDelta(
    const FdSet& fds, const TableView& view, const OptSRepairExec& exec,
    const SRepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    SRepairPlanCache* capture, SRepairSpliceStats* stats);

/// Convenience: materializes the optimal S-repair of `table` as a Table
/// (identifiers and weights preserved).
StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table,
                           const OptSRepairExec& exec);
StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_OPT_SREPAIR_H_
