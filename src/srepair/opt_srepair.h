// OptSRepair (Algorithm 1): the polynomial-time optimal subset repair for
// every FD set on the tractable side of the Theorem 3.4 dichotomy.
//
// The algorithm repeatedly simplifies (∆, T):
//   - trivial ∆: T itself is the optimal S-repair;
//   - common lhs A: solve each σ_{A=a}T under ∆ − A and union
//     (Subroutine 1, CommonLHSRep);
//   - consensus FD ∅ → A: solve each σ_{A=a}T under ∆ − A and keep the
//     heaviest (Subroutine 2, ConsensusRep);
//   - lhs marriage (X1, X2): solve every block σ_{X1=a1,X2=a2}T under
//     ∆ − X1X2, then pick blocks by a maximum-weight bipartite matching
//     between π_X1 T and π_X2 T (Subroutine 3, MarriageRep);
//   - otherwise fail (the problem is APX-complete; Theorem 3.4).
//
// Weighted tuples and duplicates are fully supported (Theorem 3.2).

#ifndef FDREPAIR_SREPAIR_OPT_SREPAIR_H_
#define FDREPAIR_SREPAIR_OPT_SREPAIR_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

/// Runs Algorithm 1 on a view; returns the dense row positions (into the
/// underlying table) of an optimal S-repair, in increasing order.
/// Fails with kFailedPrecondition iff OSRSucceeds(∆) is false.
StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view);

/// Convenience: materializes the optimal S-repair of `table` as a Table
/// (identifiers and weights preserved).
StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_OPT_SREPAIR_H_
