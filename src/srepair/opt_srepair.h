// OptSRepair (Algorithm 1): the polynomial-time optimal subset repair for
// every FD set on the tractable side of the Theorem 3.4 dichotomy.
//
// The algorithm repeatedly simplifies (∆, T):
//   - trivial ∆: T itself is the optimal S-repair;
//   - common lhs A: solve each σ_{A=a}T under ∆ − A and union
//     (Subroutine 1, CommonLHSRep);
//   - consensus FD ∅ → A: solve each σ_{A=a}T under ∆ − A and keep the
//     heaviest (Subroutine 2, ConsensusRep);
//   - lhs marriage (X1, X2): solve every block σ_{X1=a1,X2=a2}T under
//     ∆ − X1X2, then pick blocks by a maximum-weight bipartite matching
//     between π_X1 T and π_X2 T (Subroutine 3, MarriageRep);
//   - otherwise fail (the problem is APX-complete; Theorem 3.4).
//
// Weighted tuples and duplicates are fully supported (Theorem 3.2).
//
// Every simplification step decomposes the instance into independent
// blocks; OptSRepairExec lets callers run those blocks on a ThreadPool.
// Results are bit-identical for every thread count: blocks are solved into
// block-local accumulators and merged in first-appearance block order, so
// the reduction — including floating-point weight summation — follows the
// same expression tree whether blocks run sequentially or concurrently.
//
// The recursion runs on the zero-allocation span core (storage/row_span.h):
// one shared row-index buffer is permuted in place per level, blocks are
// (begin, end) windows of it (disjoint, so concurrent blocks never touch
// the same element), grouping is a stable counting scatter over interned
// ValueIds, the simplification chain is computed once per top-level ∆
// (§3.2: it depends only on ∆, not on T) and indexed by depth, and
// per-thread scratch arenas recycle every block-local buffer. See
// bench/bench_hotpath.cc for the measured win over the materializing
// recursion it replaced.

#ifndef FDREPAIR_SREPAIR_OPT_SREPAIR_H_
#define FDREPAIR_SREPAIR_OPT_SREPAIR_H_

#include <chrono>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

class ThreadPool;

/// How (and how long) the Algorithm-1 recursion may execute.
struct OptSRepairExec {
  /// Blocks of a simplification step run on this pool when set (and the
  /// pool has more than one thread). Null: the classic sequential path.
  ThreadPool* pool = nullptr;
  /// A step only fans its blocks out to the pool when its view still holds
  /// at least this many tuples; smaller sub-instances stay on the calling
  /// thread. Purely a performance knob — results never depend on it.
  int parallel_cutoff = 2048;
  /// Cooperative deadline, checked at every recursion node. Once passed,
  /// the recursion unwinds with kDeadlineExceeded (all in-flight blocks
  /// still run to their own deadline check; nothing is leaked).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// Runs Algorithm 1 on a view; returns the dense row positions (into the
/// underlying table) of an optimal S-repair, in increasing order.
/// Fails with kFailedPrecondition iff OSRSucceeds(∆) is false, and with
/// kDeadlineExceeded when exec.deadline expires mid-run.
StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec);

/// Sequential convenience overload (exec = {}).
StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view);

/// Convenience: materializes the optimal S-repair of `table` as a Table
/// (identifiers and weights preserved).
StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table,
                           const OptSRepairExec& exec);
StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_OPT_SREPAIR_H_
