// Exact optimal S-repair for *any* FD set.
//
// FD satisfaction is a pairwise property, so consistent subsets of T are
// exactly the independent sets of the conflict graph, and an optimal
// S-repair is the complement of a minimum-weight vertex cover (the strict
// reduction behind Proposition 3.3, run in the exact direction). On the hard
// side of the dichotomy this is inherently exponential — it serves as ground
// truth for property tests and for the approximation-ratio experiments, and
// as the exponential baseline whose blowup E2 charts against OptSRepair.

#ifndef FDREPAIR_SREPAIR_SREPAIR_EXACT_H_
#define FDREPAIR_SREPAIR_SREPAIR_EXACT_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

/// Exact optimal S-repair by branch and bound on the conflict graph.
/// Refuses instances whose conflict graph has more than `max_conflict_nodes`
/// non-isolated nodes (kResourceExhausted). Returns kept dense rows sorted.
StatusOr<std::vector<int>> OptSRepairExactRows(const FdSet& fds,
                                               const TableView& view,
                                               int max_conflict_nodes = 64);

/// Materialized wrapper.
StatusOr<Table> OptSRepairExact(const FdSet& fds, const Table& table,
                                int max_conflict_nodes = 64);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_SREPAIR_EXACT_H_
