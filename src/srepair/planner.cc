#include "srepair/planner.h"

#include <sstream>

#include "srepair/opt_srepair.h"
#include "srepair/srepair_exact.h"
#include "srepair/srepair_vc_approx.h"

namespace fdrepair {

std::string SRepairVerdict::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << trace.ToString(schema);
  if (hard_class) {
    os << "\nhard side: " << hard_class->ToString(schema);
  }
  return os.str();
}

SRepairVerdict ClassifySRepair(const FdSet& fds) {
  SRepairVerdict verdict;
  verdict.trace = RunOsrSucceeds(fds);
  verdict.polynomial = verdict.trace.succeeds;
  if (!verdict.polynomial) {
    auto classification = ClassifyNonSimplifiable(verdict.trace.stuck_fds);
    // Stuck residuals always classify (Lemma A.22); a failure here would be
    // an internal bug, surfaced loudly by tests but tolerated in release.
    if (classification.ok()) {
      verdict.hard_class = *classification;
    }
  }
  return verdict;
}

const char* SRepairAlgorithmToString(SRepairAlgorithm algorithm) {
  switch (algorithm) {
    case SRepairAlgorithm::kOptSRepair:
      return "OptSRepair";
    case SRepairAlgorithm::kExactBranchAndBound:
      return "exact-branch-and-bound";
    case SRepairAlgorithm::kVertexCover2Approx:
      return "vertex-cover-2-approx";
  }
  return "unknown";
}

StatusOr<SRepairResult> ComputeSRepair(const FdSet& fds, const Table& table,
                                       const SRepairOptions& options) {
  if (options.exec.has_deadline() &&
      std::chrono::steady_clock::now() >= options.exec.deadline) {
    return Status::DeadlineExceeded(
        "S-repair deadline expired before planning started");
  }
  SRepairVerdict verdict = ClassifySRepair(fds);

  auto finish = [&](Table repair, bool optimal, double ratio,
                    SRepairAlgorithm algorithm) -> StatusOr<SRepairResult> {
    FDR_ASSIGN_OR_RETURN(double distance, DistSub(repair, table));
    SRepairResult result{std::move(repair), distance, optimal, ratio,
                         algorithm, verdict};
    return result;
  };

  switch (options.strategy) {
    case SRepairStrategy::kApproxOnly:
      return finish(SRepairVcApprox(fds, table), false, 2.0,
                    SRepairAlgorithm::kVertexCover2Approx);
    case SRepairStrategy::kExactOnly: {
      if (verdict.polynomial) {
        FDR_ASSIGN_OR_RETURN(Table repair,
                             OptSRepair(fds, table, options.exec));
        return finish(std::move(repair), true, 1.0,
                      SRepairAlgorithm::kOptSRepair);
      }
      FDR_ASSIGN_OR_RETURN(Table repair,
                           OptSRepairExact(fds, table, options.exact_guard));
      return finish(std::move(repair), true, 1.0,
                    SRepairAlgorithm::kExactBranchAndBound);
    }
    case SRepairStrategy::kAuto: {
      if (verdict.polynomial) {
        FDR_ASSIGN_OR_RETURN(Table repair,
                             OptSRepair(fds, table, options.exec));
        return finish(std::move(repair), true, 1.0,
                      SRepairAlgorithm::kOptSRepair);
      }
      auto exact = OptSRepairExact(fds, table, options.exact_guard);
      if (exact.ok()) {
        return finish(std::move(exact).value(), true, 1.0,
                      SRepairAlgorithm::kExactBranchAndBound);
      }
      if (exact.status().code() != StatusCode::kResourceExhausted) {
        return exact.status();
      }
      return finish(SRepairVcApprox(fds, table), false, 2.0,
                    SRepairAlgorithm::kVertexCover2Approx);
    }
  }
  return Status::Internal("unreachable strategy");
}

}  // namespace fdrepair
