#include "srepair/planner.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "graph/conflict_graph.h"
#include "srepair/opt_srepair.h"
#include "srepair/solver_backend.h"
#include "srepair/srepair_vc_approx.h"

namespace fdrepair {

std::string SRepairVerdict::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << trace.ToString(schema);
  if (hard_class) {
    os << "\nhard side: " << hard_class->ToString(schema);
  }
  return os.str();
}

SRepairVerdict ClassifySRepair(const FdSet& fds) {
  SRepairVerdict verdict;
  verdict.trace = RunOsrSucceeds(fds);
  verdict.polynomial = verdict.trace.succeeds;
  if (!verdict.polynomial) {
    auto classification = ClassifyNonSimplifiable(verdict.trace.stuck_fds);
    // Stuck residuals always classify (Lemma A.22); a failure here would be
    // an internal bug, surfaced loudly by tests but tolerated in release.
    if (classification.ok()) {
      verdict.hard_class = *classification;
    }
  }
  return verdict;
}

const char* SRepairAlgorithmToString(SRepairAlgorithm algorithm) {
  switch (algorithm) {
    case SRepairAlgorithm::kOptSRepair:
      return "OptSRepair";
    case SRepairAlgorithm::kExactBranchAndBound:
      return "exact-branch-and-bound";
    case SRepairAlgorithm::kIlpBranchAndBound:
      return "ilp-branch-and-bound";
    case SRepairAlgorithm::kVertexCover2Approx:
      return "vertex-cover-2-approx";
    case SRepairAlgorithm::kLpRounding:
      return "lp-rounding";
  }
  return "unknown";
}

namespace {

constexpr double kEps = 1e-9;

/// kAuto's ILP fallback self-limits so oversized hard instances degrade to
/// the (factor-2) incumbent instead of searching without bound. Structured
/// near-clean instances prove optimality in tens of nodes thanks to the NT
/// kernelization; dense high-gap instances would burn any budget, so a
/// small one keeps kAuto's per-instance overhead in the tens of
/// milliseconds even when the proof is out of reach.
constexpr long kAutoIlpNodeBudget = 2000;

SRepairAlgorithm AlgorithmForBackend(const SolverBackend& backend) {
  const std::string name = backend.name();
  if (name == kSolverBnb) return SRepairAlgorithm::kExactBranchAndBound;
  if (name == kSolverIlp) return SRepairAlgorithm::kIlpBranchAndBound;
  if (name == kSolverLpRounding) return SRepairAlgorithm::kLpRounding;
  if (name == kSolverLocalRatio) {
    return SRepairAlgorithm::kVertexCover2Approx;
  }
  // External backends map to the closest provenance bucket.
  return backend.exact() ? SRepairAlgorithm::kIlpBranchAndBound
                         : SRepairAlgorithm::kVertexCover2Approx;
}

/// The outcome of a hard-side solve, in table terms.
struct HardSolve {
  std::vector<int> kept_rows;  // sorted dense row positions
  double lower_bound = 0;      // proved lower bound on the deletion weight
  bool optimal = false;
  double ratio_bound = 2.0;  // the backend's a-priori guarantee
};

/// The conflict graph restricted to its conflicted core (tuples with at
/// least one conflict) — the only part a cover solver explores; isolated
/// tuples are always kept.
struct ConflictedCore {
  std::vector<int> core;  // view indices with at least one conflict
  NodeWeightedGraph graph{0};

  ConflictedCore(const FdSet& fds, const TableView& view) {
    NodeWeightedGraph full = BuildConflictGraph(view, fds);
    std::vector<int> core_index(view.num_tuples(), -1);
    for (int i = 0; i < view.num_tuples(); ++i) {
      if (full.Degree(i) > 0) {
        core_index[i] = static_cast<int>(core.size());
        core.push_back(i);
      }
    }
    graph = NodeWeightedGraph(static_cast<int>(core.size()));
    for (size_t c = 0; c < core.size(); ++c) {
      graph.set_weight(static_cast<int>(c), view.weight(core[c]));
    }
    for (const auto& [u, v] : full.edges()) {
      graph.AddEdge(core_index[u], core_index[v]);
    }
  }
};

/// Runs a cover backend on the conflicted core and complements back to
/// kept rows. Non-optimal covers go through the greedy restore so no
/// deletable weight is stranded (restoring after a *minimum* cover is a
/// no-op by ⊆-maximality, so the optimal path skips it).
StatusOr<HardSolve> SolveHardRows(const SolverBackend& backend,
                                  const FdSet& fds, const TableView& view,
                                  const ConflictedCore& cc,
                                  const SolverExec& exec) {
  FDR_ASSIGN_OR_RETURN(SolverCover cover, backend.SolveCover(cc.graph, exec));
  std::vector<char> deleted(view.num_tuples(), 0);
  for (int c : cover.cover) deleted[cc.core[c]] = 1;
  std::vector<int> kept;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!deleted[i]) kept.push_back(view.row(i));
  }
  HardSolve out;
  out.kept_rows = cover.optimal
                      ? std::move(kept)
                      : RestoreConsistentRows(fds, view, std::move(kept));
  std::sort(out.kept_rows.begin(), out.kept_rows.end());
  out.lower_bound = cover.lower_bound;
  out.optimal = cover.optimal;
  out.ratio_bound = cover.ratio_bound;
  return out;
}

}  // namespace

StatusOr<SRepairResult> ComputeSRepair(const FdSet& fds, const Table& table,
                                       const SRepairOptions& options) {
  if (options.exec.has_deadline() &&
      std::chrono::steady_clock::now() >= options.exec.deadline) {
    return Status::DeadlineExceeded(
        "S-repair deadline expired before planning started");
  }
  SRepairVerdict verdict = ClassifySRepair(fds);

  auto finish = [&](Table repair, bool optimal, double ratio,
                    SRepairAlgorithm algorithm, std::string backend_name,
                    double lower_bound) -> StatusOr<SRepairResult> {
    FDR_ASSIGN_OR_RETURN(double distance, DistSub(repair, table));
    const double proved = optimal ? distance : lower_bound;
    const double achieved =
        proved > kEps ? std::max(1.0, distance / proved) : 1.0;
    SRepairResult result{std::move(repair),
                         distance,
                         optimal,
                         optimal ? 1.0 : ratio,
                         algorithm,
                         std::move(backend_name),
                         proved,
                         achieved,
                         std::move(verdict)};
    if (options.max_ratio > 0) {
      // The certified per-instance ratio can beat the a-priori bound, so
      // the quality gate accepts whichever certificate is stronger.
      const double certified =
          std::min(result.ratio_bound, result.achieved_ratio);
      if (certified > options.max_ratio + kEps) {
        return Status::ResourceExhausted(
            "repair certified only within ratio " + std::to_string(certified) +
            ", above the requested max_ratio " +
            std::to_string(options.max_ratio));
      }
    }
    return result;
  };

  SolverExec solver_exec;
  solver_exec.deadline = options.exec.deadline;
  solver_exec.node_budget = options.node_budget;
  const TableView view(table);

  // An explicitly named backend overrides both the dichotomy route and the
  // strategy's solver choice (kExactOnly still demands a proved optimum).
  const SolverBackend* backend = nullptr;
  if (!options.backend.empty()) {
    backend = FindSolverBackend(options.backend);
    if (backend == nullptr) {
      return Status::InvalidArgument("unknown solver backend '" +
                                     options.backend + "'");
    }
  } else if (options.strategy == SRepairStrategy::kApproxOnly) {
    backend = FindSolverBackend(kSolverLocalRatio);
  }

  if (backend == nullptr && verdict.polynomial) {
    StatusOr<std::vector<int>> rows = Status::Internal("unset");
    OptSRepairRowsOptions row_options;
    row_options.exec = options.exec;
    if (options.delta_base != nullptr) {
      FDR_CHECK_MSG(options.delta_updated_ids != nullptr,
                    "delta_base set without delta_updated_ids");
      OptSRepairRowsOptions delta_options = row_options;
      delta_options.delta_base = options.delta_base;
      delta_options.delta_updated_ids = options.delta_updated_ids;
      delta_options.splice_stats = options.splice_stats;
      rows = OptSRepairRows(fds, view, delta_options, options.capture);
      if (!rows.ok() &&
          rows.status().code() == StatusCode::kFailedPrecondition) {
        // Non-spliceable base plan or instance: exactly the cases where a
        // cold run is cheap. Re-plan in full (refreshing the capture).
        rows = OptSRepairRows(fds, view, row_options, options.capture);
      }
    } else {
      rows = OptSRepairRows(fds, view, row_options, options.capture);
    }
    FDR_RETURN_IF_ERROR(rows.status());
    return finish(table.SubsetByRows(*rows), true, 1.0,
                  SRepairAlgorithm::kOptSRepair, "", 0);
  }

  if (backend != nullptr && backend->has_fused_rows()) {
    // The fused table-level route never materializes the Θ(n²) conflict
    // graph; it reports its local-ratio burn as the lower bound. Flags
    // match the historical approximate route: never claimed optimal,
    // a-priori factor 2.
    HardSolve solve;
    FDR_ASSIGN_OR_RETURN(
        solve.kept_rows,
        backend->SolveRowsFused(fds, view, solver_exec, &solve.lower_bound));
    return finish(table.SubsetByRows(solve.kept_rows), false, 2.0,
                  AlgorithmForBackend(*backend), backend->name(),
                  solve.lower_bound);
  }

  const ConflictedCore cc(fds, view);
  if (backend == nullptr) {
    // Strategy routing on the hard side: plain branch and bound while the
    // conflicted core fits under the guard (cheap, no LP machinery), the
    // LP-guided ILP beyond it.
    if (static_cast<int>(cc.core.size()) <= options.exact_guard) {
      backend = FindSolverBackend(kSolverBnb);
    } else {
      backend = FindSolverBackend(kSolverIlp);
      if (options.strategy == SRepairStrategy::kAuto &&
          options.node_budget < 0) {
        solver_exec.node_budget = kAutoIlpNodeBudget;
      }
    }
    FDR_CHECK(backend != nullptr);
  }

  FDR_ASSIGN_OR_RETURN(
      HardSolve solve, SolveHardRows(*backend, fds, view, cc, solver_exec));
  if (!solve.optimal && options.strategy == SRepairStrategy::kExactOnly) {
    if (solver_exec.expired()) {
      return Status::DeadlineExceeded(
          "S-repair deadline expired before optimality was proved");
    }
    return Status::ResourceExhausted(
        "solver node budget exhausted before optimality was proved");
  }
  return finish(table.SubsetByRows(solve.kept_rows), solve.optimal,
                solve.ratio_bound, AlgorithmForBackend(*backend),
                backend->name(), solve.lower_bound);
}

}  // namespace fdrepair
