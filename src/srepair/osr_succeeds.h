// OSRSucceeds (Algorithm 2): the effective dichotomy test of Theorem 3.4.
// Simplifies ∆ by common-lhs / consensus / lhs-marriage until it is trivial
// (OptSRepair will succeed: polynomial side) or stuck (APX-complete side).
// Runs in polynomial time in |∆|.

#ifndef FDREPAIR_SREPAIR_OSR_SUCCEEDS_H_
#define FDREPAIR_SREPAIR_OSR_SUCCEEDS_H_

#include <string>
#include <vector>

#include "srepair/simplification.h"

namespace fdrepair {

/// The full outcome of Algorithm 2, with the simplification chain
/// (Example 3.5 prints exactly these chains).
struct OsrTrace {
  bool succeeds = false;
  /// Every applied step, ending with kTrivialTermination or kStuck.
  std::vector<SimplificationStep> steps;
  /// For failures: the non-simplifiable residual FD set.
  FdSet stuck_fds;

  /// Multi-line rendering of the chain with schema names.
  std::string ToString(const Schema& schema) const;
};

/// Runs Algorithm 2 and records the trace.
OsrTrace RunOsrSucceeds(const FdSet& fds);

/// The boolean answer only.
bool OsrSucceeds(const FdSet& fds);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_OSR_SUCCEEDS_H_
