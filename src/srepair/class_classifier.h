// The Figure-2 classifier: every non-simplifiable FD set falls into one of
// five classes, determined by the interaction of two (or three) local minima
// X1 → Y1, X2 → Y2 and the sets X̂i = cl∆(Xi) ∖ Xi (§3.3 Step 3,
// Lemma A.22). Each class admits a fact-wise reduction from one of the four
// APX-hard gadget schemas of Table 1 — realized in reductions/factwise.h.

#ifndef FDREPAIR_SREPAIR_CLASS_CLASSIFIER_H_
#define FDREPAIR_SREPAIR_CLASS_CLASSIFIER_H_

#include <optional>
#include <string>

#include "catalog/fdset.h"
#include "common/status.h"

namespace fdrepair {

/// The gadget schema (Table 1) whose hardness transfers to the class.
enum class HardGadget {
  /// ∆A→C←B = {A → C, B → C}  (class 1; Lemma A.14)
  kAtoCfromB,
  /// ∆A→B→C = {A → B, B → C}  (classes 2, 3; Lemma A.15)
  kAtoBtoC,
  /// ∆AB↔AC↔BC = {AB → C, AC → B, BC → A}  (class 4; Lemma A.16)
  kTriangle,
  /// ∆AB→C→B = {AB → C, C → B}  (class 5; Lemma A.17)
  kABtoCtoB,
};

const char* HardGadgetToString(HardGadget gadget);

/// Result of classifying a non-simplifiable ∆.
struct FdClassification {
  /// Class number 1..5 per Figure 2 / Example 3.8.
  int fd_class = 0;
  HardGadget gadget = HardGadget::kAtoCfromB;
  /// The local minima witnessing the class, ordered as the corresponding
  /// lemma expects them (x1 and x2 may be swapped relative to discovery).
  AttrSet x1;
  AttrSet x2;
  /// For class 4: a third local minimum's lhs.
  std::optional<AttrSet> x3;

  std::string ToString(const Schema& schema) const;
};

/// Classifies a non-simplifiable FD set (no trivial FDs, no common lhs, no
/// consensus FD, no lhs marriage, nontrivial). Fails with
/// kFailedPrecondition when ∆ is simplifiable or trivial — classification
/// only makes sense on the residual sets produced by a stuck OSRSucceeds.
StatusOr<FdClassification> ClassifyNonSimplifiable(const FdSet& fds);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_CLASS_CLASSIFIER_H_
