// The "ilp" and "lp-rounding" solver backends.
//
// Both are built on the exact half-integral LP relaxation of the vertex-
// cover ILP (graph/vc_lp.h) — no external solver. "ilp" is a branch and
// bound over the ILP's edge-covering constraints: Nemhauser–Trotter
// persistency fixes every x=1 vertex into the cover and confines the
// search to the half-integral kernel, reduction rules (degree-0 drop,
// neighborhood-weight domination) shrink each subproblem, and a one-pass
// dual-ascent packing prunes nodes against the incumbent. "lp-rounding"
// rounds the half-integral optimum up and greedily drops redundant
// vertices, giving the classic factor-2 guarantee with the LP value as a
// per-instance certificate.

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "graph/vc_lp.h"
#include "graph/vertex_cover.h"
#include "srepair/soft_cover.h"
#include "srepair/solver_backend.h"

namespace fdrepair {
namespace {

constexpr double kEps = 1e-12;
/// Pruning slack: a branch is cut when its lower bound comes within this
/// of the incumbent, so optimality claims carry the same tolerance.
constexpr double kPruneEps = 1e-9;
/// The deadline clock read is amortized over a small node batch.
constexpr long kDeadlineCheckInterval = 128;

/// Branch and bound confined to the NT kernel. Maintains the alive
/// subgraph incrementally (degrees, alive-edge count) with an undo trail,
/// so each node costs O(E_alive) for reductions plus the dual bound.
class KernelSearch {
 public:
  KernelSearch(const NodeWeightedGraph& graph, const SolverExec& exec)
      : graph_(graph), exec_(exec) {}

  struct Result {
    std::vector<int> cover;  // kernel-graph node ids
    double weight = 0;
    bool completed = false;
    long nodes = 0;
  };

  Result Run() {
    const int n = graph_.num_nodes();
    alive_.assign(n, 1);
    in_cover_.assign(n, 0);
    degree_.resize(n);
    alive_edges_ = graph_.num_edges();
    for (int v = 0; v < n; ++v) degree_[v] = graph_.Degree(v);
    residual_.resize(n);
    // Incumbent: local-ratio on the kernel, minimized. Guarantees the
    // truncated answer still sits within factor 2 of the kernel optimum.
    std::vector<int> seed =
        MinimizeCover(graph_, VertexCoverLocalRatio(graph_));
    best_ = graph_.WeightOf(seed);
    best_cover_.assign(n, 0);
    for (int v : seed) best_cover_[v] = 1;
    if (alive_edges_ > 0) {
      if (exec_.expired()) {
        stopped_ = true;  // expired before the first node: incumbent stands
      } else {
        Search();
      }
    }
    Result out;
    for (int v = 0; v < n; ++v) {
      if (best_cover_[v]) out.cover.push_back(v);
    }
    out.weight = graph_.WeightOf(out.cover);
    out.completed = !stopped_;
    out.nodes = nodes_;
    return out;
  }

 private:
  struct TrailEntry {
    int node;
    char took;  // 1: node entered the cover; 0: node decided out
  };

  bool Tripped() {
    if (stopped_) return true;
    ++nodes_;
    if (exec_.node_budget >= 0 && nodes_ > exec_.node_budget) {
      stopped_ = true;
      return true;
    }
    if (exec_.has_deadline() && nodes_ % kDeadlineCheckInterval == 0 &&
        exec_.expired()) {
      stopped_ = true;
      return true;
    }
    return false;
  }

  void Remove(int v, char took) {
    alive_[v] = 0;
    if (took) {
      acc_ += graph_.weight(v);
      in_cover_[v] = 1;
    }
    for (int u : graph_.Neighbors(v)) {
      if (alive_[u]) {
        --degree_[u];
        --alive_edges_;
      }
    }
    trail_.push_back({v, took});
  }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      const TrailEntry entry = trail_.back();
      trail_.pop_back();
      const int v = entry.node;
      for (int u : graph_.Neighbors(v)) {
        if (alive_[u]) {
          ++degree_[u];
          ++alive_edges_;
        }
      }
      alive_[v] = 1;
      if (entry.took) {
        acc_ -= graph_.weight(v);
        in_cover_[v] = 0;
      }
    }
  }

  /// Reduction fixpoint on the alive subgraph:
  ///  - degree 0: never needed in a cover, drop;
  ///  - neighborhood domination: w(v) >= w(N_alive(v)) means taking all of
  ///    N(v) instead of v is never worse (it also covers N(v)'s other
  ///    edges), so some optimum excludes v — take N(v), drop v. With a
  ///    single alive neighbor this is the classic weighted pendant rule.
  void Reduce() {
    bool changed = true;
    while (changed && alive_edges_ > 0) {
      changed = false;
      for (int v = 0; v < graph_.num_nodes(); ++v) {
        if (!alive_[v]) continue;
        if (degree_[v] == 0) {
          Remove(v, 0);
          changed = true;
          continue;
        }
        double neighborhood = 0;
        for (int u : graph_.Neighbors(v)) {
          if (alive_[u]) neighborhood += graph_.weight(u);
        }
        if (graph_.weight(v) >= neighborhood - kEps) {
          for (int u : graph_.Neighbors(v)) {
            if (alive_[u]) Remove(u, 1);
          }
          Remove(v, 0);
          changed = true;
        }
      }
    }
    // Edge-free leftovers (only reachable when alive_edges_ hit 0 inside
    // the loop above) are never part of a minimum cover.
    if (alive_edges_ == 0) {
      for (int v = 0; v < graph_.num_nodes(); ++v) {
        if (alive_[v]) Remove(v, 0);
      }
    }
  }

  /// One dual-ascent pass over the alive edges: a feasible fractional edge
  /// packing, so acc_ + bound is a valid lower bound for this subtree.
  double DualBound() {
    for (int v = 0; v < graph_.num_nodes(); ++v) {
      if (alive_[v]) residual_[v] = graph_.weight(v);
    }
    double packed = 0;
    for (const auto& [u, v] : graph_.edges()) {
      if (!alive_[u] || !alive_[v]) continue;
      const double delta = std::min(residual_[u], residual_[v]);
      residual_[u] -= delta;
      residual_[v] -= delta;
      packed += delta;
    }
    return packed;
  }

  /// Max alive degree, ties to the heavier then lower-id node: covering
  /// decisions on hubs collapse the most constraints per branch.
  int PickBranchNode() const {
    int pick = -1;
    for (int v = 0; v < graph_.num_nodes(); ++v) {
      if (!alive_[v] || degree_[v] == 0) continue;
      if (pick < 0 || degree_[v] > degree_[pick] ||
          (degree_[v] == degree_[pick] &&
           graph_.weight(v) > graph_.weight(pick) + kEps)) {
        pick = v;
      }
    }
    return pick;
  }

  void Search() {
    if (Tripped()) return;
    const size_t mark = trail_.size();
    Reduce();
    if (alive_edges_ == 0) {
      if (acc_ < best_) {
        best_ = acc_;
        best_cover_ = in_cover_;
      }
      UndoTo(mark);
      return;
    }
    if (acc_ + DualBound() >= best_ - kPruneEps) {
      UndoTo(mark);
      return;
    }
    const int v = PickBranchNode();
    const size_t inner = trail_.size();
    // Branch 1: v joins the cover.
    Remove(v, 1);
    Search();
    UndoTo(inner);
    // Branch 2: v stays out, so every alive neighbor must join.
    if (!stopped_) {
      for (int u : graph_.Neighbors(v)) {
        if (alive_[u]) Remove(u, 1);
      }
      Remove(v, 0);
      Search();
      UndoTo(inner);
    }
    UndoTo(mark);
  }

  const NodeWeightedGraph& graph_;
  SolverExec exec_;
  std::vector<char> alive_;
  std::vector<char> in_cover_;
  std::vector<int> degree_;
  long alive_edges_ = 0;
  double acc_ = 0;
  double best_ = std::numeric_limits<double>::infinity();
  std::vector<char> best_cover_;
  std::vector<TrailEntry> trail_;
  std::vector<double> residual_;
  long nodes_ = 0;
  bool stopped_ = false;
};

class IlpBnbBackend : public SolverBackend {
 public:
  const char* name() const override { return kSolverIlp; }
  bool exact() const override { return true; }

  StatusOr<SolverCover> SolveCover(const NodeWeightedGraph& graph,
                                   const SolverExec& exec) const override {
    SolverCover out;
    if (graph.num_edges() == 0) {
      out.optimal = true;
      out.ratio_bound = 1.0;
      return out;
    }
    // The LP solve is polynomial (one max-flow) and dwarfed by the search,
    // so the deadline is only consulted around it, not inside.
    const VcLpSolution lp = SolveVcLp(graph);
    // NT persistency: every x=1 node is in some optimum, every x=0 node is
    // out of one, and any edge not covered by the ones has both endpoints
    // half (0 + ½ < 1 would violate LP feasibility) — so the integral
    // search is confined to the induced kernel.
    std::vector<int> kernel_id(graph.num_nodes(), -1);
    NodeWeightedGraph kernel(static_cast<int>(lp.halves.size()));
    for (int i = 0; i < static_cast<int>(lp.halves.size()); ++i) {
      kernel_id[lp.halves[i]] = i;
      kernel.set_weight(i, graph.weight(lp.halves[i]));
    }
    for (const auto& [u, v] : graph.edges()) {
      if (kernel_id[u] >= 0 && kernel_id[v] >= 0) {
        kernel.AddEdge(kernel_id[u], kernel_id[v]);
      }
    }
    KernelSearch::Result search = KernelSearch(kernel, exec).Run();
    out.cover = lp.ones;
    for (int v : search.cover) out.cover.push_back(lp.halves[v]);
    std::sort(out.cover.begin(), out.cover.end());
    out.weight = graph.WeightOf(out.cover);
    out.nodes = search.nodes;
    out.optimal = search.completed;
    if (search.completed) {
      out.lower_bound = out.weight;
      out.ratio_bound = 1.0;
    } else {
      // opt(G) = w(ones) + opt(kernel) >= lp.value, and the incumbent is a
      // minimized local-ratio cover of the kernel, so factor 2 holds even
      // on truncation; the LP certificate usually proves much less.
      out.lower_bound = lp.value;
      out.ratio_bound = out.lower_bound > kEps
                            ? std::min(2.0, out.weight / out.lower_bound)
                            : 2.0;
    }
    FDR_CHECK(IsVertexCover(graph, out.cover));
    return out;
  }

  bool soft_capable() const override { return true; }

  /// Soft instances take the shared keep/delete branch and bound with the
  /// hard-subgraph LP folded into the root bound (NT kernelization does
  /// not transfer: persistency arguments break once an edge may be paid
  /// for instead of covered).
  StatusOr<SolverCover> SolveSoftCover(
      const NodeWeightedGraph& graph, const std::vector<double>& penalties,
      const SolverExec& exec) const override {
    SoftCoverResult result = SoftCoverBranchAndBound(graph, penalties, exec,
                                                     /*use_lp_bound=*/true);
    SolverCover out;
    out.cover = std::move(result.cover);
    out.weight = result.node_weight;
    out.penalty = result.penalty;
    out.lower_bound = result.lower_bound;
    out.optimal = result.optimal;
    out.ratio_bound = result.ratio_bound;
    out.nodes = result.nodes;
    return out;
  }
};

class LpRoundingBackend : public SolverBackend {
 public:
  const char* name() const override { return kSolverLpRounding; }
  bool exact() const override { return false; }

  StatusOr<SolverCover> SolveCover(const NodeWeightedGraph& graph,
                                   const SolverExec& exec) const override {
    (void)exec;  // one max-flow plus a greedy pass; nothing to interrupt
    SolverCover out;
    if (graph.num_edges() == 0) {
      out.optimal = true;
      out.ratio_bound = 1.0;
      return out;
    }
    const VcLpSolution lp = SolveVcLp(graph);
    // Round every x >= ½ up: each edge has x_u + x_v >= 1, so at least one
    // endpoint survives the rounding — a valid cover of weight at most
    // 2 · lp.value <= 2 · opt. MinimizeCover then drops redundancies.
    std::vector<int> rounded = lp.ones;
    rounded.insert(rounded.end(), lp.halves.begin(), lp.halves.end());
    out.cover = MinimizeCover(graph, std::move(rounded));
    out.weight = graph.WeightOf(out.cover);
    out.lower_bound = lp.value;
    out.optimal = out.weight <= lp.value + kPruneEps;
    out.ratio_bound = out.optimal ? 1.0 : 2.0;
    return out;
  }
};

}  // namespace

std::unique_ptr<SolverBackend> MakeIlpBnbBackend() {
  return std::make_unique<IlpBnbBackend>();
}

std::unique_ptr<SolverBackend> MakeLpRoundingBackend() {
  return std::make_unique<LpRoundingBackend>();
}

}  // namespace fdrepair
