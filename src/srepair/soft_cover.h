// The generalized (prize-collecting) vertex-cover instance behind soft
// S-repairs.
//
// A soft conflict graph has node weights (tuple deletion costs) and per-
// edge penalties: a hard edge (penalty = ∞, i.e. kHardFdWeight) must be
// covered by deleting an endpoint, while a soft edge may instead be left
// uncovered for its penalty. The objective is
//
//   min  Σ_{v deleted} w_v + Σ_{e uncovered} p_e
//   s.t. every hard edge has a deleted endpoint.
//
// Per uncovered-edge indicator y_e this is the covering program with the
// 3-ary constraints x_u + x_v + y_e ≥ 1 — NOT plain vertex cover (no
// 2-uniform gadget expresses the penalty choice), which is why the soft
// planner cannot reuse SolveCover directly. Both solvers below follow the
// local-ratio template on those 3-ary constraints: each constraint burns
// ε = min(residual_u, residual_v, residual_e) off its three items, the
// total burn is a feasible dual packing (≤ OPT), and a solution whose
// paid items are all residual-zero costs at most 3 · burn.

#ifndef FDREPAIR_SREPAIR_SOFT_COVER_H_
#define FDREPAIR_SREPAIR_SOFT_COVER_H_

#include <vector>

#include "graph/graph.h"
#include "srepair/solver_backend.h"

namespace fdrepair {

/// A soft-cover solution with provenance. `cover` lists the deleted nodes;
/// every edge not touched by it is uncovered and pays its penalty.
struct SoftCoverResult {
  std::vector<int> cover;
  /// Σ node weights of `cover`.
  double node_weight = 0;
  /// Σ penalties of the uncovered (necessarily soft) edges.
  double penalty = 0;
  /// node_weight + penalty — the objective value.
  double total = 0;
  /// Proved lower bound on the optimal objective (burn / LP; equals
  /// `total` when optimal).
  double lower_bound = 0;
  bool optimal = false;
  /// A-priori guarantee: total <= ratio_bound · optimum.
  double ratio_bound = 3.0;
  /// Branch nodes expanded (0 for the primal-dual pass).
  long nodes = 0;
};

/// The local-ratio primal-dual 3-approximation: one pass over the edges in
/// index order burning the 3-ary constraints, then a greedy improvement
/// pass that un-deletes nodes whose weight exceeds the penalties their
/// return would incur (never breaking a hard edge). Deterministic; O(n·m)
/// worst case from the improvement pass. `penalties` aligns with
/// graph.edges(); kHardFdWeight marks a hard edge.
SoftCoverResult SoftCoverLocalRatio(const NodeWeightedGraph& graph,
                                    const std::vector<double>& penalties);

/// Exact branch and bound over per-node keep/delete decisions. Keeping a
/// node force-deletes its undecided hard neighbors and prices its soft
/// edges to already-kept neighbors; every search node is pruned against
/// the incumbent with the residual-instance burn bound. The incumbent is
/// seeded with SoftCoverLocalRatio, so a truncated run (deadline or
/// exec.node_budget expiry) still returns a factor-3 solution with the
/// root bound as `lower_bound`. With `use_lp_bound`, the root bound also
/// takes the exact half-integral vertex-cover LP of the hard-edge
/// subgraph (graph/vc_lp.h) — the "ilp" flavor, strictly stronger on
/// hard-dominated instances. Exact (optimal = true) when the search
/// completes.
SoftCoverResult SoftCoverBranchAndBound(const NodeWeightedGraph& graph,
                                        const std::vector<double>& penalties,
                                        const SolverExec& exec,
                                        bool use_lp_bound);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_SOFT_COVER_H_
