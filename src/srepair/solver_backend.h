// SolverBackend: the pluggable execution API for the APX-complete side of
// the Theorem 3.4 dichotomy.
//
// Proposition 3.3 reduces optimal S-repairing to minimum-weight vertex
// cover on the conflict graph (strictly, in both directions), so a hard-
// side solver is exactly a weighted vertex-cover solver. This header turns
// that observation into an interface: a backend takes a weighted conflict
// graph plus an execution context (deadline, node budget) and returns a
// cover with provenance — a proved lower bound on the optimum, whether
// optimality was proved, and the a-priori approximation guarantee. The
// planner (planner.h) selects backends through the registry below instead
// of a hard-coded strategy branch, mirroring how the RS-repair systems
// route hard instances through exact-ILP and LP-rounding solvers.
//
// In-tree backends (no external solver dependency):
//
//   "local-ratio"  Bar-Yehuda–Even 2-approximation. The only backend with
//                  a fused table-level route (no Θ(n²) conflict-graph
//                  materialization); reports the local-ratio burn as its
//                  lower bound, so the achieved ratio is usually ≪ 2.
//   "bnb"          The classic branch and bound (prune on accumulated
//                  weight). Exact when it completes; cooperative deadline
//                  and node budget return the incumbent otherwise.
//   "ilp"          ILP-style branch and bound over the edge-covering
//                  constraints: Nemhauser–Trotter kernelization via the
//                  exact half-integral LP (graph/vc_lp.h), degree-0/1 and
//                  neighborhood-weight reduction rules, dual-ascent LP
//                  lower bounds at every node, and a local-ratio incumbent
//                  seed. Proves optimality far beyond what "bnb" reaches.
//   "lp-rounding"  Solves the LP exactly, keeps the x = 1 vertices, rounds
//                  the half-integral kernel up, then greedily drops
//                  redundant vertices. Factor 2 a priori; the reported LP
//                  bound gives the (much smaller) achieved ratio.
//
// All backends are stateless and safe to share across threads.

#ifndef FDREPAIR_SREPAIR_SOLVER_BACKEND_H_
#define FDREPAIR_SREPAIR_SOLVER_BACKEND_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "graph/graph.h"
#include "storage/table_view.h"

namespace fdrepair {

/// Registry names of the in-tree backends.
inline constexpr char kSolverLocalRatio[] = "local-ratio";
inline constexpr char kSolverBnb[] = "bnb";
inline constexpr char kSolverIlp[] = "ilp";
inline constexpr char kSolverLpRounding[] = "lp-rounding";

/// Execution context a backend must honor cooperatively.
struct SolverExec {
  /// Wall-clock cutoff, checked inside node expansion and LP iterations.
  /// Once passed, the backend stops and returns its incumbent (a valid
  /// cover, `optimal=false`) with the best lower bound proved so far.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Branch-node budget for the search backends; < 0 means unlimited.
  long node_budget = -1;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
  bool expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
};

/// A vertex cover with provenance.
struct SolverCover {
  /// Node ids forming a vertex cover of the input graph. For soft-cover
  /// instances (SolveSoftCover): the deleted nodes; edges they leave
  /// untouched are uncovered and pay their penalty.
  std::vector<int> cover;
  /// Σ weights of `cover`.
  double weight = 0;
  /// Soft-cover instances only: Σ penalties of the uncovered edges. The
  /// objective value is weight + penalty. Always 0 for plain SolveCover.
  double penalty = 0;
  /// Proved lower bound on the minimum cover weight — for soft instances,
  /// on the minimum of weight + penalty (dual packing or LP value; equals
  /// the objective when optimal).
  double lower_bound = 0;
  /// True iff `cover` is provably optimal.
  bool optimal = false;
  /// The backend's a-priori guarantee on the objective:
  /// objective <= ratio_bound · optimum.
  double ratio_bound = 2.0;
  /// Branch nodes expanded (search backends; 0 otherwise).
  long nodes = 0;
};

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  /// Stable registry name (also the provenance string in results).
  virtual const char* name() const = 0;

  /// True when a completed (non-truncated) run proves optimality.
  virtual bool exact() const = 0;

  /// Solves minimum-weight vertex cover on `graph` under `exec`. Never
  /// fails on well-formed graphs: limit expiry degrades to the incumbent.
  virtual StatusOr<SolverCover> SolveCover(const NodeWeightedGraph& graph,
                                           const SolverExec& exec) const = 0;

  /// True when the backend can solve *soft*-cover instances — conflict
  /// graphs with finite per-edge penalties, produced by soft (weighted)
  /// FDs (srepair/soft_repair.h). Backends without soft support still
  /// serve all-hard instances through the default SolveSoftCover below.
  virtual bool soft_capable() const { return false; }

  /// Solves the generalized cover instance: delete nodes and/or leave
  /// soft edges uncovered, paying their penalty; hard edges (penalty =
  /// kHardFdWeight) must be covered. `penalties` aligns with
  /// graph.edges(). The default forwards all-hard instances to SolveCover
  /// and fails with kInvalidArgument when a finite penalty is present and
  /// the backend is not soft_capable().
  virtual StatusOr<SolverCover> SolveSoftCover(
      const NodeWeightedGraph& graph, const std::vector<double>& penalties,
      const SolverExec& exec) const;

  /// True when the backend can repair a table without materializing the
  /// conflict graph (the fused local-ratio route). Default: false.
  virtual bool has_fused_rows() const { return false; }

  /// Fused table-level route: kept dense row positions (sorted, already
  /// maximal) plus the proved lower bound on the optimal deletion weight.
  /// Only called when has_fused_rows(); the default aborts.
  virtual StatusOr<std::vector<int>> SolveRowsFused(
      const FdSet& fds, const TableView& view, const SolverExec& exec,
      double* lower_bound) const;
};

/// Looks a backend up by registry name; nullptr when unknown. The in-tree
/// backends are always present. Thread-safe.
const SolverBackend* FindSolverBackend(const std::string& name);

/// Every registered backend, in-tree ones first (registration order).
std::vector<const SolverBackend*> AllSolverBackends();

/// Registers an external backend under its name() (overriding an existing
/// registration of the same name). Thread-safe; the registry takes
/// ownership and keeps the backend alive for the process lifetime.
void RegisterSolverBackend(std::unique_ptr<SolverBackend> backend);

/// Factories for the in-tree ILP branch-and-bound and LP-rounding
/// backends (solver_ilp.cc); exposed so tests can instantiate them
/// directly with custom contexts.
std::unique_ptr<SolverBackend> MakeIlpBnbBackend();
std::unique_ptr<SolverBackend> MakeLpRoundingBackend();

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_SOLVER_BACKEND_H_
