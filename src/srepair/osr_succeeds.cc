#include "srepair/osr_succeeds.h"

#include <sstream>

namespace fdrepair {

OsrTrace RunOsrSucceeds(const FdSet& fds) {
  OsrTrace trace;
  FdSet current = fds;
  while (true) {
    SimplificationStep step = NextSimplification(current);
    trace.steps.push_back(step);
    if (step.kind == SimplificationKind::kTrivialTermination) {
      trace.succeeds = true;
      return trace;
    }
    if (step.kind == SimplificationKind::kStuck) {
      trace.succeeds = false;
      trace.stuck_fds = step.before;
      return trace;
    }
    current = step.after;
  }
}

bool OsrSucceeds(const FdSet& fds) { return RunOsrSucceeds(fds).succeeds; }

std::string OsrTrace::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const SimplificationStep& step : steps) {
    os << step.ToString(schema) << "\n";
  }
  os << (succeeds ? "=> OSRSucceeds: true (polynomial-time optimal S-repair)"
                  : "=> OSRSucceeds: false (APX-complete)");
  return os.str();
}

}  // namespace fdrepair
