// 2-approximate S-repair via weighted vertex cover (Proposition 3.3).
//
// Two interchangeable engines:
//  - the explicit route: materialize the conflict graph and run
//    Bar-Yehuda–Even local-ratio on its edge list (useful for the edge-order
//    ablation in E5);
//  - the fused route: run local-ratio directly on FD violation groups
//    without materializing Θ(n²) edges. Within one lhs-group the conflict
//    structure is complete multipartite across rhs-subgroups, so pairing any
//    two *alive* tuples from different subgroups and subtracting the smaller
//    residual kills at least one tuple per step — O(|∆| · n) amortized.
//
// Both finish by restoring greedily every deleted tuple that no longer
// conflicts (turning the consistent subset into an S-repair, §2.3), which
// never increases the distance.

#ifndef FDREPAIR_SREPAIR_SREPAIR_VC_APPROX_H_
#define FDREPAIR_SREPAIR_SREPAIR_VC_APPROX_H_

#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

/// Fused local-ratio 2-approximation; returns kept dense row positions in
/// increasing order. Works for every FD set (both dichotomy sides).
/// When `dual_lower_bound` is non-null it receives the total local-ratio
/// burn — a feasible fractional edge packing of the conflict graph, hence
/// a lower bound on the optimal deletion weight (the LP-duality half of
/// the factor-2 guarantee). The achieved distance is at most twice it.
std::vector<int> SRepairVcApproxRows(const FdSet& fds, const TableView& view,
                                     double* dual_lower_bound);
std::vector<int> SRepairVcApproxRows(const FdSet& fds, const TableView& view);

/// Explicit conflict-graph route with a caller-supplied edge processing
/// order (indices into the conflict graph's edge list); used by ablations.
std::vector<int> SRepairVcApproxRowsViaGraph(const FdSet& fds,
                                             const TableView& view,
                                             const std::vector<int>& edge_order);

/// Materialized convenience wrapper around SRepairVcApproxRows.
Table SRepairVcApprox(const FdSet& fds, const Table& table);

/// Greedy maximalization: given kept rows forming a consistent subset, adds
/// back every other row that stays consistent, heaviest first. Exposed for
/// reuse by the exact solver and by tests.
std::vector<int> RestoreConsistentRows(const FdSet& fds, const TableView& view,
                                       std::vector<int> kept_rows);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_SREPAIR_VC_APPROX_H_
