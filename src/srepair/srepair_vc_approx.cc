#include "srepair/srepair_vc_approx.h"

#include <algorithm>
#include <unordered_map>

#include "graph/conflict_graph.h"
#include "graph/vertex_cover.h"
#include "storage/consistency.h"
#include "storage/row_span.h"

namespace fdrepair {
namespace {
constexpr double kEps = 1e-12;

/// Incremental lhs-projection -> rhs-value index for one FD, built on the
/// shared hash-plus-witness ProjectionIndex (storage/row_span.h) — no
/// per-row ProjectionKey allocation. Entries are only ever added (the
/// restore loop admits tuples one at a time).
class FdRhsIndex {
 private:
  /// Resolves an entry to the tuple witnessing its lhs projection.
  auto WitnessTuple(const TableView& view) const {
    return [this, &view](int g) -> const Tuple& {
      return view.tuple(witness_[g]);
    };
  }

 public:
  /// The rhs value recorded for tuple's lhs projection, or kNoValue.
  static constexpr ValueId kNoValue = -1;
  ValueId Find(const TableView& view, const Tuple& tuple, AttrSet lhs) const {
    const int g = index_.Find(tuple, lhs, WitnessTuple(view));
    return g == -1 ? kNoValue : rhs_[g];
  }

  /// Records `rhs` for tuple's lhs projection (first writer wins, matching
  /// the emplace semantics of the map-based implementation).
  void Insert(const TableView& view, int view_index, const Tuple& tuple,
              AttrSet lhs, ValueId rhs) {
    bool created = false;
    index_.FindOrCreate(tuple, lhs, WitnessTuple(view), &created);
    if (created) {
      witness_.push_back(view_index);
      rhs_.push_back(rhs);
    }
  }

 private:
  ProjectionIndex index_;
  std::vector<int> witness_;  // entry -> view index keying the projection
  std::vector<ValueId> rhs_;
};

}  // namespace

std::vector<int> RestoreConsistentRows(const FdSet& fds, const TableView& view,
                                       std::vector<int> kept_rows) {
  // Per-FD index: lhs projection -> the unique rhs value of the kept set.
  std::vector<FdRhsIndex> rhs_of(fds.size());
  std::vector<char> kept(view.table().num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  auto admits = [&](const Tuple& tuple) {
    for (int f = 0; f < fds.size(); ++f) {
      const Fd& fd = fds.fds()[f];
      if (fd.IsTrivial()) continue;
      ValueId recorded = rhs_of[f].Find(view, tuple, fd.lhs);
      if (recorded != FdRhsIndex::kNoValue && recorded != tuple[fd.rhs]) {
        return false;
      }
    }
    return true;
  };
  auto admit = [&](int i, const Tuple& tuple) {
    for (int f = 0; f < fds.size(); ++f) {
      const Fd& fd = fds.fds()[f];
      if (fd.IsTrivial()) continue;
      rhs_of[f].Insert(view, i, tuple, fd.lhs, tuple[fd.rhs]);
    }
  };

  for (int i = 0; i < view.num_tuples(); ++i) {
    if (kept[view.row(i)]) admit(i, view.tuple(i));
  }
  // Candidates to restore, heaviest first (ties by view order for
  // determinism).
  std::vector<int> candidates;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!kept[view.row(i)]) candidates.push_back(i);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](int a, int b) { return view.weight(a) > view.weight(b); });
  for (int i : candidates) {
    if (admits(view.tuple(i))) {
      admit(i, view.tuple(i));
      kept[view.row(i)] = 1;
    }
  }
  std::vector<int> out;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (kept[view.row(i)]) out.push_back(view.row(i));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> SRepairVcApproxRows(const FdSet& fds, const TableView& view) {
  return SRepairVcApproxRows(fds, view, nullptr);
}

std::vector<int> SRepairVcApproxRows(const FdSet& fds, const TableView& view,
                                     double* dual_lower_bound) {
  double packed = 0;  // total local-ratio burn: a feasible edge packing
  // residual[i] tracks the local-ratio budget of view row i.
  std::vector<double> residual(view.num_tuples());
  for (int i = 0; i < view.num_tuples(); ++i) residual[i] = view.weight(i);
  auto alive = [&](int i) { return residual[i] > kEps; };

  // Reused per FD: lhs groups in first-appearance order, resolved by the
  // shared hash-plus-witness ProjectionIndex (no per-row key allocation).
  // First-appearance order also makes the local-ratio pairing
  // deterministic — the pre-span implementation iterated unordered_map
  // order, which was only deterministic per standard-library
  // implementation.
  ProjectionIndex lhs_index;
  /// Single-attribute lhs: columnar DenseValueIndex sweep (same dense
  /// first-appearance group ids, no projection hashing).
  DenseValueIndex lhs_values;
  std::vector<int> witness;  // group -> view index of its first alive row
  std::vector<std::vector<int>> members;  // group -> member view indices
  auto witness_tuple = [&](int g) -> const Tuple& {
    return view.tuple(witness[g]);
  };
  // Per-group rhs partition scratch (counting scatter into runs).
  std::unordered_map<ValueId, int> rhs_index;
  std::vector<int> sub_of;
  std::vector<int> run_start;
  std::vector<int> run_end;
  std::vector<int> scattered;
  std::vector<size_t> cursor;

  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    const bool single_lhs = fd.lhs.size() == 1;
    const ValueId* lhs_column =
        single_lhs ? view.table().ColumnData(fd.lhs.First()) : nullptr;
    lhs_values.Clear();
    lhs_index.Clear();
    witness.clear();
    members.clear();
    for (int i = 0; i < view.num_tuples(); ++i) {
      if (!alive(i)) continue;
      bool created = false;
      const int g =
          single_lhs
              ? lhs_values.FindOrCreate(lhs_column[view.row(i)], &created)
              : lhs_index.FindOrCreate(view.tuple(i), fd.lhs, witness_tuple,
                                       &created);
      if (created) {
        witness.push_back(i);
        members.emplace_back();
      }
      members[g].push_back(i);
    }
    for (std::vector<int>& group_members : members) {
      // Partition the group's members into rhs-value runs (stable, runs in
      // first-appearance order of the rhs value).
      rhs_index.clear();
      sub_of.clear();
      int num_sub = 0;
      for (int m : group_members) {
        auto [it, inserted] = rhs_index.emplace(view.value(m, fd.rhs), num_sub);
        if (inserted) ++num_sub;
        sub_of.push_back(it->second);
      }
      if (num_sub < 2) continue;
      run_start.assign(num_sub, 0);
      for (int s : sub_of) ++run_start[s];
      int total = 0;
      run_end.assign(num_sub, 0);
      for (int s = 0; s < num_sub; ++s) {
        const int size = run_start[s];
        run_start[s] = total;
        total += size;
        run_end[s] = total;
      }
      scattered.resize(group_members.size());
      cursor.assign(run_start.begin(), run_start.end());
      for (size_t m = 0; m < group_members.size(); ++m) {
        scattered[cursor[sub_of[m]]++] = group_members[m];
      }
      // Local-ratio: repeatedly take alive tuples from two distinct rhs
      // runs (a complete-multipartite conflict) and burn the smaller
      // residual; each step kills at least one tuple, so total work is
      // linear in the group size.
      for (int s = 0; s < num_sub; ++s) cursor[s] = run_start[s];
      auto advance = [&](int s) {
        while (cursor[s] < static_cast<size_t>(run_end[s]) &&
               !alive(scattered[cursor[s]])) {
          ++cursor[s];
        }
        return cursor[s] < static_cast<size_t>(run_end[s]);
      };
      while (true) {
        int first = -1, second = -1;
        for (int s = 0; s < num_sub; ++s) {
          if (!advance(s)) continue;
          if (first < 0) {
            first = s;
          } else {
            second = s;
            break;
          }
        }
        if (second < 0) break;  // conflicts within this group all covered
        const int u = scattered[cursor[first]];
        const int v = scattered[cursor[second]];
        const double delta = std::min(residual[u], residual[v]);
        residual[u] -= delta;
        residual[v] -= delta;
        packed += delta;
      }
    }
  }
  if (dual_lower_bound != nullptr) *dual_lower_bound = packed;
  std::vector<int> kept;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (alive(i)) kept.push_back(view.row(i));
  }
  return RestoreConsistentRows(fds, view, std::move(kept));
}

std::vector<int> SRepairVcApproxRowsViaGraph(
    const FdSet& fds, const TableView& view,
    const std::vector<int>& edge_order) {
  NodeWeightedGraph graph = BuildConflictGraph(view, fds);
  std::vector<int> cover = VertexCoverLocalRatio(graph, edge_order);
  std::vector<char> deleted(view.num_tuples(), 0);
  for (int node : cover) deleted[node] = 1;
  std::vector<int> kept;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!deleted[i]) kept.push_back(view.row(i));
  }
  return RestoreConsistentRows(fds, view, std::move(kept));
}

Table SRepairVcApprox(const FdSet& fds, const Table& table) {
  return table.SubsetByRows(SRepairVcApproxRows(fds, TableView(table)));
}

}  // namespace fdrepair
