#include "srepair/srepair_vc_approx.h"

#include <algorithm>
#include <unordered_map>

#include "graph/conflict_graph.h"
#include "graph/vertex_cover.h"
#include "storage/consistency.h"

namespace fdrepair {
namespace {
constexpr double kEps = 1e-12;
}  // namespace

std::vector<int> RestoreConsistentRows(const FdSet& fds, const TableView& view,
                                       std::vector<int> kept_rows) {
  // Per-FD map: lhs projection -> the unique rhs value of the kept set.
  std::vector<std::unordered_map<ProjectionKey, ValueId, ProjectionKeyHash>>
      rhs_of(fds.size());
  std::vector<char> kept(view.table().num_tuples(), 0);
  for (int row : kept_rows) kept[row] = 1;

  auto admits = [&](const Tuple& tuple) {
    for (int f = 0; f < fds.size(); ++f) {
      const Fd& fd = fds.fds()[f];
      if (fd.IsTrivial()) continue;
      auto it = rhs_of[f].find(ProjectTuple(tuple, fd.lhs));
      if (it != rhs_of[f].end() && it->second != tuple[fd.rhs]) return false;
    }
    return true;
  };
  auto admit = [&](const Tuple& tuple) {
    for (int f = 0; f < fds.size(); ++f) {
      const Fd& fd = fds.fds()[f];
      if (fd.IsTrivial()) continue;
      rhs_of[f].emplace(ProjectTuple(tuple, fd.lhs), tuple[fd.rhs]);
    }
  };

  for (int i = 0; i < view.num_tuples(); ++i) {
    if (kept[view.row(i)]) admit(view.tuple(i));
  }
  // Candidates to restore, heaviest first (ties by view order for
  // determinism).
  std::vector<int> candidates;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!kept[view.row(i)]) candidates.push_back(i);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](int a, int b) { return view.weight(a) > view.weight(b); });
  for (int i : candidates) {
    if (admits(view.tuple(i))) {
      admit(view.tuple(i));
      kept[view.row(i)] = 1;
    }
  }
  std::vector<int> out;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (kept[view.row(i)]) out.push_back(view.row(i));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> SRepairVcApproxRows(const FdSet& fds, const TableView& view) {
  // residual[i] tracks the local-ratio budget of view row i.
  std::vector<double> residual(view.num_tuples());
  for (int i = 0; i < view.num_tuples(); ++i) residual[i] = view.weight(i);
  auto alive = [&](int i) { return residual[i] > kEps; };

  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    // lhs group -> rhs subgroups (complete multipartite conflicts).
    std::unordered_map<ProjectionKey, std::unordered_map<ValueId, std::vector<int>>,
                       ProjectionKeyHash>
        groups;
    for (int i = 0; i < view.num_tuples(); ++i) {
      if (!alive(i)) continue;
      groups[ProjectTuple(view.tuple(i), fd.lhs)][view.value(i, fd.rhs)]
          .push_back(i);
    }
    for (auto& [lhs_key, by_rhs] : groups) {
      if (by_rhs.size() < 2) continue;
      // Collect subgroups with cursors; each local-ratio step kills at
      // least one tuple, so total work is linear in the group size.
      std::vector<std::vector<int>*> subgroups;
      subgroups.reserve(by_rhs.size());
      for (auto& [rhs_value, members] : by_rhs) subgroups.push_back(&members);
      std::vector<size_t> cursor(subgroups.size(), 0);
      auto advance = [&](size_t s) {
        while (cursor[s] < subgroups[s]->size() &&
               !alive((*subgroups[s])[cursor[s]])) {
          ++cursor[s];
        }
        return cursor[s] < subgroups[s]->size();
      };
      while (true) {
        // Find two distinct subgroups with alive tuples.
        int first = -1, second = -1;
        for (size_t s = 0; s < subgroups.size(); ++s) {
          if (!advance(s)) continue;
          if (first < 0) {
            first = static_cast<int>(s);
          } else {
            second = static_cast<int>(s);
            break;
          }
        }
        if (second < 0) break;  // conflicts within this group all covered
        int u = (*subgroups[first])[cursor[first]];
        int v = (*subgroups[second])[cursor[second]];
        double delta = std::min(residual[u], residual[v]);
        residual[u] -= delta;
        residual[v] -= delta;
      }
    }
  }
  std::vector<int> kept;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (alive(i)) kept.push_back(view.row(i));
  }
  return RestoreConsistentRows(fds, view, std::move(kept));
}

std::vector<int> SRepairVcApproxRowsViaGraph(
    const FdSet& fds, const TableView& view,
    const std::vector<int>& edge_order) {
  NodeWeightedGraph graph = BuildConflictGraph(view, fds);
  std::vector<int> cover = VertexCoverLocalRatio(graph, edge_order);
  std::vector<char> deleted(view.num_tuples(), 0);
  for (int node : cover) deleted[node] = 1;
  std::vector<int> kept;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!deleted[i]) kept.push_back(view.row(i));
  }
  return RestoreConsistentRows(fds, view, std::move(kept));
}

Table SRepairVcApprox(const FdSet& fds, const Table& table) {
  return table.SubsetByRows(SRepairVcApproxRows(fds, TableView(table)));
}

}  // namespace fdrepair
