#include "srepair/soft_cover.h"

#include <algorithm>
#include <utility>

#include "catalog/fd.h"
#include "common/status.h"
#include "graph/vc_lp.h"

namespace fdrepair {
namespace {

constexpr double kEps = 1e-12;
/// Pruning slack, matching the hard-side searches (solver_ilp.cc).
constexpr double kPruneEps = 1e-9;
/// The deadline clock read is amortized over a small node batch.
constexpr long kDeadlineCheckInterval = 128;

bool IsHardEdge(double penalty) { return penalty == kHardFdWeight; }

/// Evaluates a deletion set: node weight, paid penalties, totals.
void Score(const NodeWeightedGraph& graph, const std::vector<double>& penalties,
           const std::vector<char>& deleted, SoftCoverResult* out) {
  out->cover.clear();
  out->node_weight = 0;
  out->penalty = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (deleted[v]) {
      out->cover.push_back(v);
      out->node_weight += graph.weight(v);
    }
  }
  const auto& edges = graph.edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    if (!deleted[edges[e].first] && !deleted[edges[e].second]) {
      out->penalty += penalties[e];
    }
  }
  out->total = out->node_weight + out->penalty;
}

/// Greedily un-deletes nodes (heaviest first) whose return is feasible
/// (no hard edge to a kept node) and profitable (weight exceeds the
/// penalties of the soft edges that would go uncovered). The soft
/// counterpart of MinimizeCover / RestoreConsistentRows: never increases
/// the objective, deterministic.
void ImproveByRestoring(const NodeWeightedGraph& graph,
                        const std::vector<double>& penalties,
                        const std::vector<std::vector<std::pair<int, int>>>&
                            incident,
                        std::vector<char>* deleted) {
  std::vector<int> order;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if ((*deleted)[v]) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.weight(a) > graph.weight(b);
  });
  for (int v : order) {
    double exposed = 0;
    bool feasible = true;
    for (const auto& [u, e] : incident[v]) {
      if ((*deleted)[u]) continue;  // still covered by the other endpoint
      if (IsHardEdge(penalties[e])) {
        feasible = false;
        break;
      }
      exposed += penalties[e];
    }
    if (feasible && graph.weight(v) > exposed + kEps) (*deleted)[v] = 0;
  }
}

std::vector<std::vector<std::pair<int, int>>> BuildIncident(
    const NodeWeightedGraph& graph) {
  std::vector<std::vector<std::pair<int, int>>> incident(graph.num_nodes());
  const auto& edges = graph.edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    incident[edges[e].first].emplace_back(edges[e].second,
                                          static_cast<int>(e));
    incident[edges[e].second].emplace_back(edges[e].first,
                                           static_cast<int>(e));
  }
  return incident;
}

/// The exact keep/delete search.
class SoftSearch {
 public:
  SoftSearch(const NodeWeightedGraph& graph,
             const std::vector<double>& penalties,
             const std::vector<std::vector<std::pair<int, int>>>& incident,
             const SolverExec& exec)
      : graph_(graph), penalties_(penalties), incident_(incident),
        exec_(exec) {
    state_.assign(graph.num_nodes(), kUndecided);
    residual_w_.resize(graph.num_nodes());
    residual_p_.resize(graph.num_edges());
  }

  /// Runs to completion or limit expiry; `seed` is the starting incumbent.
  void Run(const std::vector<char>& seed, double seed_total) {
    std::fill(state_.begin(), state_.end(), kUndecided);
    best_deleted_ = seed;
    best_ = seed_total;
    if (!exec_.expired()) Search(0, 0);
  }

  const std::vector<char>& best_deleted() const { return best_deleted_; }
  bool completed() const { return !stopped_; }
  long nodes() const { return nodes_; }

  /// The residual-instance burn bound at the root (state all-undecided).
  double RootBound() {
    std::fill(state_.begin(), state_.end(), kUndecided);
    return Burn();
  }

 private:
  static constexpr char kUndecided = 0;
  static constexpr char kKept = 1;
  static constexpr char kDeleted = 2;

  /// Local-ratio burn over the constraints still open in the current
  /// state: a feasible dual packing of the residual instance, hence a
  /// lower bound on the cost still to be paid below this search node.
  double Burn() {
    for (int v = 0; v < graph_.num_nodes(); ++v) {
      residual_w_[v] = graph_.weight(v);
    }
    const auto& edges = graph_.edges();
    double burn = 0;
    for (size_t e = 0; e < edges.size(); ++e) {
      const auto [u, v] = edges[e];
      const char su = state_[u];
      const char sv = state_[v];
      if (su == kDeleted || sv == kDeleted) continue;  // covered
      if (su == kKept && sv == kKept) continue;  // penalty already paid
      if (su == kUndecided && sv == kUndecided) {
        residual_p_[e] = penalties_[e];
        const double eps = std::min(
            {residual_w_[u], residual_w_[v], residual_p_[e]});
        residual_w_[u] -= eps;
        residual_w_[v] -= eps;
        residual_p_[e] -= eps;
        burn += eps;
      } else {
        // One endpoint kept: delete the other or pay. Hard edges never
        // reach here — keeping an endpoint force-deletes the other side.
        const int open = su == kUndecided ? u : v;
        const double eps = std::min(residual_w_[open], penalties_[e]);
        residual_w_[open] -= eps;
        burn += eps;
      }
    }
    return burn;
  }

  void Search(int from, double cost) {
    if (stopped_) return;
    ++nodes_;
    if (exec_.node_budget >= 0 && nodes_ > exec_.node_budget) {
      stopped_ = true;
      return;
    }
    if (nodes_ % kDeadlineCheckInterval == 0 && exec_.expired()) {
      stopped_ = true;
      return;
    }
    int i = from;
    while (i < graph_.num_nodes() && state_[i] != kUndecided) ++i;
    if (i == graph_.num_nodes()) {
      if (cost < best_ - kPruneEps) {
        best_ = cost;
        for (int v = 0; v < graph_.num_nodes(); ++v) {
          best_deleted_[v] = state_[v] == kDeleted ? 1 : 0;
        }
      }
      return;
    }
    if (cost + Burn() >= best_ - kPruneEps) return;

    // Keep branch first: near-clean instances keep almost everything, so
    // good incumbents surface early. Keeping i prices its soft edges to
    // kept neighbors and force-deletes its undecided hard neighbors.
    {
      std::vector<int> trail;
      double delta = 0;
      bool feasible = true;
      for (const auto& [j, e] : incident_[i]) {
        if (state_[j] != kKept) continue;
        if (IsHardEdge(penalties_[e])) {
          feasible = false;  // would leave a hard edge uncovered
          break;
        }
        delta += penalties_[e];
      }
      if (feasible) {
        state_[i] = kKept;
        for (const auto& [j, e] : incident_[i]) {
          if (state_[j] == kUndecided && IsHardEdge(penalties_[e])) {
            state_[j] = kDeleted;
            trail.push_back(j);
            delta += graph_.weight(j);
          }
        }
        Search(i + 1, cost + delta);
        for (int j : trail) state_[j] = kUndecided;
        state_[i] = kUndecided;
      }
    }

    // Delete branch.
    state_[i] = kDeleted;
    Search(i + 1, cost + graph_.weight(i));
    state_[i] = kUndecided;
  }

  const NodeWeightedGraph& graph_;
  const std::vector<double>& penalties_;
  const std::vector<std::vector<std::pair<int, int>>>& incident_;
  const SolverExec& exec_;

  std::vector<char> state_;
  std::vector<char> best_deleted_;
  double best_ = 0;
  std::vector<double> residual_w_;
  std::vector<double> residual_p_;
  long nodes_ = 0;
  bool stopped_ = false;
};

/// The vertex-cover LP of the hard-edge subgraph: every feasible solution
/// covers all hard edges, so the LP optimum lower-bounds the objective
/// (soft penalties only add). Nodes keep their identity and weight; soft
/// edges are simply absent.
double HardSubgraphLpBound(const NodeWeightedGraph& graph,
                           const std::vector<double>& penalties) {
  NodeWeightedGraph hard(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    hard.set_weight(v, graph.weight(v));
  }
  const auto& edges = graph.edges();
  bool any = false;
  for (size_t e = 0; e < edges.size(); ++e) {
    if (IsHardEdge(penalties[e])) {
      hard.AddEdge(edges[e].first, edges[e].second);
      any = true;
    }
  }
  if (!any) return 0;
  return SolveVcLp(hard).value;
}

}  // namespace

SoftCoverResult SoftCoverLocalRatio(const NodeWeightedGraph& graph,
                                    const std::vector<double>& penalties) {
  FDR_CHECK_MSG(static_cast<int>(penalties.size()) == graph.num_edges(),
                "penalties misaligned with graph edges");
  const int n = graph.num_nodes();
  std::vector<double> residual_w(n);
  for (int v = 0; v < n; ++v) residual_w[v] = graph.weight(v);
  const auto& edges = graph.edges();
  double burn = 0;
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const double eps =
        std::min({residual_w[u], residual_w[v], penalties[e]});
    residual_w[u] -= eps;
    residual_w[v] -= eps;
    burn += eps;
  }
  // Delete every conflicted node whose residual hit zero; uncovered soft
  // edges (both endpoints still positive) pay their — fully burned —
  // penalty.
  std::vector<char> deleted(n, 0);
  for (int v = 0; v < n; ++v) {
    if (graph.Degree(v) > 0 && residual_w[v] <= kEps) deleted[v] = 1;
  }
  auto incident = BuildIncident(graph);
  ImproveByRestoring(graph, penalties, incident, &deleted);
  SoftCoverResult out;
  Score(graph, penalties, deleted, &out);
  out.lower_bound = burn;
  out.optimal = out.total <= burn + kPruneEps;
  out.ratio_bound = out.optimal ? 1.0 : 3.0;
  return out;
}

SoftCoverResult SoftCoverBranchAndBound(const NodeWeightedGraph& graph,
                                        const std::vector<double>& penalties,
                                        const SolverExec& exec,
                                        bool use_lp_bound) {
  FDR_CHECK_MSG(static_cast<int>(penalties.size()) == graph.num_edges(),
                "penalties misaligned with graph edges");
  SoftCoverResult seed = SoftCoverLocalRatio(graph, penalties);
  if (seed.optimal) {
    // The primal-dual pass met its own lower bound; no search needed.
    return seed;
  }
  auto incident = BuildIncident(graph);
  std::vector<char> seed_deleted(graph.num_nodes(), 0);
  for (int v : seed.cover) seed_deleted[v] = 1;

  SoftSearch search(graph, penalties, incident, exec);
  double root_bound = search.RootBound();
  if (use_lp_bound) {
    root_bound = std::max(root_bound, HardSubgraphLpBound(graph, penalties));
  }
  search.Run(seed_deleted, seed.total);

  SoftCoverResult out;
  std::vector<char> deleted = search.best_deleted();
  if (!search.completed()) {
    // Truncated: the incumbent may carry slack a restore pass removes.
    ImproveByRestoring(graph, penalties, incident, &deleted);
  }
  Score(graph, penalties, deleted, &out);
  out.nodes = search.nodes();
  out.optimal = search.completed();
  out.lower_bound = out.optimal ? out.total : std::max(root_bound,
                                                       seed.lower_bound);
  out.ratio_bound = out.optimal ? 1.0 : 3.0;
  return out;
}

}  // namespace fdrepair
