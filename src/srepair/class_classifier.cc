#include "srepair/class_classifier.h"

#include <sstream>

#include "srepair/simplification.h"

namespace fdrepair {

const char* HardGadgetToString(HardGadget gadget) {
  switch (gadget) {
    case HardGadget::kAtoCfromB:
      return "{A->C, B->C}";
    case HardGadget::kAtoBtoC:
      return "{A->B, B->C}";
    case HardGadget::kTriangle:
      return "{AB->C, AC->B, BC->A}";
    case HardGadget::kABtoCtoB:
      return "{AB->C, C->B}";
  }
  return "unknown";
}

std::string FdClassification::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "class " << fd_class << " (reduction from " <<
      HardGadgetToString(gadget) << ") with X1=" << schema.NamesOf(x1)
     << ", X2=" << schema.NamesOf(x2);
  if (x3) os << ", X3=" << schema.NamesOf(*x3);
  return os.str();
}

StatusOr<FdClassification> ClassifyNonSimplifiable(const FdSet& fds) {
  SimplificationStep step = NextSimplification(fds);
  if (step.kind != SimplificationKind::kStuck) {
    return Status::FailedPrecondition(
        "ClassifyNonSimplifiable requires a stuck FD set; got a set that "
        "simplifies via " +
        std::string(SimplificationKindToString(step.kind)));
  }
  const FdSet delta = step.before;  // trivial FDs removed

  // A stuck set is not a chain (Lemma A.22), so it has at least two local
  // minima with distinct lhs's. Pick the first such pair in canonical order.
  std::vector<Fd> minima = delta.LocalMinima();
  std::vector<AttrSet> lhss;
  for (const Fd& fd : minima) {
    bool seen = false;
    for (const AttrSet& lhs : lhss) {
      if (lhs == fd.lhs) seen = true;
    }
    if (!seen) lhss.push_back(fd.lhs);
  }
  if (lhss.size() < 2) {
    return Status::Internal(
        "stuck FD set with fewer than two distinct local minima: " +
        delta.ToString());
  }
  const AttrSet x1 = lhss[0];
  const AttrSet x2 = lhss[1];
  const AttrSet hat1 = delta.Closure(x1).Minus(x1);  // X̂1
  const AttrSet hat2 = delta.Closure(x2).Minus(x2);  // X̂2

  FdClassification out;
  const bool hat1_meets_x2 = hat1.Intersects(x2);
  const bool hat2_meets_x1 = hat2.Intersects(x1);

  if (!hat2_meets_x1 && !hat1_meets_x2) {
    if (!hat1.Intersects(hat2)) {
      // Class 1: X̂1 ∩ cl(X2) = ∅ and X̂2 ∩ cl(X1) = ∅ (Lemma A.14).
      out.fd_class = 1;
      out.gadget = HardGadget::kAtoCfromB;
      out.x1 = x1;
      out.x2 = x2;
      return out;
    }
    // Class 2: closures overlap outside the lhs's (Lemma A.15, case 1).
    out.fd_class = 2;
    out.gadget = HardGadget::kAtoBtoC;
    out.x1 = x1;
    out.x2 = x2;
    return out;
  }
  if (hat1_meets_x2 && !hat2_meets_x1) {
    // Class 3 (Lemma A.15, case 2) with roles as discovered.
    out.fd_class = 3;
    out.gadget = HardGadget::kAtoBtoC;
    out.x1 = x1;
    out.x2 = x2;
    return out;
  }
  if (!hat1_meets_x2 && hat2_meets_x1) {
    // Class 3 with the roles swapped so that X̂1 ∩ X2 ≠ ∅, X̂2 ∩ X1 = ∅.
    out.fd_class = 3;
    out.gadget = HardGadget::kAtoBtoC;
    out.x1 = x2;
    out.x2 = x1;
    return out;
  }

  // Both intersections nonempty.
  const bool x2_minus_x1_in_hat1 = x2.Minus(x1).IsSubsetOf(hat1);
  const bool x1_minus_x2_in_hat2 = x1.Minus(x2).IsSubsetOf(hat2);
  if (!x2_minus_x1_in_hat1) {
    // Class 5 oriented as Lemma A.17 expects: (X2 ∖ X1) ⊄ X̂1.
    out.fd_class = 5;
    out.gadget = HardGadget::kABtoCtoB;
    out.x1 = x1;
    out.x2 = x2;
    return out;
  }
  if (!x1_minus_x2_in_hat2) {
    out.fd_class = 5;
    out.gadget = HardGadget::kABtoCtoB;
    out.x1 = x2;
    out.x2 = x1;
    return out;
  }

  // Class 4: both containments hold; the set must contain a third local
  // minimum (otherwise a common lhs or an lhs marriage would exist and ∆
  // would not be stuck — Lemma A.22).
  for (size_t i = 2; i < lhss.size(); ++i) {
    out.fd_class = 4;
    out.gadget = HardGadget::kTriangle;
    out.x1 = x1;
    out.x2 = x2;
    out.x3 = lhss[i];
    return out;
  }
  return Status::Internal(
      "class-4 FD set without a third local minimum: " + delta.ToString());
}

}  // namespace fdrepair
