// ComputeSoftRepair: optimal subset repairs under soft (weighted) FDs.
//
// With per-FD weights ω ∈ (0, ∞] (catalog/fd.h), a repair keeps a subset
// J of the tuples and pays
//
//   cost(J) = Σ_{t ∉ J} w(t)  +  Σ_{soft φ} ω(φ) · #violating pairs of φ in J
//
// subject to J satisfying every *hard* (ω = ∞) FD. Hard repairs are the
// ω ≡ ∞ special case (violations priced out entirely), which is why
// ComputeSoftRepair with an all-hard set delegates to ComputeSRepair
// outright and is bit-identical to it — property-tested across FD sets,
// thread counts and solver backends.
//
// Planner structure:
//   - all-hard ∆: delegate to the subset planner (span recursion,
//     dichotomy routing, solver backends — everything);
//   - an attribute A contained in the lhs of EVERY FD (hard and soft):
//     the weighted common-lhs simplification. Two tuples violating any FD
//     agree on its lhs ⊇ {A}, so σ_{A=a} blocks are fully independent for
//     the soft objective too; recurse per block under ∆ − A (weights
//     preserved by MinusAttrs). The other Algorithm-1 simplifications
//     (consensus, lhs marriage) do NOT survive finite weights — their
//     block merges assume cross-block pairs can never cost anything,
//     which soft penalties break;
//   - otherwise: the soft conflicted core. Enumerate violating pairs per
//     FD, accumulate per-pair penalties (a pair violating a hard FD is a
//     hard edge; penalties of multiple soft FDs add), and hand the
//     resulting soft-cover instance (srepair/soft_cover.h) to a
//     SolverBackend::SolveSoftCover — "bnb" under `exact_guard`
//     conflicted tuples, the LP-bounded "ilp" beyond, or the explicitly
//     requested backend.
//
// The recursion is sequential (options.exec's pool only reaches the
// all-hard delegation path), so results are identical for every thread
// count by construction; the deadline is honored cooperatively at every
// recursion node and inside the solvers.

#ifndef FDREPAIR_SREPAIR_SOFT_REPAIR_H_
#define FDREPAIR_SREPAIR_SOFT_REPAIR_H_

#include <string>
#include <utility>

#include "catalog/fdset.h"
#include "common/status.h"
#include "srepair/planner.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace fdrepair {

struct SoftRepairOptions {
  /// Solver backend by registry name; must be soft-capable when the
  /// instance has finite-weight violations ("local-ratio", "bnb", "ilp",
  /// or a soft-capable external registration). Empty: auto-route.
  std::string backend;
  /// Auto-routing upgrades from "bnb" to the LP-bounded "ilp" above this
  /// many conflicted tuples per core (mirrors SRepairOptions).
  int exact_guard = 40;
  /// Branch-node budget per core; < 0 lets the planner choose (unlimited
  /// for "bnb" cores, self-limited for auto-routed "ilp" cores exactly as
  /// the hard planner's kAuto).
  long node_budget = -1;
  /// When > 0: fail with kResourceExhausted unless the certified ratio
  /// (min of the a-priori bound and cost / proved lower bound) is at most
  /// this. 0 disables the gate.
  double max_ratio = 0;
  /// Deadline (cooperative, all routes) and — on the all-hard delegation
  /// path only — the thread pool for the span recursion's block fan-out.
  OptSRepairExec exec;
};

struct SoftRepairResult {
  explicit SoftRepairResult(Table repair_in) : repair(std::move(repair_in)) {}

  /// The kept subset, over the input table's schema and pool.
  Table repair;
  /// deleted_weight + violation_cost — the soft objective.
  double cost = 0;
  /// Σ weights of the deleted tuples (= dist_sub(repair, table)).
  double deleted_weight = 0;
  /// Σ ω(φ) · #violating pairs of φ inside the repair, over soft FDs.
  double violation_cost = 0;
  /// True iff `cost` is provably minimal.
  bool optimal = false;
  /// A-priori guarantee: cost <= ratio_bound · optimum (1 when optimal;
  /// 3 from the soft local-ratio template otherwise, 2 on the all-hard
  /// delegation path's approximate routes).
  double ratio_bound = 1;
  /// Human-readable route: "soft[<subset route>]" on the all-hard
  /// delegation path, "soft[peels=<p>,cores=<c>]" otherwise.
  std::string route;
  /// Registry names of the solver backends that ran, "+"-joined when
  /// different cores routed differently (empty: no core needed solving).
  std::string backend;
  /// Proved lower bound on the optimal cost (equals `cost` when optimal).
  double lower_bound = 0;
  /// cost / lower_bound, the per-instance certified ratio (1 when
  /// optimal).
  double achieved_ratio = 1;
};

/// Plans and executes a soft repair of `table` under ∆. All-hard ∆
/// delegates to ComputeSRepair (bit-identical results). Fails with
/// kInvalidArgument for unknown or non-soft-capable backends (when finite
/// violations exist), kDeadlineExceeded on expiry before a result, and
/// kResourceExhausted when max_ratio rejects the certificate.
StatusOr<SoftRepairResult> ComputeSoftRepair(
    const FdSet& fds, const Table& table,
    const SoftRepairOptions& options = {});

/// Σ ω(φ) · #violating pairs of φ within `view`, over the finite-weight
/// FDs of ∆ (hard FDs contribute nothing — callers wanting hard
/// satisfaction use Satisfies). O(#FDs · n) via per-lhs grouping.
double SoftViolationCost(const FdSet& fds, const TableView& view);

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_SOFT_REPAIR_H_
