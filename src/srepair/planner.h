// SRepairPlanner: the user-facing facade for subset repairing.
//
// Like a query planner, it first classifies (Schema, ∆) — the dichotomy of
// Theorem 3.4, with the full simplification trace and, on the hard side, the
// Figure-2 class — then picks an execution route:
//   polynomial side -> OptSRepair (optimal);
//   hard side       -> a SolverBackend (srepair/solver_backend.h) working
//                      the Proposition-3.3 vertex-cover reduction.
//
// Hard-side backends are selected through the registry: explicitly via
// SRepairOptions::backend, or implicitly by the strategy — kAuto runs the
// exact branch and bound up to `exact_guard` conflicted tuples and the
// ILP-style branch and bound (budgeted, degrading to a 2-approximate
// incumbent) beyond; kExactOnly insists on a proved optimum; kApproxOnly
// always takes the fused local-ratio route. Every result carries solver
// provenance: the backend name, a proved lower bound on the optimal
// distance, and the achieved ratio certified by that bound.

#ifndef FDREPAIR_SREPAIR_PLANNER_H_
#define FDREPAIR_SREPAIR_PLANNER_H_

#include <optional>
#include <string>

#include "srepair/class_classifier.h"
#include "srepair/opt_srepair.h"
#include "srepair/osr_succeeds.h"
#include "storage/distance.h"
#include "storage/table.h"

namespace fdrepair {

/// The data-complexity verdict for computing an optimal S-repair under ∆.
struct SRepairVerdict {
  /// True: polynomial time (OptSRepair succeeds). False: APX-complete.
  bool polynomial = false;
  /// The Algorithm-2 run backing the verdict.
  OsrTrace trace;
  /// On the hard side: the Figure-2 class of the stuck residual set.
  std::optional<FdClassification> hard_class;

  std::string ToString(const Schema& schema) const;
};

/// Classifies ∆ (Theorem 3.4 + Figure 2). Pure function of the FD set.
SRepairVerdict ClassifySRepair(const FdSet& fds);

/// Execution strategy selection. Strategies are aliases over the solver
/// registry; SRepairOptions::backend overrides the hard-side choice.
enum class SRepairStrategy {
  /// OptSRepair when polynomial; on the hard side, exact branch and bound
  /// up to `exact_guard` conflicted tuples, then the budgeted ILP branch
  /// and bound (its incumbent — still within factor 2 — is returned when
  /// the budget or deadline expires before optimality is proved).
  kAuto,
  /// Insist on a proved optimum: fails with kResourceExhausted when the
  /// node budget runs out first, kDeadlineExceeded when the deadline does.
  kExactOnly,
  /// Always run the fused local-ratio 2-approximation (even on the
  /// polynomial side).
  kApproxOnly,
};

struct SRepairOptions {
  SRepairStrategy strategy = SRepairStrategy::kAuto;
  /// kAuto upgrades from the plain exact branch and bound to the
  /// LP-guided ILP backend above this many conflicted tuples.
  int exact_guard = 40;
  /// Hard-side solver backend by registry name ("local-ratio", "bnb",
  /// "ilp", "lp-rounding", or an externally registered one). Empty: the
  /// strategy picks. Unknown names fail with kInvalidArgument.
  std::string backend;
  /// Branch-node budget for the search backends; < 0 lets the planner
  /// choose (unlimited, except for kAuto's ILP fallback which self-limits
  /// so oversized instances degrade to the incumbent instead of hanging).
  long node_budget = -1;
  /// When > 0: fail with kResourceExhausted unless the result's proved
  /// ratio_bound is at most this (e.g. 1.0 demands a certified optimum,
  /// 1.1 accepts a certified 10% gap). 0 disables the check.
  double max_ratio = 0;
  /// Thread pool + deadline for all routes (see opt_srepair.h). The
  /// deadline is cooperative everywhere: OptSRepair checks it at every
  /// recursion node, and the search backends check it during node
  /// expansion, degrading to their incumbent (kAuto) or to
  /// kDeadlineExceeded (kExactOnly) instead of overshooting.
  OptSRepairExec exec;

  // Plan capture & delta splicing (polynomial route only; see
  // opt_srepair.h). All pointers are borrowed for the duration of the call
  // and must not be shared across concurrent ComputeSRepair calls. Solver
  // backends and the approximate routes ignore them — hard-side results
  // carry no plan, so mutations there always trigger a full re-solve.

  /// When set and the OptSRepair route runs, receives the run's top-level
  /// plan (capture->spliceable says whether it can seed a delta run).
  SRepairPlanCache* capture = nullptr;
  /// When set (with `delta_updated_ids`) and the OptSRepair route runs, the
  /// repair is computed by dirty-block splicing against this captured base
  /// plan; non-spliceable instances silently fall back to the cold
  /// recursion (still filling `capture`). Results are bit-identical to a
  /// cold run either way.
  const SRepairPlanCache* delta_base = nullptr;
  /// Tuple ids whose content changed in place since `delta_base` was
  /// captured (inserts/deletes are detected structurally). Required
  /// non-null when delta_base is set.
  const std::vector<TupleId>* delta_updated_ids = nullptr;
  /// Optional clean/dirty block counts of the splice that ran.
  SRepairSpliceStats* splice_stats = nullptr;
};

/// Which algorithm actually produced a repair.
enum class SRepairAlgorithm {
  kOptSRepair,
  kExactBranchAndBound,
  kIlpBranchAndBound,
  kVertexCover2Approx,
  kLpRounding,
};

const char* SRepairAlgorithmToString(SRepairAlgorithm algorithm);

struct SRepairResult {
  Table repair;
  /// dist_sub(repair, T).
  double distance = 0;
  /// True iff `repair` is provably an *optimal* S-repair.
  bool optimal = false;
  /// A-priori upper bound on distance / optimal distance (1 when optimal).
  double ratio_bound = 1;
  SRepairAlgorithm algorithm = SRepairAlgorithm::kOptSRepair;
  /// Solver provenance: the registry name of the backend that produced the
  /// repair (empty on the polynomial OptSRepair route).
  std::string backend;
  /// Proved lower bound on the optimal distance (equals `distance` when
  /// optimal; the dual packing or LP value otherwise).
  double lower_bound = 0;
  /// distance / lower_bound — the per-instance certified ratio, usually
  /// far below ratio_bound (1 when optimal).
  double achieved_ratio = 1;
  SRepairVerdict verdict;
};

/// Plans and executes a subset repair of `table` under ∆.
StatusOr<SRepairResult> ComputeSRepair(const FdSet& fds, const Table& table,
                                       const SRepairOptions& options = {});

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_PLANNER_H_
