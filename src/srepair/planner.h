// SRepairPlanner: the user-facing facade for subset repairing.
//
// Like a query planner, it first classifies (Schema, ∆) — the dichotomy of
// Theorem 3.4, with the full simplification trace and, on the hard side, the
// Figure-2 class — then picks an execution route:
//   polynomial side  -> OptSRepair (optimal);
//   hard side, small -> exact branch & bound (optimal, exponential);
//   hard side, large -> local-ratio vertex cover (2-optimal, Prop 3.3).

#ifndef FDREPAIR_SREPAIR_PLANNER_H_
#define FDREPAIR_SREPAIR_PLANNER_H_

#include <optional>
#include <string>

#include "srepair/class_classifier.h"
#include "srepair/opt_srepair.h"
#include "srepair/osr_succeeds.h"
#include "storage/distance.h"
#include "storage/table.h"

namespace fdrepair {

/// The data-complexity verdict for computing an optimal S-repair under ∆.
struct SRepairVerdict {
  /// True: polynomial time (OptSRepair succeeds). False: APX-complete.
  bool polynomial = false;
  /// The Algorithm-2 run backing the verdict.
  OsrTrace trace;
  /// On the hard side: the Figure-2 class of the stuck residual set.
  std::optional<FdClassification> hard_class;

  std::string ToString(const Schema& schema) const;
};

/// Classifies ∆ (Theorem 3.4 + Figure 2). Pure function of the FD set.
SRepairVerdict ClassifySRepair(const FdSet& fds);

/// Execution strategy selection.
enum class SRepairStrategy {
  /// OptSRepair when polynomial, else exact if small enough, else approx.
  kAuto,
  /// Insist on an optimum (fails on large hard instances).
  kExactOnly,
  /// Always run the 2-approximation (even on the polynomial side).
  kApproxOnly,
};

struct SRepairOptions {
  SRepairStrategy strategy = SRepairStrategy::kAuto;
  /// kAuto falls back from exact to approximate above this many conflicted
  /// tuples on the hard side.
  int exact_guard = 40;
  /// Thread pool + deadline for the OptSRepair route (see opt_srepair.h).
  /// The exact and approximate routes only honor exec.deadline at entry
  /// (admission control), not mid-search.
  OptSRepairExec exec;
};

/// Which algorithm actually produced a repair.
enum class SRepairAlgorithm {
  kOptSRepair,
  kExactBranchAndBound,
  kVertexCover2Approx,
};

const char* SRepairAlgorithmToString(SRepairAlgorithm algorithm);

struct SRepairResult {
  Table repair;
  /// dist_sub(repair, T).
  double distance = 0;
  /// True iff `repair` is provably an *optimal* S-repair.
  bool optimal = false;
  /// Upper bound on distance / optimal distance (1 when optimal, else 2).
  double ratio_bound = 1;
  SRepairAlgorithm algorithm = SRepairAlgorithm::kOptSRepair;
  SRepairVerdict verdict;
};

/// Plans and executes a subset repair of `table` under ∆.
StatusOr<SRepairResult> ComputeSRepair(const FdSet& fds, const Table& table,
                                       const SRepairOptions& options = {});

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_PLANNER_H_
