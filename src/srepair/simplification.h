// The three FD-set simplifications driving both Algorithm 1 (OptSRepair)
// and Algorithm 2 (OSRSucceeds): common lhs, consensus FD, lhs marriage —
// applied in exactly that priority order, after removing trivial FDs.

#ifndef FDREPAIR_SREPAIR_SIMPLIFICATION_H_
#define FDREPAIR_SREPAIR_SIMPLIFICATION_H_

#include <string>
#include <vector>

#include "catalog/fdset.h"

namespace fdrepair {

/// Which rule fired (or that none applies).
enum class SimplificationKind {
  /// ∆ became trivial: successful termination.
  kTrivialTermination,
  /// A common lhs attribute A was removed: ∆ := ∆ − A (Subroutine 1).
  kCommonLhs,
  /// A consensus FD ∅ → A was consumed: ∆ := ∆ − A (Subroutine 2).
  kConsensus,
  /// An lhs marriage (X1, X2) was consumed: ∆ := ∆ − X1X2 (Subroutine 3).
  kLhsMarriage,
  /// No rule applies and ∆ is nontrivial: the dichotomy's hard side.
  kStuck,
};

const char* SimplificationKindToString(SimplificationKind kind);

/// One step of the simplification chain (the chains printed in Example 3.5).
struct SimplificationStep {
  SimplificationKind kind = SimplificationKind::kStuck;
  /// Attributes removed from ∆ by this step (empty for termination/stuck).
  AttrSet removed;
  /// For kLhsMarriage: the married pair; otherwise empty sets.
  AttrSet marriage_x1;
  AttrSet marriage_x2;
  /// ∆ before (trivial FDs already dropped) and after the step.
  FdSet before;
  FdSet after;

  /// "common lhs A: {A -> B; ...} => {B -> ...}" with schema names.
  std::string ToString(const Schema& schema) const;
};

/// Computes the next applicable rule for ∆ per Algorithm 1's order.
/// Trivial FDs are removed from the reported `before` set first; the caller
/// should continue from `after`.
SimplificationStep NextSimplification(const FdSet& fds);

/// The full simplification chain of a ∆, computed once up front.
///
/// §3.2: the chain — and hence the success of OptSRepair — depends only on
/// ∆, never on T. Every block at recursion depth d therefore shares the
/// same residual ∆, so the recursion indexes a precomputed chain by depth
/// instead of re-running NextSimplification inside every block (the chain
/// is O(#attributes) long; blocks number in the thousands).
class SimplificationChain {
 public:
  /// steps()[0] = NextSimplification(∆); steps()[d + 1] continues from
  /// steps()[d].after. The final step — the only non-consuming one — is
  /// kTrivialTermination or kStuck.
  static SimplificationChain Compute(const FdSet& fds);

  const std::vector<SimplificationStep>& steps() const { return steps_; }

  /// The step applied at recursion depth `depth` (0-based). Valid depths
  /// never exceed the chain: recursion stops at the terminal step.
  const SimplificationStep& at(int depth) const {
    FDR_DCHECK_MSG(depth >= 0 && depth < static_cast<int>(steps_.size()),
                   "depth=" << depth << " chain length=" << steps_.size());
    return steps_[depth];
  }

  /// Number of steps, terminal step included.
  int length() const { return static_cast<int>(steps_.size()); }

  /// True iff the chain ends in trivial termination — by Theorem 3.4 this
  /// is exactly OSRSucceeds(∆).
  bool succeeds() const {
    return steps_.back().kind == SimplificationKind::kTrivialTermination;
  }

 private:
  std::vector<SimplificationStep> steps_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_SREPAIR_SIMPLIFICATION_H_
