#include "srepair/opt_srepair.h"

#include <algorithm>
#include <unordered_map>

#include "graph/bipartite_matching.h"
#include "srepair/osr_succeeds.h"
#include "srepair/simplification.h"

namespace fdrepair {
namespace {

// Recursive body of Algorithm 1. Appends the kept dense row positions to
// `kept` and adds their total weight to `kept_weight`.
Status Recurse(const FdSet& fds, const TableView& view, std::vector<int>* kept,
               double* kept_weight) {
  if (view.empty()) return Status::OK();

  SimplificationStep step = NextSimplification(fds);
  switch (step.kind) {
    case SimplificationKind::kTrivialTermination: {
      // Line 2: ∆ trivial — T is its own optimal S-repair.
      for (int i = 0; i < view.num_tuples(); ++i) {
        kept->push_back(view.row(i));
        *kept_weight += view.weight(i);
      }
      return Status::OK();
    }
    case SimplificationKind::kCommonLhs: {
      // Subroutine 1: group by the common lhs attribute and take the union
      // of the groups' optimal S-repairs under ∆ − A. Tuples in different
      // groups disagree on A ∈ lhs of every FD, so the union is consistent.
      for (const TableView& group : view.GroupBy(step.removed)) {
        FDR_RETURN_IF_ERROR(Recurse(step.after, group, kept, kept_weight));
      }
      return Status::OK();
    }
    case SimplificationKind::kConsensus: {
      // Subroutine 2: all surviving tuples must agree on A, so solve each
      // A-group independently and keep only the heaviest repair.
      std::vector<int> best_rows;
      double best_weight = -1;
      for (const TableView& group : view.GroupBy(step.removed)) {
        std::vector<int> group_rows;
        double group_weight = 0;
        FDR_RETURN_IF_ERROR(
            Recurse(step.after, group, &group_rows, &group_weight));
        if (group_weight > best_weight) {
          best_weight = group_weight;
          best_rows = std::move(group_rows);
        }
      }
      if (best_weight > 0) {
        kept->insert(kept->end(), best_rows.begin(), best_rows.end());
        *kept_weight += best_weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kLhsMarriage: {
      // Subroutine 3. Blocks are the distinct (a1, a2) ∈ π_{X1X2}T; each
      // solved under ∆ − X1X2. A consistent subset may keep, for any X1
      // value, tuples of at most one X2 value and vice versa (cl(X1) =
      // cl(X2) ⊇ X1X2), so block selection is a bipartite matching between
      // π_X1 T and π_X2 T, maximizing kept weight.
      const AttrSet x1 = step.marriage_x1;
      const AttrSet x2 = step.marriage_x2;

      struct Block {
        std::vector<int> rows;
        double weight = 0;
        int left = -1;
        int right = -1;
      };
      std::vector<TableView> groups = view.GroupBy(x1.Union(x2));
      std::vector<Block> blocks(groups.size());
      std::unordered_map<ProjectionKey, int, ProjectionKeyHash> left_index;
      std::unordered_map<ProjectionKey, int, ProjectionKeyHash> right_index;
      for (size_t b = 0; b < groups.size(); ++b) {
        FDR_RETURN_IF_ERROR(Recurse(step.after, groups[b], &blocks[b].rows,
                                    &blocks[b].weight));
        const Tuple& witness = groups[b].tuple(0);
        ProjectionKey key1 = ProjectTuple(witness, x1);
        ProjectionKey key2 = ProjectTuple(witness, x2);
        auto [it1, inserted1] =
            left_index.emplace(std::move(key1),
                               static_cast<int>(left_index.size()));
        auto [it2, inserted2] =
            right_index.emplace(std::move(key2),
                                static_cast<int>(right_index.size()));
        blocks[b].left = it1->second;
        blocks[b].right = it2->second;
      }
      std::vector<BipartiteEdge> edges;
      edges.reserve(blocks.size());
      for (size_t b = 0; b < blocks.size(); ++b) {
        edges.push_back(BipartiteEdge{blocks[b].left, blocks[b].right,
                                      blocks[b].weight});
      }
      MatchingResult matching = MaxWeightBipartiteMatching(
          static_cast<int>(left_index.size()),
          static_cast<int>(right_index.size()), edges);
      // Blocks are keyed by their unique (left, right) pair.
      std::unordered_map<uint64_t, const Block*> block_of;
      for (const Block& block : blocks) {
        uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(block.left)) << 32) |
            static_cast<uint32_t>(block.right);
        block_of[key] = &block;
      }
      for (const auto& [left, right] : matching.pairs) {
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(left))
                        << 32) |
                       static_cast<uint32_t>(right);
        const Block* block = block_of.at(key);
        kept->insert(kept->end(), block->rows.begin(), block->rows.end());
        *kept_weight += block->weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kStuck: {
      return Status::FailedPrecondition(
          "OptSRepair fails: FD set is not simplifiable (computing an "
          "optimal S-repair is APX-complete for it): " +
          step.before.ToString());
    }
  }
  return Status::Internal("unreachable simplification kind");
}

}  // namespace

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view) {
  // §3.2: "the success or failure of OptSRepair(∆, T) depends only on ∆,
  // and not on T" — enforce that by running Algorithm 2 up front, so small
  // or empty tables cannot mask a non-simplifiable ∆.
  if (!OsrSucceeds(fds)) {
    return Status::FailedPrecondition(
        "OptSRepair fails: OSRSucceeds is false for ∆ = " + fds.ToString() +
        " (computing an optimal S-repair is APX-complete; Theorem 3.4)");
  }
  std::vector<int> kept;
  double kept_weight = 0;
  FDR_RETURN_IF_ERROR(Recurse(fds, view, &kept, &kept_weight));
  std::sort(kept.begin(), kept.end());
  return kept;
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table) {
  FDR_ASSIGN_OR_RETURN(std::vector<int> rows,
                       OptSRepairRows(fds, TableView(table)));
  return table.SubsetByRows(rows);
}

}  // namespace fdrepair
