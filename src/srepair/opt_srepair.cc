#include "srepair/opt_srepair.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "engine/block_partitioner.h"
#include "engine/thread_pool.h"
#include "graph/bipartite_matching.h"
#include "srepair/osr_succeeds.h"
#include "srepair/simplification.h"
#include "storage/row_span.h"

namespace fdrepair {
namespace {

/// One block's solution: its kept rows and their weight, or a failure.
struct BlockResult {
  std::vector<int> rows;
  double weight = 0;
  Status status;
};

/// Per-thread scratch arena for the recursion: grouping buffers plus a
/// freelist of BlockResult vectors, so steady-state recursion performs no
/// heap allocation beyond amortized capacity growth. thread_local because
/// pool workers (and the calling thread, which helps via ParallelFor) each
/// need their own; no scratch state is live across nested calls, so a
/// thread helping with an unrelated block while blocked in ParallelFor
/// reuses the same arena safely. Leases always release on the acquiring
/// thread, into the scratch they came from (each Recurse frame runs
/// start-to-finish on one thread); neither scratch nor freelists are
/// thread-safe, so never hand a lease to another thread.
///
/// Deliberate trade-off: arenas retain their peak capacity for the
/// thread's lifetime (that retention IS the allocation win on repeated
/// requests), so a long-lived server that once repaired a huge table keeps
/// O(peak rows) ints per worker thread. The freelists themselves stay
/// short — bounded by the recursion depth ever reached on that thread.
struct RecursionScratch {
  GroupScratch groups;
  std::vector<std::vector<BlockResult>> free_results;

  /// A result vector with at least `num_blocks` reset entries. The vector
  /// is never shrunk, so the row buffers of high-index entries keep their
  /// capacity across rounds; callers must only read the first num_blocks.
  std::vector<BlockResult> AcquireResults(int num_blocks) {
    std::vector<BlockResult> results;
    if (!free_results.empty()) {
      results = std::move(free_results.back());
      free_results.pop_back();
    }
    if (static_cast<int>(results.size()) < num_blocks) {
      results.resize(num_blocks);
    }
    for (int b = 0; b < num_blocks; ++b) {
      results[b].rows.clear();
      results[b].weight = 0;
      results[b].status = Status::OK();
    }
    return results;
  }
  void ReleaseResults(std::vector<BlockResult> results) {
    free_results.push_back(std::move(results));
  }
};

RecursionScratch& LocalScratch() {
  thread_local RecursionScratch scratch;
  return scratch;
}

/// RAII arena leases: buffers go back to the freelist on scope exit, so the
/// recursion arms may return early (including through FDR_RETURN_IF_ERROR)
/// without leaking buffers out of the arena. Destruction happens on the
/// thread that acquired, since Recurse runs each node on one thread.
class ScopedIntBuffer {
 public:
  explicit ScopedIntBuffer(GroupScratch* groups)
      : groups_(groups), buffer_(groups->AcquireIntBuffer()) {}
  ~ScopedIntBuffer() { groups_->ReleaseIntBuffer(std::move(buffer_)); }
  ScopedIntBuffer(const ScopedIntBuffer&) = delete;
  ScopedIntBuffer& operator=(const ScopedIntBuffer&) = delete;

  std::vector<int>& operator*() { return buffer_; }
  std::vector<int>* operator->() { return &buffer_; }

 private:
  GroupScratch* groups_;
  std::vector<int> buffer_;
};

class ScopedResults {
 public:
  ScopedResults(RecursionScratch* scratch, int num_blocks)
      : scratch_(scratch), results_(scratch->AcquireResults(num_blocks)) {}
  ~ScopedResults() { scratch_->ReleaseResults(std::move(results_)); }
  ScopedResults(const ScopedResults&) = delete;
  ScopedResults& operator=(const ScopedResults&) = delete;

  std::vector<BlockResult>& operator*() { return results_; }
  BlockResult& operator[](int b) { return results_[b]; }

 private:
  RecursionScratch* scratch_;
  std::vector<BlockResult> results_;
};

/// Everything constant across one OptSRepairRows recursion.
struct RecursionContext {
  const SimplificationChain* chain;
  const OptSRepairExec* exec;
};

Status Recurse(const RecursionContext& ctx, int depth, RowSpan span,
               std::vector<int>* kept, double* kept_weight);

// Solves every block sub-span at chain depth `depth` into block-local
// accumulators — sequentially, or on exec.pool when the parent span is
// large enough to amortize the fan-out. Returns the first failing block's
// status in block order; on success `results` holds one entry per block.
// Callers merge in block order, so the reduction (including floating-point
// weight sums) is the same expression tree for every thread count.
//
// The sequential path deliberately buffers per block too (instead of
// appending straight into the caller's accumulators, as the pre-engine
// code did): appending directly would sum weights leaf-by-leaf across
// block boundaries, a *different* floating-point expression tree than the
// partial-sums-then-merge shape of the parallel path, and the
// bit-identical-across-thread-counts guarantee would be lost on weight
// ties. The cost is one extra append of each kept row per recursion level.
//
// Blocks are disjoint sub-windows of one shared row-index buffer: child
// recursions permute only their own window, so concurrent blocks never
// touch the same buffer element.
template <typename BlockSpanFn>
Status SolveBlocks(const RecursionContext& ctx, int depth, int num_blocks,
                   const BlockSpanFn& block_span, int parent_tuples,
                   std::vector<BlockResult>* results) {
  auto solve_one = [&](int b) {
    BlockResult& result = (*results)[b];
    result.status =
        Recurse(ctx, depth, block_span(b), &result.rows, &result.weight);
  };
  const OptSRepairExec& exec = *ctx.exec;
  const bool parallel = exec.pool != nullptr && exec.pool->num_threads() > 1 &&
                        num_blocks > 1 &&
                        parent_tuples >= exec.parallel_cutoff;
  if (parallel) {
    exec.pool->ParallelFor(num_blocks, solve_one);
    for (int b = 0; b < num_blocks; ++b) {
      FDR_RETURN_IF_ERROR((*results)[b].status);
    }
  } else {
    for (int b = 0; b < num_blocks; ++b) {
      solve_one(b);
      FDR_RETURN_IF_ERROR((*results)[b].status);
    }
  }
  return Status::OK();
}

/// The sub-window of `span` holding block b of a grouping with the given
/// end offsets.
RowSpan BlockSpan(RowSpan span, const std::vector<int>& group_ends, int b) {
  const int begin = b == 0 ? 0 : group_ends[b - 1];
  return span.Subspan(begin, group_ends[b] - begin);
}

// Recursive body of Algorithm 1 over the chain step at `depth`. Appends the
// kept dense row positions to `kept` and adds their total weight to
// `kept_weight`. May permute `span`'s window (block formation), but blocks
// and their recursive repairs are independent of row order within a window.
Status Recurse(const RecursionContext& ctx, int depth, RowSpan span,
               std::vector<int>* kept, double* kept_weight) {
  if (span.empty()) return Status::OK();
  const OptSRepairExec& exec = *ctx.exec;
  if (exec.has_deadline() &&
      std::chrono::steady_clock::now() >= exec.deadline) {
    return Status::DeadlineExceeded(
        "OptSRepair deadline expired mid-recursion");
  }

  const SimplificationStep& step = ctx.chain->at(depth);
  if (span.num_tuples() == 1 && step.kind != SimplificationKind::kStuck) {
    // A single tuple cannot violate any FD, so it is its own optimal
    // S-repair under every simplifiable ∆ — no need to walk the rest of
    // the chain one singleton block per level. This keeps the recursion's
    // call count proportional to the number of non-trivial blocks (the
    // deep-chain profile was dominated by singleton-span bookkeeping).
    // Bit-identical to the full walk: the same row is kept, and its weight
    // reaches the accumulator as the same single term.
    kept->push_back(span.row(0));
    *kept_weight += span.weight(0);
    return Status::OK();
  }
  switch (step.kind) {
    case SimplificationKind::kTrivialTermination: {
      // Line 2: ∆ trivial — T is its own optimal S-repair.
      for (int i = 0; i < span.num_tuples(); ++i) {
        kept->push_back(span.row(i));
        *kept_weight += span.weight(i);
      }
      return Status::OK();
    }
    case SimplificationKind::kCommonLhs: {
      // Subroutine 1: group by the common lhs attribute and take the union
      // of the groups' optimal S-repairs under ∆ − A. Tuples in different
      // groups disagree on A ∈ lhs of every FD, so the union is consistent.
      RecursionScratch& scratch = LocalScratch();
      ScopedIntBuffer group_ends(&scratch.groups);
      PartitionSpanByAttrs(span, step.removed, &scratch.groups, &*group_ends);
      const int num_blocks = static_cast<int>(group_ends->size());
      if (num_blocks == span.num_tuples()) {
        // Every block is a single tuple, and a single tuple is always its
        // own optimal S-repair — the union keeps everything. Same rows and
        // the same left-to-right weight sum as the block-by-block merge.
        for (int i = 0; i < span.num_tuples(); ++i) {
          kept->push_back(span.row(i));
          *kept_weight += span.weight(i);
        }
        return Status::OK();
      }
      ScopedResults results(&scratch, num_blocks);
      FDR_RETURN_IF_ERROR(SolveBlocks(
          ctx, depth + 1, num_blocks,
          [&](int b) { return BlockSpan(span, *group_ends, b); },
          span.num_tuples(), &*results));
      for (int b = 0; b < num_blocks; ++b) {
        kept->insert(kept->end(), results[b].rows.begin(),
                     results[b].rows.end());
        *kept_weight += results[b].weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kConsensus: {
      // Subroutine 2: all surviving tuples must agree on A, so solve each
      // A-group independently and keep only the heaviest repair.
      RecursionScratch& scratch = LocalScratch();
      ScopedIntBuffer group_ends(&scratch.groups);
      PartitionSpanByAttrs(span, step.removed, &scratch.groups, &*group_ends);
      const int num_blocks = static_cast<int>(group_ends->size());
      if (num_blocks == span.num_tuples()) {
        // All blocks are single tuples: the consensus repair is the
        // heaviest tuple, first in span order on ties — exactly what the
        // block merge below computes via `>` against the running best.
        int best = 0;
        for (int i = 1; i < span.num_tuples(); ++i) {
          if (span.weight(i) > span.weight(best)) best = i;
        }
        kept->push_back(span.row(best));
        *kept_weight += span.weight(best);
        return Status::OK();
      }
      ScopedResults results(&scratch, num_blocks);
      FDR_RETURN_IF_ERROR(SolveBlocks(
          ctx, depth + 1, num_blocks,
          [&](int b) { return BlockSpan(span, *group_ends, b); },
          span.num_tuples(), &*results));
      const BlockResult* best = nullptr;
      for (int b = 0; b < num_blocks; ++b) {
        if (best == nullptr || results[b].weight > best->weight) {
          best = &results[b];
        }
      }
      if (best != nullptr && best->weight > 0) {
        kept->insert(kept->end(), best->rows.begin(), best->rows.end());
        *kept_weight += best->weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kLhsMarriage: {
      // Subroutine 3. Blocks are the distinct (a1, a2) ∈ π_{X1X2}T; each
      // solved under ∆ − X1X2. A consistent subset may keep, for any X1
      // value, tuples of at most one X2 value and vice versa (cl(X1) =
      // cl(X2) ⊇ X1X2), so block selection is a bipartite matching between
      // π_X1 T and π_X2 T, maximizing kept weight.
      RecursionScratch& scratch = LocalScratch();
      ScopedIntBuffer group_ends(&scratch.groups);
      ScopedIntBuffer left(&scratch.groups);
      ScopedIntBuffer right(&scratch.groups);
      int num_left = 0;
      int num_right = 0;
      PartitionSpanForMarriage(span, step.marriage_x1, step.marriage_x2,
                               &scratch.groups, &*group_ends, &*left, &*right,
                               &num_left, &num_right);
      const int num_blocks = static_cast<int>(group_ends->size());
      ScopedResults results(&scratch, num_blocks);
      FDR_RETURN_IF_ERROR(SolveBlocks(
          ctx, depth + 1, num_blocks,
          [&](int b) { return BlockSpan(span, *group_ends, b); },
          span.num_tuples(), &*results));
      std::vector<BipartiteEdge> edges;
      edges.reserve(num_blocks);
      for (int b = 0; b < num_blocks; ++b) {
        edges.push_back(
            BipartiteEdge{(*left)[b], (*right)[b], results[b].weight});
      }
      MatchingResult matching =
          MaxWeightBipartiteMatching(num_left, num_right, edges);
      // Blocks are keyed by their unique (left, right) pair.
      std::unordered_map<uint64_t, int> block_of;
      block_of.reserve(num_blocks);
      for (int b = 0; b < num_blocks; ++b) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>((*left)[b])) << 32) |
            static_cast<uint32_t>((*right)[b]);
        block_of[key] = b;
      }
      for (const auto& [l, r] : matching.pairs) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(l)) << 32) |
            static_cast<uint32_t>(r);
        const BlockResult& result = results[block_of.at(key)];
        kept->insert(kept->end(), result.rows.begin(), result.rows.end());
        *kept_weight += result.weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kStuck: {
      return Status::FailedPrecondition(
          "OptSRepair fails: FD set is not simplifiable (computing an "
          "optimal S-repair is APX-complete for it): " +
          step.before.ToString());
    }
  }
  return Status::Internal("unreachable simplification kind");
}

}  // namespace

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec) {
  // §3.2: "the success or failure of OptSRepair(∆, T) depends only on ∆,
  // and not on T" — enforce that by running Algorithm 2 up front, so small
  // or empty tables cannot mask a non-simplifiable ∆.
  if (!OsrSucceeds(fds)) {
    return Status::FailedPrecondition(
        "OptSRepair fails: OSRSucceeds is false for ∆ = " + fds.ToString() +
        " (computing an optimal S-repair is APX-complete; Theorem 3.4)");
  }
  // The chain depends only on ∆ (§3.2): compute it once and let every
  // block at depth d share the step, instead of re-simplifying per block.
  SimplificationChain chain = SimplificationChain::Compute(fds);
  // The single shared row-index buffer: the recursion permutes it in place
  // and hands disjoint sub-windows to child blocks (concurrent blocks touch
  // disjoint ranges), so no level materializes per-block index vectors.
  std::vector<int> buffer = view.rows();
  std::vector<int> kept;
  double kept_weight = 0;
  RecursionContext ctx{&chain, &exec};
  FDR_RETURN_IF_ERROR(
      Recurse(ctx, 0,
              RowSpan(view.table(), buffer.data(),
                      static_cast<int>(buffer.size())),
              &kept, &kept_weight));
  std::sort(kept.begin(), kept.end());
  return kept;
}

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view) {
  return OptSRepairRows(fds, view, OptSRepairExec{});
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table,
                           const OptSRepairExec& exec) {
  FDR_ASSIGN_OR_RETURN(std::vector<int> rows,
                       OptSRepairRows(fds, TableView(table), exec));
  return table.SubsetByRows(rows);
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table) {
  return OptSRepair(fds, table, OptSRepairExec{});
}

}  // namespace fdrepair
