#include "srepair/opt_srepair.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "engine/block_partitioner.h"
#include "engine/thread_pool.h"
#include "graph/bipartite_matching.h"
#include "srepair/osr_succeeds.h"
#include "srepair/simplification.h"

namespace fdrepair {
namespace {

/// One block's solution: its kept rows and their weight, or a failure.
struct BlockResult {
  std::vector<int> rows;
  double weight = 0;
  Status status;
};

Status Recurse(const FdSet& fds, const TableView& view,
               const OptSRepairExec& exec, std::vector<int>* kept,
               double* kept_weight);

// Solves every block view under ∆ = `fds` into block-local accumulators —
// sequentially, or on exec.pool when the parent view is large enough to
// amortize the fan-out. Returns the first failing block's status in block
// order; on success `results` holds one entry per block. Callers merge in
// block order, so the reduction (including floating-point weight sums) is
// the same expression tree for every thread count.
//
// The sequential path deliberately buffers per block too (instead of
// appending straight into the caller's accumulators, as the pre-engine
// code did): appending directly would sum weights leaf-by-leaf across
// block boundaries, a *different* floating-point expression tree than the
// partial-sums-then-merge shape of the parallel path, and the
// bit-identical-across-thread-counts guarantee would be lost on weight
// ties. The cost is one extra append of each kept row per recursion level.
// `block_view(b)` returns the b-th block's view (no copies).
template <typename BlockViewFn>
Status SolveBlocks(const FdSet& fds, int num_blocks,
                   const BlockViewFn& block_view, const OptSRepairExec& exec,
                   int parent_tuples, std::vector<BlockResult>* results) {
  results->resize(num_blocks);
  auto solve_one = [&](int b) {
    BlockResult& result = (*results)[b];
    result.status =
        Recurse(fds, block_view(b), exec, &result.rows, &result.weight);
  };
  const bool parallel = exec.pool != nullptr && exec.pool->num_threads() > 1 &&
                        num_blocks > 1 &&
                        parent_tuples >= exec.parallel_cutoff;
  if (parallel) {
    exec.pool->ParallelFor(num_blocks, solve_one);
    for (const BlockResult& result : *results) {
      FDR_RETURN_IF_ERROR(result.status);
    }
  } else {
    for (int b = 0; b < num_blocks; ++b) {
      solve_one(b);
      FDR_RETURN_IF_ERROR((*results)[b].status);
    }
  }
  return Status::OK();
}

// Recursive body of Algorithm 1. Appends the kept dense row positions to
// `kept` and adds their total weight to `kept_weight`.
Status Recurse(const FdSet& fds, const TableView& view,
               const OptSRepairExec& exec, std::vector<int>* kept,
               double* kept_weight) {
  if (view.empty()) return Status::OK();
  if (exec.has_deadline() &&
      std::chrono::steady_clock::now() >= exec.deadline) {
    return Status::DeadlineExceeded(
        "OptSRepair deadline expired mid-recursion");
  }

  SimplificationStep step = NextSimplification(fds);
  switch (step.kind) {
    case SimplificationKind::kTrivialTermination: {
      // Line 2: ∆ trivial — T is its own optimal S-repair.
      for (int i = 0; i < view.num_tuples(); ++i) {
        kept->push_back(view.row(i));
        *kept_weight += view.weight(i);
      }
      return Status::OK();
    }
    case SimplificationKind::kCommonLhs: {
      // Subroutine 1: group by the common lhs attribute and take the union
      // of the groups' optimal S-repairs under ∆ − A. Tuples in different
      // groups disagree on A ∈ lhs of every FD, so the union is consistent.
      // Plain GroupBy, not PartitionByAttrs: this route never reads the
      // per-block projection keys, so don't materialize them.
      std::vector<TableView> blocks = view.GroupBy(step.removed);
      std::vector<BlockResult> results;
      FDR_RETURN_IF_ERROR(SolveBlocks(
          step.after, static_cast<int>(blocks.size()),
          [&](int b) -> const TableView& { return blocks[b]; }, exec,
          view.num_tuples(), &results));
      for (BlockResult& result : results) {
        kept->insert(kept->end(), result.rows.begin(), result.rows.end());
        *kept_weight += result.weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kConsensus: {
      // Subroutine 2: all surviving tuples must agree on A, so solve each
      // A-group independently and keep only the heaviest repair.
      std::vector<TableView> blocks = view.GroupBy(step.removed);
      std::vector<BlockResult> results;
      FDR_RETURN_IF_ERROR(SolveBlocks(
          step.after, static_cast<int>(blocks.size()),
          [&](int b) -> const TableView& { return blocks[b]; }, exec,
          view.num_tuples(), &results));
      const BlockResult* best = nullptr;
      for (const BlockResult& result : results) {
        if (best == nullptr || result.weight > best->weight) best = &result;
      }
      if (best != nullptr && best->weight > 0) {
        kept->insert(kept->end(), best->rows.begin(), best->rows.end());
        *kept_weight += best->weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kLhsMarriage: {
      // Subroutine 3. Blocks are the distinct (a1, a2) ∈ π_{X1X2}T; each
      // solved under ∆ − X1X2. A consistent subset may keep, for any X1
      // value, tuples of at most one X2 value and vice versa (cl(X1) =
      // cl(X2) ⊇ X1X2), so block selection is a bipartite matching between
      // π_X1 T and π_X2 T, maximizing kept weight.
      BlockPartition partition =
          PartitionForMarriage(view, step.marriage_x1, step.marriage_x2);
      std::vector<BlockResult> results;
      FDR_RETURN_IF_ERROR(SolveBlocks(
          step.after, static_cast<int>(partition.blocks.size()),
          [&](int b) -> const TableView& { return partition.blocks[b].view; },
          exec, view.num_tuples(), &results));
      std::vector<BipartiteEdge> edges;
      edges.reserve(partition.blocks.size());
      for (size_t b = 0; b < partition.blocks.size(); ++b) {
        edges.push_back(BipartiteEdge{partition.blocks[b].left,
                                      partition.blocks[b].right,
                                      results[b].weight});
      }
      MatchingResult matching = MaxWeightBipartiteMatching(
          partition.num_left, partition.num_right, edges);
      // Blocks are keyed by their unique (left, right) pair.
      std::unordered_map<uint64_t, const BlockResult*> result_of;
      for (size_t b = 0; b < partition.blocks.size(); ++b) {
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(
                            partition.blocks[b].left))
                        << 32) |
                       static_cast<uint32_t>(partition.blocks[b].right);
        result_of[key] = &results[b];
      }
      for (const auto& [left, right] : matching.pairs) {
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(left))
                        << 32) |
                       static_cast<uint32_t>(right);
        const BlockResult* result = result_of.at(key);
        kept->insert(kept->end(), result->rows.begin(), result->rows.end());
        *kept_weight += result->weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kStuck: {
      return Status::FailedPrecondition(
          "OptSRepair fails: FD set is not simplifiable (computing an "
          "optimal S-repair is APX-complete for it): " +
          step.before.ToString());
    }
  }
  return Status::Internal("unreachable simplification kind");
}

}  // namespace

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec) {
  // §3.2: "the success or failure of OptSRepair(∆, T) depends only on ∆,
  // and not on T" — enforce that by running Algorithm 2 up front, so small
  // or empty tables cannot mask a non-simplifiable ∆.
  if (!OsrSucceeds(fds)) {
    return Status::FailedPrecondition(
        "OptSRepair fails: OSRSucceeds is false for ∆ = " + fds.ToString() +
        " (computing an optimal S-repair is APX-complete; Theorem 3.4)");
  }
  std::vector<int> kept;
  double kept_weight = 0;
  FDR_RETURN_IF_ERROR(Recurse(fds, view, exec, &kept, &kept_weight));
  std::sort(kept.begin(), kept.end());
  return kept;
}

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view) {
  return OptSRepairRows(fds, view, OptSRepairExec{});
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table,
                           const OptSRepairExec& exec) {
  FDR_ASSIGN_OR_RETURN(std::vector<int> rows,
                       OptSRepairRows(fds, TableView(table), exec));
  return table.SubsetByRows(rows);
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table) {
  return OptSRepair(fds, table, OptSRepairExec{});
}

}  // namespace fdrepair
