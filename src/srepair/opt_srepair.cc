#include "srepair/opt_srepair.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "engine/block_partitioner.h"
#include "engine/thread_pool.h"
#include "graph/bipartite_matching.h"
#include "srepair/osr_succeeds.h"
#include "srepair/simplification.h"
#include "storage/row_span.h"

namespace fdrepair {
namespace {

/// One block's solution: its kept rows and their weight, or a failure.
struct BlockResult {
  std::vector<int> rows;
  double weight = 0;
  Status status;
};

/// Per-thread scratch arena for the recursion: grouping buffers plus a
/// freelist of BlockResult vectors, so steady-state recursion performs no
/// heap allocation beyond amortized capacity growth. thread_local because
/// pool workers (and the calling thread, which helps via ParallelFor) each
/// need their own; no scratch state is live across nested calls, so a
/// thread helping with an unrelated block while blocked in ParallelFor
/// reuses the same arena safely. Leases always release on the acquiring
/// thread, into the scratch they came from (each Recurse frame runs
/// start-to-finish on one thread); neither scratch nor freelists are
/// thread-safe, so never hand a lease to another thread.
///
/// Deliberate trade-off: arenas retain their peak capacity for the
/// thread's lifetime (that retention IS the allocation win on repeated
/// requests), so a long-lived server that once repaired a huge table keeps
/// O(peak rows) ints per worker thread. The freelists themselves stay
/// short — bounded by the recursion depth ever reached on that thread.
struct RecursionScratch {
  GroupScratch groups;
  std::vector<std::vector<BlockResult>> free_results;

  /// A result vector with at least `num_blocks` reset entries. The vector
  /// is never shrunk, so the row buffers of high-index entries keep their
  /// capacity across rounds; callers must only read the first num_blocks.
  std::vector<BlockResult> AcquireResults(int num_blocks) {
    std::vector<BlockResult> results;
    if (!free_results.empty()) {
      results = std::move(free_results.back());
      free_results.pop_back();
    }
    if (static_cast<int>(results.size()) < num_blocks) {
      results.resize(num_blocks);
    }
    for (int b = 0; b < num_blocks; ++b) {
      results[b].rows.clear();
      results[b].weight = 0;
      results[b].status = Status::OK();
    }
    return results;
  }
  void ReleaseResults(std::vector<BlockResult> results) {
    free_results.push_back(std::move(results));
  }
};

RecursionScratch& LocalScratch() {
  thread_local RecursionScratch scratch;
  return scratch;
}

/// RAII arena leases: buffers go back to the freelist on scope exit, so the
/// recursion arms may return early (including through FDR_RETURN_IF_ERROR)
/// without leaking buffers out of the arena. Destruction happens on the
/// thread that acquired, since Recurse runs each node on one thread.
class ScopedIntBuffer {
 public:
  explicit ScopedIntBuffer(GroupScratch* groups)
      : groups_(groups), buffer_(groups->AcquireIntBuffer()) {}
  ~ScopedIntBuffer() { groups_->ReleaseIntBuffer(std::move(buffer_)); }
  ScopedIntBuffer(const ScopedIntBuffer&) = delete;
  ScopedIntBuffer& operator=(const ScopedIntBuffer&) = delete;

  std::vector<int>& operator*() { return buffer_; }
  std::vector<int>* operator->() { return &buffer_; }

 private:
  GroupScratch* groups_;
  std::vector<int> buffer_;
};

class ScopedResults {
 public:
  ScopedResults(RecursionScratch* scratch, int num_blocks)
      : scratch_(scratch), results_(scratch->AcquireResults(num_blocks)) {}
  ~ScopedResults() { scratch_->ReleaseResults(std::move(results_)); }
  ScopedResults(const ScopedResults&) = delete;
  ScopedResults& operator=(const ScopedResults&) = delete;

  std::vector<BlockResult>& operator*() { return results_; }
  BlockResult& operator[](int b) { return results_[b]; }

 private:
  RecursionScratch* scratch_;
  std::vector<BlockResult> results_;
};

/// Everything constant across one OptSRepairRows recursion.
struct RecursionContext {
  const SimplificationChain* chain;
  const OptSRepairExec* exec;
  /// Non-null on a capturing run: the depth-0 arm records its block
  /// structure here (and skips the all-singleton shortcuts so every block
  /// actually gets an entry — the shortcuts are bit-identical to the
  /// general path, so results never change). Deeper levels ignore it.
  SRepairPlanCache* capture = nullptr;
};

/// Records the top-level membership sequences — called BEFORE SolveBlocks,
/// while each window still holds its rows in partition (original-span)
/// order; child recursions permute their windows in place, and the delta
/// path names blocks by this pre-recursion order. Also fills *pos_of_row
/// (indexed by dense table row) with each row's block-local position, so
/// CaptureBlockResults can translate kept rows to positions without any
/// per-row hashing.
void CaptureBlockIds(SRepairPlanCache* capture, SimplificationKind kind,
                     RowSpan span, const std::vector<int>& group_ends,
                     std::vector<int>* pos_of_row) {
  const int num_blocks = static_cast<int>(group_ends.size());
  capture->spliceable = true;
  capture->top_kind = kind;
  capture->blocks.clear();
  capture->blocks.reserve(num_blocks);
  pos_of_row->resize(span.table().num_tuples());
  for (int b = 0; b < num_blocks; ++b) {
    const int begin = b == 0 ? 0 : group_ends[b - 1];
    SRepairBlockRecipe& recipe =
        *capture->blocks.emplace_back(std::make_shared<SRepairBlockRecipe>());
    recipe.ids.reserve(group_ends[b] - begin);
    for (int i = begin; i < group_ends[b]; ++i) {
      recipe.ids.push_back(span.id(i));
      (*pos_of_row)[span.row(i)] = i - begin;
    }
  }
}

/// Records each top-level block's kept positions and weight after
/// SolveBlocks (`pos_of_row` is CaptureBlockIds' row → block-local
/// position translation).
void CaptureBlockResults(SRepairPlanCache* capture,
                         const std::vector<int>& pos_of_row,
                         const std::vector<BlockResult>& results) {
  for (size_t b = 0; b < capture->blocks.size(); ++b) {
    SRepairBlockRecipe& recipe = *capture->blocks[b];
    recipe.kept_pos.reserve(results[b].rows.size());
    for (int row : results[b].rows) recipe.kept_pos.push_back(pos_of_row[row]);
    recipe.weight = results[b].weight;
  }
}

/// Membership test for the delta's updated ids, fused into block
/// extraction. TupleIds are assigned densely from 1 and never recycled, so
/// a flag vector indexed by id answers in one load per block member — the
/// per-member unordered_set probe this replaces was (with id-keyed kept-row
/// resolution) the splice's hottest path. Ids too sparse to flag cheaply
/// fall back to binary search over a sorted copy.
class UpdatedIdSet {
 public:
  UpdatedIdSet(const std::vector<TupleId>& ids, size_t flag_cap) {
    TupleId max_id = 0;
    for (TupleId id : ids) max_id = std::max(max_id, id);
    if (static_cast<size_t>(max_id) < flag_cap) {
      flags_.assign(static_cast<size_t>(max_id) + 1, 0);
      for (TupleId id : ids) flags_[static_cast<size_t>(id)] = 1;
    } else {
      sorted_ = ids;
      std::sort(sorted_.begin(), sorted_.end());
    }
  }

  bool contains(TupleId id) const {
    if (!flags_.empty()) {
      return static_cast<size_t>(id) < flags_.size() &&
             flags_[static_cast<size_t>(id)] != 0;
    }
    return std::binary_search(sorted_.begin(), sorted_.end(), id);
  }

 private:
  std::vector<unsigned char> flags_;
  std::vector<TupleId> sorted_;
};

Status Recurse(const RecursionContext& ctx, int depth, RowSpan span,
               std::vector<int>* kept, double* kept_weight);

// Solves every block sub-span at chain depth `depth` into block-local
// accumulators — sequentially, or on exec.pool when the parent span is
// large enough to amortize the fan-out. Returns the first failing block's
// status in block order; on success `results` holds one entry per block.
// Callers merge in block order, so the reduction (including floating-point
// weight sums) is the same expression tree for every thread count.
//
// The sequential path deliberately buffers per block too (instead of
// appending straight into the caller's accumulators, as the pre-engine
// code did): appending directly would sum weights leaf-by-leaf across
// block boundaries, a *different* floating-point expression tree than the
// partial-sums-then-merge shape of the parallel path, and the
// bit-identical-across-thread-counts guarantee would be lost on weight
// ties. The cost is one extra append of each kept row per recursion level.
//
// Blocks are disjoint sub-windows of one shared row-index buffer: child
// recursions permute only their own window, so concurrent blocks never
// touch the same buffer element.
template <typename BlockSpanFn>
Status SolveBlocks(const RecursionContext& ctx, int depth, int num_blocks,
                   const BlockSpanFn& block_span, int parent_tuples,
                   std::vector<BlockResult>* results) {
  auto solve_one = [&](int b) {
    BlockResult& result = (*results)[b];
    result.status =
        Recurse(ctx, depth, block_span(b), &result.rows, &result.weight);
  };
  const OptSRepairExec& exec = *ctx.exec;
  const bool parallel = exec.pool != nullptr && exec.pool->num_threads() > 1 &&
                        num_blocks > 1 &&
                        parent_tuples >= exec.parallel_cutoff;
  if (parallel) {
    exec.pool->ParallelFor(num_blocks, solve_one);
    for (int b = 0; b < num_blocks; ++b) {
      FDR_RETURN_IF_ERROR((*results)[b].status);
    }
  } else {
    for (int b = 0; b < num_blocks; ++b) {
      solve_one(b);
      FDR_RETURN_IF_ERROR((*results)[b].status);
    }
  }
  return Status::OK();
}

/// The sub-window of `span` holding block b of a grouping with the given
/// end offsets.
RowSpan BlockSpan(RowSpan span, const std::vector<int>& group_ends, int b) {
  const int begin = b == 0 ? 0 : group_ends[b - 1];
  return span.Subspan(begin, group_ends[b] - begin);
}

// Recursive body of Algorithm 1 over the chain step at `depth`. Appends the
// kept dense row positions to `kept` and adds their total weight to
// `kept_weight`. May permute `span`'s window (block formation), but blocks
// and their recursive repairs are independent of row order within a window.
Status Recurse(const RecursionContext& ctx, int depth, RowSpan span,
               std::vector<int>* kept, double* kept_weight) {
  if (span.empty()) return Status::OK();
  const OptSRepairExec& exec = *ctx.exec;
  if (exec.has_deadline() &&
      std::chrono::steady_clock::now() >= exec.deadline) {
    return Status::DeadlineExceeded(
        "OptSRepair deadline expired mid-recursion");
  }

  const SimplificationStep& step = ctx.chain->at(depth);
  if (span.num_tuples() == 1 && step.kind != SimplificationKind::kStuck) {
    // A single tuple cannot violate any FD, so it is its own optimal
    // S-repair under every simplifiable ∆ — no need to walk the rest of
    // the chain one singleton block per level. This keeps the recursion's
    // call count proportional to the number of non-trivial blocks (the
    // deep-chain profile was dominated by singleton-span bookkeeping).
    // Bit-identical to the full walk: the same row is kept, and its weight
    // reaches the accumulator as the same single term.
    kept->push_back(span.row(0));
    *kept_weight += span.weight(0);
    return Status::OK();
  }
  switch (step.kind) {
    case SimplificationKind::kTrivialTermination: {
      // Line 2: ∆ trivial — T is its own optimal S-repair.
      for (int i = 0; i < span.num_tuples(); ++i) {
        kept->push_back(span.row(i));
        *kept_weight += span.weight(i);
      }
      return Status::OK();
    }
    case SimplificationKind::kCommonLhs: {
      // Subroutine 1: group by the common lhs attribute and take the union
      // of the groups' optimal S-repairs under ∆ − A. Tuples in different
      // groups disagree on A ∈ lhs of every FD, so the union is consistent.
      RecursionScratch& scratch = LocalScratch();
      ScopedIntBuffer group_ends(&scratch.groups);
      PartitionSpanByAttrs(span, step.removed, &scratch.groups, &*group_ends);
      const int num_blocks = static_cast<int>(group_ends->size());
      const bool capturing = depth == 0 && ctx.capture != nullptr;
      if (num_blocks == span.num_tuples() && !capturing) {
        // Every block is a single tuple, and a single tuple is always its
        // own optimal S-repair — the union keeps everything. Same rows and
        // the same left-to-right weight sum as the block-by-block merge.
        for (int i = 0; i < span.num_tuples(); ++i) {
          kept->push_back(span.row(i));
          *kept_weight += span.weight(i);
        }
        return Status::OK();
      }
      std::vector<int> capture_pos;
      if (capturing) {
        CaptureBlockIds(ctx.capture, step.kind, span, *group_ends,
                        &capture_pos);
      }
      ScopedResults results(&scratch, num_blocks);
      FDR_RETURN_IF_ERROR(SolveBlocks(
          ctx, depth + 1, num_blocks,
          [&](int b) { return BlockSpan(span, *group_ends, b); },
          span.num_tuples(), &*results));
      if (capturing) {
        CaptureBlockResults(ctx.capture, capture_pos, *results);
      }
      for (int b = 0; b < num_blocks; ++b) {
        kept->insert(kept->end(), results[b].rows.begin(),
                     results[b].rows.end());
        *kept_weight += results[b].weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kConsensus: {
      // Subroutine 2: all surviving tuples must agree on A, so solve each
      // A-group independently and keep only the heaviest repair.
      RecursionScratch& scratch = LocalScratch();
      ScopedIntBuffer group_ends(&scratch.groups);
      PartitionSpanByAttrs(span, step.removed, &scratch.groups, &*group_ends);
      const int num_blocks = static_cast<int>(group_ends->size());
      const bool capturing = depth == 0 && ctx.capture != nullptr;
      if (num_blocks == span.num_tuples() && !capturing) {
        // All blocks are single tuples: the consensus repair is the
        // heaviest tuple, first in span order on ties — exactly what the
        // block merge below computes via `>` against the running best.
        int best = 0;
        for (int i = 1; i < span.num_tuples(); ++i) {
          if (span.weight(i) > span.weight(best)) best = i;
        }
        kept->push_back(span.row(best));
        *kept_weight += span.weight(best);
        return Status::OK();
      }
      std::vector<int> capture_pos;
      if (capturing) {
        CaptureBlockIds(ctx.capture, step.kind, span, *group_ends,
                        &capture_pos);
      }
      ScopedResults results(&scratch, num_blocks);
      FDR_RETURN_IF_ERROR(SolveBlocks(
          ctx, depth + 1, num_blocks,
          [&](int b) { return BlockSpan(span, *group_ends, b); },
          span.num_tuples(), &*results));
      if (capturing) {
        CaptureBlockResults(ctx.capture, capture_pos, *results);
      }
      const BlockResult* best = nullptr;
      for (int b = 0; b < num_blocks; ++b) {
        if (best == nullptr || results[b].weight > best->weight) {
          best = &results[b];
        }
      }
      if (best != nullptr && best->weight > 0) {
        kept->insert(kept->end(), best->rows.begin(), best->rows.end());
        *kept_weight += best->weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kLhsMarriage: {
      // Subroutine 3. Blocks are the distinct (a1, a2) ∈ π_{X1X2}T; each
      // solved under ∆ − X1X2. A consistent subset may keep, for any X1
      // value, tuples of at most one X2 value and vice versa (cl(X1) =
      // cl(X2) ⊇ X1X2), so block selection is a bipartite matching between
      // π_X1 T and π_X2 T, maximizing kept weight.
      RecursionScratch& scratch = LocalScratch();
      ScopedIntBuffer group_ends(&scratch.groups);
      ScopedIntBuffer left(&scratch.groups);
      ScopedIntBuffer right(&scratch.groups);
      int num_left = 0;
      int num_right = 0;
      PartitionSpanForMarriage(span, step.marriage_x1, step.marriage_x2,
                               &scratch.groups, &*group_ends, &*left, &*right,
                               &num_left, &num_right);
      const int num_blocks = static_cast<int>(group_ends->size());
      const bool capturing = depth == 0 && ctx.capture != nullptr;
      std::vector<int> capture_pos;
      if (capturing) {
        CaptureBlockIds(ctx.capture, step.kind, span, *group_ends,
                        &capture_pos);
      }
      ScopedResults results(&scratch, num_blocks);
      FDR_RETURN_IF_ERROR(SolveBlocks(
          ctx, depth + 1, num_blocks,
          [&](int b) { return BlockSpan(span, *group_ends, b); },
          span.num_tuples(), &*results));
      if (capturing) {
        CaptureBlockResults(ctx.capture, capture_pos, *results);
      }
      std::vector<BipartiteEdge> edges;
      edges.reserve(num_blocks);
      for (int b = 0; b < num_blocks; ++b) {
        edges.push_back(
            BipartiteEdge{(*left)[b], (*right)[b], results[b].weight});
      }
      MatchingResult matching =
          MaxWeightBipartiteMatching(num_left, num_right, edges);
      // Blocks are keyed by their unique (left, right) pair.
      std::unordered_map<uint64_t, int> block_of;
      block_of.reserve(num_blocks);
      for (int b = 0; b < num_blocks; ++b) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>((*left)[b])) << 32) |
            static_cast<uint32_t>((*right)[b]);
        block_of[key] = b;
      }
      for (const auto& [l, r] : matching.pairs) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(l)) << 32) |
            static_cast<uint32_t>(r);
        const BlockResult& result = results[block_of.at(key)];
        kept->insert(kept->end(), result.rows.begin(), result.rows.end());
        *kept_weight += result.weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kStuck: {
      return Status::FailedPrecondition(
          "OptSRepair fails: FD set is not simplifiable (computing an "
          "optimal S-repair is APX-complete for it): " +
          step.before.ToString());
    }
  }
  return Status::Internal("unreachable simplification kind");
}

StatusOr<std::vector<int>> RunRows(const FdSet& fds, const TableView& view,
                                   const OptSRepairExec& exec,
                                   SRepairPlanCache* capture) {
  // §3.2: "the success or failure of OptSRepair(∆, T) depends only on ∆,
  // and not on T" — enforce that by running Algorithm 2 up front, so small
  // or empty tables cannot mask a non-simplifiable ∆.
  if (!OsrSucceeds(fds)) {
    return Status::FailedPrecondition(
        "OptSRepair fails: OSRSucceeds is false for ∆ = " + fds.ToString() +
        " (computing an optimal S-repair is APX-complete; Theorem 3.4)");
  }
  // The chain depends only on ∆ (§3.2): compute it once and let every
  // block at depth d share the step, instead of re-simplifying per block.
  SimplificationChain chain = SimplificationChain::Compute(fds);
  // The single shared row-index buffer: the recursion permutes it in place
  // and hands disjoint sub-windows to child blocks (concurrent blocks touch
  // disjoint ranges), so no level materializes per-block index vectors.
  std::vector<int> buffer = view.rows();
  std::vector<int> kept;
  double kept_weight = 0;
  RecursionContext ctx{&chain, &exec, capture};
  FDR_RETURN_IF_ERROR(
      Recurse(ctx, 0,
              RowSpan(view.table(), buffer.data(),
                      static_cast<int>(buffer.size())),
              &kept, &kept_weight));
  std::sort(kept.begin(), kept.end());
  return kept;
}

/// The delta-splice path of the canonical OptSRepairRows (see the header
/// comment there for the contract).
StatusOr<std::vector<int>> DeltaRows(
    const FdSet& fds, const TableView& view, const OptSRepairExec& exec,
    const SRepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    SRepairPlanCache* capture, SRepairSpliceStats* stats) {
  if (!base.spliceable) {
    return Status::FailedPrecondition(
        "delta splice: base plan is not spliceable (the base run never "
        "decomposed into blocks) — fall back to a full re-plan");
  }
  if (!OsrSucceeds(fds)) {
    return Status::FailedPrecondition(
        "OptSRepair fails: OSRSucceeds is false for ∆ = " + fds.ToString() +
        " (computing an optimal S-repair is APX-complete; Theorem 3.4)");
  }
  SimplificationChain chain = SimplificationChain::Compute(fds);
  const SimplificationStep& step = chain.at(0);
  if (step.kind != base.top_kind) {
    return Status::Internal(
        "delta splice: base plan's top step does not match ∆'s first "
        "simplification — the plan was captured under a different FD set");
  }
  if (view.num_tuples() <= 1) {
    // The cold run would take the singleton/empty shortcut and never form
    // blocks; a full re-plan is cheaper than any splice bookkeeping.
    return Status::FailedPrecondition(
        "delta splice: mutated table too small to splice");
  }

  const Table& table = view.table();
  std::vector<int> buffer = view.rows();
  RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
  RecursionContext ctx{&chain, &exec, nullptr};
  RecursionScratch& scratch = LocalScratch();

  // Partition the mutated table exactly as a cold run's depth-0 arm would.
  ScopedIntBuffer group_ends(&scratch.groups);
  ScopedIntBuffer left(&scratch.groups);
  ScopedIntBuffer right(&scratch.groups);
  int num_left = 0;
  int num_right = 0;
  if (step.kind == SimplificationKind::kLhsMarriage) {
    PartitionSpanForMarriage(span, step.marriage_x1, step.marriage_x2,
                             &scratch.groups, &*group_ends, &*left, &*right,
                             &num_left, &num_right);
  } else {
    PartitionSpanByAttrs(span, step.removed, &scratch.groups, &*group_ends);
  }
  const int num_blocks = static_cast<int>(group_ends->size());

  BaseBlockIndex index;
  for (const auto& recipe : base.blocks) index.Add(recipe->ids);
  // Flaggable up to a generous multiple of the table size: ids grow by one
  // per insert ever made, so only a table that shrank by orders of
  // magnitude since its ids were minted falls back to binary search.
  const UpdatedIdSet updated(
      updated_ids, static_cast<size_t>(view.num_tuples()) * 16 + 65536);

  // One pass per block, while its window still holds partition order
  // (dirty blocks' child recursions permute their windows in place, but
  // windows are disjoint — later blocks are unaffected):
  //   1. extract the membership sequence into a reused scratch buffer and
  //      test each member against the updated-id set as it streams by;
  //   2. clean (undirtied + structurally matched) blocks replay their
  //      captured kept positions straight off the window — the values a
  //      cold recursion on the identical block would recompute;
  //   3. dirty blocks re-run the span recursion at depth 1, exactly as
  //      SolveBlocks would have from a cold depth-0 arm (keeping their id
  //      sequence only when a refreshed capture needs it).
  ScopedResults results(&scratch, num_blocks);
  std::vector<std::vector<TupleId>> ids_of_block(
      capture != nullptr ? num_blocks : 0);
  // Refresh-only row → block-local position translation (a dirty block's
  // window is permuted by its recursion, so positions must be recorded
  // here, pre-recursion). A flat array over table rows, shared by every
  // block — no per-block hashing.
  std::vector<int> pos_of_row(capture != nullptr ? table.num_tuples() : 0);
  std::vector<int> base_of_block(num_blocks, -1);
  std::vector<TupleId> ids_scratch;
  int blocks_clean = 0;
  for (int b = 0; b < num_blocks; ++b) {
    RowSpan block = BlockSpan(span, *group_ends, b);
    ids_scratch.clear();
    bool dirtied = false;
    for (int i = 0; i < block.num_tuples(); ++i) {
      const TupleId id = block.id(i);
      ids_scratch.push_back(id);
      if (updated.contains(id)) dirtied = true;
      if (capture != nullptr) pos_of_row[block.row(i)] = i;
    }
    const int m =
        dirtied ? -1
                : index.Match(ids_scratch.data(),
                              static_cast<int>(ids_scratch.size()));
    base_of_block[b] = m;
    BlockResult& result = results[b];
    if (m >= 0) {
      ++blocks_clean;
      const SRepairBlockRecipe& recipe = *base.blocks[m];
      result.rows.reserve(recipe.kept_pos.size());
      for (int p : recipe.kept_pos) result.rows.push_back(block.row(p));
      result.weight = recipe.weight;
    } else {
      if (capture != nullptr) ids_of_block[b] = ids_scratch;
      FDR_RETURN_IF_ERROR(
          Recurse(ctx, 1, block, &result.rows, &result.weight));
    }
  }

  // Re-run the top-level merge over the mixed per-block results — the same
  // reduction, in the same first-appearance block order, as the cold arms.
  std::vector<int> kept;
  switch (step.kind) {
    case SimplificationKind::kCommonLhs: {
      for (int b = 0; b < num_blocks; ++b) {
        kept.insert(kept.end(), results[b].rows.begin(),
                    results[b].rows.end());
      }
      break;
    }
    case SimplificationKind::kConsensus: {
      const BlockResult* best = nullptr;
      for (int b = 0; b < num_blocks; ++b) {
        if (best == nullptr || results[b].weight > best->weight) {
          best = &results[b];
        }
      }
      if (best != nullptr && best->weight > 0) {
        kept.insert(kept.end(), best->rows.begin(), best->rows.end());
      }
      break;
    }
    case SimplificationKind::kLhsMarriage: {
      std::vector<BipartiteEdge> edges;
      edges.reserve(num_blocks);
      for (int b = 0; b < num_blocks; ++b) {
        edges.push_back(
            BipartiteEdge{(*left)[b], (*right)[b], results[b].weight});
      }
      MatchingResult matching =
          MaxWeightBipartiteMatching(num_left, num_right, edges);
      std::unordered_map<uint64_t, int> block_of;
      block_of.reserve(num_blocks);
      for (int b = 0; b < num_blocks; ++b) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>((*left)[b])) << 32) |
            static_cast<uint32_t>((*right)[b]);
        block_of[key] = b;
      }
      for (const auto& [l, r] : matching.pairs) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(l)) << 32) |
            static_cast<uint32_t>(r);
        const BlockResult& result = results[block_of.at(key)];
        kept.insert(kept.end(), result.rows.begin(), result.rows.end());
      }
      break;
    }
    default:
      return Status::Internal("delta splice: unreachable top step kind");
  }

  if (capture != nullptr) {
    // Build the refreshed plan before touching *capture — callers may pass
    // capture == &base to refresh a plan in place. Clean blocks alias the
    // base plan's (immutable) recipes, so the refresh allocates only for
    // the dirty set.
    std::vector<std::shared_ptr<SRepairBlockRecipe>> blocks(num_blocks);
    for (int b = 0; b < num_blocks; ++b) {
      const int m = base_of_block[b];
      if (m >= 0) {
        blocks[b] = base.blocks[m];
        continue;
      }
      auto fresh = std::make_shared<SRepairBlockRecipe>();
      SRepairBlockRecipe& recipe = *fresh;
      recipe.ids = std::move(ids_of_block[b]);
      recipe.kept_pos.reserve(results[b].rows.size());
      for (int row : results[b].rows) {
        recipe.kept_pos.push_back(pos_of_row[row]);
      }
      recipe.weight = results[b].weight;
      blocks[b] = std::move(fresh);
    }
    capture->spliceable = true;
    capture->top_kind = step.kind;
    capture->blocks = std::move(blocks);
  }
  if (stats != nullptr) {
    stats->blocks_total = num_blocks;
    stats->blocks_clean = blocks_clean;
    stats->blocks_dirty = num_blocks - blocks_clean;
  }

  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairRowsOptions& options,
                                          SRepairPlanCache* capture) {
  if (options.delta_base != nullptr) {
    static const std::vector<TupleId> kNoUpdatedIds;
    const std::vector<TupleId>& updated = options.delta_updated_ids != nullptr
                                              ? *options.delta_updated_ids
                                              : kNoUpdatedIds;
    return DeltaRows(fds, view, options.exec, *options.delta_base, updated,
                     capture, options.splice_stats);
  }
  if (capture == nullptr) return RunRows(fds, view, options.exec, nullptr);
  // A fresh capture every run: on success the depth-0 arm filled it in; on
  // the paths that never decompose (trivial ∆, single-row or empty table,
  // errors) it stays non-spliceable and delta callers fall back.
  capture->spliceable = false;
  capture->top_kind = SimplificationKind::kStuck;
  capture->blocks.clear();
  return RunRows(fds, view, options.exec, capture);
}

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec) {
  OptSRepairRowsOptions options;
  options.exec = exec;
  return OptSRepairRows(fds, view, options);
}

StatusOr<std::vector<int>> OptSRepairRows(const FdSet& fds,
                                          const TableView& view,
                                          const OptSRepairExec& exec,
                                          SRepairPlanCache* capture) {
  OptSRepairRowsOptions options;
  options.exec = exec;
  return OptSRepairRows(fds, view, options, capture);
}

StatusOr<std::vector<int>> OptSRepairRowsDelta(
    const FdSet& fds, const TableView& view, const OptSRepairExec& exec,
    const SRepairPlanCache& base, const std::vector<TupleId>& updated_ids,
    SRepairPlanCache* capture, SRepairSpliceStats* stats) {
  OptSRepairRowsOptions options;
  options.exec = exec;
  options.delta_base = &base;
  options.delta_updated_ids = &updated_ids;
  options.splice_stats = stats;
  return OptSRepairRows(fds, view, options, capture);
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table,
                           const OptSRepairExec& exec) {
  FDR_ASSIGN_OR_RETURN(std::vector<int> rows,
                       OptSRepairRows(fds, TableView(table), exec));
  return table.SubsetByRows(rows);
}

StatusOr<Table> OptSRepair(const FdSet& fds, const Table& table) {
  return OptSRepair(fds, table, OptSRepairExec{});
}

}  // namespace fdrepair
