#include "srepair/simplification.h"

#include <sstream>

namespace fdrepair {

const char* SimplificationKindToString(SimplificationKind kind) {
  switch (kind) {
    case SimplificationKind::kTrivialTermination:
      return "trivial";
    case SimplificationKind::kCommonLhs:
      return "common lhs";
    case SimplificationKind::kConsensus:
      return "consensus";
    case SimplificationKind::kLhsMarriage:
      return "lhs marriage";
    case SimplificationKind::kStuck:
      return "stuck";
  }
  return "unknown";
}

std::string SimplificationStep::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "(" << SimplificationKindToString(kind);
  if (kind == SimplificationKind::kCommonLhs ||
      kind == SimplificationKind::kConsensus) {
    os << " " << schema.NamesOf(removed);
  } else if (kind == SimplificationKind::kLhsMarriage) {
    os << " (" << schema.NamesOf(marriage_x1) << ", "
       << schema.NamesOf(marriage_x2) << ")";
  }
  os << ") {" << before.ToString(schema) << "} => {" << after.ToString(schema)
     << "}";
  return os.str();
}

SimplificationStep NextSimplification(const FdSet& fds) {
  SimplificationStep step;
  step.before = fds.WithoutTrivial();

  if (step.before.IsTrivial()) {
    step.kind = SimplificationKind::kTrivialTermination;
    step.after = step.before;
    return step;
  }
  if (auto common = step.before.FindCommonLhsAttr()) {
    step.kind = SimplificationKind::kCommonLhs;
    step.removed = AttrSet::Singleton(*common);
    step.after = step.before.MinusAttrs(step.removed);
    return step;
  }
  if (auto consensus = step.before.FindConsensusFd()) {
    step.kind = SimplificationKind::kConsensus;
    step.removed = AttrSet::Singleton(consensus->rhs);
    step.after = step.before.MinusAttrs(step.removed);
    return step;
  }
  if (auto marriage = step.before.FindLhsMarriage()) {
    step.kind = SimplificationKind::kLhsMarriage;
    step.marriage_x1 = marriage->x1;
    step.marriage_x2 = marriage->x2;
    step.removed = marriage->x1.Union(marriage->x2);
    step.after = step.before.MinusAttrs(step.removed);
    return step;
  }
  step.kind = SimplificationKind::kStuck;
  step.after = step.before;
  return step;
}

SimplificationChain SimplificationChain::Compute(const FdSet& fds) {
  SimplificationChain chain;
  FdSet current = fds;
  // Every non-terminal step removes at least one attribute, so the chain
  // has at most kMaxAttributes consuming steps plus the terminal one.
  for (int d = 0; d <= kMaxAttributes; ++d) {
    SimplificationStep step = NextSimplification(current);
    const SimplificationKind kind = step.kind;
    current = step.after;
    chain.steps_.push_back(std::move(step));
    if (kind == SimplificationKind::kTrivialTermination ||
        kind == SimplificationKind::kStuck) {
      return chain;
    }
  }
  FDR_CHECK_MSG(false, "simplification chain did not terminate for "
                           << fds.ToString());
  return chain;
}

}  // namespace fdrepair
