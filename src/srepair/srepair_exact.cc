#include "srepair/srepair_exact.h"

#include <algorithm>

#include "graph/conflict_graph.h"
#include "graph/vertex_cover.h"

namespace fdrepair {

StatusOr<std::vector<int>> OptSRepairExactRows(const FdSet& fds,
                                               const TableView& view,
                                               int max_conflict_nodes) {
  NodeWeightedGraph full = BuildConflictGraph(view, fds);
  // Isolated tuples are always kept; branch only over the conflicted core.
  std::vector<int> core;  // view indices with at least one conflict
  std::vector<int> core_index(view.num_tuples(), -1);
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (full.Degree(i) > 0) {
      core_index[i] = static_cast<int>(core.size());
      core.push_back(i);
    }
  }
  if (static_cast<int>(core.size()) > max_conflict_nodes) {
    return Status::ResourceExhausted(
        "exact S-repair limited to " + std::to_string(max_conflict_nodes) +
        " conflicted tuples, instance has " + std::to_string(core.size()));
  }
  NodeWeightedGraph graph(static_cast<int>(core.size()));
  for (size_t c = 0; c < core.size(); ++c) {
    graph.set_weight(static_cast<int>(c), view.weight(core[c]));
  }
  for (const auto& [u, v] : full.edges()) {
    graph.AddEdge(core_index[u], core_index[v]);
  }
  FDR_ASSIGN_OR_RETURN(std::vector<int> cover,
                       MinWeightVertexCoverExact(graph, max_conflict_nodes));
  std::vector<char> deleted(view.num_tuples(), 0);
  for (int c : cover) deleted[core[c]] = 1;
  std::vector<int> kept;
  for (int i = 0; i < view.num_tuples(); ++i) {
    if (!deleted[i]) kept.push_back(view.row(i));
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

StatusOr<Table> OptSRepairExact(const FdSet& fds, const Table& table,
                                int max_conflict_nodes) {
  FDR_ASSIGN_OR_RETURN(
      std::vector<int> rows,
      OptSRepairExactRows(fds, TableView(table), max_conflict_nodes));
  return table.SubsetByRows(rows);
}

}  // namespace fdrepair
