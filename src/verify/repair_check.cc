#include "verify/repair_check.h"

#include <algorithm>
#include <vector>

#include "srepair/opt_srepair.h"
#include "srepair/osr_succeeds.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "urepair/update.h"
#include "urepair/urepair_exact.h"

namespace fdrepair {

const char* SubsetRepairClassToString(SubsetRepairClass repair_class) {
  switch (repair_class) {
    case SubsetRepairClass::kNotAConsistentSubset:
      return "not-a-consistent-subset";
    case SubsetRepairClass::kConsistentSubset:
      return "consistent-subset";
    case SubsetRepairClass::kSubsetRepair:
      return "subset-repair";
    case SubsetRepairClass::kOptimalSubsetRepair:
      return "optimal-subset-repair";
  }
  return "unknown";
}

const char* UpdateRepairClassToString(UpdateRepairClass repair_class) {
  switch (repair_class) {
    case UpdateRepairClass::kNotAConsistentUpdate:
      return "not-a-consistent-update";
    case UpdateRepairClass::kConsistentUpdate:
      return "consistent-update";
    case UpdateRepairClass::kUpdateRepair:
      return "update-repair";
    case UpdateRepairClass::kOptimalUpdateRepair:
      return "optimal-update-repair";
  }
  return "unknown";
}

StatusOr<SubsetCheckResult> CheckSubsetRepair(const FdSet& fds,
                                              const Table& table,
                                              const Table& subset) {
  SubsetCheckResult result;
  // Malformed candidates (not a subset at all) are API errors.
  FDR_ASSIGN_OR_RETURN(result.distance, DistSub(subset, table));
  if (!Satisfies(subset, fds)) {
    result.repair_class = SubsetRepairClass::kNotAConsistentSubset;
    result.optimality_known = false;
    return result;
  }
  // ⊆-maximality (§2.3): no deleted tuple can be restored consistently.
  result.repair_class = SubsetRepairClass::kSubsetRepair;
  std::vector<char> kept(table.num_tuples(), 0);
  for (int row = 0; row < subset.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(int parent_row, table.RowOf(subset.id(row)));
    kept[parent_row] = 1;
  }
  for (int row = 0; row < table.num_tuples() &&
                    result.repair_class == SubsetRepairClass::kSubsetRepair;
       ++row) {
    if (kept[row]) continue;
    bool restorable = true;
    for (int other = 0; other < subset.num_tuples() && restorable; ++other) {
      if (!PairConsistent(table.tuple(row), subset.tuple(other), fds)) {
        restorable = false;
      }
    }
    if (restorable) {
      result.repair_class = SubsetRepairClass::kConsistentSubset;
    }
  }

  // Optimality tier — computed for every consistent candidate so callers
  // can bound approximation ratios even for non-maximal subsets.  A
  // non-maximal subset can never itself be optimal: restoring a tuple
  // yields a consistent subset of strictly smaller distance.
  if (OsrSucceeds(fds)) {
    FDR_ASSIGN_OR_RETURN(std::vector<int> rows,
                         OptSRepairRows(fds, TableView(table)));
    result.optimal_distance =
        DistSubOrDie(table.SubsetByRows(rows), table);
  } else {
    auto exact = OptSRepairExact(fds, table);
    if (!exact.ok()) {
      if (exact.status().code() == StatusCode::kResourceExhausted) {
        result.optimality_known = false;
        return result;
      }
      return exact.status();
    }
    result.optimal_distance = DistSubOrDie(*exact, table);
  }
  if (result.repair_class == SubsetRepairClass::kSubsetRepair &&
      result.distance <= result.optimal_distance + 1e-9) {
    result.repair_class = SubsetRepairClass::kOptimalSubsetRepair;
  }
  return result;
}

StatusOr<UpdateCheckResult> CheckUpdateRepair(const FdSet& fds,
                                              const Table& table,
                                              const Table& update,
                                              int max_changed_cells) {
  UpdateCheckResult result;
  FDR_RETURN_IF_ERROR(ValidateUpdate(update, table));
  FDR_ASSIGN_OR_RETURN(result.distance, DistUpd(update, table));
  if (!Satisfies(update, fds)) {
    result.repair_class = UpdateRepairClass::kNotAConsistentUpdate;
    result.optimality_known = false;
    return result;
  }

  // Changed cells, aligned by tuple identifier.
  struct Cell {
    int update_row;
    AttrId attr;
    ValueId original;
  };
  // The subset enumeration below indexes cells by bit position, so the
  // count must stay below the width of the mask.
  max_changed_cells = std::min(max_changed_cells, 63);
  std::vector<Cell> changed;
  for (int row = 0; row < update.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(int parent_row, table.RowOf(update.id(row)));
    for (AttrId attr = 0; attr < table.schema().arity(); ++attr) {
      if (update.value(row, attr) != table.value(parent_row, attr)) {
        changed.push_back(Cell{row, attr, table.value(parent_row, attr)});
      }
    }
  }
  if (static_cast<int>(changed.size()) > max_changed_cells) {
    return Status::ResourceExhausted(
        "U-repair minimality check limited to " +
        std::to_string(max_changed_cells) + " changed cells, candidate has " +
        std::to_string(changed.size()));
  }
  // §2.3: a U-repair becomes inconsistent if *any* non-empty set of updated
  // values is restored. Enumerate all subsets.
  result.repair_class = UpdateRepairClass::kUpdateRepair;
  for (uint64_t mask = 1; mask < (uint64_t{1} << changed.size()) &&
                          result.repair_class == UpdateRepairClass::kUpdateRepair;
       ++mask) {
    Table reverted = update.Clone();
    for (size_t c = 0; c < changed.size(); ++c) {
      if ((mask >> c) & 1) {
        reverted.SetValue(changed[c].update_row, changed[c].attr,
                          changed[c].original);
      }
    }
    if (Satisfies(reverted, fds)) {
      result.repair_class = UpdateRepairClass::kConsistentUpdate;
    }
  }

  // Optimality tier: a provably optimal plan, else the exhaustive solver.
  // Computed for every consistent candidate (mirroring CheckSubsetRepair)
  // so approximation ratios stay checkable; a revertible update can never
  // itself be optimal because reverting cells strictly lowers dist_upd.
  URepairOptions planner_options;
  auto planned = ComputeURepair(fds, table, planner_options);
  if (planned.ok() && planned->optimal) {
    result.optimal_distance = planned->distance;
  } else {
    auto exact = OptURepairExact(fds.WithoutTrivial(), table);
    if (!exact.ok()) {
      if (exact.status().code() == StatusCode::kResourceExhausted) {
        result.optimality_known = false;
        return result;
      }
      return exact.status();
    }
    result.optimal_distance = DistUpdOrDie(*exact, table);
  }
  if (result.repair_class == UpdateRepairClass::kUpdateRepair &&
      result.distance <= result.optimal_distance + 1e-9) {
    result.repair_class = UpdateRepairClass::kOptimalUpdateRepair;
  }
  return result;
}

}  // namespace fdrepair
