// Repair checking (Afrati & Kolaitis, reference [1] of the paper): given a
// candidate repair, decide what it actually is. §2.3 distinguishes
//   - a consistent subset/update (just satisfies ∆),
//   - a *repair* (local minimum: no operation can be undone), and
//   - an *optimal* repair (global minimum).
// The paper works with global minima but defines both; these checkers make
// the definitions executable and power the test suite's validations.

#ifndef FDREPAIR_VERIFY_REPAIR_CHECK_H_
#define FDREPAIR_VERIFY_REPAIR_CHECK_H_

#include "catalog/fdset.h"
#include "common/status.h"
#include "storage/table.h"

namespace fdrepair {

/// What a candidate subset turned out to be.
enum class SubsetRepairClass {
  /// Not a subset of T, or inconsistent with ∆.
  kNotAConsistentSubset,
  /// Consistent but some deleted tuple could be restored (not ⊆-maximal).
  kConsistentSubset,
  /// An S-repair (⊆-maximal consistent subset, §2.3) but not optimal.
  kSubsetRepair,
  /// An optimal S-repair (global minimum, i.e. a weighted cardinality
  /// repair). Only reported when optimality is decidable for ∆/instance.
  kOptimalSubsetRepair,
};

const char* SubsetRepairClassToString(SubsetRepairClass repair_class);

/// Classifies `subset` relative to `table` under ∆. The optimal distance is
/// computed for every consistent candidate — via OptSRepair when
/// OSRSucceeds(∆), else via the exact solver when the instance is small
/// enough — so approximation ratios stay checkable even for non-maximal
/// subsets. `optimality_known` is false for inconsistent candidates and
/// when the optimum was too expensive to determine.
struct SubsetCheckResult {
  SubsetRepairClass repair_class = SubsetRepairClass::kNotAConsistentSubset;
  bool optimality_known = true;
  /// dist_sub(subset, table) when it is a consistent subset.
  double distance = 0;
  /// Optimal distance when optimality_known.
  double optimal_distance = 0;
};
StatusOr<SubsetCheckResult> CheckSubsetRepair(const FdSet& fds,
                                              const Table& table,
                                              const Table& subset);

/// What a candidate update turned out to be.
enum class UpdateRepairClass {
  kNotAConsistentUpdate,
  /// Consistent but some set of updated cells can be reverted to the
  /// original values without breaking consistency (not a U-repair, §2.3).
  kConsistentUpdate,
  /// A U-repair: restoring any non-empty set of updated cells breaks ∆.
  kUpdateRepair,
  kOptimalUpdateRepair,
};

const char* UpdateRepairClassToString(UpdateRepairClass repair_class);

struct UpdateCheckResult {
  UpdateRepairClass repair_class = UpdateRepairClass::kNotAConsistentUpdate;
  bool optimality_known = true;
  double distance = 0;
  double optimal_distance = 0;
};

/// Classifies `update` relative to `table` under ∆. Minimality is verified
/// over all subsets of changed cells (exponential in their number; guarded
/// by `max_changed_cells`, which is capped at 63 — the enumeration mask is
/// 64 bits wide). The optimal distance is computed for every
/// consistent candidate — via a provably-optimal plan, else the exhaustive
/// solver on small instances; otherwise `optimality_known` is false and
/// the classification stops at kUpdateRepair.
StatusOr<UpdateCheckResult> CheckUpdateRepair(const FdSet& fds,
                                              const Table& table,
                                              const Table& update,
                                              int max_changed_cells = 20);

}  // namespace fdrepair

#endif  // FDREPAIR_VERIFY_REPAIR_CHECK_H_
