#include "catalog/schema.h"

#include <sstream>

namespace fdrepair {

StatusOr<Schema> Schema::Make(std::string relation_name,
                              std::vector<std::string> attribute_names) {
  if (attribute_names.empty()) {
    return Status::InvalidArgument("schema must have at least one attribute");
  }
  if (attribute_names.size() > static_cast<size_t>(kMaxAttributes)) {
    return Status::NotSupported("schema exceeds " +
                                std::to_string(kMaxAttributes) +
                                " attributes");
  }
  std::unordered_map<std::string, AttrId> seen;
  for (size_t i = 0; i < attribute_names.size(); ++i) {
    const std::string& name = attribute_names[i];
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name at position " +
                                     std::to_string(i));
    }
    if (!seen.emplace(name, static_cast<AttrId>(i)).second) {
      return Status::InvalidArgument("duplicate attribute name: " + name);
    }
  }
  return Schema(std::move(relation_name), std::move(attribute_names));
}

Schema Schema::MakeOrDie(std::string relation_name,
                         std::vector<std::string> attribute_names) {
  auto schema = Make(std::move(relation_name), std::move(attribute_names));
  FDR_CHECK_MSG(schema.ok(), schema.status().ToString());
  return std::move(schema).value();
}

Schema Schema::Anonymous(int arity) {
  std::vector<std::string> names;
  names.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    if (i < 26) {
      names.push_back(std::string(1, static_cast<char>('A' + i)));
    } else {
      names.push_back("A" + std::to_string(i + 1));
    }
  }
  return MakeOrDie("R", std::move(names));
}

Schema::Schema(std::string relation_name,
               std::vector<std::string> attribute_names)
    : relation_name_(std::move(relation_name)),
      attribute_names_(std::move(attribute_names)) {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    index_.emplace(attribute_names_[i], static_cast<AttrId>(i));
  }
}

const std::string& Schema::AttributeName(AttrId attr) const {
  FDR_CHECK_MSG(attr >= 0 && attr < arity(), "attr=" << attr);
  return attribute_names_[attr];
}

StatusOr<AttrId> Schema::AttributeId(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + name + "' in " +
                            ToString());
  }
  return it->second;
}

bool Schema::HasAttribute(const std::string& name) const {
  return index_.find(name) != index_.end();
}

std::string Schema::NamesOf(AttrSet set) const {
  if (set.empty()) return "∅";
  std::ostringstream os;
  bool first = true;
  ForEachAttr(set, [&](AttrId attr) {
    if (!first) os << " ";
    first = false;
    os << AttributeName(attr);
  });
  return os.str();
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << relation_name_ << "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) os << ", ";
    os << attribute_names_[i];
  }
  os << ")";
  return os.str();
}

bool Schema::operator==(const Schema& other) const {
  return relation_name_ == other.relation_name_ &&
         attribute_names_ == other.attribute_names_;
}

}  // namespace fdrepair
