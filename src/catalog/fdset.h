// FdSet: a set ∆ of functional dependencies over one schema, with the
// closure and structural predicates the paper's algorithms are built from
// (§2.2, §3): cl∆(X), entailment, trivial/consensus FDs, common lhs,
// lhs marriage, chain sets, local minima, and the ∆ − X operation.

#ifndef FDREPAIR_CATALOG_FDSET_H_
#define FDREPAIR_CATALOG_FDSET_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/fd.h"
#include "catalog/schema.h"
#include "common/status.h"

namespace fdrepair {

/// An lhs marriage (§2.2): a pair (X1, X2) of distinct lhs's of FDs in ∆
/// with cl∆(X1) = cl∆(X2) such that every lhs in ∆ contains X1 or X2.
struct LhsMarriage {
  AttrSet x1;
  AttrSet x2;
};

/// An immutable set of FDs in single-rhs normal form, kept sorted and
/// deduplicated so structural equality is well defined.
class FdSet {
 public:
  /// The empty (hence trivial) FD set.
  FdSet() = default;

  /// Canonicalizes (sorts, merges) the given FDs. Two entries with the same
  /// (lhs, rhs) merge into one: a hard copy dominates (the constraint is
  /// inviolable however it is restated), otherwise the soft weights add —
  /// keeping two copies of a soft FD charges its violations twice, and the
  /// merged weight says exactly that.
  static FdSet FromFds(std::vector<Fd> fds);

  /// Normalizes general FDs X → Y into {X → A : A ∈ Y} and canonicalizes as
  /// FromFds does. Each normalized single-rhs FD inherits its RawFd's
  /// weight (∞ for plain hard FDs), so `X → BC @2` contributes `X → B @2`
  /// and `X → C @2`. An FD with empty rhs contributes nothing.
  static FdSet FromRaw(const std::vector<RawFd>& raw_fds);

  const std::vector<Fd>& fds() const { return fds_; }
  bool empty() const { return fds_.empty(); }
  int size() const { return static_cast<int>(fds_.size()); }

  /// attr(∆): every attribute mentioned in some lhs or rhs (§4).
  AttrSet Attrs() const;

  /// cl∆(X): all attributes A with ∆ ⊧ X → A, computed by fixpoint.
  AttrSet Closure(AttrSet x) const;

  /// ∆ ⊧ lhs → rhs.
  bool Entails(const Fd& fd) const;
  bool EntailsRaw(const RawFd& fd) const;

  /// Same closure, i.e. each set entails every FD of the other (§2.2).
  bool EquivalentTo(const FdSet& other) const;

  /// The canonical (minimal) cover of ∆, computed *weight-preservingly*.
  ///
  /// Hard FDs (weight = ∞) canonicalize exactly as before weights existed:
  /// trivial FDs dropped, extraneous lhs attributes eliminated, redundant
  /// FDs removed — iterated to a fixpoint with a fixed elimination order
  /// (FDs in canonical sorted order, lhs attributes in increasing id
  /// order). The hard part of the result is always equivalent to the hard
  /// part of ∆, deterministic, and independent of how ∆ was phrased on
  /// input (ordering, duplicates, inflated lhs's, implied FDs all
  /// normalize away).
  ///
  /// Soft FDs (finite weight) are never merged with FDs of a different
  /// weight and never lhs-reduced — their weight is part of their meaning,
  /// and replacing a soft FD by a logically equivalent one changes which
  /// tuple pairs get charged. Only two reductions are sound and applied:
  /// a trivial soft FD is dropped (it has no violating pairs), and a soft
  /// FD entailed by the *hard* cover is dropped (any two tuples violating
  /// it also violate a hard FD, so no repair that satisfies the hard part
  /// ever pays its penalty). Exact (lhs, rhs) duplicates merge by the
  /// FromFds weight rule. All-hard sets take the historical code path
  /// bit-for-bit. The serving layer keys its repair cache on this form,
  /// weights included.
  FdSet CanonicalCover() const;

  /// The hard (weight = ∞) FDs of ∆.
  FdSet HardPart() const;

  /// The soft (finite-weight) FDs of ∆.
  FdSet SoftPart() const;

  /// True iff ∆ contains at least one finite-weight FD.
  bool HasSoftFds() const;

  /// ∆ with per-FD weights replaced by `weights`, aligned with fds()
  /// order; the result re-canonicalizes (merging any FDs that now carry
  /// equal (lhs, rhs)). Fails unless weights.size() == size() and every
  /// weight is positive (∞ allowed: it marks the FD hard).
  StatusOr<FdSet> WithWeights(const std::vector<double>& weights) const;

  /// True iff ∆ contains no nontrivial FD (§2.2); the successful base case
  /// of OptSRepair.
  bool IsTrivial() const;

  /// ∆ with trivial FDs removed (line 3 of Algorithm 1).
  FdSet WithoutTrivial() const;

  /// cl∆(∅): the consensus attributes (§2.2).
  AttrSet ConsensusAttrs() const;
  bool IsConsensusFree() const { return ConsensusAttrs().empty(); }

  /// An attribute contained in every lhs, if one exists. Returns nullopt for
  /// the empty set (no FDs means the simplification is moot) and whenever
  /// some FD has an empty lhs.
  std::optional<AttrId> FindCommonLhsAttr() const;

  /// A consensus FD ∅ → A contained (syntactically) in ∆, if any.
  std::optional<Fd> FindConsensusFd() const;

  /// An lhs marriage (X1, X2), if one exists. Deterministic: scans distinct
  /// lhs's in canonical order. Requires no particular precondition, but
  /// Algorithm 1 only consults it after the common-lhs and consensus cases.
  std::optional<LhsMarriage> FindLhsMarriage() const;

  /// ∆ − X (§3 notation): removes every attribute of `x` from every lhs and
  /// rhs. In single-rhs form, an FD whose rhs is removed disappears; an FD
  /// whose lhs empties becomes a consensus FD. Weights are preserved; FDs
  /// that collapse onto the same (lhs, rhs) merge by the FromFds rule.
  FdSet MinusAttrs(AttrSet x) const;

  /// Chain test (§2.2): every two lhs's are ⊆-comparable. Chain FD sets are
  /// exactly the sets OSRSucceeds reduces by common-lhs + consensus alone
  /// (Corollary 3.6).
  bool IsChain() const;

  /// FDs with set-minimal lhs: no FD in ∆ has a lhs strictly contained in
  /// theirs (§3.3). Non-simplifiable sets have ≥ 2 with distinct lhs's.
  std::vector<Fd> LocalMinima() const;

  /// The distinct lhs's appearing in ∆, in canonical order.
  std::vector<AttrSet> DistinctLhss() const;

  /// Restricts ∆ to the FDs whose attributes all lie inside `attrs`.
  /// Used by the attribute-disjoint decomposition (Theorem 4.1).
  FdSet RestrictTo(AttrSet attrs) const;

  /// Partitions ∆ into maximal attribute-disjoint sub-sets ∆1 ∪ ... ∪ ∆m
  /// (connected components of FDs under shared attributes; Theorem 4.1).
  std::vector<FdSet> AttributeDisjointComponents() const;

  /// "A -> B; B -> C" with schema names / numeric ids.
  std::string ToString(const Schema& schema) const;
  std::string ToString() const;

  bool operator==(const FdSet& other) const = default;

 private:
  explicit FdSet(std::vector<Fd> fds) : fds_(std::move(fds)) {}

  std::vector<Fd> fds_;  // sorted, unique
};

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_FDSET_H_
