// FdSet: a set ∆ of functional dependencies over one schema, with the
// closure and structural predicates the paper's algorithms are built from
// (§2.2, §3): cl∆(X), entailment, trivial/consensus FDs, common lhs,
// lhs marriage, chain sets, local minima, and the ∆ − X operation.

#ifndef FDREPAIR_CATALOG_FDSET_H_
#define FDREPAIR_CATALOG_FDSET_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/fd.h"
#include "catalog/schema.h"

namespace fdrepair {

/// An lhs marriage (§2.2): a pair (X1, X2) of distinct lhs's of FDs in ∆
/// with cl∆(X1) = cl∆(X2) such that every lhs in ∆ contains X1 or X2.
struct LhsMarriage {
  AttrSet x1;
  AttrSet x2;
};

/// An immutable set of FDs in single-rhs normal form, kept sorted and
/// deduplicated so structural equality is well defined.
class FdSet {
 public:
  /// The empty (hence trivial) FD set.
  FdSet() = default;

  /// Canonicalizes (sorts, dedupes) the given FDs.
  static FdSet FromFds(std::vector<Fd> fds);

  /// Normalizes general FDs X → Y into {X → A : A ∈ Y} and canonicalizes.
  /// An FD with empty rhs contributes nothing.
  static FdSet FromRaw(const std::vector<RawFd>& raw_fds);

  const std::vector<Fd>& fds() const { return fds_; }
  bool empty() const { return fds_.empty(); }
  int size() const { return static_cast<int>(fds_.size()); }

  /// attr(∆): every attribute mentioned in some lhs or rhs (§4).
  AttrSet Attrs() const;

  /// cl∆(X): all attributes A with ∆ ⊧ X → A, computed by fixpoint.
  AttrSet Closure(AttrSet x) const;

  /// ∆ ⊧ lhs → rhs.
  bool Entails(const Fd& fd) const;
  bool EntailsRaw(const RawFd& fd) const;

  /// Same closure, i.e. each set entails every FD of the other (§2.2).
  bool EquivalentTo(const FdSet& other) const;

  /// The canonical (minimal) cover of ∆: trivial FDs dropped, extraneous
  /// lhs attributes eliminated, redundant FDs removed — iterated to a
  /// fixpoint with a fixed elimination order (FDs in canonical sorted order,
  /// lhs attributes in increasing id order). Always equivalent to ∆.
  /// Deterministic and independent of how ∆ was phrased on input (ordering,
  /// duplicates, inflated lhs's, implied FDs all normalize away); like any
  /// minimal cover it is canonical up to the fixed elimination order. The
  /// serving layer keys its repair cache on this form.
  FdSet CanonicalCover() const;

  /// True iff ∆ contains no nontrivial FD (§2.2); the successful base case
  /// of OptSRepair.
  bool IsTrivial() const;

  /// ∆ with trivial FDs removed (line 3 of Algorithm 1).
  FdSet WithoutTrivial() const;

  /// cl∆(∅): the consensus attributes (§2.2).
  AttrSet ConsensusAttrs() const;
  bool IsConsensusFree() const { return ConsensusAttrs().empty(); }

  /// An attribute contained in every lhs, if one exists. Returns nullopt for
  /// the empty set (no FDs means the simplification is moot) and whenever
  /// some FD has an empty lhs.
  std::optional<AttrId> FindCommonLhsAttr() const;

  /// A consensus FD ∅ → A contained (syntactically) in ∆, if any.
  std::optional<Fd> FindConsensusFd() const;

  /// An lhs marriage (X1, X2), if one exists. Deterministic: scans distinct
  /// lhs's in canonical order. Requires no particular precondition, but
  /// Algorithm 1 only consults it after the common-lhs and consensus cases.
  std::optional<LhsMarriage> FindLhsMarriage() const;

  /// ∆ − X (§3 notation): removes every attribute of `x` from every lhs and
  /// rhs. In single-rhs form, an FD whose rhs is removed disappears; an FD
  /// whose lhs empties becomes a consensus FD.
  FdSet MinusAttrs(AttrSet x) const;

  /// Chain test (§2.2): every two lhs's are ⊆-comparable. Chain FD sets are
  /// exactly the sets OSRSucceeds reduces by common-lhs + consensus alone
  /// (Corollary 3.6).
  bool IsChain() const;

  /// FDs with set-minimal lhs: no FD in ∆ has a lhs strictly contained in
  /// theirs (§3.3). Non-simplifiable sets have ≥ 2 with distinct lhs's.
  std::vector<Fd> LocalMinima() const;

  /// The distinct lhs's appearing in ∆, in canonical order.
  std::vector<AttrSet> DistinctLhss() const;

  /// Restricts ∆ to the FDs whose attributes all lie inside `attrs`.
  /// Used by the attribute-disjoint decomposition (Theorem 4.1).
  FdSet RestrictTo(AttrSet attrs) const;

  /// Partitions ∆ into maximal attribute-disjoint sub-sets ∆1 ∪ ... ∪ ∆m
  /// (connected components of FDs under shared attributes; Theorem 4.1).
  std::vector<FdSet> AttributeDisjointComponents() const;

  /// "A -> B; B -> C" with schema names / numeric ids.
  std::string ToString(const Schema& schema) const;
  std::string ToString() const;

  bool operator==(const FdSet& other) const = default;

 private:
  explicit FdSet(std::vector<Fd> fds) : fds_(std::move(fds)) {}

  std::vector<Fd> fds_;  // sorted, unique
};

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_FDSET_H_
