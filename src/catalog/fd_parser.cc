#include "catalog/fd_parser.h"

#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace fdrepair {
namespace {

// One side of an FD as a list of attribute names ("{}" -> empty list).
StatusOr<std::vector<std::string>> ParseSide(std::string_view side_text) {
  std::string_view stripped = StripAsciiWhitespace(side_text);
  if (stripped == "{}" || stripped == "∅") return std::vector<std::string>{};
  std::string normalized(stripped);
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::vector<std::string> names = SplitWhitespace(normalized);
  if (names.empty()) {
    return Status::InvalidArgument(
        "empty FD side; write '{}' for an empty lhs");
  }
  return names;
}

struct TextFd {
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
  double weight = kHardFdWeight;
};

/// Parses the optional '@weight' suffix; 'inf' and 'hard' spell ∞.
StatusOr<double> ParseWeight(std::string_view text) {
  std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped == "inf" || stripped == "hard" || stripped == "∞") {
    return kHardFdWeight;
  }
  std::string buffer(stripped);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || buffer.empty() ||
      !(value > 0)) {
    return Status::InvalidArgument("invalid FD weight '" + buffer +
                                   "'; expected a positive number, 'inf' "
                                   "or 'hard'");
  }
  return value;
}

StatusOr<std::vector<TextFd>> Tokenize(std::string_view text) {
  std::string normalized(text);
  for (char& c : normalized) {
    if (c == '\n') c = ';';
  }
  std::vector<TextFd> out;
  for (const std::string& piece : Split(normalized, ';')) {
    std::string_view fd_text = StripAsciiWhitespace(piece);
    if (fd_text.empty()) continue;
    double weight = kHardFdWeight;
    size_t at = fd_text.rfind('@');
    if (at != std::string_view::npos) {
      FDR_ASSIGN_OR_RETURN(weight, ParseWeight(fd_text.substr(at + 1)));
      fd_text = StripAsciiWhitespace(fd_text.substr(0, at));
    }
    size_t arrow = fd_text.find("->");
    if (arrow == std::string_view::npos) {
      return Status::InvalidArgument("FD missing '->': '" +
                                     std::string(fd_text) + "'");
    }
    if (fd_text.find("->", arrow + 2) != std::string_view::npos) {
      return Status::InvalidArgument("FD with multiple '->': '" +
                                     std::string(fd_text) + "'");
    }
    auto lhs = ParseSide(fd_text.substr(0, arrow));
    if (!lhs.ok()) {
      // An absent lhs ("-> A") also denotes a consensus FD.
      if (StripAsciiWhitespace(fd_text.substr(0, arrow)).empty()) {
        lhs = std::vector<std::string>{};
      } else {
        return lhs.status();
      }
    }
    auto rhs = ParseSide(fd_text.substr(arrow + 2));
    FDR_RETURN_IF_ERROR(rhs.status());
    if (rhs.value().empty()) {
      return Status::InvalidArgument("FD with empty rhs: '" +
                                     std::string(fd_text) + "'");
    }
    out.push_back(
        TextFd{std::move(lhs).value(), std::move(rhs).value(), weight});
  }
  return out;
}

StatusOr<FdSet> Resolve(const Schema& schema, const std::vector<TextFd>& fds) {
  std::vector<RawFd> raw;
  raw.reserve(fds.size());
  for (const TextFd& fd : fds) {
    RawFd r;
    r.weight = fd.weight;
    for (const std::string& name : fd.lhs) {
      FDR_ASSIGN_OR_RETURN(AttrId attr, schema.AttributeId(name));
      r.lhs = r.lhs.With(attr);
    }
    for (const std::string& name : fd.rhs) {
      FDR_ASSIGN_OR_RETURN(AttrId attr, schema.AttributeId(name));
      r.rhs = r.rhs.With(attr);
    }
    raw.push_back(r);
  }
  return FdSet::FromRaw(raw);
}

}  // namespace

StatusOr<FdSet> ParseFdSet(const Schema& schema, std::string_view text) {
  FDR_ASSIGN_OR_RETURN(std::vector<TextFd> fds, Tokenize(text));
  return Resolve(schema, fds);
}

StatusOr<ParsedFdSet> ParseFdSetInferSchema(std::string_view text,
                                            std::string relation_name) {
  FDR_ASSIGN_OR_RETURN(std::vector<TextFd> fds, Tokenize(text));
  std::vector<std::string> names;
  auto note = [&](const std::string& name) {
    for (const std::string& seen : names) {
      if (seen == name) return;
    }
    names.push_back(name);
  };
  for (const TextFd& fd : fds) {
    for (const std::string& name : fd.lhs) note(name);
    for (const std::string& name : fd.rhs) note(name);
  }
  if (names.empty()) {
    return Status::InvalidArgument("no attributes found in FD text");
  }
  FDR_ASSIGN_OR_RETURN(Schema schema,
                       Schema::Make(std::move(relation_name), names));
  FDR_ASSIGN_OR_RETURN(FdSet fdset, Resolve(schema, fds));
  return ParsedFdSet{std::move(schema), std::move(fdset)};
}

FdSet ParseFdSetOrDie(const Schema& schema, std::string_view text) {
  auto result = ParseFdSet(schema, text);
  FDR_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

ParsedFdSet ParseFdSetInferSchemaOrDie(std::string_view text) {
  auto result = ParseFdSetInferSchema(text);
  FDR_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace fdrepair
