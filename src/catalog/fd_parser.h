// Text notation for FD sets, used by tests, examples and the
// dichotomy_explorer CLI.
//
// Grammar (whitespace-insensitive):
//   fdset    := fd (';' fd)* [';']        -- newlines also separate FDs
//   fd       := side '->' side ['@' weight]
//   side     := '{}' | attr+              -- attrs separated by spaces/commas
//   weight   := positive number | 'inf' | 'hard'
// Examples:
//   "A B -> C ; C -> B"
//   "facility -> city; facility room -> floor"
//   "{} -> C"                              -- a consensus FD
//   "A -> B @2.5 ; A -> C"                 -- one soft FD (ω = 2.5), one hard
// Omitting '@' (or writing '@inf' / '@hard') yields a hard FD; a finite
// weight marks the FD soft (see catalog/fd.h) and distributes over the
// single-rhs normalization of its rhs.

#ifndef FDREPAIR_CATALOG_FD_PARSER_H_
#define FDREPAIR_CATALOG_FD_PARSER_H_

#include <string>
#include <string_view>
#include <utility>

#include "catalog/fdset.h"
#include "catalog/schema.h"
#include "common/status.h"

namespace fdrepair {

/// Parses `text` against a known schema; unknown attribute names fail.
StatusOr<FdSet> ParseFdSet(const Schema& schema, std::string_view text);

/// Parses `text`, inferring a schema whose attributes are the names in order
/// of first appearance. Handy for schema-free discussions like "{A→B,B→C}".
struct ParsedFdSet {
  Schema schema;
  FdSet fds;
};
StatusOr<ParsedFdSet> ParseFdSetInferSchema(std::string_view text,
                                            std::string relation_name = "R");

/// Aborting conveniences for tests and benches where the input is a literal.
FdSet ParseFdSetOrDie(const Schema& schema, std::string_view text);
ParsedFdSet ParseFdSetInferSchemaOrDie(std::string_view text);

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_FD_PARSER_H_
