#include "catalog/fdset.h"

#include <algorithm>
#include <sstream>

namespace fdrepair {

FdSet FdSet::FromFds(std::vector<Fd> fds) {
  std::sort(fds.begin(), fds.end());
  // Merge same-(lhs, rhs) entries: hard dominates, soft weights add (two
  // copies of a soft FD charge every violation twice).
  std::vector<Fd> out;
  out.reserve(fds.size());
  for (const Fd& fd : fds) {
    if (!out.empty() && out.back().lhs == fd.lhs && out.back().rhs == fd.rhs) {
      out.back().weight = (out.back().IsHard() || fd.IsHard())
                              ? kHardFdWeight
                              : out.back().weight + fd.weight;
      continue;
    }
    out.push_back(fd);
  }
  return FdSet(std::move(out));
}

FdSet FdSet::FromRaw(const std::vector<RawFd>& raw_fds) {
  std::vector<Fd> fds;
  for (const RawFd& raw : raw_fds) {
    ForEachAttr(raw.rhs, [&](AttrId attr) {
      fds.emplace_back(raw.lhs, attr, raw.weight);
    });
  }
  return FromFds(std::move(fds));
}

AttrSet FdSet::Attrs() const {
  AttrSet out;
  for (const Fd& fd : fds_) out = out.Union(fd.Attrs());
  return out;
}

AttrSet FdSet::Closure(AttrSet x) const {
  AttrSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds_) {
      if (fd.lhs.IsSubsetOf(closure) && !closure.Contains(fd.rhs)) {
        closure = closure.With(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::Entails(const Fd& fd) const {
  return Closure(fd.lhs).Contains(fd.rhs);
}

bool FdSet::EntailsRaw(const RawFd& fd) const {
  return fd.rhs.IsSubsetOf(Closure(fd.lhs));
}

bool FdSet::EquivalentTo(const FdSet& other) const {
  for (const Fd& fd : other.fds_) {
    if (!Entails(fd)) return false;
  }
  for (const Fd& fd : fds_) {
    if (!other.Entails(fd)) return false;
  }
  return true;
}

bool FdSet::IsTrivial() const {
  for (const Fd& fd : fds_) {
    if (!fd.IsTrivial()) return false;
  }
  return true;
}

FdSet FdSet::WithoutTrivial() const {
  std::vector<Fd> out;
  for (const Fd& fd : fds_) {
    if (!fd.IsTrivial()) out.push_back(fd);
  }
  return FdSet(std::move(out));  // already sorted/unique
}

FdSet FdSet::CanonicalCover() const {
  if (HasSoftFds()) {
    // Weight-preserving form: canonicalize the hard part exactly as the
    // all-hard path below does, then append the soft FDs — dropping only
    // the provably irrelevant ones. A soft FD entailed by the hard cover
    // can never be violated alongside it: for any two tuples, violating
    // lhs → rhs while satisfying every hard FD would make {t1, t2} a
    // counterexample to the entailment. Everything else is kept verbatim
    // (weights are meaning; lhs reduction or soft-soft merging would
    // change which pairs get charged). Exact duplicates merge in FromFds.
    FdSet hard_cover = HardPart().CanonicalCover();
    std::vector<Fd> out = hard_cover.fds_;
    for (const Fd& fd : fds_) {
      if (fd.IsHard() || fd.IsTrivial()) continue;
      if (hard_cover.Entails(Fd(fd.lhs, fd.rhs))) continue;
      out.push_back(fd);
    }
    return FromFds(std::move(out));
  }
  FdSet cover = WithoutTrivial();
  bool changed = true;
  while (changed) {
    changed = false;
    // 1. Eliminate extraneous lhs attributes: b ∈ X is extraneous in X → A
    //    iff A ∈ cl∆(X ∖ b) under the *current* cover (standard definition;
    //    the FD being reduced stays in the set during the closure).
    std::vector<Fd> reduced;
    reduced.reserve(cover.fds_.size());
    for (const Fd& fd : cover.fds_) {
      AttrSet lhs = fd.lhs;
      ForEachAttr(fd.lhs, [&](AttrId b) {
        AttrSet without = lhs.Without(b);
        if (without != lhs && cover.Closure(without).Contains(fd.rhs)) {
          lhs = without;
          changed = true;
        }
      });
      Fd min_fd(lhs, fd.rhs);
      if (!min_fd.IsTrivial()) reduced.push_back(min_fd);
    }
    cover = FromFds(std::move(reduced));
    // 2. Eliminate redundant FDs: drop fd when the rest still entails it.
    //    Scanned in canonical order so the survivors are deterministic.
    for (size_t i = 0; i < cover.fds_.size();) {
      std::vector<Fd> rest;
      rest.reserve(cover.fds_.size() - 1);
      for (size_t j = 0; j < cover.fds_.size(); ++j) {
        if (j != i) rest.push_back(cover.fds_[j]);
      }
      FdSet remainder(std::move(rest));
      if (remainder.Entails(cover.fds_[i])) {
        cover = std::move(remainder);
        changed = true;
      } else {
        ++i;
      }
    }
  }
  return cover;
}

AttrSet FdSet::ConsensusAttrs() const { return Closure(AttrSet()); }

std::optional<AttrId> FdSet::FindCommonLhsAttr() const {
  if (fds_.empty()) return std::nullopt;
  AttrSet common = fds_.front().lhs;
  for (const Fd& fd : fds_) common = common.Intersect(fd.lhs);
  if (common.empty()) return std::nullopt;
  return common.First();
}

std::optional<Fd> FdSet::FindConsensusFd() const {
  for (const Fd& fd : fds_) {
    if (fd.IsConsensus()) return fd;
  }
  return std::nullopt;
}

std::optional<LhsMarriage> FdSet::FindLhsMarriage() const {
  std::vector<AttrSet> lhss = DistinctLhss();
  for (size_t i = 0; i < lhss.size(); ++i) {
    for (size_t j = i + 1; j < lhss.size(); ++j) {
      const AttrSet x1 = lhss[i];
      const AttrSet x2 = lhss[j];
      if (Closure(x1) != Closure(x2)) continue;
      bool covers_all = true;
      for (const AttrSet& lhs : lhss) {
        if (!x1.IsSubsetOf(lhs) && !x2.IsSubsetOf(lhs)) {
          covers_all = false;
          break;
        }
      }
      if (covers_all) return LhsMarriage{x1, x2};
    }
  }
  return std::nullopt;
}

FdSet FdSet::MinusAttrs(AttrSet x) const {
  std::vector<Fd> out;
  for (const Fd& fd : fds_) {
    if (x.Contains(fd.rhs)) continue;  // rhs removed: FD disappears
    out.emplace_back(fd.lhs.Minus(x), fd.rhs, fd.weight);
  }
  return FromFds(std::move(out));
}

FdSet FdSet::HardPart() const {
  std::vector<Fd> out;
  for (const Fd& fd : fds_) {
    if (fd.IsHard()) out.push_back(fd);
  }
  return FdSet(std::move(out));  // already sorted/unique
}

FdSet FdSet::SoftPart() const {
  std::vector<Fd> out;
  for (const Fd& fd : fds_) {
    if (fd.IsSoft()) out.push_back(fd);
  }
  return FdSet(std::move(out));  // already sorted/unique
}

bool FdSet::HasSoftFds() const {
  for (const Fd& fd : fds_) {
    if (fd.IsSoft()) return true;
  }
  return false;
}

StatusOr<FdSet> FdSet::WithWeights(const std::vector<double>& weights) const {
  if (static_cast<int>(weights.size()) != size()) {
    return Status::InvalidArgument(
        "weight profile has " + std::to_string(weights.size()) +
        " entries for " + std::to_string(size()) + " FDs");
  }
  std::vector<Fd> out = fds_;
  for (size_t i = 0; i < out.size(); ++i) {
    if (!(weights[i] > 0)) {  // rejects 0, negatives and NaN alike
      return Status::InvalidArgument("FD weights must be positive, got " +
                                     std::to_string(weights[i]));
    }
    out[i].weight = weights[i];
  }
  return FromFds(std::move(out));
}

bool FdSet::IsChain() const {
  for (size_t i = 0; i < fds_.size(); ++i) {
    for (size_t j = i + 1; j < fds_.size(); ++j) {
      const AttrSet a = fds_[i].lhs;
      const AttrSet b = fds_[j].lhs;
      if (!a.IsSubsetOf(b) && !b.IsSubsetOf(a)) return false;
    }
  }
  return true;
}

std::vector<Fd> FdSet::LocalMinima() const {
  std::vector<Fd> out;
  for (const Fd& fd : fds_) {
    bool minimal = true;
    for (const Fd& other : fds_) {
      if (other.lhs.IsStrictSubsetOf(fd.lhs)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(fd);
  }
  return out;
}

std::vector<AttrSet> FdSet::DistinctLhss() const {
  std::vector<AttrSet> out;
  for (const Fd& fd : fds_) out.push_back(fd.lhs);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FdSet FdSet::RestrictTo(AttrSet attrs) const {
  std::vector<Fd> out;
  for (const Fd& fd : fds_) {
    if (fd.Attrs().IsSubsetOf(attrs)) out.push_back(fd);
  }
  return FdSet(std::move(out));
}

std::vector<FdSet> FdSet::AttributeDisjointComponents() const {
  // Union-find over FDs: two FDs are connected when they share an attribute.
  const int n = size();
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](int v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (fds_[i].Attrs().Intersects(fds_[j].Attrs())) unite(i, j);
    }
  }
  std::vector<std::vector<Fd>> groups(n);
  for (int i = 0; i < n; ++i) groups[find(i)].push_back(fds_[i]);
  std::vector<FdSet> out;
  for (auto& group : groups) {
    if (!group.empty()) out.push_back(FromFds(std::move(group)));
  }
  return out;
}

std::string FdSet::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) os << "; ";
    os << fds_[i].ToString(schema);
  }
  return os.str();
}

std::string FdSet::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) os << "; ";
    os << fds_[i].ToString();
  }
  return os.str();
}

}  // namespace fdrepair
