// AttrSet: a set of attribute positions represented as a 64-bit bitset.
//
// The paper's algorithms manipulate attribute sets constantly (closures,
// lhs/rhs surgery, the ∆ − X operation); a machine-word bitset makes all of
// those O(1) and keeps FdSet operations allocation-free. The data-complexity
// stance of the paper (schema fixed, k small) makes 64 attributes a
// comfortable ceiling, enforced by Schema.

#ifndef FDREPAIR_CATALOG_ATTRSET_H_
#define FDREPAIR_CATALOG_ATTRSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fdrepair {

/// Index of an attribute within a Schema (0-based column position).
using AttrId = int;

/// Maximum number of attributes in a relation schema.
inline constexpr int kMaxAttributes = 64;

/// An immutable-by-convention set of attribute ids with value semantics.
/// Follows the paper's notation: sets are written without braces (ABC), the
/// empty set is ∅, and X ⊆ Y / X ∪ Y / X ∖ Y are the usual set operations.
class AttrSet {
 public:
  /// The empty attribute set ∅.
  constexpr AttrSet() : bits_(0) {}

  /// The singleton {attr}; attr must be in [0, kMaxAttributes).
  static AttrSet Singleton(AttrId attr);

  /// The set of all ids in `attrs` (duplicates allowed and collapsed).
  static AttrSet Of(std::initializer_list<AttrId> attrs);
  static AttrSet FromVector(const std::vector<AttrId>& attrs);

  /// The set {0, 1, ..., k-1}: every attribute of a k-ary schema.
  static AttrSet AllOf(int k);

  /// Wraps a raw bitmask (bit i set <=> attribute i in the set).
  static constexpr AttrSet FromBits(uint64_t bits) { return AttrSet(bits); }
  constexpr uint64_t bits() const { return bits_; }

  bool empty() const { return bits_ == 0; }
  int size() const { return __builtin_popcountll(bits_); }
  bool Contains(AttrId attr) const;

  /// X ⊆ other.
  bool IsSubsetOf(AttrSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  /// X ⊂ other (strict).
  bool IsStrictSubsetOf(AttrSet other) const {
    return IsSubsetOf(other) && bits_ != other.bits_;
  }
  bool Intersects(AttrSet other) const { return (bits_ & other.bits_) != 0; }

  AttrSet Union(AttrSet other) const { return AttrSet(bits_ | other.bits_); }
  AttrSet Intersect(AttrSet other) const {
    return AttrSet(bits_ & other.bits_);
  }
  /// X ∖ other.
  AttrSet Minus(AttrSet other) const { return AttrSet(bits_ & ~other.bits_); }

  AttrSet With(AttrId attr) const;
  AttrSet Without(AttrId attr) const;

  /// The members in increasing id order.
  std::vector<AttrId> ToVector() const;

  /// Smallest member; requires non-empty.
  AttrId First() const;

  /// Debug rendering with numeric ids, e.g. "{0,2,5}"; Schema::NamesOf gives
  /// the human-readable form.
  std::string ToString() const;

  bool operator==(const AttrSet& other) const = default;
  /// Orders by bitmask; used for canonical sorting of FDs.
  bool operator<(const AttrSet& other) const { return bits_ < other.bits_; }

 private:
  explicit constexpr AttrSet(uint64_t bits) : bits_(bits) {}

  uint64_t bits_;
};

/// Iteration helper: calls fn(attr) for each member in increasing order.
template <typename Fn>
void ForEachAttr(AttrSet set, Fn fn) {
  uint64_t bits = set.bits();
  while (bits != 0) {
    AttrId attr = __builtin_ctzll(bits);
    fn(attr);
    bits &= bits - 1;
  }
}

/// Enumerates all subsets of `universe` (including ∅ and itself), invoking
/// fn(subset). Cost 2^|universe|; callers guard sizes. Used by the minimum
/// hitting-set computations (mlc, MCI) where the paper allows exponential
/// dependence on the fixed schema.
template <typename Fn>
void ForEachSubset(AttrSet universe, Fn fn) {
  uint64_t u = universe.bits();
  uint64_t sub = 0;
  while (true) {
    fn(AttrSet::FromBits(sub));
    if (sub == u) break;
    sub = (sub - u) & u;  // next subset in lexicographic mask order
  }
}

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_ATTRSET_H_
