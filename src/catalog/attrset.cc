#include "catalog/attrset.h"

#include <sstream>

namespace fdrepair {

AttrSet AttrSet::Singleton(AttrId attr) {
  FDR_CHECK_MSG(attr >= 0 && attr < kMaxAttributes, "attr=" << attr);
  return AttrSet(uint64_t{1} << attr);
}

AttrSet AttrSet::Of(std::initializer_list<AttrId> attrs) {
  AttrSet out;
  for (AttrId attr : attrs) out = out.Union(Singleton(attr));
  return out;
}

AttrSet AttrSet::FromVector(const std::vector<AttrId>& attrs) {
  AttrSet out;
  for (AttrId attr : attrs) out = out.Union(Singleton(attr));
  return out;
}

AttrSet AttrSet::AllOf(int k) {
  FDR_CHECK_MSG(k >= 0 && k <= kMaxAttributes, "k=" << k);
  if (k == 0) return AttrSet();
  if (k == kMaxAttributes) return AttrSet(~uint64_t{0});
  return AttrSet((uint64_t{1} << k) - 1);
}

bool AttrSet::Contains(AttrId attr) const {
  if (attr < 0 || attr >= kMaxAttributes) return false;
  return (bits_ >> attr) & 1;
}

AttrSet AttrSet::With(AttrId attr) const {
  return Union(Singleton(attr));
}

AttrSet AttrSet::Without(AttrId attr) const {
  return Minus(Singleton(attr));
}

std::vector<AttrId> AttrSet::ToVector() const {
  std::vector<AttrId> out;
  out.reserve(size());
  ForEachAttr(*this, [&](AttrId attr) { out.push_back(attr); });
  return out;
}

AttrId AttrSet::First() const {
  FDR_CHECK(!empty());
  return __builtin_ctzll(bits_);
}

std::string AttrSet::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  ForEachAttr(*this, [&](AttrId attr) {
    if (!first) os << ",";
    first = false;
    os << attr;
  });
  os << "}";
  return os.str();
}

}  // namespace fdrepair
