// Schema: a relation schema R(A1, ..., Ak) — an ordered list of named
// attributes (§2.1 of the paper). Attribute names map to AttrIds (column
// positions), which the rest of the library uses exclusively; names resurface
// only for parsing and printing.

#ifndef FDREPAIR_CATALOG_SCHEMA_H_
#define FDREPAIR_CATALOG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/attrset.h"
#include "common/status.h"

namespace fdrepair {

/// An immutable relation schema: a relation name plus k distinct attributes.
class Schema {
 public:
  /// Builds a schema; fails if names are empty, duplicated, or more than
  /// kMaxAttributes of them.
  static StatusOr<Schema> Make(std::string relation_name,
                               std::vector<std::string> attribute_names);

  /// Convenience for tests and examples: aborts on invalid input.
  static Schema MakeOrDie(std::string relation_name,
                          std::vector<std::string> attribute_names);

  /// An anonymous k-ary schema R(A, B, C, ...) (single letters up to k=26,
  /// then A27, A28, ...). Matches the paper's generic schemas.
  static Schema Anonymous(int arity);

  const std::string& relation_name() const { return relation_name_; }
  int arity() const { return static_cast<int>(attribute_names_.size()); }

  /// All attributes as a set: {0, ..., k-1}.
  AttrSet AllAttrs() const { return AttrSet::AllOf(arity()); }

  /// Name of attribute `attr`; requires 0 <= attr < arity().
  const std::string& AttributeName(AttrId attr) const;

  /// Id of the attribute called `name`, or kNotFound.
  StatusOr<AttrId> AttributeId(const std::string& name) const;
  bool HasAttribute(const std::string& name) const;

  /// Renders an AttrSet with attribute names in paper style: "facility room"
  /// for a set, "∅" for the empty set.
  std::string NamesOf(AttrSet set) const;

  /// "R(A, B, C)".
  std::string ToString() const;

  /// Schemas are equal when relation name and the ordered attribute list
  /// coincide.
  bool operator==(const Schema& other) const;

 private:
  Schema(std::string relation_name, std::vector<std::string> attribute_names);

  std::string relation_name_;
  std::vector<std::string> attribute_names_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_SCHEMA_H_
