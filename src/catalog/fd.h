// Fd: a functional dependency X → A in the single-rhs normal form the paper
// adopts throughout §3 ("we assume that every FD has a single attribute on
// its right-hand side"). The parser accepts general X → Y and normalizes.

#ifndef FDREPAIR_CATALOG_FD_H_
#define FDREPAIR_CATALOG_FD_H_

#include <string>

#include "catalog/attrset.h"
#include "catalog/schema.h"

namespace fdrepair {

/// A functional dependency lhs → rhs with a single rhs attribute.
struct Fd {
  AttrSet lhs;
  AttrId rhs = 0;

  Fd() = default;
  Fd(AttrSet lhs_in, AttrId rhs_in) : lhs(lhs_in), rhs(rhs_in) {}

  /// Trivial iff rhs ∈ lhs (§2.2): satisfied by every table.
  bool IsTrivial() const { return lhs.Contains(rhs); }

  /// Consensus iff the lhs is empty (∅ → A, §2.2): all tuples must agree
  /// on the rhs attribute.
  bool IsConsensus() const { return lhs.empty(); }

  /// All attributes mentioned by this FD (lhs ∪ {rhs}).
  AttrSet Attrs() const { return lhs.With(rhs); }

  /// Renders with schema names, e.g. "facility room -> floor" or "{} -> C".
  std::string ToString(const Schema& schema) const;
  /// Renders with numeric ids, e.g. "{0,1} -> 2".
  std::string ToString() const;

  bool operator==(const Fd& other) const = default;
  /// Canonical order: by lhs bitmask, then rhs. FdSet keeps FDs sorted so
  /// equal sets compare equal structurally.
  bool operator<(const Fd& other) const {
    if (lhs != other.lhs) return lhs < other.lhs;
    return rhs < other.rhs;
  }
};

/// A general FD X → Y before single-rhs normalization; produced by the
/// parser and by user-facing builders.
struct RawFd {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const RawFd& other) const = default;
};

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_FD_H_
