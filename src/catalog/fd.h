// Fd: a functional dependency X → A in the single-rhs normal form the paper
// adopts throughout §3 ("we assume that every FD has a single attribute on
// its right-hand side"). The parser accepts general X → Y and normalizes.
//
// Every FD carries a violation weight ω ∈ (0, ∞]. ω = ∞ (the default) is a
// *hard* FD: repairs must satisfy it exactly, and every pre-existing
// algorithm in this codebase treats it as before. A finite ω is a *soft*
// FD in the sense of Carmeli–Grohe–Kimelfeld–Livshits ("Database Repairing
// with Soft Functional Dependencies"): a repair may keep a violating tuple
// pair and is charged ω per violation instead. The soft planner
// (srepair/soft_repair.h) consumes finite weights; all other planners
// require all-hard sets.

#ifndef FDREPAIR_CATALOG_FD_H_
#define FDREPAIR_CATALOG_FD_H_

#include <limits>
#include <string>

#include "catalog/attrset.h"
#include "catalog/schema.h"

namespace fdrepair {

/// The weight of a hard (inviolable) FD. Plain FDs default to it, so code
/// written before weights existed keeps its exact behavior.
inline constexpr double kHardFdWeight =
    std::numeric_limits<double>::infinity();

/// A functional dependency lhs → rhs with a single rhs attribute and a
/// violation weight (∞ = hard, finite = soft).
struct Fd {
  AttrSet lhs;
  AttrId rhs = 0;
  /// ω(φ) ∈ (0, ∞]: the cost charged per violating tuple pair kept by a
  /// soft repair. ∞ marks the FD hard.
  double weight = kHardFdWeight;

  Fd() = default;
  Fd(AttrSet lhs_in, AttrId rhs_in) : lhs(lhs_in), rhs(rhs_in) {}
  Fd(AttrSet lhs_in, AttrId rhs_in, double weight_in)
      : lhs(lhs_in), rhs(rhs_in), weight(weight_in) {}

  bool IsHard() const { return weight == kHardFdWeight; }
  bool IsSoft() const { return !IsHard(); }

  /// Trivial iff rhs ∈ lhs (§2.2): satisfied by every table.
  bool IsTrivial() const { return lhs.Contains(rhs); }

  /// Consensus iff the lhs is empty (∅ → A, §2.2): all tuples must agree
  /// on the rhs attribute.
  bool IsConsensus() const { return lhs.empty(); }

  /// All attributes mentioned by this FD (lhs ∪ {rhs}).
  AttrSet Attrs() const { return lhs.With(rhs); }

  /// Renders with schema names, e.g. "facility room -> floor" or "{} -> C";
  /// soft FDs append their weight, e.g. "room -> floor @2".
  std::string ToString(const Schema& schema) const;
  /// Renders with numeric ids, e.g. "{0,1} -> 2".
  std::string ToString() const;

  bool operator==(const Fd& other) const = default;
  /// Canonical order: by lhs bitmask, then rhs, then weight (soft before
  /// hard). FdSet keeps FDs sorted so equal sets compare equal structurally.
  bool operator<(const Fd& other) const {
    if (lhs != other.lhs) return lhs < other.lhs;
    if (rhs != other.rhs) return rhs < other.rhs;
    return weight < other.weight;
  }
};

/// A general FD X → Y before single-rhs normalization; produced by the
/// parser and by user-facing builders. The weight distributes over the
/// normalized single-rhs FDs {X → A : A ∈ Y}.
struct RawFd {
  AttrSet lhs;
  AttrSet rhs;
  double weight = kHardFdWeight;

  bool operator==(const RawFd& other) const = default;
};

}  // namespace fdrepair

#endif  // FDREPAIR_CATALOG_FD_H_
