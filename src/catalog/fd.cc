#include "catalog/fd.h"

#include <sstream>

namespace fdrepair {

std::string Fd::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (lhs.empty()) {
    os << "{}";
  } else {
    os << schema.NamesOf(lhs);
  }
  os << " -> " << schema.AttributeName(rhs);
  return os.str();
}

std::string Fd::ToString() const {
  std::ostringstream os;
  os << lhs.ToString() << " -> " << rhs;
  return os.str();
}

}  // namespace fdrepair
