#include "catalog/fd.h"

#include <sstream>

namespace fdrepair {
namespace {

void AppendWeight(std::ostringstream& os, const Fd& fd) {
  if (fd.IsSoft()) os << " @" << fd.weight;
}

}  // namespace

std::string Fd::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (lhs.empty()) {
    os << "{}";
  } else {
    os << schema.NamesOf(lhs);
  }
  os << " -> " << schema.AttributeName(rhs);
  AppendWeight(os, *this);
  return os.str();
}

std::string Fd::ToString() const {
  std::ostringstream os;
  os << lhs.ToString() << " -> " << rhs;
  AppendWeight(os, *this);
  return os.str();
}

}  // namespace fdrepair
