#include "reductions/factwise.h"

namespace fdrepair {
namespace {

std::string Pair(const std::string& x, const std::string& y) {
  return "<" + x + "," + y + ">";
}
std::string Triple(const std::string& x, const std::string& y,
                   const std::string& z) {
  return "<" + x + "," + y + "," + z + ">";
}

}  // namespace

StatusOr<std::vector<std::string>> MapGadgetTuple(
    const FdClassification& classification, const FdSet& target_fds,
    const Schema& target_schema, const std::string& a, const std::string& b,
    const std::string& c) {
  const FdSet delta = target_fds.WithoutTrivial();
  const AttrSet x1 = classification.x1;
  const AttrSet x2 = classification.x2;
  const AttrSet cl1 = delta.Closure(x1);
  const AttrSet cl2 = delta.Closure(x2);
  const AttrSet hat1 = cl1.Minus(x1);
  const AttrSet hat2 = cl2.Minus(x2);

  std::vector<std::string> out(target_schema.arity());
  switch (classification.fd_class) {
    case 1: {
      // Lemma A.14 (from ∆A→C←B).
      for (AttrId k = 0; k < target_schema.arity(); ++k) {
        if (x1.Contains(k) && x2.Contains(k)) {
          out[k] = kFactwiseConstant;
        } else if (x1.Contains(k)) {
          out[k] = a;
        } else if (x2.Contains(k)) {
          out[k] = b;
        } else if (hat1.Contains(k)) {
          out[k] = Pair(a, c);
        } else if (hat2.Contains(k)) {
          out[k] = Pair(b, c);
        } else {
          out[k] = Pair(a, b);
        }
      }
      return out;
    }
    case 2:
    case 3: {
      // Lemma A.15 (from ∆A→B→C); covers both of its cases.
      for (AttrId k = 0; k < target_schema.arity(); ++k) {
        if (x1.Contains(k) && x2.Contains(k)) {
          out[k] = kFactwiseConstant;
        } else if (x1.Contains(k)) {
          out[k] = a;
        } else if (x2.Contains(k)) {
          out[k] = b;
        } else if (hat1.Contains(k) && !cl2.Contains(k)) {
          out[k] = Pair(a, c);
        } else if (hat2.Contains(k)) {
          out[k] = Pair(b, c);
        } else {
          out[k] = a;
        }
      }
      return out;
    }
    case 4: {
      // Lemma A.16 (from ∆AB↔AC↔BC); needs the third local minimum.
      if (!classification.x3) {
        return Status::InvalidArgument(
            "class-4 reduction requires a third local minimum");
      }
      const AttrSet x3 = *classification.x3;
      for (AttrId k = 0; k < target_schema.arity(); ++k) {
        const bool in1 = x1.Contains(k);
        const bool in2 = x2.Contains(k);
        const bool in3 = x3.Contains(k);
        if (in1 && in2 && in3) {
          out[k] = kFactwiseConstant;
        } else if (in1 && in2) {
          out[k] = a;
        } else if (in1 && in3) {
          out[k] = b;
        } else if (in2 && in3) {
          out[k] = c;
        } else if (in1) {
          out[k] = Pair(a, b);
        } else if (in2) {
          out[k] = Pair(a, c);
        } else if (in3) {
          out[k] = Pair(b, c);
        } else {
          out[k] = Triple(a, b, c);
        }
      }
      return out;
    }
    case 5: {
      // Lemma A.17 (from ∆AB→C→B), oriented so (X2 ∖ X1) ⊄ X̂1.
      for (AttrId k = 0; k < target_schema.arity(); ++k) {
        const bool in_x2_minus_x1 = x2.Contains(k) && !x1.Contains(k);
        if (x1.Contains(k) && x2.Contains(k)) {
          out[k] = kFactwiseConstant;
        } else if (x1.Contains(k)) {
          out[k] = c;
        } else if (in_x2_minus_x1 && hat1.Contains(k)) {
          out[k] = b;
        } else if (in_x2_minus_x1) {
          out[k] = Pair(a, b);
        } else if (hat1.Contains(k)) {
          out[k] = Pair(b, c);
        } else {
          out[k] = Triple(a, b, c);
        }
      }
      return out;
    }
    default:
      return Status::InvalidArgument("unknown FD class " +
                                     std::to_string(classification.fd_class));
  }
}

StatusOr<Table> ApplyClassReduction(const FdClassification& classification,
                                    const FdSet& target_fds,
                                    const Schema& target_schema,
                                    const Table& source) {
  if (source.schema().arity() != 3) {
    return Status::InvalidArgument(
        "class reductions map from the 3-ary gadget schema R(A, B, C)");
  }
  Table out(target_schema);
  for (int row = 0; row < source.num_tuples(); ++row) {
    FDR_ASSIGN_OR_RETURN(
        std::vector<std::string> values,
        MapGadgetTuple(classification, target_fds, target_schema,
                       source.ValueText(row, 0), source.ValueText(row, 1),
                       source.ValueText(row, 2)));
    FDR_RETURN_IF_ERROR(
        out.AddTupleWithId(source.id(row), values, source.weight(row)));
  }
  return out;
}

Table ApplyAttributeEliminationReduction(const Table& source,
                                         AttrSet removed) {
  Table out(source.schema());
  ValueId constant = out.Intern(kFactwiseConstant);
  for (int row = 0; row < source.num_tuples(); ++row) {
    Tuple tuple(source.schema().arity());
    for (AttrId attr = 0; attr < source.schema().arity(); ++attr) {
      tuple[attr] = removed.Contains(attr)
                        ? constant
                        : out.Intern(source.ValueText(row, attr));
    }
    Status status = out.AddInternedTupleWithId(source.id(row),
                                               std::move(tuple),
                                               source.weight(row));
    FDR_CHECK_MSG(status.ok(), status.ToString());
  }
  return out;
}

}  // namespace fdrepair
