// Hardness-gadget instance generators: the constructions the paper uses to
// prove APX-hardness, implemented as table builders so the benchmarks can
// measure the exact combinatorial quantities the proofs equate.
//
//  - Vertex cover -> ∆A↔B→C tables (Theorem 4.10 / Appendix B.4):
//      edge {u,v} -> tuples (u,v,0), (v,u,0); vertex v -> (v,v,1);
//      optimal U-repair distance = 2|E| + vc(G).
//  - MAX-non-mixed-SAT -> ∆AB→C→B tables (Lemma A.13):
//      positive clause c with variable x -> (c, 1, x);
//      negative clause c with variable x -> (c, 0, x);
//      max simultaneously satisfiable clauses = optimal S-repair size.
//  - Edge-disjoint triangle packing -> ∆AB↔AC↔BC tables (Lemma A.11):
//      triangle (a, b, c) of a tripartite graph -> tuple (a, b, c);
//      max edge-disjoint triangles = optimal S-repair size.
//  - Vertex cover -> {A→B, B→C} tables (Kolahi & Lakshmanan's reduction,
//      recalled in §4.1/Example 4.2): edge {u,v} -> (u, v, 0) and
//      (v, u, 0); vertex v -> (v, v, 1), mirroring the ∆A↔B→C gadget shape.

#ifndef FDREPAIR_REDUCTIONS_GADGETS_H_
#define FDREPAIR_REDUCTIONS_GADGETS_H_

#include <string>
#include <vector>

#include "catalog/fd_parser.h"
#include "graph/graph.h"
#include "storage/table.h"

namespace fdrepair {

/// A non-mixed CNF formula: every clause is all-positive or all-negative.
struct NonMixedFormula {
  int num_variables = 0;
  struct Clause {
    bool positive = true;
    std::vector<int> variables;  // 0-based
  };
  std::vector<Clause> clauses;
};

/// Builds the Theorem 4.10 gadget table over R(A, B, C) for ∆A↔B→C.
/// Unweighted, duplicate-free.
Table VertexCoverGadgetTable(const NodeWeightedGraph& graph);

/// The FD set the vertex-cover gadget targets: {A→B, B→A, B→C}.
ParsedFdSet VertexCoverGadgetFds();

/// Builds the Lemma A.13 gadget table over R(A, B, C) for ∆AB→C→B.
Table NonMixedSatGadgetTable(const NonMixedFormula& formula);
ParsedFdSet NonMixedSatGadgetFds();

/// A triangle in a tripartite graph, by part-local vertex names.
struct Triangle {
  std::string a;
  std::string b;
  std::string c;
};

/// Builds the Lemma A.11 gadget table over R(A, B, C) for ∆AB↔AC↔BC:
/// one tuple per triangle.
Table TrianglePackingGadgetTable(const std::vector<Triangle>& triangles);
ParsedFdSet TrianglePackingGadgetFds();

}  // namespace fdrepair

#endif  // FDREPAIR_REDUCTIONS_GADGETS_H_
