// Fact-wise reductions (§3.3, Appendix A) as executable tuple mappings.
//
// A fact-wise reduction Π from (R, ∆) to (R', ∆') is an injective,
// polynomial-time tuple mapping that preserves consistency and
// inconsistency of tuple *pairs* — hence a strict reduction between the
// optimal-S-repair problems (Lemma 3.7). The paper's hardness side builds Π
// from one of four gadget schemas over R(A, B, C) into every
// non-simplifiable FD set, choosing the construction by the Figure-2 class:
//   class 1 -> Lemma A.14 (from ∆A→C←B),
//   classes 2,3 -> Lemma A.15 (from ∆A→B→C),
//   class 4 -> Lemma A.16 (from ∆AB↔AC↔BC),
//   class 5 -> Lemma A.17 (from ∆AB→C→B),
// plus the attribute-elimination reduction of Lemma A.18 (from (R, ∆ − X)
// to (R, ∆)) that chains the simplification steps backwards.
//
// Here the mappings run on real tables: gadget values a, b, c are value
// strings, composite values ⟨a,c⟩ are interned pair-strings, and ⊙ is a
// reserved constant — so the lemmas become executable and property-testable.

#ifndef FDREPAIR_REDUCTIONS_FACTWISE_H_
#define FDREPAIR_REDUCTIONS_FACTWISE_H_

#include <string>

#include "common/status.h"
#include "srepair/class_classifier.h"
#include "storage/table.h"

namespace fdrepair {

/// The reserved constant ⊙ used by the constructions.
inline constexpr const char* kFactwiseConstant = "⊙";

/// Maps a table over the 3-ary gadget schema R(A, B, C) into a table over
/// `target_schema` under the non-simplifiable `target_fds`, using the
/// construction matching `classification` (obtained from
/// ClassifyNonSimplifiable(target_fds)). Identifiers and weights carry over.
///
/// Fails (kInvalidArgument) if `source` is not 3-ary or the classification
/// does not belong to `target_fds`.
StatusOr<Table> ApplyClassReduction(const FdClassification& classification,
                                    const FdSet& target_fds,
                                    const Schema& target_schema,
                                    const Table& source);

/// Maps one source tuple (values as strings) through the class construction;
/// exposed for the injectivity / pair-consistency property tests.
StatusOr<std::vector<std::string>> MapGadgetTuple(
    const FdClassification& classification, const FdSet& target_fds,
    const Schema& target_schema, const std::string& a, const std::string& b,
    const std::string& c);

/// Lemma A.18: the reduction from (R, ∆ − X) to (R, ∆) — every attribute of
/// `removed` is overwritten with ⊙. Preserves ids and weights.
Table ApplyAttributeEliminationReduction(const Table& source, AttrSet removed);

}  // namespace fdrepair

#endif  // FDREPAIR_REDUCTIONS_FACTWISE_H_
