#include "reductions/gadgets.h"

namespace fdrepair {
namespace {

Schema GadgetSchema() { return Schema::Anonymous(3); }

std::string VertexName(int v) { return "v" + std::to_string(v); }

}  // namespace

Table VertexCoverGadgetTable(const NodeWeightedGraph& graph) {
  Table table(GadgetSchema());
  for (const auto& [u, v] : graph.edges()) {
    table.AddTuple({VertexName(u), VertexName(v), "0"});
    table.AddTuple({VertexName(v), VertexName(u), "0"});
  }
  for (int v = 0; v < graph.num_nodes(); ++v) {
    table.AddTuple({VertexName(v), VertexName(v), "1"});
  }
  return table;
}

ParsedFdSet VertexCoverGadgetFds() {
  return ParseFdSetInferSchemaOrDie("A -> B; B -> A; B -> C");
}

Table NonMixedSatGadgetTable(const NonMixedFormula& formula) {
  Table table(GadgetSchema());
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    const NonMixedFormula::Clause& clause = formula.clauses[c];
    for (int variable : clause.variables) {
      table.AddTuple({"c" + std::to_string(c), clause.positive ? "1" : "0",
                      "x" + std::to_string(variable)});
    }
  }
  return table;
}

ParsedFdSet NonMixedSatGadgetFds() {
  return ParseFdSetInferSchemaOrDie("A B -> C; C -> B");
}

Table TrianglePackingGadgetTable(const std::vector<Triangle>& triangles) {
  Table table(GadgetSchema());
  for (const Triangle& triangle : triangles) {
    table.AddTuple({triangle.a, triangle.b, triangle.c});
  }
  return table;
}

ParsedFdSet TrianglePackingGadgetFds() {
  return ParseFdSetInferSchemaOrDie("A B -> C; A C -> B; B C -> A");
}

}  // namespace fdrepair
