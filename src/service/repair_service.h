// RepairService: the long-lived serving façade over the repair stack.
//
// Real repair traffic repeats itself — the same FD sets and the same (or
// re-sent) tables arrive again and again across tenants and retries. The
// service turns that repetition into O(1) work:
//
//   request ──► canonicalize ∆ (FdSet::CanonicalCover)
//           ──► key = stable 64-bit hash of (mode, cover, table content)
//           ──► bounded LRU result cache
//                 ├─ ready entry      → reconstruct the repair  (hit)
//                 ├─ entry computing  → wait for it (single-flight dedup)
//                 └─ miss             → admission control → plan & execute
//
// Canonicalization makes the key phrasing-independent: equivalent FD sets
// (reordered, duplicated, inflated-lhs, implied FDs) and content-identical
// tables (regardless of which Table/ValuePool object carries them) share one
// entry. The cache stores *recipes*, not tables — kept tuple ids for subset
// repairs, cell edits for update repairs — and replays them against the
// request's own table, so a hit returns a repair bit-identical (ids, value
// texts, weights) to what the planner would produce, at O(result) cost.
//
// Execution always runs on the canonical cover, on hits and misses alike,
// so the two paths answer from the same deterministic computation.
//
// Admission control: concurrent cache-missing requests beyond
// `max_inflight` wait for a slot; more than `max_queue` waiters are
// rejected immediately with kUnavailable, and a waiter whose deadline
// passes is rejected with kDeadlineExceeded — the service never stalls
// unboundedly. Cache hits and single-flight followers bypass admission
// entirely (they do no planner work).
//
// Thread safety: Serve() may be called from any number of threads.

#ifndef FDREPAIR_SERVICE_REPAIR_SERVICE_H_
#define FDREPAIR_SERVICE_REPAIR_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/fdset.h"
#include "common/status.h"
#include "engine/repair_engine.h"
#include "storage/table.h"
#include "storage/table_delta.h"
#include "urepair/opt_urepair.h"
#include "urepair/planner.h"

namespace fdrepair {

/// Which repair family the request asks for.
enum class RepairMode {
  /// Optimal subset repair (delete tuples; §3 routes via the S-planner).
  kSubset,
  /// Optimal update repair (rewrite cells; §4 routes via the U-planner).
  kUpdate,
  /// Soft repair: tuple deletions traded against weighted FD violations
  /// (srepair/soft_repair.h). FDs with finite weights (catalog/fd.h) may
  /// stay violated at cost ω per violating pair; an all-hard FD set makes
  /// this mode delegate to the subset pipeline outright, so its responses
  /// are bit-identical to kSubset's.
  kSoft,
};

const char* RepairModeToString(RepairMode mode);

/// Every per-request knob in one place, embedded in RepairRequest as
/// `options`. The historical flat RepairRequest fields forward here (see
/// RepairRequest) — new code sets this struct only. Mode/option
/// compatibility is validated centrally in Serve; mismatches fail with
/// kInvalidArgument before keying or admission.
struct RepairOptions {
  /// kSubset/kSoft: hard-side solver backend by registry name
  /// ("local-ratio", "bnb", "ilp", "lp-rounding", ...). Empty defers to
  /// the service's configured SRepairOptions. kSoft with finite-weight
  /// violations additionally requires a soft-capable backend. Part of the
  /// cache key, so responses produced by different solvers never alias.
  std::string backend;
  /// kSubset/kSoft: reject results whose certified ratio exceeds this
  /// (see SRepairOptions::max_ratio). 0 disables the gate. Also keyed.
  double max_ratio = 0;
  /// Time budget from the moment Serve is called; covers queueing, waiting
  /// on a single-flight leader, and execution. Unset: no limit.
  std::optional<std::chrono::milliseconds> deadline;
  /// Thread hint: 0 uses the service's engine as configured; 1 forces this
  /// request's execution onto the calling thread (no block fan-out — the
  /// bit-identical sequential baseline). Values > 1 are advisory only and
  /// currently behave like 0 (the engine's pool is shared and fixed-size).
  int threads = 0;
  /// Skip the cache entirely (no lookup, no store, no dedup). Admission
  /// control still applies. Used by benches to measure cold latency.
  /// Incompatible with delta requests (incremental replay is defined by
  /// cached state) — that combination is rejected, not ignored.
  bool bypass_cache = false;
  /// kSoft only: a per-FD weight profile applied over request.fds in its
  /// stored FD order (FdSet::WithWeights) — size must equal fds.size(),
  /// entries must be positive (kHardFdWeight = ∞ pins an FD hard). Empty
  /// keeps whatever weights the FDs already carry. The effective weights
  /// are part of the cache key: two profiles never share an entry.
  std::vector<double> soft_weights;
};

/// One typed serving request. The table is borrowed and must stay alive
/// (and unmodified) until Serve returns.
///
/// The flat `deadline`/`threads`/`bypass_cache`/`backend`/`max_ratio`
/// fields are DEPRECATED forwarders kept for source compatibility: they
/// merge into `options` at the top of Serve, and setting a knob both ways
/// to conflicting values fails with kInvalidArgument. New code sets
/// `options` only.
struct RepairRequest {
  RepairMode mode = RepairMode::kSubset;
  FdSet fds;
  const Table* table = nullptr;
  /// The unified per-request options (see RepairOptions).
  RepairOptions options;
  /// DEPRECATED — use options.deadline.
  std::optional<std::chrono::milliseconds> deadline;
  /// DEPRECATED — use options.threads.
  int threads = 0;
  /// DEPRECATED — use options.bypass_cache.
  bool bypass_cache = false;
  /// DEPRECATED — use options.backend.
  std::string backend;
  /// DEPRECATED — use options.max_ratio.
  double max_ratio = 0;
  /// The mutation taking a previously served table state to *table
  /// (borrowed, like the table; must validate against it — see
  /// storage/table_delta.h). When set, the request is keyed by the delta's
  /// result_hash chain instead of rehashing the table, and if the
  /// pre-mutation state's entry (keyed by delta->base_hash) still holds a
  /// spliceable plan, execution re-repairs only the blocks the mutation
  /// dirtied — kept-id recipes in subset mode, cell-edit recipes in update
  /// mode (urepair/opt_urepair.h) — and the response is bit-identical to a
  /// cold full re-plan either way. Null: the ordinary content-hash path.
  const TableDelta* delta = nullptr;
};

struct RepairResponse {
  /// The repaired table, over the request table's schema and pool.
  Table repair;
  /// dist_sub / dist_upd to the request table.
  double distance = 0;
  /// True iff provably optimal; `ratio_bound` as for the planners.
  bool optimal = false;
  double ratio_bound = 1;
  /// Human-readable route ("OptSRepair", "urepair[consensus-plurality]"...).
  std::string route;
  /// Solver provenance for subset repairs: the backend registry name
  /// (empty on the polynomial route and for update repairs), the proved
  /// lower bound on the optimal distance, and the certified ratio
  /// distance / lower_bound (see SRepairResult).
  std::string backend;
  double lower_bound = 0;
  double achieved_ratio = 1;
  /// True when this response was replayed from the cache (including
  /// single-flight followers); false when this call ran the planner.
  bool cache_hit = false;
  /// The canonical request key (stable across processes; loggable).
  uint64_t cache_key = 0;
};

/// Monotonic counters since construction, plus the current entry count.
struct RepairServiceStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Requests that found another thread computing the same key and waited
  /// for its result instead of recomputing (they also count as hits once
  /// served).
  uint64_t single_flight_waits = 0;
  uint64_t evictions = 0;
  uint64_t rejected_deadline = 0;
  uint64_t rejected_unavailable = 0;
  /// Delta-path observability. A delta request that misses its own chain
  /// key either splices (the pre-mutation entry still held a plan) or
  /// falls back to a full re-plan; the block counters aggregate how much
  /// cached work the splices replayed vs recomputed.
  uint64_t delta_requests = 0;
  uint64_t delta_splices = 0;
  uint64_t delta_full_replans = 0;
  uint64_t delta_blocks_clean = 0;
  uint64_t delta_blocks_dirty = 0;
  /// The same counters for update-mode delta requests (the delta_* family
  /// above counts subset mode only; block counts aggregate across the
  /// U-plan's inner per-component S-repair splices).
  uint64_t udelta_requests = 0;
  uint64_t udelta_splices = 0;
  uint64_t udelta_full_replans = 0;
  uint64_t udelta_blocks_clean = 0;
  uint64_t udelta_blocks_dirty = 0;
  /// Ready entries currently cached.
  uint64_t entries = 0;
  /// Requests currently executing / waiting for an execution slot.
  uint64_t inflight = 0;
  uint64_t queued = 0;
};

struct RepairServiceOptions {
  /// Maximum number of ready results kept (LRU eviction beyond this).
  /// 0 disables caching but keeps single-flight dedup of in-flight work.
  size_t cache_capacity = 256;
  /// Cache-missing requests allowed to execute concurrently; 0 resolves to
  /// the engine's thread count.
  int max_inflight = 0;
  /// Cache-missing requests allowed to *wait* for an execution slot beyond
  /// `max_inflight`; anything past that is rejected with kUnavailable.
  int max_queue = 64;
  /// The batch engine serving subset-repair execution.
  EngineOptions engine;
  /// Route options passed through to the planners (exec is overwritten).
  SRepairOptions srepair;
  URepairOptions urepair;
};

class RepairService {
 public:
  explicit RepairService(const RepairServiceOptions& options = {});
  ~RepairService();

  RepairService(const RepairService&) = delete;
  RepairService& operator=(const RepairService&) = delete;

  /// Serves one request: cache lookup, single-flight wait, or plan+execute
  /// under admission control. Safe to call concurrently.
  StatusOr<RepairResponse> Serve(const RepairRequest& request);

  /// The explicit delta entry point: serves a request whose `delta` field
  /// describes the mutation from a previously served state to
  /// *request.table. Identical to Serve() on the same request — provided
  /// so call sites that *mean* incremental re-repair fail loudly
  /// (kInvalidArgument) when the delta is missing instead of silently
  /// paying a full content hash + re-plan. Safe to call concurrently.
  StatusOr<RepairResponse> ApplyDelta(const RepairRequest& request);

  /// A point-in-time snapshot of the counters.
  RepairServiceStats stats() const;

  /// Drops every ready entry (in-flight computations are unaffected).
  void InvalidateCache();

  int max_inflight() const { return max_inflight_; }

 private:
  /// The cached recipe: enough to replay a repair against any table with
  /// the same content hash, without storing the table itself.
  struct CachedRepair {
    RepairMode mode = RepairMode::kSubset;
    /// kSubset/kSoft: surviving tuple ids, in the repair's row order.
    std::vector<TupleId> kept_ids;
    /// kUpdate: cell rewrites (tuple id, attribute, new value text).
    ///
    /// ⊥ fresh-value note: update repairs may introduce fresh constants.
    /// Their names are *deterministic* — derived from the freshened cell's
    /// (TupleId, attribute), "⊥t<id>.<attr>", or from the exact search's
    /// (attribute, index) column symbols, "⊥e<attr>.<j>" (urepair/fresh.h)
    /// — never from a pool-global allocation counter. A replay therefore
    /// reproduces the same names a planner run against the request's own
    /// pool would pick, even on a content-identical copy with a private
    /// pool, and cached cell-edit recipes replay bit-identically across
    /// re-plans and delta splices. One caveat survives: when user data
    /// already occupies a fresh name, the pool disambiguates by appending
    /// "'" (value_pool.h), so the final text additionally depends on that
    /// colliding user content — identical tables still agree on it.
    struct CellEdit {
      TupleId id;
      AttrId attr;
      std::string text;
    };
    std::vector<CellEdit> edits;
    double distance = 0;
    bool optimal = false;
    double ratio_bound = 1;
    std::string route;
    std::string backend;
    double lower_bound = 0;
    double achieved_ratio = 1;
    /// kSubset, polynomial route only: the captured top-level plan
    /// (always spliceable when present), the seed for delta re-repairs of
    /// this entry's table state. shared_ptr so delta executions can pin it
    /// beyond the entry's LRU lifetime; the plan itself is immutable once
    /// published.
    std::shared_ptr<const SRepairPlanCache> plan;
    /// kUpdate, spliceable routes only: the captured U-plan (consensus
    /// attributes, per-component inner S-plans and cell-edit block
    /// recipes), the update-mode delta seed. Same pinning and immutability
    /// contract as `plan`.
    std::shared_ptr<const URepairPlanCache> uplan;
  };

  /// One cache slot; exists from first request until eviction. `ready`
  /// flips exactly once, under cache_mu_, guarded by cache_cv_.
  struct Entry {
    bool ready = false;
    Status status;  // when ready and not ok(): the leader's failure
    CachedRepair result;
  };

  struct Slot {
    std::shared_ptr<Entry> entry;
    /// Position in lru_; only valid while the entry is ready (listed).
    std::list<uint64_t>::iterator lru_pos;
    bool listed = false;
  };

  Status AcquireExecSlot(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  void ReleaseExecSlot();

  /// Runs the planner and condenses its result into a CachedRepair. Also
  /// moves the planner's already-materialized repair table into
  /// *materialized: the caller that just executed answers from it directly
  /// instead of replaying the cache entry (Replay re-resolves every kept id
  /// against the table — pure overhead when the planner's own output is
  /// still in hand). Only cache hits and single-flight followers replay.
  StatusOr<CachedRepair> Execute(
      const RepairRequest& request, const RepairOptions& effective,
      const FdSet& cover,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      const SRepairPlanCache* delta_base, const URepairPlanCache* udelta_base,
      SRepairSpliceStats* splice, std::optional<Table>* materialized);

  StatusOr<RepairResponse> Replay(const CachedRepair& cached,
                                  const Table& table, bool cache_hit,
                                  uint64_t key) const;

  /// Marks `entry` ready (ok or failed) and wakes followers; stores ready
  /// successes into the LRU (evicting beyond capacity) and erases failures
  /// so later requests retry. Requires the entry to be the one mapped at
  /// `key` (if still mapped).
  void Publish(uint64_t key, const std::shared_ptr<Entry>& entry,
               Status status, CachedRepair result);

  RepairServiceOptions options_;
  int max_inflight_ = 1;
  RepairEngine engine_;

  mutable std::mutex cache_mu_;
  std::condition_variable cache_cv_;
  std::unordered_map<uint64_t, Slot> entries_;
  /// Ready keys, most-recently-used first.
  std::list<uint64_t> lru_;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int inflight_ = 0;
  int queued_ = 0;

  mutable std::mutex stats_mu_;
  RepairServiceStats stats_;
};

}  // namespace fdrepair

#endif  // FDREPAIR_SERVICE_REPAIR_SERVICE_H_
