#include "service/repair_service.h"

#include <algorithm>
#include <utility>

#include "srepair/soft_repair.h"
#include "srepair/solver_backend.h"
#include "storage/table_hash.h"

namespace fdrepair {
namespace {

using Clock = std::chrono::steady_clock;

const char* RepairModeName(RepairMode mode) {
  switch (mode) {
    case RepairMode::kSubset:
      return "subset";
    case RepairMode::kUpdate:
      return "update";
    case RepairMode::kSoft:
      return "soft";
  }
  return "unknown";
}

/// The fully resolved request: the merged option set and the effective FD
/// cover (soft-weight profile applied, then canonicalized — the
/// weight-preserving cover of catalog/fdset.h).
struct ResolvedRequest {
  RepairOptions options;
  FdSet cover;
};

/// THE validator: every mode/option compatibility rule lives here, and
/// nowhere else — Serve runs it before keying, admission or execution, so
/// a bad combination always fails the same way, with kInvalidArgument.
/// Also merges the deprecated flat RepairRequest fields into `options`
/// (conflicting values are an error, not a silent preference).
StatusOr<ResolvedRequest> ResolveRequest(const RepairRequest& request) {
  if (request.table == nullptr) {
    return Status::InvalidArgument("RepairRequest.table is null");
  }
  ResolvedRequest resolved;
  RepairOptions& options = resolved.options;
  options = request.options;
  if (!request.backend.empty()) {
    if (!options.backend.empty() && options.backend != request.backend) {
      return Status::InvalidArgument(
          "RepairRequest.backend (deprecated) and options.backend disagree: '" +
          request.backend + "' vs '" + options.backend + "'");
    }
    options.backend = request.backend;
  }
  if (request.max_ratio != 0) {
    if (options.max_ratio != 0 && options.max_ratio != request.max_ratio) {
      return Status::InvalidArgument(
          "RepairRequest.max_ratio (deprecated) and options.max_ratio "
          "disagree: " +
          std::to_string(request.max_ratio) + " vs " +
          std::to_string(options.max_ratio));
    }
    options.max_ratio = request.max_ratio;
  }
  if (options.max_ratio < 0) {
    return Status::InvalidArgument("options.max_ratio must be >= 0, got " +
                                   std::to_string(options.max_ratio));
  }
  if (request.deadline) {
    if (options.deadline && *options.deadline != *request.deadline) {
      return Status::InvalidArgument(
          "RepairRequest.deadline (deprecated) and options.deadline disagree");
    }
    options.deadline = request.deadline;
  }
  if (request.threads != 0) {
    if (options.threads != 0 && options.threads != request.threads) {
      return Status::InvalidArgument(
          "RepairRequest.threads (deprecated) and options.threads disagree: " +
          std::to_string(request.threads) + " vs " +
          std::to_string(options.threads));
    }
    options.threads = request.threads;
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("options.threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }
  options.bypass_cache = options.bypass_cache || request.bypass_cache;

  const std::string mode = RepairModeName(request.mode);
  const bool solver_mode =
      request.mode == RepairMode::kSubset || request.mode == RepairMode::kSoft;
  if (!solver_mode && (!options.backend.empty() || options.max_ratio > 0)) {
    return Status::InvalidArgument(
        "backend selection and max_ratio apply to subset and soft repairs "
        "only (mode=" +
        mode + ")");
  }
  if (!options.soft_weights.empty() && request.mode != RepairMode::kSoft) {
    return Status::InvalidArgument(
        "options.soft_weights requires mode=soft (mode=" + mode + ")");
  }
  if (request.delta != nullptr && options.bypass_cache) {
    return Status::InvalidArgument(
        "RepairRequest.delta cannot be combined with bypass_cache: "
        "incremental re-repair splices and publishes cached state");
  }
  if (request.delta != nullptr && request.mode == RepairMode::kSoft) {
    return Status::InvalidArgument(
        "delta requests are not supported in soft mode (no soft splice); "
        "re-send the mutated table as an ordinary soft request");
  }

  FdSet effective = request.fds;
  if (!options.soft_weights.empty()) {
    FDR_ASSIGN_OR_RETURN(effective,
                         request.fds.WithWeights(options.soft_weights));
  }
  if (effective.HasSoftFds() && request.mode != RepairMode::kSoft) {
    return Status::InvalidArgument(
        "the FD set carries finite weights but mode=" + mode +
        " treats every FD as hard; use RepairMode::kSoft (or strip the "
        "weights)");
  }
  resolved.cover = effective.CanonicalCover();
  if (!options.backend.empty()) {
    const SolverBackend* backend = FindSolverBackend(options.backend);
    if (backend == nullptr) {
      return Status::InvalidArgument("unknown solver backend '" +
                                     options.backend + "'");
    }
    if (resolved.cover.HasSoftFds() && !backend->soft_capable()) {
      return Status::InvalidArgument(
          "solver backend '" + options.backend +
          "' cannot solve soft-cover instances (finite-weight violations "
          "survive canonicalization); pick a soft-capable backend "
          "(local-ratio, bnb, ilp)");
    }
  }
  return resolved;
}

/// The canonical request key: mode, canonical cover (as lhs-bitmask/rhs
/// pairs — attribute names are bound to those positions by the table hash),
/// the table state identity, and the solver knobs (backend, max_ratio) —
/// two requests that may be answered by different solvers must never share
/// an entry. `table_hash` is TableContentHash for ordinary requests and
/// the delta chain hash for delta requests (see storage/table_delta.h for
/// why the two identities deliberately differ); both flow through the same
/// key structure, which is what lets a first delta's base_hash find the
/// base table's cold entry.
uint64_t RequestKey(RepairMode mode, const RepairOptions& options,
                    const FdSet& cover, uint64_t table_hash) {
  StableHasher hasher;
  hasher.MixUint64(static_cast<uint64_t>(mode));
  hasher.MixUint64(static_cast<uint64_t>(cover.size()));
  for (const Fd& fd : cover.fds()) {
    hasher.MixUint64(fd.lhs.bits());
    hasher.MixInt64(fd.rhs);
    // Weights are part of the key: the same cover under two weight
    // profiles is two different optimization problems (∞ for hard FDs —
    // MixDouble is bit-stable on infinities).
    hasher.MixDouble(fd.weight);
  }
  hasher.MixUint64(table_hash);
  hasher.MixString(options.backend);
  hasher.MixDouble(options.max_ratio);
  return hasher.digest();
}

std::optional<Clock::time_point> AbsoluteDeadline(
    const RepairOptions& options, Clock::time_point admitted) {
  if (!options.deadline) return std::nullopt;
  return admitted + *options.deadline;
}

}  // namespace

const char* RepairModeToString(RepairMode mode) { return RepairModeName(mode); }

RepairService::RepairService(const RepairServiceOptions& options)
    : options_(options), engine_(options.engine) {
  max_inflight_ = options_.max_inflight > 0 ? options_.max_inflight
                                            : engine_.threads();
}

RepairService::~RepairService() = default;

RepairServiceStats RepairService::stats() const {
  RepairServiceStats snapshot;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    snapshot = stats_;
  }
  // Taken separately (never while holding stats_mu_): Serve acquires
  // cache_mu_ before stats_mu_, so nesting them here would invert the order.
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    snapshot.entries = lru_.size();
  }
  {
    std::lock_guard<std::mutex> admission_lock(admission_mu_);
    snapshot.inflight = static_cast<uint64_t>(inflight_);
    snapshot.queued = static_cast<uint64_t>(queued_);
  }
  return snapshot;
}

void RepairService::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (uint64_t key : lru_) entries_.erase(key);
  lru_.clear();
}

Status RepairService::AcquireExecSlot(
    const std::optional<Clock::time_point>& deadline) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (inflight_ < max_inflight_) {
    ++inflight_;
    return Status::OK();
  }
  if (queued_ >= options_.max_queue) {
    return Status::Unavailable(
        "repair service over capacity: " + std::to_string(inflight_) +
        " executing and " + std::to_string(queued_) + " queued");
  }
  ++queued_;
  while (inflight_ >= max_inflight_) {
    if (deadline) {
      if (admission_cv_.wait_until(lock, *deadline) ==
              std::cv_status::timeout &&
          inflight_ >= max_inflight_) {
        --queued_;
        return Status::DeadlineExceeded(
            "deadline expired while queued for an execution slot");
      }
    } else {
      admission_cv_.wait(lock);
    }
  }
  --queued_;
  ++inflight_;
  return Status::OK();
}

void RepairService::ReleaseExecSlot() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --inflight_;
  }
  admission_cv_.notify_one();
}

StatusOr<RepairService::CachedRepair> RepairService::Execute(
    const RepairRequest& request, const RepairOptions& effective,
    const FdSet& cover, const std::optional<Clock::time_point>& deadline,
    const SRepairPlanCache* delta_base, const URepairPlanCache* udelta_base,
    SRepairSpliceStats* splice, std::optional<Table>* materialized) {
  const Table& table = *request.table;
  CachedRepair cached;
  cached.mode = request.mode;
  if (deadline && Clock::now() >= *deadline) {
    return Status::DeadlineExceeded("deadline expired before execution");
  }
  // A soft request whose canonical cover is all-hard IS a subset request
  // (violations are priced out entirely): run it through the very same
  // pipeline — engine fan-out, plan capture and all — so the ω ≡ ∞ pin is
  // bit-identical by construction, not by reimplementation.
  const bool soft_core =
      request.mode == RepairMode::kSoft && cover.HasSoftFds();
  if (request.mode == RepairMode::kSubset ||
      (request.mode == RepairMode::kSoft && !soft_core)) {
    // Per-request solver knobs override the service-wide configuration.
    SRepairOptions srepair = options_.srepair;
    if (!effective.backend.empty()) srepair.backend = effective.backend;
    if (effective.max_ratio > 0) srepair.max_ratio = effective.max_ratio;
    // Capture the run's top-level plan so later deltas of this state can
    // splice; when this run IS a delta with a live base plan, splice it.
    // The planner only honors these on the polynomial route — explicit
    // backends and hard instances carry no plan and always re-solve.
    auto plan = std::make_shared<SRepairPlanCache>();
    srepair.capture = plan.get();
    if (request.delta != nullptr && delta_base != nullptr) {
      srepair.delta_base = delta_base;
      srepair.delta_updated_ids = &request.delta->updated;
      srepair.splice_stats = splice;
    }
    StatusOr<SRepairResult> result = Status::Internal("never ran");
    if (effective.threads == 1) {
      // Sequential hint: run on the calling thread, no block fan-out. The
      // engine guarantees bit-identical results either way.
      SRepairOptions options = srepair;
      options.exec.pool = nullptr;
      if (deadline) options.exec.deadline = *deadline;
      result = ComputeSRepair(cover, table, options);
    } else {
      RepairJob job;
      job.fds = cover;
      job.table = &table;
      job.options = srepair;
      if (deadline) {
        job.deadline = std::chrono::duration_cast<std::chrono::milliseconds>(
            *deadline - Clock::now());
      }
      result = engine_.Repair(job);
    }
    if (!result.ok()) return result.status();
    cached.kept_ids.reserve(result->repair.num_tuples());
    for (int row = 0; row < result->repair.num_tuples(); ++row) {
      cached.kept_ids.push_back(result->repair.id(row));
    }
    cached.distance = result->distance;
    cached.optimal = result->optimal;
    cached.ratio_bound = result->ratio_bound;
    cached.route = SRepairAlgorithmToString(result->algorithm);
    if (request.mode == RepairMode::kSoft) {
      cached.route = "soft[" + cached.route + "]";
    }
    cached.backend = result->backend;
    cached.lower_bound = result->lower_bound;
    cached.achieved_ratio = result->achieved_ratio;
    if (plan->spliceable) cached.plan = std::move(plan);
    *materialized = std::move(result->repair);
    return cached;
  }
  if (soft_core) {
    // Finite-weight violations survive canonicalization: the soft planner
    // (weighted common-lhs peel + soft conflicted cores through the
    // soft-capable solver backends). Its recursion is sequential, so the
    // threads hint is moot — responses are identical at every setting.
    SoftRepairOptions soptions;
    soptions.backend = effective.backend;
    soptions.exact_guard = options_.srepair.exact_guard;
    soptions.node_budget = options_.srepair.node_budget;
    soptions.max_ratio = effective.max_ratio > 0 ? effective.max_ratio
                                                 : options_.srepair.max_ratio;
    if (deadline) soptions.exec.deadline = *deadline;
    FDR_ASSIGN_OR_RETURN(SoftRepairResult result,
                         ComputeSoftRepair(cover, table, soptions));
    cached.kept_ids.reserve(result.repair.num_tuples());
    for (int row = 0; row < result.repair.num_tuples(); ++row) {
      cached.kept_ids.push_back(result.repair.id(row));
    }
    // `distance` carries the full soft objective (deleted weight plus
    // violation cost) — the quantity the planner minimized.
    cached.distance = result.cost;
    cached.optimal = result.optimal;
    cached.ratio_bound = result.ratio_bound;
    cached.route = result.route;
    cached.backend = result.backend;
    cached.lower_bound = result.lower_bound;
    cached.achieved_ratio = result.achieved_ratio;
    *materialized = std::move(result.repair);
    return cached;
  }
  // Update repairs run the cell-edit pipeline (urepair/opt_urepair.h): the
  // canonical edit list IS the cache recipe, a captured U-plan seeds later
  // deltas of this state, and a live base U-plan splices. Inner S-repairs
  // honor the deadline cooperatively; the approximation/exact routes
  // remain admission-only.
  OptURepairOptions uoptions;
  uoptions.planner = options_.urepair;
  if (request.threads != 1) {
    // The engine's pool fans the inner S-repairs' blocks out; threads == 1
    // pins the bit-identical sequential baseline, exactly as subset mode.
    uoptions.exec.pool = engine_.pool();
    uoptions.exec.parallel_cutoff = options_.engine.parallel_cutoff;
  }
  if (deadline) uoptions.exec.deadline = *deadline;
  auto uplan = std::make_shared<URepairPlanCache>();
  StatusOr<OptURepairResult> result = Status::Internal("never ran");
  if (request.delta != nullptr && udelta_base != nullptr) {
    OptURepairOptions delta_options = uoptions;
    delta_options.delta_base = udelta_base;
    delta_options.delta_updated_ids = &request.delta->updated;
    delta_options.splice_stats = splice;
    result = OptURepairCells(cover, table, delta_options, uplan.get());
    if (!result.ok() &&
        result.status().code() == StatusCode::kFailedPrecondition) {
      // The base plan refused to splice (non-spliceable route, shape
      // drift): degrade to a full re-plan — bit-identical, only slower.
      result = OptURepairCells(cover, table, uoptions, uplan.get());
    }
  } else {
    result = OptURepairCells(cover, table, uoptions, uplan.get());
  }
  if (!result.ok()) return result.status();
  cached.edits.reserve(result->edits.size());
  for (const URepairCellEdit& edit : result->edits) {
    cached.edits.push_back(
        CachedRepair::CellEdit{edit.id, edit.attr, edit.text});
  }
  cached.distance = result->distance;
  cached.optimal = result->optimal;
  cached.ratio_bound = result->ratio_bound;
  std::string routes;
  for (const URepairComponentPlan& component : result->plan.components) {
    if (!routes.empty()) routes += ",";
    routes += URepairRouteToString(component.route);
  }
  cached.route = "urepair[" + (routes.empty() ? "noop" : routes) + "]";
  if (uplan->spliceable) cached.uplan = std::move(uplan);
  // Materialize the leader's response exactly as Replay would (clone +
  // apply edits): one shared code shape keeps leader, followers and hits
  // bit-identical.
  Table update = table.Clone();
  for (const CachedRepair::CellEdit& edit : cached.edits) {
    FDR_ASSIGN_OR_RETURN(int row, table.RowOf(edit.id));
    update.SetValue(row, edit.attr, update.Intern(edit.text));
  }
  *materialized = std::move(update);
  return cached;
}

StatusOr<RepairResponse> RepairService::Replay(const CachedRepair& cached,
                                               const Table& table,
                                               bool cache_hit,
                                               uint64_t key) const {
  if (cached.mode != RepairMode::kUpdate) {
    std::vector<int> rows;
    rows.reserve(cached.kept_ids.size());
    for (TupleId id : cached.kept_ids) {
      FDR_ASSIGN_OR_RETURN(int row, table.RowOf(id));
      rows.push_back(row);
    }
    RepairResponse response{table.SubsetByRows(rows),
                            cached.distance,
                            cached.optimal,
                            cached.ratio_bound,
                            cached.route,
                            cached.backend,
                            cached.lower_bound,
                            cached.achieved_ratio,
                            cache_hit,
                            key};
    return response;
  }
  Table update = table.Clone();
  for (const CachedRepair::CellEdit& edit : cached.edits) {
    FDR_ASSIGN_OR_RETURN(int row, table.RowOf(edit.id));
    update.SetValue(row, edit.attr, update.Intern(edit.text));
  }
  RepairResponse response{std::move(update),
                          cached.distance,
                          cached.optimal,
                          cached.ratio_bound,
                          cached.route,
                          cached.backend,
                          cached.lower_bound,
                          cached.achieved_ratio,
                          cache_hit,
                          key};
  return response;
}

void RepairService::Publish(uint64_t key, const std::shared_ptr<Entry>& entry,
                            Status status, CachedRepair result) {
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    entry->status = std::move(status);
    entry->result = std::move(result);
    entry->ready = true;
    auto it = entries_.find(key);
    bool mapped = it != entries_.end() && it->second.entry == entry;
    if (!entry->status.ok()) {
      // Failures are not cached: erase so a later request retries, while
      // current followers read the failure from their shared_ptr.
      if (mapped) entries_.erase(it);
    } else if (mapped) {
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      it->second.listed = true;
      while (lru_.size() > options_.cache_capacity) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.evictions += evicted;
  }
  cache_cv_.notify_all();
}

StatusOr<RepairResponse> RepairService::Serve(const RepairRequest& request) {
  const Clock::time_point admitted = Clock::now();
  // All request validation — legacy-field merging, mode/option mismatches,
  // weight application and cover canonicalization — lives in ResolveRequest.
  FDR_ASSIGN_OR_RETURN(ResolvedRequest resolved, ResolveRequest(request));
  const std::optional<Clock::time_point> deadline =
      AbsoluteDeadline(resolved.options, admitted);
  if (request.delta != nullptr) {
    // A stale or corrupted delta would poison the chain-keyed cache with a
    // result attributed to the wrong state — reject it before keying.
    FDR_RETURN_IF_ERROR(ValidateDelta(*request.delta, *request.table));
  }
  const FdSet& cover = resolved.cover;
  // Delta requests are identified by their O(|delta|) chain hash; everyone
  // else pays the O(n) content hash. The two identities never alias (see
  // storage/table_delta.h).
  const uint64_t table_hash = request.delta != nullptr
                                  ? request.delta->result_hash
                                  : TableContentHash(*request.table);
  const uint64_t key =
      RequestKey(request.mode, resolved.options, cover, table_hash);

  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.lookups;
    if (request.delta != nullptr) {
      if (request.mode == RepairMode::kSubset) {
        ++stats_.delta_requests;
      } else {
        ++stats_.udelta_requests;
      }
    }
  }

  // Fail a request with the right code and keep the rejection counters
  // truthful for every exit path.
  auto fail = [&](Status status) -> Status {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.rejected_deadline;
    } else if (status.code() == StatusCode::kUnavailable) {
      ++stats_.rejected_unavailable;
    }
    return status;
  };

  std::shared_ptr<Entry> entry;
  bool leader = false;
  while (!resolved.options.bypass_cache) {
    std::unique_lock<std::mutex> lock(cache_mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entry = std::make_shared<Entry>();
      entries_.emplace(key, Slot{entry, lru_.end(), false});
      leader = true;
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.misses;
      break;
    }
    entry = it->second.entry;
    if (entry->ready) {
      // Mapped ready entries are always successes (failures are erased at
      // publish time).
      if (it->second.listed && it->second.lru_pos != lru_.begin()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        it->second.lru_pos = lru_.begin();
      }
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.hits;
      break;
    }
    // Single-flight: another thread is computing this exact request; wait
    // for its answer instead of recomputing.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.single_flight_waits;
    }
    while (!entry->ready) {
      if (deadline) {
        if (cache_cv_.wait_until(lock, *deadline) ==
                std::cv_status::timeout &&
            !entry->ready) {
          return fail(Status::DeadlineExceeded(
              "deadline expired waiting on an in-flight computation of "
              "the same request"));
        }
      } else {
        cache_cv_.wait(lock);
      }
    }
    if (entry->status.ok()) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.hits;
      break;
    }
    // The leader failed. Deterministic failures (bad request, planner
    // precondition) propagate — re-running would reproduce them. But
    // kDeadlineExceeded/kUnavailable reflect the *leader's* deadline and
    // the queue at *its* admission; this follower's constraints may be
    // laxer, so retry the lookup — the failed entry was erased, and the
    // retry becomes the new leader (bounded: a leader returns its own
    // result directly).
    if (entry->status.code() != StatusCode::kDeadlineExceeded &&
        entry->status.code() != StatusCode::kUnavailable) {
      return fail(entry->status);
    }
    entry.reset();
  }

  if (!leader) {
    if (entry != nullptr) {
      // Served from cache (ready at lookup, or single-flight follower).
      return Replay(entry->result, *request.table, /*cache_hit=*/true, key);
    }
    // bypass_cache: execute without touching the cache — a delta request
    // here never splices (the splice's base plan IS cached state).
    Status slot = AcquireExecSlot(deadline);
    if (!slot.ok()) return fail(std::move(slot));
    std::optional<Table> materialized;
    SRepairSpliceStats splice;
    StatusOr<CachedRepair> computed =
        Execute(request, resolved.options, cover, deadline, nullptr, nullptr,
                &splice, &materialized);
    ReleaseExecSlot();
    if (!computed.ok()) return fail(computed.status());
    return RepairResponse{std::move(*materialized),
                          computed->distance,
                          computed->optimal,
                          computed->ratio_bound,
                          computed->route,
                          computed->backend,
                          computed->lower_bound,
                          computed->achieved_ratio,
                          /*cache_hit=*/false,
                          key};
  }

  // Leader of a delta request: look up the pre-mutation state's entry and
  // pin its plan for the splice. A miss (evicted, never served, or a
  // planless hard/backend route) simply degrades to a full re-plan — the
  // result is bit-identical either way, only slower.
  std::shared_ptr<Entry> base_entry;
  const SRepairPlanCache* base_plan = nullptr;
  const URepairPlanCache* base_uplan = nullptr;
  if (request.delta != nullptr) {
    const uint64_t base_key = RequestKey(request.mode, resolved.options, cover,
                                         request.delta->base_hash);
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = entries_.find(base_key);
    if (it != entries_.end() && it->second.entry->ready &&
        it->second.entry->status.ok()) {
      const CachedRepair& base_result = it->second.entry->result;
      if (request.mode == RepairMode::kSubset &&
          base_result.plan != nullptr) {
        base_entry = it->second.entry;
        base_plan = base_result.plan.get();
      } else if (request.mode == RepairMode::kUpdate &&
                 base_result.uplan != nullptr) {
        base_entry = it->second.entry;
        base_uplan = base_result.uplan.get();
      }
    }
  }

  // Leader: admission control, then plan & execute, then publish.
  Status slot = AcquireExecSlot(deadline);
  if (!slot.ok()) {
    Publish(key, entry, slot, CachedRepair{});
    return fail(std::move(slot));
  }
  std::optional<Table> materialized;
  SRepairSpliceStats splice;
  StatusOr<CachedRepair> computed =
      Execute(request, resolved.options, cover, deadline, base_plan,
              base_uplan, &splice, &materialized);
  ReleaseExecSlot();
  if (request.delta != nullptr && computed.ok()) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    if (request.mode == RepairMode::kSubset) {
      if (splice.blocks_total > 0) {
        ++stats_.delta_splices;
        stats_.delta_blocks_clean +=
            static_cast<uint64_t>(splice.blocks_clean);
        stats_.delta_blocks_dirty +=
            static_cast<uint64_t>(splice.blocks_dirty);
      } else {
        ++stats_.delta_full_replans;
      }
    } else {
      if (splice.blocks_total > 0) {
        ++stats_.udelta_splices;
        stats_.udelta_blocks_clean +=
            static_cast<uint64_t>(splice.blocks_clean);
        stats_.udelta_blocks_dirty +=
            static_cast<uint64_t>(splice.blocks_dirty);
      } else {
        ++stats_.udelta_full_replans;
      }
    }
  }
  if (!computed.ok()) {
    Publish(key, entry, computed.status(), CachedRepair{});
    return fail(computed.status());
  }
  // Answer from the planner's own output (copying only the provenance
  // strings), then publish — followers and later hits replay the entry.
  RepairResponse response{std::move(*materialized),
                          computed->distance,
                          computed->optimal,
                          computed->ratio_bound,
                          computed->route,
                          computed->backend,
                          computed->lower_bound,
                          computed->achieved_ratio,
                          /*cache_hit=*/false,
                          key};
  Publish(key, entry, Status::OK(), std::move(*computed));
  return response;
}

StatusOr<RepairResponse> RepairService::ApplyDelta(
    const RepairRequest& request) {
  if (request.delta == nullptr) {
    return Status::InvalidArgument(
        "ApplyDelta requires RepairRequest.delta; use Serve for "
        "whole-table requests");
  }
  return Serve(request);
}

}  // namespace fdrepair
