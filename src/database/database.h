// Multi-relation databases. FDs never span relations, so (§1) "in a general
// database, our results can be applied to each relation individually": a
// Database is a set of named (table, FD set) pairs, and a database repair is
// the union of per-relation repairs, with costs adding up.

#ifndef FDREPAIR_DATABASE_DATABASE_H_
#define FDREPAIR_DATABASE_DATABASE_H_

#include <string>
#include <vector>

#include "srepair/planner.h"
#include "urepair/planner.h"

namespace fdrepair {

/// One relation with its integrity constraints.
struct Relation {
  std::string name;
  Table table;
  FdSet fds;
};

/// An ordered collection of uniquely named relations.
class Database {
 public:
  Database() = default;

  /// Adds a relation; fails on duplicate names or FDs mentioning attributes
  /// outside the relation's schema.
  Status AddRelation(std::string name, Table table, FdSet fds);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::vector<Relation>& relations() const { return relations_; }
  StatusOr<const Relation*> Find(const std::string& name) const;

  /// True iff every relation satisfies its FD set.
  bool Consistent() const;

 private:
  std::vector<Relation> relations_;
};

/// A per-relation subset-repair outcome plus database-level totals.
struct DatabaseSRepairResult {
  std::vector<std::pair<std::string, SRepairResult>> per_relation;
  double total_distance = 0;
  /// True iff every relation's repair is provably optimal; then the
  /// database repair is optimal too (relations are independent).
  bool optimal = false;
  /// max over relations of the per-relation ratio bound.
  double ratio_bound = 1;
};

/// Repairs every relation by tuple deletions (§3 machinery per relation).
StatusOr<DatabaseSRepairResult> RepairDatabaseSubsets(
    const Database& database, const SRepairOptions& options = {});

struct DatabaseURepairResult {
  std::vector<std::pair<std::string, URepairResult>> per_relation;
  double total_distance = 0;
  bool optimal = false;
  double ratio_bound = 1;
};

/// Repairs every relation by value updates (§4 machinery per relation).
StatusOr<DatabaseURepairResult> RepairDatabaseUpdates(
    const Database& database, const URepairOptions& options = {});

}  // namespace fdrepair

#endif  // FDREPAIR_DATABASE_DATABASE_H_
