#include "database/database.h"

#include <algorithm>

#include "storage/consistency.h"

namespace fdrepair {

Status Database::AddRelation(std::string name, Table table, FdSet fds) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  for (const Relation& relation : relations_) {
    if (relation.name == name) {
      return Status::InvalidArgument("duplicate relation name: " + name);
    }
  }
  if (!fds.Attrs().IsSubsetOf(table.schema().AllAttrs())) {
    return Status::InvalidArgument(
        "FD set for '" + name + "' mentions attributes outside " +
        table.schema().ToString());
  }
  relations_.push_back(Relation{std::move(name), std::move(table),
                                std::move(fds)});
  return Status::OK();
}

StatusOr<const Relation*> Database::Find(const std::string& name) const {
  for (const Relation& relation : relations_) {
    if (relation.name == name) return &relation;
  }
  return Status::NotFound("no relation named '" + name + "'");
}

bool Database::Consistent() const {
  for (const Relation& relation : relations_) {
    if (!Satisfies(relation.table, relation.fds)) return false;
  }
  return true;
}

StatusOr<DatabaseSRepairResult> RepairDatabaseSubsets(
    const Database& database, const SRepairOptions& options) {
  DatabaseSRepairResult result;
  result.optimal = true;
  for (const Relation& relation : database.relations()) {
    FDR_ASSIGN_OR_RETURN(SRepairResult repaired,
                         ComputeSRepair(relation.fds, relation.table,
                                        options));
    result.total_distance += repaired.distance;
    result.optimal = result.optimal && repaired.optimal;
    result.ratio_bound = std::max(result.ratio_bound, repaired.ratio_bound);
    result.per_relation.emplace_back(relation.name, std::move(repaired));
  }
  if (result.optimal) result.ratio_bound = 1;
  return result;
}

StatusOr<DatabaseURepairResult> RepairDatabaseUpdates(
    const Database& database, const URepairOptions& options) {
  DatabaseURepairResult result;
  result.optimal = true;
  for (const Relation& relation : database.relations()) {
    FDR_ASSIGN_OR_RETURN(URepairResult repaired,
                         ComputeURepair(relation.fds, relation.table,
                                        options));
    result.total_distance += repaired.distance;
    result.optimal = result.optimal && repaired.optimal;
    result.ratio_bound = std::max(result.ratio_bound, repaired.ratio_bound);
    result.per_relation.emplace_back(relation.name, std::move(repaired));
  }
  if (result.optimal) result.ratio_bound = 1;
  return result;
}

}  // namespace fdrepair
