// Tests for the U-repair planner: the complexity verdicts the paper states
// per FD set (Corollaries 4.6/4.8/4.11, Theorem 4.10, Examples 4.2/4.7),
// consensus peeling (Theorem 4.3), decomposition (Theorem 4.1), and
// end-to-end optimality against the exhaustive solver.

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "urepair/urepair_exact.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

URepairComplexity PlannedComplexity(const ParsedFdSet& parsed) {
  auto plan = PlanURepair(parsed.fds);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan->complexity;
}

TEST(URepairPlannerTest, PaperVerdicts) {
  // Chain sets: polynomial (Corollary 4.8).
  EXPECT_EQ(PlannedComplexity(OfficeFds()), URepairComplexity::kPolynomial);
  // ∆0: two common-lhs components, polynomial (intro / Example 4.2).
  EXPECT_EQ(PlannedComplexity(Delta0Purchase()),
            URepairComplexity::kPolynomial);
  EXPECT_EQ(PlannedComplexity(Example42Tractable()),
            URepairComplexity::kPolynomial);
  // ∆3 = {email → buyer, buyer → address}: APX-hard (Kolahi & Lakshmanan).
  EXPECT_EQ(PlannedComplexity(Delta3Email()), URepairComplexity::kApxHard);
  EXPECT_EQ(PlannedComplexity(Example42Hard()), URepairComplexity::kApxHard);
  // ∆4 / ∆A↔B→C: APX-complete for updates although S-repairs are easy
  // (Theorem 4.10, Corollary 4.11 direction 1).
  EXPECT_EQ(PlannedComplexity(Delta4Buyer()), URepairComplexity::kApxHard);
  EXPECT_EQ(PlannedComplexity(DeltaAKeyBToC()), URepairComplexity::kApxHard);
  // Example 4.7: passport poly (common lhs + OSRSucceeds), zip APX-hard
  // (common lhs + OSR failure, Corollary 4.6 both directions).
  EXPECT_EQ(PlannedComplexity(Example47Passport()),
            URepairComplexity::kPolynomial);
  EXPECT_EQ(PlannedComplexity(Example47Zip()), URepairComplexity::kApxHard);
  // {A → B, B → A}: polynomial (Proposition 4.9).
  EXPECT_EQ(PlannedComplexity(ParseFdSetInferSchemaOrDie("A -> B; B -> A")),
            URepairComplexity::kPolynomial);
  // {A → B, C → D}: polynomial for updates though APX-hard for deletions
  // (Corollary 4.11 direction 2).
  EXPECT_EQ(PlannedComplexity(DeltaTwoDisjoint()),
            URepairComplexity::kPolynomial);
}

TEST(URepairPlannerTest, RatioBoundsComeFromComponents) {
  auto plan = PlanURepair(Example47Zip().fds);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->ratio_bound, 2.0);  // common lhs: mlc = 1
  auto office = PlanURepair(OfficeFds().fds);
  ASSERT_TRUE(office.ok());
  EXPECT_DOUBLE_EQ(office->ratio_bound, 1.0);
}

TEST(URepairPlannerTest, ConsensusPeeling) {
  // {∅→D, AD→B, B→CD} − cl(∅) = {A→B, B→C}: APX-hard (Theorem 4.3 example).
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> D; A D -> B; B -> C D");
  auto plan = PlanURepair(parsed.fds);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->complexity, URepairComplexity::kApxHard);
  AttrId d = *parsed.schema.AttributeId("D");
  EXPECT_TRUE(plan->consensus_attrs.Contains(d));
  ASSERT_EQ(plan->components.size(), 1u);
}

TEST(URepairPlannerTest, DecompositionSplitsComponents) {
  auto plan = PlanURepair(Delta0Purchase().fds);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->components.size(), 2u);
  for (const auto& component : plan->components) {
    EXPECT_EQ(component.route, URepairRoute::kCommonLhsExact);
  }
}

TEST(URepairPlannerTest, OfficeEndToEnd) {
  OfficeExample office = MakeOfficeExample();
  auto result = ComputeURepair(office.fds, office.table);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->optimal);
  EXPECT_DOUBLE_EQ(result->distance, 2);
  EXPECT_TRUE(Satisfies(result->update, office.fds));
}

TEST(URepairPlannerTest, PlanRendering) {
  ParsedFdSet parsed = Delta0Purchase();
  auto plan = PlanURepair(parsed.fds);
  ASSERT_TRUE(plan.ok());
  std::string rendered = plan->ToString(parsed.schema);
  EXPECT_NE(rendered.find("common-lhs-exact"), std::string::npos);
  EXPECT_NE(rendered.find("polynomial"), std::string::npos);
}

// End-to-end optimality: with the exact-search fallback enabled, tiny
// instances are solved optimally for *every* named FD set, matching the
// exhaustive solver.
class PlannerOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerOptimalityTest, MatchesExactOnTinyTables) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (delta.Attrs().size() > 5) continue;
    RandomTableOptions options;
    options.num_tuples = 4;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto result = ComputeURepair(named.parsed.fds, table);
    ASSERT_TRUE(result.ok()) << named.name << ": " << result.status();
    EXPECT_TRUE(Satisfies(result->update, named.parsed.fds)) << named.name;
    auto exact = OptURepairExact(delta, table);
    ASSERT_TRUE(exact.ok()) << named.name;
    double optimal = DistUpdOrDie(*exact, table);
    if (result->optimal) {
      EXPECT_NEAR(result->distance, optimal, 1e-9)
          << named.name << "\n" << table.ToString();
    } else {
      EXPECT_LE(result->distance, result->ratio_bound * optimal + 1e-9)
          << named.name;
    }
    EXPECT_GE(result->distance, optimal - 1e-9) << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerOptimalityTest,
                         ::testing::Values(60, 61, 62));

// With exact search disabled, hard components report approximation bounds.
TEST(URepairPlannerTest, ApproxModeReportsBounds) {
  Rng rng(5150);
  ParsedFdSet parsed = Delta3Email();
  RandomTableOptions options;
  options.num_tuples = 30;
  options.domain_size = 3;
  Table table = RandomTable(parsed.schema, options, &rng);
  URepairOptions planner_options;
  planner_options.allow_exact_search = false;
  auto result = ComputeURepair(parsed.fds, table, planner_options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->optimal);
  EXPECT_GE(result->ratio_bound, 1.0);
  EXPECT_TRUE(Satisfies(result->update, parsed.fds));
}

// Attribute-disjoint composition (Theorem 4.1): the combined update's cost
// equals the sum of the component updates' costs.
TEST(URepairPlannerTest, ComponentCostsAdd) {
  Rng rng(31337);
  ParsedFdSet parsed = Delta0Purchase();
  RandomTableOptions options;
  options.num_tuples = 12;
  options.domain_size = 2;
  Table table = RandomTable(parsed.schema, options, &rng);
  auto whole = ComputeURepair(parsed.fds, table);
  ASSERT_TRUE(whole.ok());
  double sum = 0;
  for (const FdSet& component :
       parsed.fds.WithoutTrivial().AttributeDisjointComponents()) {
    auto part = ComputeURepair(component, table);
    ASSERT_TRUE(part.ok());
    sum += part->distance;
  }
  EXPECT_NEAR(whole->distance, sum, 1e-9);
}

}  // namespace
}  // namespace fdrepair
