// RowSpan + GroupScratch: the in-place grouping core must agree exactly —
// group order, within-group row order, marriage endpoints — with the
// materializing TableView/BlockPartition APIs it replaced on the
// OptSRepair hot path.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "engine/block_partitioner.h"
#include "storage/row_span.h"
#include "storage/table_view.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

std::vector<int> AllRows(const Table& table) {
  std::vector<int> rows(table.num_tuples());
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

/// Flattens an in-place grouping back into per-group row vectors.
std::vector<std::vector<int>> GroupsOf(const std::vector<int>& buffer,
                                       const std::vector<int>& group_ends) {
  std::vector<std::vector<int>> out;
  int begin = 0;
  for (int end : group_ends) {
    out.emplace_back(buffer.begin() + begin, buffer.begin() + end);
    begin = end;
  }
  return out;
}

TEST(RowSpanTest, SubspanAndAccessorsReadThroughTable) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 50, 3);
  std::vector<int> buffer = AllRows(table);
  RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
  EXPECT_EQ(span.num_tuples(), 50);
  EXPECT_EQ(span.row(7), 7);
  EXPECT_EQ(span.id(7), table.id(7));
  EXPECT_EQ(span.weight(7), table.weight(7));
  EXPECT_EQ(span.value(7, 0), table.value(7, 0));
  RowSpan sub = span.Subspan(10, 5);
  EXPECT_EQ(sub.num_tuples(), 5);
  EXPECT_EQ(sub.row(0), 10);
  EXPECT_TRUE(span.Subspan(50, 0).empty());
}

// The permutation contract, against TableView::GroupRows as the oracle:
// same groups, same first-appearance group order, same within-group row
// order — for 1, 2 and 3+ grouping attributes (each exercises a different
// key fast path in GroupScratch).
TEST(GroupScratchTest, MatchesGroupRowsOnEveryKeyWidth) {
  ParsedFdSet parsed = Example31Ssn();  // 7 attributes
  Table table = ScalingFamilyTable(parsed, 700, 13, 4);
  GroupScratch scratch;
  for (AttrSet attrs :
       {AttrSet::Singleton(0), AttrSet::Of({1, 2}), AttrSet::Of({0, 1, 2}),
        AttrSet::Of({1, 3, 4, 5}), table.schema().AllAttrs()}) {
    TableView view(table);
    GroupedRows expected = view.GroupRows(attrs);

    std::vector<int> buffer = AllRows(table);
    RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
    std::vector<int> group_ends;
    scratch.GroupInPlace(span, attrs, &group_ends);

    std::vector<std::vector<int>> groups = GroupsOf(buffer, group_ends);
    ASSERT_EQ(groups.size(), expected.rows.size()) << attrs.ToString();
    for (size_t g = 0; g < groups.size(); ++g) {
      EXPECT_EQ(groups[g], expected.rows[g])
          << attrs.ToString() << " group " << g;
    }
  }
}

TEST(GroupScratchTest, EmptySpanAndEmptyAttrs) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 10, 5);
  GroupScratch scratch;
  std::vector<int> group_ends{99};  // must be cleared
  scratch.GroupInPlace(RowSpan(table, nullptr, 0), AttrSet::Singleton(0),
                       &group_ends);
  EXPECT_TRUE(group_ends.empty());

  std::vector<int> buffer = AllRows(table);
  RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
  scratch.GroupInPlace(span, AttrSet(), &group_ends);
  EXPECT_EQ(group_ends, std::vector<int>{10});
  EXPECT_EQ(buffer, AllRows(table));  // untouched
}

// A scratch is reused across many calls (that is its point); grouping
// results must not depend on what ran before.
TEST(GroupScratchTest, ReuseAcrossCallsIsStateless) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  GroupScratch reused;
  for (int round = 0; round < 20; ++round) {
    Table table = ScalingFamilyTable(parsed, 30 + round * 17, 100 + round, 2);
    AttrSet attrs = (round % 2 == 0) ? AttrSet::Singleton(round % 3)
                                     : AttrSet::Of({0, 1});
    std::vector<int> reused_buffer = AllRows(table);
    RowSpan span(table, reused_buffer.data(),
                 static_cast<int>(reused_buffer.size()));
    std::vector<int> reused_ends;
    reused.GroupInPlace(span, attrs, &reused_ends);

    GroupScratch fresh;
    std::vector<int> fresh_buffer = AllRows(table);
    RowSpan fresh_span(table, fresh_buffer.data(),
                       static_cast<int>(fresh_buffer.size()));
    std::vector<int> fresh_ends;
    fresh.GroupInPlace(fresh_span, attrs, &fresh_ends);

    EXPECT_EQ(reused_buffer, fresh_buffer) << "round " << round;
    EXPECT_EQ(reused_ends, fresh_ends) << "round " << round;
  }
}

// Span marriage partitioning against PartitionForMarriage as the oracle:
// identical blocks and identical dense left/right endpoints.
TEST(GroupScratchTest, SpanMarriageMatchesBlockPartition) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  Table table = ScalingFamilyTable(parsed, 400, 9);
  AttrSet x1 = AttrSet::Singleton(0);
  AttrSet x2 = AttrSet::Singleton(1);
  BlockPartition expected = PartitionForMarriage(TableView(table), x1, x2);

  std::vector<int> buffer = AllRows(table);
  RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
  GroupScratch scratch;
  std::vector<int> group_ends, left, right;
  int num_left = 0, num_right = 0;
  PartitionSpanForMarriage(span, x1, x2, &scratch, &group_ends, &left, &right,
                           &num_left, &num_right);

  std::vector<std::vector<int>> blocks = GroupsOf(buffer, group_ends);
  ASSERT_EQ(blocks.size(), expected.blocks.size());
  EXPECT_EQ(num_left, expected.num_left);
  EXPECT_EQ(num_right, expected.num_right);
  for (size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_EQ(blocks[b], expected.blocks[b].view.rows()) << b;
    EXPECT_EQ(left[b], expected.blocks[b].left) << b;
    EXPECT_EQ(right[b], expected.blocks[b].right) << b;
  }
}

// Randomized: grouping a random sub-window of a shuffled buffer leaves the
// rest of the buffer untouched and permutes (never duplicates/drops) the
// window's rows.
TEST(GroupScratchTest, WindowIsPermutedInPlaceOnly) {
  Rng rng(29);
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 200, 31, 2);
  GroupScratch scratch;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<int> buffer = AllRows(table);
    for (int i = static_cast<int>(buffer.size()) - 1; i > 0; --i) {
      std::swap(buffer[i],
                buffer[static_cast<int>(rng.UniformUint64(i + 1))]);
    }
    const int offset = static_cast<int>(rng.UniformUint64(100));
    const int count = static_cast<int>(rng.UniformUint64(100));
    std::vector<int> before = buffer;
    RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
    std::vector<int> group_ends;
    scratch.GroupInPlace(span.Subspan(offset, count),
                         AttrSet::Singleton(static_cast<AttrId>(trial % 4)),
                         &group_ends);
    // Outside the window: bit-identical. Inside: a permutation.
    for (size_t i = 0; i < buffer.size(); ++i) {
      if (i < static_cast<size_t>(offset) ||
          i >= static_cast<size_t>(offset + count)) {
        EXPECT_EQ(buffer[i], before[i]) << "outside window, i=" << i;
      }
    }
    std::vector<int> window(buffer.begin() + offset,
                            buffer.begin() + offset + count);
    std::vector<int> expected_window(before.begin() + offset,
                                     before.begin() + offset + count);
    std::sort(window.begin(), window.end());
    std::sort(expected_window.begin(), expected_window.end());
    EXPECT_EQ(window, expected_window) << "trial " << trial;
    if (!group_ends.empty()) EXPECT_EQ(group_ends.back(), count);
  }
}

/// Restores the default layout + dispatch on scope exit, so test order
/// cannot leak a pinned configuration.
struct DispatchGuard {
  ~DispatchGuard() {
    SetGroupingLayout(GroupingLayout::kColumnar);
    simd::ClearForcedSimdMode();
  }
};

// The columnar-vs-row-major grouping oracle: on random tables and 1/2/3+
// attribute keys, the columnar fast paths (under both SIMD and forced
// scalar dispatch) must produce exactly the grouping of the preserved
// row-major path AND of TableView::GroupRows — same permutation, same
// group boundaries. This is what keeps the fast paths from ever drifting
// from GroupRows.
TEST(GroupScratchTest, ColumnarMatchesRowMajorAndGroupRowsOnRandomTables) {
  DispatchGuard guard;
  Rng rng(97);
  ParsedFdSet parsed = Example31Ssn();  // 7 attributes
  struct Config {
    GroupingLayout layout;
    simd::SimdMode mode;
  };
  const Config configs[] = {
      {GroupingLayout::kRowMajor, simd::SimdMode::kScalar},
      {GroupingLayout::kColumnar, simd::SimdMode::kScalar},
      {GroupingLayout::kColumnar, simd::SimdMode::kAvx2},
  };
  GroupScratch scratch;
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 40 + static_cast<int>(rng.UniformUint64(400));
    const int family = 3 + static_cast<int>(rng.UniformUint64(40));
    Table table = ScalingFamilyTable(parsed, n, family, 3);
    // Random key width 1..4 over random attributes.
    AttrSet attrs;
    const int width = 1 + static_cast<int>(rng.UniformUint64(4));
    while (attrs.size() < width) {
      attrs = attrs.With(static_cast<AttrId>(
          rng.UniformUint64(table.schema().arity())));
    }
    GroupedRows expected = TableView(table).GroupRows(attrs);
    for (const Config& config : configs) {
      SetGroupingLayout(config.layout);
      simd::ForceSimdMode(config.mode);
      std::vector<int> buffer = AllRows(table);
      RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
      std::vector<int> group_ends;
      scratch.GroupInPlace(span, attrs, &group_ends);
      std::vector<std::vector<int>> groups = GroupsOf(buffer, group_ends);
      ASSERT_EQ(groups.size(), expected.rows.size())
          << "trial " << trial << " attrs " << attrs.ToString() << " layout "
          << static_cast<int>(config.layout) << " mode "
          << simd::SimdModeName(config.mode);
      for (size_t g = 0; g < groups.size(); ++g) {
        ASSERT_EQ(groups[g], expected.rows[g])
            << "trial " << trial << " attrs " << attrs.ToString() << " mode "
            << simd::SimdModeName(config.mode) << " group " << g;
      }
    }
  }
}

// Marriage endpoint assignment must also agree across layouts and dispatch
// modes (the single-attribute endpoint path reads the column store).
TEST(GroupScratchTest, MarriageEndpointsAgreeAcrossLayoutsAndDispatch) {
  DispatchGuard guard;
  ParsedFdSet parsed = DeltaAKeyBToC();
  Table table = ScalingFamilyTable(parsed, 500, 11);
  AttrSet x1 = AttrSet::Singleton(0);
  AttrSet x2 = AttrSet::Singleton(1);
  BlockPartition expected = PartitionForMarriage(TableView(table), x1, x2);
  struct Config {
    GroupingLayout layout;
    simd::SimdMode mode;
  };
  for (const Config& config :
       {Config{GroupingLayout::kRowMajor, simd::SimdMode::kScalar},
        Config{GroupingLayout::kColumnar, simd::SimdMode::kScalar},
        Config{GroupingLayout::kColumnar, simd::SimdMode::kAvx2}}) {
    SetGroupingLayout(config.layout);
    simd::ForceSimdMode(config.mode);
    std::vector<int> buffer = AllRows(table);
    RowSpan span(table, buffer.data(), static_cast<int>(buffer.size()));
    GroupScratch scratch;
    std::vector<int> group_ends, left, right;
    int num_left = 0, num_right = 0;
    PartitionSpanForMarriage(span, x1, x2, &scratch, &group_ends, &left,
                             &right, &num_left, &num_right);
    ASSERT_EQ(group_ends.size(), expected.blocks.size());
    EXPECT_EQ(num_left, expected.num_left);
    EXPECT_EQ(num_right, expected.num_right);
    std::vector<std::vector<int>> blocks = GroupsOf(buffer, group_ends);
    for (size_t b = 0; b < blocks.size(); ++b) {
      EXPECT_EQ(blocks[b], expected.blocks[b].view.rows()) << b;
      EXPECT_EQ(left[b], expected.blocks[b].left) << b;
      EXPECT_EQ(right[b], expected.blocks[b].right) << b;
    }
  }
}

TEST(DenseValueIndexTest, AssignsFirstAppearanceIdsAndClearsInO1) {
  DenseValueIndex index;
  index.Clear();
  bool created = false;
  EXPECT_EQ(index.FindOrCreate(42, &created), 0);
  EXPECT_TRUE(created);
  EXPECT_EQ(index.FindOrCreate(7, &created), 1);
  EXPECT_TRUE(created);
  EXPECT_EQ(index.FindOrCreate(42, &created), 0);
  EXPECT_FALSE(created);
  EXPECT_EQ(index.size(), 2);
  EXPECT_EQ(index.Find(7), 1);
  EXPECT_EQ(index.Find(1000), -1);  // beyond storage: absent, not UB
  index.Clear();
  EXPECT_EQ(index.size(), 0);
  EXPECT_EQ(index.Find(42), -1);  // prior epoch's entries are gone
  EXPECT_EQ(index.FindOrCreate(7, &created), 0);
  EXPECT_TRUE(created);
}

TEST(GroupScratchTest, IntBufferArenaRecyclesCapacity) {
  GroupScratch scratch;
  std::vector<int> buffer = scratch.AcquireIntBuffer();
  buffer.assign(1000, 7);
  const int* data = buffer.data();
  scratch.ReleaseIntBuffer(std::move(buffer));
  std::vector<int> again = scratch.AcquireIntBuffer();
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 1000u);
  EXPECT_EQ(again.data(), data);  // same storage came back
}

}  // namespace
}  // namespace fdrepair
