// Tests for OptSRepair (Algorithm 1): the Figure-1 example, each subroutine
// in isolation, weighted/duplicate support (Theorem 3.2), and the key
// property — on the tractable side it matches the exact branch-and-bound
// optimum on randomized instances.

#include <gtest/gtest.h>

#include "common/random.h"
#include "srepair/opt_srepair.h"
#include "srepair/osr_succeeds.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

TEST(OptSRepairTest, OfficeOptimumIsTwo) {
  OfficeExample office = MakeOfficeExample();
  auto repair = OptSRepair(office.fds, office.table);
  ASSERT_TRUE(repair.ok());
  EXPECT_TRUE(Satisfies(*repair, office.fds));
  EXPECT_DOUBLE_EQ(DistSubOrDie(*repair, office.table), 2);
}

TEST(OptSRepairTest, TrivialFdSetKeepsEverything) {
  OfficeExample office = MakeOfficeExample();
  auto repair = OptSRepair(FdSet(), office.table);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->num_tuples(), office.table.num_tuples());
}

TEST(OptSRepairTest, FailsOnHardSets) {
  ParsedFdSet hard = DeltaAtoBtoC();
  Table table(hard.schema);
  table.AddTuple({"a", "b", "c"});
  auto repair = OptSRepair(hard.fds, table);
  EXPECT_EQ(repair.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OptSRepairTest, EmptyTable) {
  ParsedFdSet office = OfficeFds();
  Table table(office.schema);
  auto repair = OptSRepair(office.fds, table);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->num_tuples(), 0);
}

// ConsensusRep: ∅ -> A keeps the heaviest A-group.
TEST(OptSRepairTest, ConsensusKeepsHeaviestGroup) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A");
  Table table(parsed.schema);
  table.AddTuple({"x"}, 1);
  table.AddTuple({"y"}, 2);
  table.AddTuple({"x"}, 0.5);
  auto repair = OptSRepair(parsed.fds, table);
  ASSERT_TRUE(repair.ok());
  ASSERT_EQ(repair->num_tuples(), 1);
  EXPECT_EQ(repair->ValueText(0, 0), "y");
}

// CommonLHSRep: groups solved independently and unioned.
TEST(OptSRepairTest, CommonLhsPartitions) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"g1", "x"}, 1);
  table.AddTuple({"g1", "y"}, 3);
  table.AddTuple({"g2", "z"}, 1);
  auto repair = OptSRepair(parsed.fds, table);
  ASSERT_TRUE(repair.ok());
  // Keeps the weight-3 tuple of g1 and all of g2.
  EXPECT_DOUBLE_EQ(DistSubOrDie(*repair, table), 1);
  EXPECT_EQ(repair->num_tuples(), 2);
}

// MarriageRep: ∆A↔B→C — matching decides which (A, B) blocks survive.
TEST(OptSRepairTest, MarriageMatchingChoosesBestBlocks) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  Table table(parsed.schema);
  // Block (a1, b1) weight 3 vs blocks (a1, b2) + (a2, b1) weight 2 each:
  // the matching must prefer the two lighter blocks (total 4 > 3).
  table.AddTuple({"a1", "b1", "c"}, 3);
  table.AddTuple({"a1", "b2", "c"}, 2);
  table.AddTuple({"a2", "b1", "c"}, 2);
  auto repair = OptSRepair(parsed.fds, table);
  ASSERT_TRUE(repair.ok());
  EXPECT_TRUE(Satisfies(*repair, parsed.fds));
  EXPECT_DOUBLE_EQ(DistSubOrDie(*repair, table), 3);
}

// The marriage subroutine must also enforce ∆ − X1X2 within blocks.
TEST(OptSRepairTest, MarriageRecursionInsideBlocks) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  Table table(parsed.schema);
  table.AddTuple({"a", "b", "c1"}, 1);
  table.AddTuple({"a", "b", "c2"}, 1);  // violates {} -> C inside the block
  auto repair = OptSRepair(parsed.fds, table);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->num_tuples(), 1);
}

TEST(OptSRepairTest, DuplicatesSupported) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 1);
  table.AddTuple({"a", "x"}, 1);  // duplicate, distinct id
  table.AddTuple({"a", "y"}, 1);
  auto repair = OptSRepair(parsed.fds, table);
  ASSERT_TRUE(repair.ok());
  // Keeping both duplicates (weight 2) beats keeping "y" (weight 1).
  EXPECT_EQ(repair->num_tuples(), 2);
  EXPECT_DOUBLE_EQ(DistSubOrDie(*repair, table), 1);
}

// Property: on every tractable named FD set, OptSRepair equals the exact
// branch-and-bound optimum on random tables — weighted and unweighted.
struct TractableCase {
  const char* name;
  int index;  // into AllNamedFdSets()
};

class OptSRepairPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(OptSRepairPropertyTest, MatchesExactOptimum) {
  const auto& [set_index, seed] = GetParam();
  NamedFdSet named = AllNamedFdSets()[set_index];
  if (!OsrSucceeds(named.parsed.fds)) GTEST_SKIP() << "hard side";
  Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    RandomTableOptions options;
    options.num_tuples = 4 + static_cast<int>(rng.UniformUint64(10));
    options.domain_size = 2 + static_cast<int>(rng.UniformUint64(3));
    options.heavy_fraction = (trial % 2 == 0) ? 0.5 : 0.0;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    auto fast = OptSRepair(named.parsed.fds, table);
    ASSERT_TRUE(fast.ok()) << named.name << ": " << fast.status();
    EXPECT_TRUE(Satisfies(*fast, named.parsed.fds)) << named.name;
    double fast_distance = DistSubOrDie(*fast, table);

    auto exact = OptSRepairExact(named.parsed.fds, table);
    ASSERT_TRUE(exact.ok()) << named.name << ": " << exact.status();
    double exact_distance = DistSubOrDie(*exact, table);
    EXPECT_NEAR(fast_distance, exact_distance, 1e-9)
        << named.name << " trial " << trial << "\n"
        << table.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SetsAndSeeds, OptSRepairPropertyTest,
    ::testing::Combine(::testing::Range(0, 20),
                       ::testing::Values(uint64_t{91}, uint64_t{92})));

// Planted dirty tables: repairs stay consistent and cheap relative to the
// number of corruptions.
TEST(OptSRepairTest, PlantedTablesRepairable) {
  Rng rng(777);
  ParsedFdSet office = OfficeFds();
  PlantedTableOptions options;
  options.num_tuples = 60;
  options.corruptions = 8;
  Table table = PlantedDirtyTable(office.schema, office.fds, options, &rng);
  auto repair = OptSRepair(office.fds, table);
  ASSERT_TRUE(repair.ok());
  EXPECT_TRUE(Satisfies(*repair, office.fds));
  // Deleting every corrupted tuple would cost at most `corruptions` weight-1
  // tuples; the optimum cannot be worse.
  EXPECT_LE(DistSubOrDie(*repair, table), 8.0);
}

}  // namespace
}  // namespace fdrepair
