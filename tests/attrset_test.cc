// Unit and property tests for AttrSet bitset algebra.

#include <gtest/gtest.h>

#include <set>

#include "catalog/attrset.h"
#include "common/random.h"

namespace fdrepair {
namespace {

TEST(AttrSetTest, EmptyByDefault) {
  AttrSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
  EXPECT_FALSE(set.Contains(0));
}

TEST(AttrSetTest, SingletonAndOf) {
  AttrSet a = AttrSet::Singleton(3);
  EXPECT_EQ(a.size(), 1);
  EXPECT_TRUE(a.Contains(3));
  AttrSet abc = AttrSet::Of({0, 2, 5});
  EXPECT_EQ(abc.size(), 3);
  EXPECT_TRUE(abc.Contains(0));
  EXPECT_FALSE(abc.Contains(1));
  EXPECT_EQ(AttrSet::Of({1, 1, 1}).size(), 1);
}

TEST(AttrSetTest, AllOf) {
  EXPECT_TRUE(AttrSet::AllOf(0).empty());
  EXPECT_EQ(AttrSet::AllOf(5).size(), 5);
  EXPECT_EQ(AttrSet::AllOf(64).size(), 64);
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet x = AttrSet::Of({0, 1, 2});
  AttrSet y = AttrSet::Of({2, 3});
  EXPECT_EQ(x.Union(y), AttrSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(x.Intersect(y), AttrSet::Of({2}));
  EXPECT_EQ(x.Minus(y), AttrSet::Of({0, 1}));
  EXPECT_TRUE(x.Intersects(y));
  EXPECT_FALSE(x.Intersects(AttrSet::Of({4})));
}

TEST(AttrSetTest, SubsetRelations) {
  AttrSet small = AttrSet::Of({1, 2});
  AttrSet big = AttrSet::Of({0, 1, 2});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsStrictSubsetOf(big));
  EXPECT_TRUE(big.IsSubsetOf(big));
  EXPECT_FALSE(big.IsStrictSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(AttrSet().IsSubsetOf(small));
}

TEST(AttrSetTest, WithWithout) {
  AttrSet set = AttrSet::Of({1});
  EXPECT_EQ(set.With(4), AttrSet::Of({1, 4}));
  EXPECT_EQ(set.Without(1), AttrSet());
  EXPECT_EQ(set.Without(9), set);
}

TEST(AttrSetTest, ToVectorOrdered) {
  EXPECT_EQ(AttrSet::Of({5, 1, 3}).ToVector(), (std::vector<AttrId>{1, 3, 5}));
  EXPECT_EQ(AttrSet::Of({5, 1, 3}).First(), 1);
}

TEST(AttrSetTest, ToStringRendering) {
  EXPECT_EQ(AttrSet().ToString(), "{}");
  EXPECT_EQ(AttrSet::Of({0, 2}).ToString(), "{0,2}");
}

TEST(AttrSetTest, ForEachAttrVisitsInOrder) {
  std::vector<AttrId> seen;
  ForEachAttr(AttrSet::Of({7, 0, 63}), [&](AttrId a) { seen.push_back(a); });
  EXPECT_EQ(seen, (std::vector<AttrId>{0, 7, 63}));
}

TEST(AttrSetTest, ForEachSubsetEnumeratesAll) {
  std::set<uint64_t> subsets;
  ForEachSubset(AttrSet::Of({0, 2, 4}),
                [&](AttrSet s) { subsets.insert(s.bits()); });
  EXPECT_EQ(subsets.size(), 8u);
  for (uint64_t bits : subsets) {
    EXPECT_TRUE(AttrSet::FromBits(bits).IsSubsetOf(AttrSet::Of({0, 2, 4})));
  }
}

TEST(AttrSetTest, ForEachSubsetOfEmpty) {
  int count = 0;
  ForEachSubset(AttrSet(), [&](AttrSet s) {
    EXPECT_TRUE(s.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

// Property: algebra laws hold for random sets.
class AttrSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttrSetPropertyTest, AlgebraLaws) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    AttrSet x = AttrSet::FromBits(rng.Next() & 0xffff);
    AttrSet y = AttrSet::FromBits(rng.Next() & 0xffff);
    AttrSet z = AttrSet::FromBits(rng.Next() & 0xffff);
    // De Morgan-ish identities within a finite universe.
    EXPECT_EQ(x.Minus(y).Union(x.Intersect(y)), x);
    EXPECT_EQ(x.Union(y).Intersect(z),
              x.Intersect(z).Union(y.Intersect(z)));
    EXPECT_EQ(x.Union(y).size() + x.Intersect(y).size(),
              x.size() + y.size());
    EXPECT_TRUE(x.Intersect(y).IsSubsetOf(x));
    EXPECT_TRUE(x.IsSubsetOf(x.Union(y)));
    EXPECT_EQ(x.Minus(y).Intersect(y), AttrSet());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fdrepair
