// The span-based OptSRepair recursion core, cross-checked three ways:
//
//   1. bit-identical kept-row sets against a reference implementation that
//      reproduces the pre-span recursion exactly (materializing GroupBy /
//      PartitionForMarriage blocks, NextSimplification per node, block-local
//      accumulation merged in first-appearance order);
//   2. bit-identical across thread counts 1 / 2 / 8 with the fan-out
//      cutoff forced to 1, so the shared row buffer is exercised by
//      concurrent block recursions at every level;
//   3. optimal against brute-force OptSRepairExact on small random
//      instances.
//
// The seeded random sweep runs every tractable named FD set, which covers
// all three subroutines (common lhs, consensus, lhs marriage — including
// the multi-attribute marriage of Example 3.1) plus their compositions.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "engine/block_partitioner.h"
#include "engine/thread_pool.h"
#include "graph/bipartite_matching.h"
#include "srepair/opt_srepair.h"
#include "srepair/osr_succeeds.h"
#include "srepair/simplification.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "storage/row_span.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

// --- Reference implementation: the pre-span recursion, verbatim in
// structure (one materialized index vector per block per level, one
// NextSimplification call per node, sequential). Kept as the permanent
// executable specification of the recursion's output.

Status ReferenceRecurse(const FdSet& fds, const TableView& view,
                        std::vector<int>* kept, double* kept_weight) {
  if (view.empty()) return Status::OK();
  SimplificationStep step = NextSimplification(fds);
  switch (step.kind) {
    case SimplificationKind::kTrivialTermination: {
      for (int i = 0; i < view.num_tuples(); ++i) {
        kept->push_back(view.row(i));
        *kept_weight += view.weight(i);
      }
      return Status::OK();
    }
    case SimplificationKind::kCommonLhs: {
      for (const TableView& block : view.GroupBy(step.removed)) {
        std::vector<int> rows;
        double weight = 0;
        FDR_RETURN_IF_ERROR(
            ReferenceRecurse(step.after, block, &rows, &weight));
        kept->insert(kept->end(), rows.begin(), rows.end());
        *kept_weight += weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kConsensus: {
      std::vector<std::vector<int>> rows;
      std::vector<double> weights;
      for (const TableView& block : view.GroupBy(step.removed)) {
        std::vector<int> block_rows;
        double weight = 0;
        FDR_RETURN_IF_ERROR(
            ReferenceRecurse(step.after, block, &block_rows, &weight));
        rows.push_back(std::move(block_rows));
        weights.push_back(weight);
      }
      int best = -1;
      for (size_t b = 0; b < rows.size(); ++b) {
        if (best < 0 || weights[b] > weights[best]) best = static_cast<int>(b);
      }
      if (best >= 0 && weights[best] > 0) {
        kept->insert(kept->end(), rows[best].begin(), rows[best].end());
        *kept_weight += weights[best];
      }
      return Status::OK();
    }
    case SimplificationKind::kLhsMarriage: {
      BlockPartition partition =
          PartitionForMarriage(view, step.marriage_x1, step.marriage_x2);
      std::vector<std::vector<int>> rows(partition.blocks.size());
      std::vector<BipartiteEdge> edges;
      std::unordered_map<uint64_t, int> block_of;
      for (size_t b = 0; b < partition.blocks.size(); ++b) {
        double weight = 0;
        FDR_RETURN_IF_ERROR(ReferenceRecurse(
            step.after, partition.blocks[b].view, &rows[b], &weight));
        edges.push_back(BipartiteEdge{partition.blocks[b].left,
                                      partition.blocks[b].right, weight});
        const uint64_t key =
            (static_cast<uint64_t>(
                 static_cast<uint32_t>(partition.blocks[b].left))
             << 32) |
            static_cast<uint32_t>(partition.blocks[b].right);
        block_of[key] = static_cast<int>(b);
      }
      MatchingResult matching = MaxWeightBipartiteMatching(
          partition.num_left, partition.num_right, edges);
      for (const auto& [left, right] : matching.pairs) {
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(left)) << 32) |
            static_cast<uint32_t>(right);
        const int b = block_of.at(key);
        kept->insert(kept->end(), rows[b].begin(), rows[b].end());
        *kept_weight += edges[b].weight;
      }
      return Status::OK();
    }
    case SimplificationKind::kStuck:
      return Status::FailedPrecondition("reference: stuck");
  }
  return Status::Internal("unreachable");
}

StatusOr<std::vector<int>> ReferenceOptSRepairRows(const FdSet& fds,
                                                   const TableView& view) {
  if (!OsrSucceeds(fds)) return Status::FailedPrecondition("reference: hard");
  std::vector<int> kept;
  double kept_weight = 0;
  FDR_RETURN_IF_ERROR(ReferenceRecurse(fds, view, &kept, &kept_weight));
  std::sort(kept.begin(), kept.end());
  return kept;
}

/// The span recursion at a given thread count (0 = sequential overload).
StatusOr<std::vector<int>> SpanRows(const FdSet& fds, const TableView& view,
                                    int threads) {
  if (threads <= 1) return OptSRepairRows(fds, view);
  ThreadPool pool(threads);
  OptSRepairRowsOptions options;
  options.exec.pool = &pool;
  options.exec.parallel_cutoff = 1;  // fan out at every level
  return OptSRepairRows(fds, view, options);
}

// Every tractable named set, random tables: the span core must match the
// reference implementation row for row, at every thread count.
class SpanRecursionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SpanRecursionPropertyTest, BitIdenticalToReferenceAndAcrossThreads) {
  const auto& [set_index, seed] = GetParam();
  NamedFdSet named = AllNamedFdSets()[set_index];
  if (!OsrSucceeds(named.parsed.fds)) GTEST_SKIP() << "hard side";
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    RandomTableOptions options;
    options.num_tuples = 20 + static_cast<int>(rng.UniformUint64(300));
    options.domain_size = 2 + static_cast<int>(rng.UniformUint64(4));
    options.heavy_fraction = (trial % 2 == 0) ? 0.5 : 0.0;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    TableView view(table);

    auto reference = ReferenceOptSRepairRows(named.parsed.fds, view);
    ASSERT_TRUE(reference.ok()) << named.name << ": " << reference.status();
    auto sequential = SpanRows(named.parsed.fds, view, 1);
    ASSERT_TRUE(sequential.ok()) << named.name << ": " << sequential.status();
    EXPECT_EQ(*sequential, *reference)
        << named.name << " trial " << trial << ": span recursion diverged "
        << "from the reference implementation";
    EXPECT_TRUE(Satisfies(table.SubsetByRows(*sequential), named.parsed.fds))
        << named.name;

    for (int threads : {2, 8}) {
      auto parallel = SpanRows(named.parsed.fds, view, threads);
      ASSERT_TRUE(parallel.ok()) << named.name << ": " << parallel.status();
      EXPECT_EQ(*parallel, *sequential)
          << named.name << " trial " << trial << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SetsAndSeeds, SpanRecursionPropertyTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(AllNamedFdSets().size())),
        ::testing::Values(uint64_t{1009}, uint64_t{1013})));

// The SIMD dispatch matrix: whole-recursion outputs must be bit-identical
// across {row-major, columnar scalar, columnar AVX2} on every tractable
// named set. This is the end-to-end companion of the grouping-level oracle
// in row_span_test.cc — if a kernel or fast path ever drifts, the kept-row
// sets diverge here.
TEST(SpanRecursionTest, BitIdenticalAcrossLayoutAndSimdDispatch) {
  struct DispatchGuard {
    ~DispatchGuard() {
      SetGroupingLayout(GroupingLayout::kColumnar);
      simd::ClearForcedSimdMode();
    }
  } guard;
  Rng rng(5150);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    if (!OsrSucceeds(named.parsed.fds)) continue;
    RandomTableOptions options;
    options.num_tuples = 150 + static_cast<int>(rng.UniformUint64(150));
    options.domain_size = 2 + static_cast<int>(rng.UniformUint64(4));
    options.heavy_fraction = 0.5;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    TableView view(table);

    SetGroupingLayout(GroupingLayout::kRowMajor);
    simd::ForceSimdMode(simd::SimdMode::kScalar);
    auto row_major = OptSRepairRows(named.parsed.fds, view);
    ASSERT_TRUE(row_major.ok()) << named.name << ": " << row_major.status();

    SetGroupingLayout(GroupingLayout::kColumnar);
    auto columnar_scalar = OptSRepairRows(named.parsed.fds, view);
    ASSERT_TRUE(columnar_scalar.ok()) << named.name;
    EXPECT_EQ(*columnar_scalar, *row_major)
        << named.name << ": columnar scalar diverged from row-major";

    simd::ForceSimdMode(simd::SimdMode::kAvx2);
    auto columnar_simd = OptSRepairRows(named.parsed.fds, view);
    ASSERT_TRUE(columnar_simd.ok()) << named.name;
    EXPECT_EQ(*columnar_simd, *row_major)
        << named.name << ": columnar "
        << simd::SimdModeName(simd::ActiveSimdMode())
        << " diverged from row-major";
  }
}

// Small instances: the span core is optimal (against brute force), per
// subroutine family.
TEST(SpanRecursionTest, OptimalAgainstBruteForce) {
  Rng rng(4242);
  for (const auto& [label, parsed] :
       {std::pair<std::string, ParsedFdSet>{"common-lhs", OfficeFds()},
        {"consensus", ParseFdSetInferSchemaOrDie("{} -> A; A -> B")},
        {"marriage", DeltaAKeyBToC()},
        {"marriage-multiattr", Example31Ssn()}}) {
    for (int trial = 0; trial < 10; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 4 + static_cast<int>(rng.UniformUint64(10));
      options.domain_size = 2 + static_cast<int>(rng.UniformUint64(3));
      options.heavy_fraction = 0.5;
      Rng table_rng = rng.Fork();
      Table table = RandomTable(parsed.schema, options, &table_rng);
      auto fast = OptSRepair(parsed.fds, table);
      ASSERT_TRUE(fast.ok()) << label << ": " << fast.status();
      auto exact = OptSRepairExact(parsed.fds, table);
      ASSERT_TRUE(exact.ok()) << label << ": " << exact.status();
      EXPECT_NEAR(DistSubOrDie(*fast, table), DistSubOrDie(*exact, table),
                  1e-9)
          << label << " trial " << trial << "\n"
          << table.ToString();
    }
  }
}

// The chain is a pure function of ∆ and ends exactly as OSRSucceeds
// predicts — the invariant that lets the recursion share one chain across
// every block.
TEST(SpanRecursionTest, SimplificationChainMatchesStepwiseSimplification) {
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SimplificationChain chain = SimplificationChain::Compute(named.parsed.fds);
    ASSERT_GE(chain.length(), 1) << named.name;
    EXPECT_EQ(chain.succeeds(), OsrSucceeds(named.parsed.fds)) << named.name;
    FdSet current = named.parsed.fds;
    for (int d = 0; d < chain.length(); ++d) {
      SimplificationStep expected = NextSimplification(current);
      EXPECT_EQ(chain.at(d).kind, expected.kind) << named.name << " depth "
                                                 << d;
      EXPECT_EQ(chain.at(d).removed, expected.removed) << named.name;
      EXPECT_EQ(chain.at(d).after.ToString(), expected.after.ToString())
          << named.name << " depth " << d;
      current = expected.after;
    }
    const SimplificationKind last = chain.steps().back().kind;
    EXPECT_TRUE(last == SimplificationKind::kTrivialTermination ||
                last == SimplificationKind::kStuck)
        << named.name;
  }
}

}  // namespace
}  // namespace fdrepair
