// Unit tests for the common substrate: Status/StatusOr, strings, Rng.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace fdrepair {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad fd");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad fd");
  EXPECT_EQ(status.ToString(), "invalid-argument: bad fd");
}

TEST(StatusTest, NamedConstructorsMapToCodes) {
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  FDR_ASSIGN_OR_RETURN(int half, Half(x));
  FDR_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespaceDropsRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t\n"), "");
}

TEST(StringsTest, JoinAndAffixes) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("facility", "fac"));
  EXPECT_FALSE(StartsWith("f", "fac"));
  EXPECT_TRUE(EndsWith("repair.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "repair.cc"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(10), 10u);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependent) {
  Rng parent(17);
  Rng child = parent.Fork();
  // The fork and the parent should produce different streams.
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (parent.Next() != child.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace fdrepair
