// Tests for the Figure-2 classifier: Example 3.8's representatives land in
// classes 1..5, the paper's named hard sets classify as their lemmas
// require, and every randomly generated stuck FD set classifies somewhere.

#include <gtest/gtest.h>

#include "common/random.h"
#include "srepair/class_classifier.h"
#include "srepair/osr_succeeds.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

TEST(ClassClassifierTest, Example38Representatives) {
  for (int fd_class = 1; fd_class <= 5; ++fd_class) {
    ParsedFdSet parsed = Example38Class(fd_class);
    auto result = ClassifyNonSimplifiable(parsed.fds);
    ASSERT_TRUE(result.ok()) << "class " << fd_class << ": "
                             << result.status();
    EXPECT_EQ(result->fd_class, fd_class)
        << parsed.fds.ToString(parsed.schema);
  }
}

TEST(ClassClassifierTest, GadgetsForClasses) {
  EXPECT_EQ(ClassifyNonSimplifiable(Example38Class(1).fds)->gadget,
            HardGadget::kAtoCfromB);
  EXPECT_EQ(ClassifyNonSimplifiable(Example38Class(2).fds)->gadget,
            HardGadget::kAtoBtoC);
  EXPECT_EQ(ClassifyNonSimplifiable(Example38Class(3).fds)->gadget,
            HardGadget::kAtoBtoC);
  EXPECT_EQ(ClassifyNonSimplifiable(Example38Class(4).fds)->gadget,
            HardGadget::kTriangle);
  EXPECT_EQ(ClassifyNonSimplifiable(Example38Class(5).fds)->gadget,
            HardGadget::kABtoCtoB);
}

TEST(ClassClassifierTest, Table1SetsClassify) {
  // The gadget sets themselves are stuck and must classify.
  for (const ParsedFdSet& parsed :
       {DeltaAtoBtoC(), DeltaAtoCfromB(), DeltaABtoCtoB(), DeltaTriangle()}) {
    auto result = ClassifyNonSimplifiable(parsed.fds);
    ASSERT_TRUE(result.ok()) << parsed.fds.ToString();
    EXPECT_GE(result->fd_class, 1);
    EXPECT_LE(result->fd_class, 5);
  }
}

TEST(ClassClassifierTest, Class4ReportsThirdMinimum) {
  auto result = ClassifyNonSimplifiable(DeltaTriangle().fds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fd_class, 4);
  ASSERT_TRUE(result->x3.has_value());
  EXPECT_NE(result->x1, result->x2);
  EXPECT_NE(result->x1, *result->x3);
  EXPECT_NE(result->x2, *result->x3);
}

TEST(ClassClassifierTest, RejectsSimplifiableSets) {
  EXPECT_EQ(ClassifyNonSimplifiable(OfficeFds().fds).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ClassifyNonSimplifiable(FdSet()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ClassifyNonSimplifiable(DeltaAKeyBToC().fds).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ClassClassifierTest, Class5OrientationMatchesLemmaA17) {
  // Lemma A.17 requires (X2 ∖ X1) ⊄ X̂1 under the returned orientation.
  for (const ParsedFdSet& parsed : {Example38Class(5), DeltaABtoCtoB()}) {
    auto result = ClassifyNonSimplifiable(parsed.fds);
    ASSERT_TRUE(result.ok());
    if (result->fd_class != 5) continue;
    FdSet delta = parsed.fds.WithoutTrivial();
    AttrSet hat1 = delta.Closure(result->x1).Minus(result->x1);
    EXPECT_FALSE(result->x2.Minus(result->x1).IsSubsetOf(hat1));
  }
}

// Property: every stuck residual of a random FD set classifies into 1..5.
class ClassifierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClassifierPropertyTest, StuckSetsAlwaysClassify) {
  Rng rng(GetParam());
  int stuck_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<Fd> fds;
    int count = 2 + static_cast<int>(rng.UniformUint64(4));
    for (int f = 0; f < count; ++f) {
      AttrSet lhs = AttrSet::FromBits(rng.Next() & 0x1f);
      fds.emplace_back(lhs, static_cast<AttrId>(rng.UniformUint64(5)));
    }
    OsrTrace trace = RunOsrSucceeds(FdSet::FromFds(fds));
    if (trace.succeeds) continue;
    ++stuck_seen;
    auto result = ClassifyNonSimplifiable(trace.stuck_fds);
    ASSERT_TRUE(result.ok())
        << trace.stuck_fds.ToString() << ": " << result.status();
    EXPECT_GE(result->fd_class, 1);
    EXPECT_LE(result->fd_class, 5);
    if (result->fd_class == 4) {
      EXPECT_TRUE(result->x3.has_value());
    }
  }
  EXPECT_GT(stuck_seen, 20);  // the sweep actually exercised the hard side
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierPropertyTest,
                         ::testing::Values(31, 37, 41, 43));

}  // namespace
}  // namespace fdrepair
