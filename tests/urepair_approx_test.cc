// Tests for the approximate U-repairs: the 2·mlc route (Theorem 4.12), the
// Kolahi–Lakshmanan-style core-implicant baseline (Theorem 4.13 shape), and
// the combined best-of (§4.4) — consistency always, ratio bounds against the
// exact optimum on small instances.

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/covers.h"
#include "urepair/update.h"
#include "urepair/urepair_exact.h"
#include "urepair/urepair_kl_approx.h"
#include "urepair/urepair_mlc_approx.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

std::vector<NamedFdSet> ConsensusFreeSets() {
  std::vector<NamedFdSet> out;
  for (NamedFdSet& named : AllNamedFdSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (delta.IsConsensusFree() && !delta.empty()) {
      out.push_back(std::move(named));
    }
  }
  return out;
}

TEST(MlcApproxTest, ConsistentAcrossSets) {
  Rng rng(13);
  for (const NamedFdSet& named : ConsensusFreeSets()) {
    RandomTableOptions options;
    options.num_tuples = 30;
    options.domain_size = 3;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto update = MlcApproxURepair(named.parsed.fds, table);
    ASSERT_TRUE(update.ok()) << named.name << ": " << update.status();
    EXPECT_TRUE(Satisfies(*update, named.parsed.fds)) << named.name;
    EXPECT_TRUE(ValidateUpdate(*update, table).ok()) << named.name;
  }
}

TEST(KlApproxTest, ConsistentAcrossSets) {
  Rng rng(14);
  for (const NamedFdSet& named : ConsensusFreeSets()) {
    RandomTableOptions options;
    options.num_tuples = 30;
    options.domain_size = 3;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto update = KlApproxURepair(named.parsed.fds, table);
    ASSERT_TRUE(update.ok()) << named.name << ": " << update.status();
    EXPECT_TRUE(Satisfies(*update, named.parsed.fds)) << named.name;
  }
}

TEST(ApproxTest, RejectConsensusSets) {
  ParsedFdSet consensus = ParseFdSetInferSchemaOrDie("{} -> A");
  Table table(consensus.schema);
  table.AddTuple({"x"});
  EXPECT_EQ(MlcApproxURepair(consensus.fds, table).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(KlApproxURepair(consensus.fds, table).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ApproxTest, CleanTableCostsNothing) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Table table(parsed.schema);
  table.AddTuple({"a1", "b1", "c1"});
  table.AddTuple({"a2", "b2", "c2"});
  auto mlc_update = MlcApproxURepair(parsed.fds, table);
  ASSERT_TRUE(mlc_update.ok());
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*mlc_update, table), 0);
  auto kl_update = KlApproxURepair(parsed.fds, table);
  ASSERT_TRUE(kl_update.ok());
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*kl_update, table), 0);
}

// Ratio bounds against the exact optimum on tiny tables.
class URepairApproxRatioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(URepairApproxRatioTest, WithinProvenBounds) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : ConsensusFreeSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (delta.Attrs().size() > 5) continue;  // exact-solver budget
    auto mlc_bound = MlcApproxRatioBound(delta);
    auto kl_bound = KlApproxRatioBound(delta);
    ASSERT_TRUE(mlc_bound.ok() && kl_bound.ok()) << named.name;
    for (int trial = 0; trial < 4; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 4;
      options.domain_size = 2;
      Rng table_rng = rng.Fork();
      Table table = RandomTable(named.parsed.schema, options, &table_rng);
      auto exact = OptURepairExact(delta, table);
      ASSERT_TRUE(exact.ok()) << named.name;
      double optimal = DistUpdOrDie(*exact, table);

      auto mlc_update = MlcApproxURepair(delta, table);
      ASSERT_TRUE(mlc_update.ok()) << named.name;
      EXPECT_LE(DistUpdOrDie(*mlc_update, table),
                *mlc_bound * optimal + 1e-9)
          << named.name << "\n" << table.ToString();

      auto kl_update = KlApproxURepair(delta, table);
      ASSERT_TRUE(kl_update.ok()) << named.name;
      EXPECT_LE(DistUpdOrDie(*kl_update, table), *kl_bound * optimal + 1e-9)
          << named.name << "\n" << table.ToString();

      auto combined = CombinedApproxURepair(delta, table);
      ASSERT_TRUE(combined.ok()) << named.name;
      double combined_cost = DistUpdOrDie(*combined, table);
      EXPECT_LE(combined_cost,
                DistUpdOrDie(*mlc_update, table) + 1e-9);
      EXPECT_LE(combined_cost, DistUpdOrDie(*kl_update, table) + 1e-9);
      EXPECT_GE(combined_cost, optimal - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, URepairApproxRatioTest,
                         ::testing::Values(910, 911, 912));

// The §4.4 divergence, measured: on ∆'k instances the KL-style baseline
// must not degrade with k (its bound is the constant 9) while the 2·mlc
// route's bound grows — the combined algorithm tracks the better one.
TEST(ApproxTest, CombinedNeverWorseThanEitherOnFamilies) {
  Rng rng(2024);
  for (int k = 1; k <= 3; ++k) {
    ParsedFdSet family = DeltaPrimeKFamily(k);
    RandomTableOptions options;
    options.num_tuples = 20;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(family.schema, options, &table_rng);
    auto mlc_update = MlcApproxURepair(family.fds, table);
    auto kl_update = KlApproxURepair(family.fds, table);
    auto combined = CombinedApproxURepair(family.fds, table);
    ASSERT_TRUE(mlc_update.ok() && kl_update.ok() && combined.ok());
    double best = std::min(DistUpdOrDie(*mlc_update, table),
                           DistUpdOrDie(*kl_update, table));
    EXPECT_DOUBLE_EQ(DistUpdOrDie(*combined, table), best) << "k=" << k;
    EXPECT_TRUE(Satisfies(*combined, family.fds));
  }
}

}  // namespace
}  // namespace fdrepair
