// The parallel repair engine: work-stealing pool, block partitioner,
// batch RepairEngine. The load-bearing properties:
//   - results are bit-identical for every thread count (1/2/8);
//   - per-job deadlines expire with kDeadlineExceeded and leak nothing;
//   - a mixed batch matches the sequential planner job for job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/random.h"
#include "engine/block_partitioner.h"
#include "engine/repair_engine.h"
#include "engine/thread_pool.h"
#include "srepair/opt_srepair.h"
#include "srepair/planner.h"
#include "storage/consistency.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

std::vector<TupleId> Ids(const Table& table) {
  std::vector<TupleId> ids;
  for (int i = 0; i < table.num_tuples(); ++i) ids.push_back(table.id(i));
  return ids;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int) {
    pool.ParallelFor(8, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // The destructor drains the queues: nothing may be leaked.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, OneThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BlockPartitionerTest, MatchesTableViewGroupBy) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 500, 7);
  TableView view(table);
  AttrSet attrs = AttrSet::Singleton(0);
  BlockPartition partition = PartitionByAttrs(view, attrs);
  std::vector<TableView> groups = view.GroupBy(attrs);
  ASSERT_EQ(partition.blocks.size(), groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(partition.blocks[g].view.rows(), groups[g].rows()) << g;
    // The stored key is the witness projection of the block.
    EXPECT_EQ(partition.blocks[g].key,
              ProjectTuple(groups[g].tuple(0), attrs));
  }
}

TEST(BlockPartitionerTest, MarriageEndpointsIndexDistinctProjections) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  Table table = ScalingFamilyTable(parsed, 400, 9);
  TableView view(table);
  AttrSet x1 = AttrSet::Singleton(0);
  AttrSet x2 = AttrSet::Singleton(1);
  BlockPartition partition = PartitionForMarriage(view, x1, x2);
  ASSERT_GT(partition.blocks.size(), 0u);
  EXPECT_GT(partition.num_left, 0);
  EXPECT_GT(partition.num_right, 0);
  // Two blocks share a left endpoint iff they share the π_X1 projection
  // (and symmetrically on the right); endpoint ids are dense.
  for (const RepairBlock& a : partition.blocks) {
    EXPECT_GE(a.left, 0);
    EXPECT_LT(a.left, partition.num_left);
    EXPECT_GE(a.right, 0);
    EXPECT_LT(a.right, partition.num_right);
    for (const RepairBlock& b : partition.blocks) {
      ProjectionKey a1 = ProjectTuple(a.view.tuple(0), x1);
      ProjectionKey b1 = ProjectTuple(b.view.tuple(0), x1);
      EXPECT_EQ(a.left == b.left, a1 == b1);
    }
  }
}

TEST(ParallelOptSRepairTest, BitIdenticalAcrossThreadCounts) {
  for (const auto& [label, parsed] :
       {std::pair<std::string, ParsedFdSet>{"chain", OfficeFds()},
        {"marriage", DeltaAKeyBToC()},
        {"ssn", Example31Ssn()}}) {
    Table table = ScalingFamilyTable(parsed, 4096, 21);
    TableView view(table);
    auto sequential = OptSRepairRows(parsed.fds, view);
    ASSERT_TRUE(sequential.ok()) << label << ": " << sequential.status();
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      OptSRepairRowsOptions options;
      options.exec.pool = &pool;
      options.exec.parallel_cutoff = 1;  // fan out at every level
      auto parallel = OptSRepairRows(parsed.fds, view, options);
      ASSERT_TRUE(parallel.ok()) << label << ": " << parallel.status();
      EXPECT_EQ(*parallel, *sequential) << label << " threads=" << threads;
    }
  }
}

TEST(ParallelOptSRepairTest, DeadlineExpiresMidRecursion) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 1000, 33);
  OptSRepairRowsOptions options;
  options.exec.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto result = OptSRepairRows(parsed.fds, TableView(table), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RepairEngineTest, ExpiredJobReportsDeadlineOthersServe) {
  ParsedFdSet parsed = OfficeFds();
  Table big = ScalingFamilyTable(parsed, 2000, 41);
  Table small = ScalingFamilyTable(parsed, 200, 43);
  std::vector<RepairJob> jobs(3);
  jobs[0].fds = parsed.fds;
  jobs[0].table = &big;
  jobs[0].deadline = std::chrono::milliseconds(0);  // expired at admission
  jobs[1].fds = parsed.fds;
  jobs[1].table = &small;
  jobs[2].fds = parsed.fds;
  jobs[2].table = &big;

  EngineOptions options;
  options.threads = 4;
  RepairEngine engine(options);
  for (int round = 0; round < 3; ++round) {
    auto results = engine.RepairBatch(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status().code(), StatusCode::kDeadlineExceeded);
    ASSERT_TRUE(results[1].ok()) << results[1].status();
    ASSERT_TRUE(results[2].ok()) << results[2].status();
    EXPECT_TRUE(Satisfies(results[2]->repair, parsed.fds));
  }
  // No tasks were leaked: the pool still runs fresh work to completion.
  std::atomic<int> ran{0};
  engine.pool()->ParallelFor(64, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(RepairEngineTest, DefaultDeadlineAppliesToJobsWithoutOne) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 1000, 47);
  EngineOptions options;
  options.threads = 2;
  options.default_deadline = std::chrono::milliseconds(0);
  RepairEngine engine(options);
  RepairJob job;
  job.fds = parsed.fds;
  job.table = &table;
  auto result = engine.Repair(job);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RepairEngineTest, BatchOf100MixedJobsMatchesSequentialPlanner) {
  ParsedFdSet chain = OfficeFds();
  ParsedFdSet marriage = DeltaAKeyBToC();
  ParsedFdSet hard = DeltaAtoBtoC();  // APX-complete: exact or 2-approx route

  std::vector<Table> tables;
  tables.reserve(100);
  std::vector<RepairJob> jobs;
  for (int j = 0; j < 100; ++j) {
    switch (j % 4) {
      case 0:
        tables.push_back(ScalingFamilyTable(chain, 300, 1000 + j));
        break;
      case 1:
        tables.push_back(ScalingFamilyTable(marriage, 200, 2000 + j));
        break;
      case 2:
        // Small hard instance: the exact branch-and-bound route.
        tables.push_back(ScalingFamilyTable(hard, 24, 3000 + j, 4));
        break;
      default:
        // Large hard instance: overflows exact_guard into the 2-approx.
        tables.push_back(ScalingFamilyTable(hard, 300, 4000 + j, 50));
        break;
    }
  }
  for (int j = 0; j < 100; ++j) {
    RepairJob job;
    job.fds = (j % 4 == 0)   ? chain.fds
              : (j % 4 == 1) ? marriage.fds
                             : hard.fds;
    job.table = &tables[j];
    jobs.push_back(std::move(job));
  }

  EngineOptions options;
  options.threads = 8;
  options.parallel_cutoff = 64;
  RepairEngine engine(options);
  std::vector<StatusOr<SRepairResult>> batch = engine.RepairBatch(jobs);
  ASSERT_EQ(batch.size(), 100u);

  for (int j = 0; j < 100; ++j) {
    auto sequential = ComputeSRepair(jobs[j].fds, *jobs[j].table);
    ASSERT_TRUE(sequential.ok()) << j << ": " << sequential.status();
    ASSERT_TRUE(batch[j].ok()) << j << ": " << batch[j].status();
    EXPECT_EQ(batch[j]->algorithm, sequential->algorithm) << j;
    EXPECT_EQ(batch[j]->optimal, sequential->optimal) << j;
    EXPECT_EQ(batch[j]->distance, sequential->distance) << j;
    EXPECT_EQ(Ids(batch[j]->repair), Ids(sequential->repair)) << j;
  }
}

TEST(RepairEngineTest, ResultsOrderedByJobNotCompletion) {
  // Jobs of wildly different sizes: completion order differs from job
  // order, results must not.
  ParsedFdSet parsed = OfficeFds();
  std::vector<Table> tables;
  tables.reserve(10);
  std::vector<RepairJob> jobs;
  for (int j = 0; j < 10; ++j) {
    tables.push_back(ScalingFamilyTable(parsed, j % 2 == 0 ? 3000 : 50, 500 + j));
  }
  for (int j = 0; j < 10; ++j) {
    RepairJob job;
    job.fds = parsed.fds;
    job.table = &tables[j];
    jobs.push_back(std::move(job));
  }
  EngineOptions options;
  options.threads = 4;
  RepairEngine engine(options);
  auto results = engine.RepairBatch(jobs);
  ASSERT_EQ(results.size(), 10u);
  for (int j = 0; j < 10; ++j) {
    ASSERT_TRUE(results[j].ok()) << j;
    // Each result answers its own job: every kept id exists in job j's
    // table (tables have disjoint sizes, so mixups change num_tuples).
    EXPECT_LE(results[j]->repair.num_tuples(), tables[j].num_tuples());
    for (TupleId id : Ids(results[j]->repair)) {
      EXPECT_TRUE(tables[j].RowOf(id).ok());
    }
  }
}

TEST(ValuePoolConcurrencyTest, ConcurrentInternAndReadAreSafe) {
  // The audited contract from value_pool.h: readers and writers may run
  // concurrently (TSan exercises this leg in CI).
  ValuePool pool;
  ValueId warm = pool.Intern("warm");
  ThreadPool threads(4);
  threads.ParallelFor(256, [&](int i) {
    if (i % 2 == 0) {
      pool.Intern("value-" + std::to_string(i % 17));
    } else {
      EXPECT_EQ(pool.Text(warm), "warm");
      (void)pool.Lookup("value-" + std::to_string(i % 17));
      (void)pool.IsFresh(warm);
      (void)pool.size();
    }
  });
  EXPECT_EQ(pool.Text(warm), "warm");
  EXPECT_GE(pool.size(), 1);
}

}  // namespace
}  // namespace fdrepair
