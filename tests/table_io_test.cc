// CSV round-tripping under RFC-4180 quoting, and the weight-validation
// contract: TableFromCsv(TableToCsv(t)) must reproduce t exactly for
// arbitrary values (separators, quotes, newlines, empty strings,
// surrounding whitespace), and the "w" column only accepts positive
// finite numbers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "storage/table.h"
#include "storage/table_io.h"

namespace fdrepair {
namespace {

Table MakeTable(const std::vector<std::string>& attrs,
                const std::vector<std::pair<std::vector<std::string>, double>>&
                    rows) {
  Table table(Schema::MakeOrDie("T", attrs));
  for (const auto& [values, weight] : rows) table.AddTuple(values, weight);
  return table;
}

void ExpectSameContent(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema().arity(), b.schema().arity());
  for (int c = 0; c < a.schema().arity(); ++c) {
    EXPECT_EQ(a.schema().AttributeName(c), b.schema().AttributeName(c)) << c;
  }
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (int row = 0; row < a.num_tuples(); ++row) {
    EXPECT_EQ(a.id(row), b.id(row)) << row;
    EXPECT_DOUBLE_EQ(a.weight(row), b.weight(row)) << row;
    for (int c = 0; c < a.schema().arity(); ++c) {
      EXPECT_EQ(a.ValueText(row, c), b.ValueText(row, c))
          << "row " << row << " col " << c;
    }
  }
}

TEST(TableIoQuotingTest, RoundTripsSeparatorQuoteNewlineAndEmpty) {
  Table table = MakeTable(
      {"a", "b"},
      {{{"plain", "with,comma"}, 1.0},
       {{"say \"hi\"", "line\nbreak"}, 2.5},
       {{"", "  padded  "}, 0.25},
       {{",", "\""}, 1.0},
       {{"\r\n", "trailing\n"}, 3.0},
       {{"\ttabbed", "mix,\"of\"\nall"}, 1.5},
       // \v and \f are stripped by the unquoted reader too, so the writer
       // must quote them just like space/tab framing.
       {{"\fformfeed", "vtab\v"}, 1.0}});
  std::string csv = TableToCsv(table);
  auto parsed = TableFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectSameContent(table, *parsed);
}

TEST(TableIoQuotingTest, RoundTripsUnderAlternateSeparator) {
  Table table = MakeTable({"x", "y"}, {{{"a;b", "c,d"}, 1.0},
                                       {{"e\"f", "g\nh"}, 2.0}});
  std::string csv = TableToCsv(table, ';');
  auto parsed = TableFromCsv(csv, "T", ';');
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectSameContent(table, *parsed);
}

TEST(TableIoQuotingTest, QuotedAttributeNamesRoundTrip) {
  Table table = MakeTable({"name, first", "plain"}, {{{"v1", "v2"}, 1.0}});
  auto parsed = TableFromCsv(TableToCsv(table));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectSameContent(table, *parsed);
}

TEST(TableIoQuotingTest, PlainCsvStillStripsWhitespace) {
  auto parsed = TableFromCsv("id , a , w\n 1 , hello , 2 \n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_tuples(), 1);
  EXPECT_EQ(parsed->ValueText(0, 0), "hello");
  EXPECT_DOUBLE_EQ(parsed->weight(0), 2.0);
}

TEST(TableIoQuotingTest, QuotedFieldsPreserveWhitespaceVerbatim) {
  auto parsed = TableFromCsv("a,b\n\" x \",\"\"\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ValueText(0, 0), " x ");
  EXPECT_EQ(parsed->ValueText(0, 1), "");
}

TEST(TableIoQuotingTest, EmbeddedNewlineInsideQuotesSpansLines) {
  auto parsed = TableFromCsv("a,b\n\"multi\nline\",z\nnext,row\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_tuples(), 2);
  EXPECT_EQ(parsed->ValueText(0, 0), "multi\nline");
  EXPECT_EQ(parsed->ValueText(1, 0), "next");
}

TEST(TableIoQuotingTest, AllEmptyUnquotedRecordIsKept) {
  auto parsed = TableFromCsv("a,b\n,\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_tuples(), 1);
  EXPECT_EQ(parsed->ValueText(0, 0), "");
  EXPECT_EQ(parsed->ValueText(0, 1), "");
}

TEST(TableIoQuotingTest, UnterminatedQuoteFails) {
  auto parsed = TableFromCsv("a,b\n\"oops,then\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableIoQuotingTest, DataAfterClosingQuoteFails) {
  auto parsed = TableFromCsv("a,b\n\"x\"y,z\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableIoWeightTest, RejectsNonPositiveAndNonFiniteWeights) {
  for (const std::string& bad : {"-1", "0", "-0.5", "nan", "inf", "-inf",
                                 "1e999"}) {
    auto parsed = TableFromCsv("id,a,w\n1,x," + bad + "\n");
    ASSERT_FALSE(parsed.ok()) << "weight " << bad << " was accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(TableIoWeightTest, RejectsMalformedWeightText) {
  for (const std::string& bad : {"abc", "2x", ""}) {
    auto parsed = TableFromCsv("id,a,w\n1,x," + bad + "\n");
    ASSERT_FALSE(parsed.ok()) << "weight \"" << bad << "\" was accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(TableIoWeightTest, AcceptsPositiveFiniteWeights) {
  auto parsed = TableFromCsv("id,a,w\n1,x,0.125\n2,y,3\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->weight(0), 0.125);
  EXPECT_DOUBLE_EQ(parsed->weight(1), 3.0);
}

TEST(TableIoPropertyTest, RandomValuesRoundTrip) {
  // Property: TableFromCsv(TableToCsv(t)) == t for values drawn from an
  // alphabet stacked with every character the quoting rules care about.
  const std::string alphabet = "ab,\"\n\r \t\v\f;x";
  Rng rng(20260726);
  for (int iteration = 0; iteration < 60; ++iteration) {
    int arity = 1 + static_cast<int>(rng.UniformUint64(3));
    std::vector<std::string> attrs;
    for (int c = 0; c < arity; ++c) attrs.push_back("c" + std::to_string(c));
    Table table(Schema::MakeOrDie("T", attrs));
    int rows = static_cast<int>(rng.UniformUint64(8));
    for (int r = 0; r < rows; ++r) {
      std::vector<std::string> values;
      for (int c = 0; c < arity; ++c) {
        int len = static_cast<int>(rng.UniformUint64(6));
        std::string value;
        for (int k = 0; k < len; ++k) {
          value += alphabet[rng.UniformIndex(alphabet.size())];
        }
        values.push_back(std::move(value));
      }
      // Eighths survive FormatDouble's 6-significant-digit weight printing
      // exactly; value round-tripping is what this test is about.
      table.AddTuple(values, (1 + rng.UniformUint64(32)) / 8.0);
    }
    char sep = iteration % 2 == 0 ? ',' : ';';
    auto parsed = TableFromCsv(TableToCsv(table, sep), "T", sep);
    ASSERT_TRUE(parsed.ok())
        << "iteration " << iteration << ": " << parsed.status();
    ExpectSameContent(table, *parsed);
  }
}

}  // namespace
}  // namespace fdrepair
