// Tests for the exact U-repair routes: consensus plurality (Prop B.2),
// Prop 4.4's two conversions, the common-lhs route (Cor 4.6), the key-cycle
// route (Prop 4.9), the exhaustive solver, and the Corollary 4.5 sandwich.
//
// Since the routes were ported onto the span/columnar grouping core, this
// file also pins them bit-identical to the preserved pre-port reference
// implementations (urepair/reference_routes.h) across every named FD set,
// thread counts 1/2/8, and the SIMD dispatch matrix — the §4 companion of
// span_recursion_test.cc.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/random.h"
#include "common/simd.h"
#include "engine/thread_pool.h"
#include "srepair/opt_srepair.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "storage/row_span.h"
#include "urepair/covers.h"
#include "urepair/opt_urepair.h"
#include "urepair/planner.h"
#include "urepair/reference_routes.h"
#include "urepair/update.h"
#include "urepair/urepair_common_lhs.h"
#include "urepair/urepair_consensus.h"
#include "urepair/urepair_exact.h"
#include "urepair/urepair_key_cycle.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

TEST(ConsensusRepairTest, WeightedPlurality) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A");
  Table table(parsed.schema);
  table.AddTuple({"x"}, 1);
  table.AddTuple({"y"}, 3);
  table.AddTuple({"x"}, 1);
  Table update = ConsensusPluralityRepair(table, AttrSet::Of({0}));
  EXPECT_TRUE(Satisfies(update, parsed.fds));
  EXPECT_DOUBLE_EQ(DistUpdOrDie(update, table), 2);  // both x's flip
  EXPECT_EQ(update.ValueText(0, 0), "y");
  EXPECT_DOUBLE_EQ(ConsensusPluralityCost(table, AttrSet::Of({0})), 2);
}

TEST(ConsensusRepairTest, PerAttributeIndependence) {
  // Two consensus attributes repaired to their own plurality values.
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A; {} -> B");
  Table table(parsed.schema);
  table.AddTuple({"x", "q"}, 1);
  table.AddTuple({"x", "r"}, 2);
  table.AddTuple({"y", "r"}, 1);
  Table update = ConsensusPluralityRepair(table, AttrSet::Of({0, 1}));
  EXPECT_TRUE(Satisfies(update, parsed.fds));
  // A: keep x (weight 3 vs 1); B: keep r (weight 3 vs 1); cost 1 + 1.
  EXPECT_DOUBLE_EQ(DistUpdOrDie(update, table), 2);
}

TEST(ConsensusRepairTest, MatchesExactOptimum) {
  Rng rng(321);
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A; {} -> B");
  for (int trial = 0; trial < 10; ++trial) {
    RandomTableOptions options;
    options.num_tuples = 4;
    options.domain_size = 3;
    options.heavy_fraction = 0.5;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(parsed.schema, options, &table_rng);
    Table plurality = ConsensusPluralityRepair(table, AttrSet::Of({0, 1}));
    auto exact = OptURepairExact(parsed.fds, table);
    ASSERT_TRUE(exact.ok()) << exact.status();
    EXPECT_NEAR(DistUpdOrDie(plurality, table), DistUpdOrDie(*exact, table),
                1e-9);
  }
}

TEST(Prop44Test, UpdateToSubset) {
  // Direction 1: untouched tuples of a consistent update form a consistent
  // subset of no greater cost.
  OfficeExample office = MakeOfficeExample();
  for (const Table* update :
       {&office.update_u1, &office.update_u2, &office.update_u3}) {
    auto rows = UpdateToConsistentSubsetRows(office.table, *update);
    ASSERT_TRUE(rows.ok());
    Table subset = office.table.SubsetByRows(*rows);
    EXPECT_TRUE(Satisfies(subset, office.fds));
    EXPECT_LE(DistSubOrDie(subset, office.table),
              DistUpdOrDie(*update, office.table) + 1e-9);
  }
}

TEST(Prop44Test, SubsetToUpdateCostsMlcTimesDistance) {
  OfficeExample office = MakeOfficeExample();
  // S1 keeps rows {1,2,3} (ids 2,3,4); mlc(office ∆) = 1.
  auto update = SubsetToUpdate(office.fds, office.table, {1, 2, 3});
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(Satisfies(*update, office.fds));
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*update, office.table), 2);  // 1 · dist_sub
  // Freshened cells are marked fresh in the pool.
  AttrId facility = *office.schema.AttributeId("facility");
  EXPECT_TRUE(office.table.pool()->IsFresh(update->value(0, facility)));
}

TEST(Prop44Test, SubsetToUpdateRejectsConsensus) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A");
  Table table(parsed.schema);
  table.AddTuple({"x"});
  EXPECT_EQ(SubsetToUpdate(parsed.fds, table, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CommonLhsRouteTest, OfficeOptimalUpdateCostsTwo) {
  OfficeExample office = MakeOfficeExample();
  auto update = CommonLhsOptimalURepair(office.fds, office.table);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(Satisfies(*update, office.fds));
  // Example 2.3: U1 with cost 2 is optimal; the route must match it.
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*update, office.table), 2);
}

TEST(CommonLhsRouteTest, MatchesExactOnRandomTables) {
  Rng rng(654);
  ParsedFdSet office = OfficeFds();
  for (int trial = 0; trial < 8; ++trial) {
    RandomTableOptions options;
    options.num_tuples = 4;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(office.schema, options, &table_rng);
    auto route = CommonLhsOptimalURepair(office.fds, table);
    ASSERT_TRUE(route.ok());
    auto exact = OptURepairExact(office.fds, table);
    ASSERT_TRUE(exact.ok()) << exact.status();
    EXPECT_NEAR(DistUpdOrDie(*route, table), DistUpdOrDie(*exact, table),
                1e-9)
        << table.ToString();
  }
}

TEST(CommonLhsRouteTest, RejectsWrongShapes) {
  EXPECT_EQ(
      CommonLhsOptimalURepair(DeltaTwoDisjoint().fds,
                              Table(DeltaTwoDisjoint().schema))
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
  // Common lhs but hard (Example 4.7's zip set): OptSRepair refuses.
  ParsedFdSet zip = Example47Zip();
  Table table(zip.schema);
  EXPECT_EQ(CommonLhsOptimalURepair(zip.fds, table).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(KeyCycleTest, Detection) {
  ParsedFdSet cycle = ParseFdSetInferSchemaOrDie("A -> B; B -> A");
  auto detected = DetectKeyCycle(cycle.fds);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(detected->first, 0);
  EXPECT_EQ(detected->second, 1);
  EXPECT_FALSE(DetectKeyCycle(DeltaAtoBtoC().fds).has_value());
  EXPECT_FALSE(DetectKeyCycle(DeltaAKeyBToC().fds).has_value());
  EXPECT_FALSE(DetectKeyCycle(FdSet()).has_value());
}

TEST(KeyCycleTest, AlignmentCostsMatchSRepair) {
  // Proposition 4.9: dist_upd(U*) = dist_sub(S*) despite mlc = 2.
  ParsedFdSet cycle = ParseFdSetInferSchemaOrDie("A -> B; B -> A");
  Table table(cycle.schema);
  table.AddTuple({"a1", "b1"}, 2);
  table.AddTuple({"a1", "b2"}, 1);  // conflicts with 1 on A
  table.AddTuple({"a3", "b1"}, 1);  // conflicts with 1 on B
  auto update = KeyCycleOptimalURepair(cycle.fds, table);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(Satisfies(*update, cycle.fds));
  auto srepair = OptSRepair(cycle.fds, table);
  ASSERT_TRUE(srepair.ok());
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*update, table),
                   DistSubOrDie(*srepair, table));
}

class KeyCyclePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyCyclePropertyTest, MatchesExactOptimum) {
  Rng rng(GetParam());
  ParsedFdSet cycle = ParseFdSetInferSchemaOrDie("A -> B; B -> A");
  for (int trial = 0; trial < 10; ++trial) {
    RandomTableOptions options;
    options.num_tuples = 4 + static_cast<int>(rng.UniformUint64(2));
    options.domain_size = 2 + static_cast<int>(rng.UniformUint64(2));
    options.heavy_fraction = (trial % 2) ? 0.5 : 0.0;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(cycle.schema, options, &table_rng);
    auto route = KeyCycleOptimalURepair(cycle.fds, table);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(Satisfies(*route, cycle.fds));
    auto exact = OptURepairExact(cycle.fds, table);
    ASSERT_TRUE(exact.ok()) << exact.status();
    EXPECT_NEAR(DistUpdOrDie(*route, table), DistUpdOrDie(*exact, table),
                1e-9)
        << table.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyCyclePropertyTest,
                         ::testing::Values(71, 72, 73, 74));

TEST(ExactURepairTest, FigureOneOptimumIsTwo) {
  OfficeExample office = MakeOfficeExample();
  ExactURepairOptions options;
  options.max_rows = 4;
  options.max_cells = 16;
  auto exact = OptURepairExact(office.fds, office.table, options);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_TRUE(Satisfies(*exact, office.fds));
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*exact, office.table), 2);
}

TEST(ExactURepairTest, GuardsBySize) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Rng rng(1);
  RandomTableOptions options;
  options.num_tuples = 12;
  Table table = RandomTable(parsed.schema, options, &rng);
  EXPECT_EQ(OptURepairExact(parsed.fds, table).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ExactURepairTest, CleanTableCostsZero) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Table table(parsed.schema);
  table.AddTuple({"a1", "b1", "c1"});
  table.AddTuple({"a2", "b2", "c2"});
  auto exact = OptURepairExact(parsed.fds, table);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*exact, table), 0);
}

// Corollary 4.5: dist_sub(S*) <= dist_upd(U*) <= mlc(∆) · dist_sub(S*) for
// consensus-free ∆, verified with both exact solvers.
class SandwichPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SandwichPropertyTest, Corollary45Holds) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (!delta.IsConsensusFree() || delta.empty()) continue;
    if (delta.Attrs().size() > 5) continue;  // keep the exact solver fast
    auto mlc = Mlc(delta);
    ASSERT_TRUE(mlc.ok());
    RandomTableOptions options;
    options.num_tuples = 4;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto subset = OptSRepairExact(delta, table);
    ASSERT_TRUE(subset.ok());
    double s_star = DistSubOrDie(*subset, table);
    auto update = OptURepairExact(delta, table);
    ASSERT_TRUE(update.ok()) << named.name << ": " << update.status();
    double u_star = DistUpdOrDie(*update, table);
    EXPECT_LE(s_star, u_star + 1e-9) << named.name;
    EXPECT_LE(u_star, *mlc * s_star + 1e-9) << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SandwichPropertyTest,
                         ::testing::Values(81, 82, 83));

// ---------------------------------------------------------------------------
// Span-port oracle: the live routes (DenseValueIndex + columnar scans) must
// be bit-identical to the preserved reference implementations.
// ---------------------------------------------------------------------------

void ExpectSameUpdate(const Table& expected, const Table& actual,
                      const std::string& context) {
  ASSERT_EQ(expected.num_tuples(), actual.num_tuples()) << context;
  for (int row = 0; row < expected.num_tuples(); ++row) {
    EXPECT_EQ(expected.id(row), actual.id(row)) << context << " row " << row;
    for (int c = 0; c < expected.schema().arity(); ++c) {
      EXPECT_EQ(expected.ValueText(row, c), actual.ValueText(row, c))
          << context << " row " << row << " col " << c;
    }
  }
}

/// What the service does with an edit list: replay it onto a clone.
Table ApplyCellEdits(const Table& table, const OptURepairResult& cells) {
  Table update = table.Clone();
  for (const URepairCellEdit& edit : cells.edits) {
    auto row = update.RowOf(edit.id);
    EXPECT_TRUE(row.ok());
    update.SetValue(*row, edit.attr, update.Intern(edit.text));
  }
  return update;
}

class URepairSpanOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(URepairSpanOracleTest, BitIdenticalToReferenceAndAcrossThreads) {
  const auto& [set_index, seed] = GetParam();
  NamedFdSet named = AllNamedFdSets()[set_index];
  URepairOptions options;
  // The tiny exhaustive solver is shared between oracle and live plans, so
  // exercising it here would compare it against itself; disable it and let
  // hard components take the approximation routes, which were ported.
  options.allow_exact_search = false;
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    RandomTableOptions topt;
    topt.num_tuples = 20 + static_cast<int>(rng.UniformUint64(180));
    topt.domain_size = 2 + static_cast<int>(rng.UniformUint64(4));
    topt.heavy_fraction = (trial % 2 == 0) ? 0.5 : 0.0;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, topt, &table_rng);

    auto reference = ReferenceComputeURepair(named.parsed.fds, table, options);
    ASSERT_TRUE(reference.ok()) << named.name << ": " << reference.status();
    auto live = ComputeURepair(named.parsed.fds, table, options);
    ASSERT_TRUE(live.ok()) << named.name << ": " << live.status();
    const std::string context =
        named.name + " trial " + std::to_string(trial);
    ExpectSameUpdate(reference->update, live->update, context);
    EXPECT_EQ(reference->distance, live->distance) << context;
    EXPECT_EQ(reference->optimal, live->optimal) << context;

    // The cell-edit pipeline at forced fan-out must replay to the same
    // update at every thread count.
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      OptURepairOptions cell_options;
      cell_options.planner = options;
      cell_options.exec.pool = &pool;
      cell_options.exec.parallel_cutoff = 1;  // fan out even tiny blocks
      auto cells =
          OptURepairCells(named.parsed.fds, table, cell_options, nullptr);
      ASSERT_TRUE(cells.ok()) << named.name << ": " << cells.status();
      ExpectSameUpdate(live->update, ApplyCellEdits(table, *cells),
                       context + " threads " + std::to_string(threads));
      EXPECT_EQ(live->distance, cells->distance)
          << context << " threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SetsAndSeeds, URepairSpanOracleTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(AllNamedFdSets().size())),
        ::testing::Values(uint64_t{2027}, uint64_t{2029})));

// The SIMD dispatch matrix on the full U-planner: bit-identical outputs
// across {row-major scalar, columnar scalar, columnar AVX2} — the §4
// companion of SpanRecursionTest.BitIdenticalAcrossLayoutAndSimdDispatch.
TEST(URepairSpanDispatchTest, BitIdenticalAcrossLayoutAndSimd) {
  struct DispatchGuard {
    ~DispatchGuard() {
      SetGroupingLayout(GroupingLayout::kColumnar);
      simd::ClearForcedSimdMode();
    }
  } guard;
  URepairOptions options;
  options.allow_exact_search = false;
  Rng rng(6007);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions topt;
    topt.num_tuples = 100 + static_cast<int>(rng.UniformUint64(120));
    topt.domain_size = 2 + static_cast<int>(rng.UniformUint64(4));
    topt.heavy_fraction = 0.5;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, topt, &table_rng);

    SetGroupingLayout(GroupingLayout::kRowMajor);
    simd::ForceSimdMode(simd::SimdMode::kScalar);
    auto row_major = ComputeURepair(named.parsed.fds, table, options);
    ASSERT_TRUE(row_major.ok()) << named.name << ": " << row_major.status();

    SetGroupingLayout(GroupingLayout::kColumnar);
    auto columnar_scalar = ComputeURepair(named.parsed.fds, table, options);
    ASSERT_TRUE(columnar_scalar.ok()) << named.name;
    ExpectSameUpdate(row_major->update, columnar_scalar->update,
                     named.name + " columnar scalar");
    EXPECT_EQ(row_major->distance, columnar_scalar->distance) << named.name;

    simd::ForceSimdMode(simd::SimdMode::kAvx2);
    auto columnar_simd = ComputeURepair(named.parsed.fds, table, options);
    ASSERT_TRUE(columnar_simd.ok()) << named.name;
    ExpectSameUpdate(row_major->update, columnar_simd->update,
                     named.name + " columnar " +
                         simd::SimdModeName(simd::ActiveSimdMode()));
    EXPECT_EQ(row_major->distance, columnar_simd->distance) << named.name;
  }
}

}  // namespace
}  // namespace fdrepair
