// Tests for repair checking: the §2.3 taxonomy (consistent subset/update,
// repair = local minimum, optimal repair = global minimum) made executable,
// exercised on the Figure 1 artifacts and randomized candidates.

#include <gtest/gtest.h>

#include "common/random.h"
#include "srepair/srepair_vc_approx.h"
#include "urepair/planner.h"
#include "verify/repair_check.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

class RepairCheckTest : public ::testing::Test {
 protected:
  OfficeExample office_ = MakeOfficeExample();
};

TEST_F(RepairCheckTest, Figure1SubsetsClassified) {
  // S1 and S2 are optimal S-repairs; S3 is a repair but not optimal.
  auto s1 = CheckSubsetRepair(office_.fds, office_.table, office_.subset_s1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->repair_class, SubsetRepairClass::kOptimalSubsetRepair);
  EXPECT_DOUBLE_EQ(s1->distance, 2);
  EXPECT_DOUBLE_EQ(s1->optimal_distance, 2);

  // S3 = {3, 4}: the paper calls it a (1.5-optimal) S-repair under its
  // convention of not distinguishing repairs from consistent subsets
  // (§2.3); strictly it is not ⊆-maximal — tuple 2 fits back in — and the
  // checker reports the strict class.
  auto s3 = CheckSubsetRepair(office_.fds, office_.table, office_.subset_s3);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s3->repair_class, SubsetRepairClass::kConsistentSubset);
  EXPECT_DOUBLE_EQ(s3->distance, 3);

  // T itself is not consistent.
  auto t = CheckSubsetRepair(office_.fds, office_.table, office_.table);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->repair_class, SubsetRepairClass::kNotAConsistentSubset);
}

TEST_F(RepairCheckTest, MaximalButNotOptimalSubset) {
  // ∆ = {A -> B}: keeping the light tuple is a true S-repair (maximal)
  // that is not optimal.
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 1);
  table.AddTuple({"a", "y"}, 3);
  auto light = CheckSubsetRepair(parsed.fds, table, table.SubsetByRows({0}));
  ASSERT_TRUE(light.ok());
  EXPECT_EQ(light->repair_class, SubsetRepairClass::kSubsetRepair);
  EXPECT_DOUBLE_EQ(light->distance, 3);
  EXPECT_DOUBLE_EQ(light->optimal_distance, 1);
  auto heavy = CheckSubsetRepair(parsed.fds, table, table.SubsetByRows({1}));
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(heavy->repair_class, SubsetRepairClass::kOptimalSubsetRepair);
}

TEST_F(RepairCheckTest, NonMaximalSubsetDetected) {
  // Keeping only tuple 4 is consistent but tuple 1 could be restored.
  auto row4 = office_.table.RowOf(4);
  ASSERT_TRUE(row4.ok());
  Table tiny = office_.table.SubsetByRows({*row4});
  auto result = CheckSubsetRepair(office_.fds, office_.table, tiny);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repair_class, SubsetRepairClass::kConsistentSubset);
}

TEST_F(RepairCheckTest, Figure1UpdatesClassified) {
  // U1 is an optimal U-repair (cost 2 = optimum).
  auto u1 = CheckUpdateRepair(office_.fds, office_.table, office_.update_u1);
  ASSERT_TRUE(u1.ok());
  EXPECT_EQ(u1->repair_class, UpdateRepairClass::kOptimalUpdateRepair);
  EXPECT_DOUBLE_EQ(u1->distance, 2);
  // U3 (cost 4): consistent, and restoring any changed subset of tuple 1
  // reintroduces a violation with tuple 2 — an update repair, not optimal.
  auto u3 = CheckUpdateRepair(office_.fds, office_.table, office_.update_u3);
  ASSERT_TRUE(u3.ok());
  EXPECT_EQ(u3->repair_class, UpdateRepairClass::kUpdateRepair);
  // The unchanged T is "consistent update of itself"? No: T violates ∆.
  auto t = CheckUpdateRepair(office_.fds, office_.table,
                             office_.table.Clone());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->repair_class, UpdateRepairClass::kNotAConsistentUpdate);
}

TEST_F(RepairCheckTest, RevertibleUpdateDetected) {
  // Change a cell nobody needed changed: the update is consistent but the
  // change can be reverted... only if the rest is consistent — start from
  // U1 (consistent) and gratuitously rename tuple 4's city.
  Table gratuitous = office_.update_u1.Clone();
  auto row4 = gratuitous.RowOf(4);
  ASSERT_TRUE(row4.ok());
  auto city = office_.schema.AttributeId("city");
  ASSERT_TRUE(city.ok());
  gratuitous.SetValue(*row4, *city, gratuitous.Intern("Lisbon"));
  auto result = CheckUpdateRepair(office_.fds, office_.table, gratuitous);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repair_class, UpdateRepairClass::kConsistentUpdate);
}

TEST_F(RepairCheckTest, PairwiseRevertMatters) {
  // A subtle non-repair: every *single* changed cell is irreversible, yet
  // reverting a *pair* of cells is consistent — only the full subset
  // enumeration of §2.3 catches it. ∆ = {A -> B} over R(A, B):
  //   t1 = (a, x) -> updated to (b, w)   (both cells)
  //   t2 = (a, y) -> updated to (z, y)   (lhs detached)
  //   t3 = (a, x), t4 = (b, w) unchanged.
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"});
  table.AddTuple({"a", "y"});
  table.AddTuple({"a", "x"});
  table.AddTuple({"b", "w"});
  Table update = table.Clone();
  update.SetValue(0, 0, update.Intern("b"));
  update.SetValue(0, 1, update.Intern("w"));
  update.SetValue(1, 0, update.Intern("z"));
  // Singleton reverts each violate: (a,w) vs t3=(a,x); (b,x) vs t4=(b,w);
  // (a,y) vs t3=(a,x). But reverting t1's two cells together restores
  // (a,x), which agrees with t3 — consistent, so not a U-repair.
  auto result = CheckUpdateRepair(parsed.fds, table, update);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repair_class, UpdateRepairClass::kConsistentUpdate);
}

TEST(RepairCheckPropertyTest, PlannerOutputsAlwaysClassifyAsRepairs) {
  Rng rng(8080);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (delta.Attrs().size() > 5 || delta.empty()) continue;
    RandomTableOptions options;
    options.num_tuples = 5;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    // The 2-approximation's output must be at least a subset repair
    // (it restores greedily, so it is ⊆-maximal).
    Table approx = SRepairVcApprox(delta, table);
    auto s_check = CheckSubsetRepair(delta, table, approx);
    ASSERT_TRUE(s_check.ok()) << named.name;
    EXPECT_NE(s_check->repair_class, SubsetRepairClass::kNotAConsistentSubset)
        << named.name;
    EXPECT_NE(s_check->repair_class, SubsetRepairClass::kConsistentSubset)
        << named.name;

    // The U-planner's output is consistent; when it claims optimality the
    // checker must agree.
    auto planned = ComputeURepair(delta, table);
    ASSERT_TRUE(planned.ok()) << named.name;
    auto u_check = CheckUpdateRepair(delta, table, planned->update);
    if (!u_check.ok()) continue;  // too many changed cells to verify
    EXPECT_NE(u_check->repair_class,
              UpdateRepairClass::kNotAConsistentUpdate)
        << named.name;
    if (planned->optimal &&
        u_check->repair_class == UpdateRepairClass::kUpdateRepair) {
      EXPECT_FALSE(u_check->optimality_known &&
                   planned->distance > u_check->optimal_distance + 1e-9)
          << named.name;
    }
  }
}

TEST(RepairCheckGuardTest, GuardOnHugeCandidates) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Rng rng(3);
  RandomTableOptions options;
  options.num_tuples = 40;
  options.domain_size = 2;
  Table table = RandomTable(parsed.schema, options, &rng);
  URepairOptions planner_options;
  planner_options.allow_exact_search = false;
  auto planned = ComputeURepair(parsed.fds, table, planner_options);
  ASSERT_TRUE(planned.ok());
  auto check = CheckUpdateRepair(parsed.fds, table, planned->update,
                                 /*max_changed_cells=*/4);
  // Either few cells changed (classified) or the guard fires.
  if (!check.ok()) {
    EXPECT_EQ(check.status().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace fdrepair
