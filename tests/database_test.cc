// Tests for the multi-relation Database wrapper: per-relation repairing with
// additive costs (§1: FDs never span relations).

#include <gtest/gtest.h>

#include "database/database.h"
#include "storage/consistency.h"
#include "workloads/example_fdsets.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

Database MakeTwoRelationDb() {
  Database db;
  OfficeExample office = MakeOfficeExample();
  EXPECT_TRUE(db.AddRelation("office", office.table, office.fds).ok());

  ParsedFdSet orders = ParseFdSetInferSchemaOrDie("item -> cost");
  Table table(orders.schema);
  table.AddTuple({"apple", "1"});
  table.AddTuple({"apple", "2"});  // violates item -> cost
  table.AddTuple({"pear", "3"});
  EXPECT_TRUE(db.AddRelation("orders", std::move(table), orders.fds).ok());
  return db;
}

TEST(DatabaseTest, AddRelationValidation) {
  Database db;
  OfficeExample office = MakeOfficeExample();
  EXPECT_TRUE(db.AddRelation("office", office.table, office.fds).ok());
  // Duplicate name.
  EXPECT_FALSE(db.AddRelation("office", office.table, office.fds).ok());
  // Empty name.
  EXPECT_FALSE(db.AddRelation("", office.table, office.fds).ok());
  // FD set over a wider schema than the table.
  ParsedFdSet wide = ParseFdSetInferSchemaOrDie("A -> B; C -> D; E -> F");
  Table narrow(Schema::Anonymous(2));
  EXPECT_FALSE(db.AddRelation("narrow", narrow, wide.fds).ok());
}

TEST(DatabaseTest, FindAndConsistency) {
  Database db = MakeTwoRelationDb();
  EXPECT_EQ(db.num_relations(), 2);
  ASSERT_TRUE(db.Find("orders").ok());
  EXPECT_FALSE(db.Find("missing").ok());
  EXPECT_FALSE(db.Consistent());  // both relations are dirty
}

TEST(DatabaseTest, SubsetRepairTotalsAdd) {
  Database db = MakeTwoRelationDb();
  auto result = RepairDatabaseSubsets(db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->optimal);
  // office optimum is 2 (Figure 1); orders optimum is 1 (drop one apple).
  EXPECT_DOUBLE_EQ(result->total_distance, 3);
  ASSERT_EQ(result->per_relation.size(), 2u);
  for (const auto& [name, repaired] : result->per_relation) {
    const Relation* relation = *db.Find(name);
    EXPECT_TRUE(Satisfies(repaired.repair, relation->fds)) << name;
  }
}

TEST(DatabaseTest, UpdateRepairTotalsAdd) {
  Database db = MakeTwoRelationDb();
  auto result = RepairDatabaseUpdates(db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->optimal);
  EXPECT_DOUBLE_EQ(result->total_distance, 3);  // 2 (office) + 1 (orders)
  for (const auto& [name, repaired] : result->per_relation) {
    const Relation* relation = *db.Find(name);
    EXPECT_TRUE(Satisfies(repaired.update, relation->fds)) << name;
    EXPECT_EQ(repaired.update.num_tuples(), relation->table.num_tuples());
  }
}

TEST(DatabaseTest, MixedComplexityRatioBound) {
  Database db;
  OfficeExample office = MakeOfficeExample();
  ASSERT_TRUE(db.AddRelation("office", office.table, office.fds).ok());
  // A hard relation forces the approximate route; the bound propagates.
  ParsedFdSet hard = DeltaAtoBtoC();
  Table table(hard.schema);
  for (int i = 0; i < 30; ++i) {
    table.AddTuple({"a" + std::to_string(i % 3), "b" + std::to_string(i % 5),
                    "c" + std::to_string(i % 2)});
  }
  ASSERT_TRUE(db.AddRelation("hard", std::move(table), hard.fds).ok());
  SRepairOptions options;
  options.strategy = SRepairStrategy::kApproxOnly;
  auto result = RepairDatabaseSubsets(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->optimal);
  EXPECT_DOUBLE_EQ(result->ratio_bound, 2.0);
}

TEST(DatabaseTest, EmptyDatabaseIsConsistent) {
  Database db;
  EXPECT_TRUE(db.Consistent());
  auto subsets = RepairDatabaseSubsets(db);
  ASSERT_TRUE(subsets.ok());
  EXPECT_DOUBLE_EQ(subsets->total_distance, 0);
  EXPECT_TRUE(subsets->optimal);
}

}  // namespace
}  // namespace fdrepair
