// Tests for the 2-approximate S-repair (Proposition 3.3): validity,
// factor-2 guarantee against the exact optimum, maximality of the restored
// repair, and agreement between the fused and conflict-graph engines.

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/conflict_graph.h"
#include "srepair/srepair_exact.h"
#include "srepair/srepair_vc_approx.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

TEST(SRepairApproxTest, ConsistentOnHardSets) {
  Rng rng(11);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 40;
    options.domain_size = 3;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    Table repair = SRepairVcApprox(named.parsed.fds, table);
    EXPECT_TRUE(Satisfies(repair, named.parsed.fds)) << named.name;
    EXPECT_TRUE(DistSub(repair, table).ok()) << named.name;
  }
}

TEST(SRepairApproxTest, CleanTableUntouched) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Table table(parsed.schema);
  table.AddTuple({"a1", "b1", "c1"});
  table.AddTuple({"a2", "b2", "c2"});
  Table repair = SRepairVcApprox(parsed.fds, table);
  EXPECT_EQ(repair.num_tuples(), 2);
}

TEST(SRepairApproxTest, RestoreMaximality) {
  // Start from the empty subset: restoration alone must build a repair.
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 1);
  table.AddTuple({"a", "y"}, 5);
  table.AddTuple({"b", "z"}, 1);
  std::vector<int> restored =
      RestoreConsistentRows(parsed.fds, TableView(table), {});
  // Heaviest-first greedy: keeps rows 1 (weight 5) and 2; row 0 conflicts.
  EXPECT_EQ(restored, (std::vector<int>{1, 2}));
}

class ApproxRatioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproxRatioTest, WithinTwiceOptimal) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    for (int trial = 0; trial < 4; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 5 + static_cast<int>(rng.UniformUint64(10));
      options.domain_size = 2 + static_cast<int>(rng.UniformUint64(3));
      options.heavy_fraction = (trial % 2 == 0) ? 0.4 : 0.0;
      Rng table_rng = rng.Fork();
      Table table = RandomTable(named.parsed.schema, options, &table_rng);
      Table approx = SRepairVcApprox(named.parsed.fds, table);
      double approx_distance = DistSubOrDie(approx, table);
      auto exact = OptSRepairExact(named.parsed.fds, table);
      ASSERT_TRUE(exact.ok()) << named.name;
      double exact_distance = DistSubOrDie(*exact, table);
      EXPECT_LE(approx_distance, 2.0 * exact_distance + 1e-9)
          << named.name << " trial " << trial;
      EXPECT_GE(approx_distance, exact_distance - 1e-9) << named.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRatioTest,
                         ::testing::Values(21, 42, 63));

TEST(SRepairApproxTest, GraphRouteAgreesOnGuarantee) {
  Rng rng(5);
  ParsedFdSet parsed = DeltaAtoBtoC();
  RandomTableOptions options;
  options.num_tuples = 25;
  options.domain_size = 3;
  Table table = RandomTable(parsed.schema, options, &rng);
  NodeWeightedGraph graph = BuildConflictGraph(TableView(table), parsed.fds);
  std::vector<int> order(graph.num_edges());
  for (int i = 0; i < graph.num_edges(); ++i) order[i] = i;
  // Forward and reversed edge orders both give valid 2-approximations.
  for (int reversal = 0; reversal < 2; ++reversal) {
    std::vector<int> rows =
        SRepairVcApproxRowsViaGraph(parsed.fds, TableView(table), order);
    Table repair = table.SubsetByRows(rows);
    EXPECT_TRUE(Satisfies(repair, parsed.fds));
    auto exact = OptSRepairExact(parsed.fds, table);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(DistSubOrDie(repair, table),
              2.0 * DistSubOrDie(*exact, table) + 1e-9);
    std::reverse(order.begin(), order.end());
  }
}

TEST(SRepairExactTest, RefusesOversizedConflicts) {
  Rng rng(3);
  ParsedFdSet parsed = DeltaAtoBtoC();
  RandomTableOptions options;
  options.num_tuples = 200;
  options.domain_size = 2;  // dense conflicts
  Table table = RandomTable(parsed.schema, options, &rng);
  auto exact = OptSRepairExactRows(parsed.fds, TableView(table), 40);
  EXPECT_EQ(exact.status().code(), StatusCode::kResourceExhausted);
}

TEST(SRepairExactTest, IsolatedTuplesAlwaysKept) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"});
  table.AddTuple({"a", "y"});
  table.AddTuple({"solo", "z"});
  auto exact = OptSRepairExact(parsed.fds, table);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->num_tuples(), 2);
  bool solo_kept = false;
  for (int row = 0; row < exact->num_tuples(); ++row) {
    if (exact->ValueText(row, 0) == "solo") solo_kept = true;
  }
  EXPECT_TRUE(solo_kept);
}

}  // namespace
}  // namespace fdrepair
