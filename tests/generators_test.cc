// Tests for the workload generators: determinism, planted consistency,
// corruption effect, graph and formula generators.

#include <gtest/gtest.h>

#include "srepair/srepair_vc_approx.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/graph_gen.h"
#include "workloads/sat_gen.h"

namespace fdrepair {
namespace {

TEST(GeneratorsTest, RandomTableDeterministic) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  RandomTableOptions options;
  options.num_tuples = 20;
  Rng rng1(42), rng2(42);
  Table a = RandomTable(parsed.schema, options, &rng1);
  Table b = RandomTable(parsed.schema, options, &rng2);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (int row = 0; row < a.num_tuples(); ++row) {
    for (int attr = 0; attr < a.schema().arity(); ++attr) {
      EXPECT_EQ(a.ValueText(row, attr), b.ValueText(row, attr));
    }
  }
}

TEST(GeneratorsTest, RandomTableWeights) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  RandomTableOptions options;
  options.num_tuples = 50;
  options.heavy_fraction = 1.0;
  options.max_weight = 3.0;
  Rng rng(7);
  Table table = RandomTable(parsed.schema, options, &rng);
  for (int row = 0; row < table.num_tuples(); ++row) {
    EXPECT_GE(table.weight(row), 1.0);
    EXPECT_LE(table.weight(row), 3.0);
  }
}

TEST(GeneratorsTest, PlantedTableConsistentBeforeCorruption) {
  ParsedFdSet office = OfficeFds();
  PlantedTableOptions options;
  options.num_tuples = 80;
  options.corruptions = 0;
  Rng rng(11);
  Table table = PlantedDirtyTable(office.schema, office.fds, options, &rng);
  EXPECT_TRUE(Satisfies(table, office.fds));
}

TEST(GeneratorsTest, CorruptionDamageIsBounded) {
  // Untouched tuples stay mutually consistent, so deleting the (at most
  // `corruptions`) touched tuples repairs the table: the optimal S-repair
  // distance is <= corruptions, and the 2-approximation <= 2·corruptions.
  ParsedFdSet office = OfficeFds();
  PlantedTableOptions options;
  options.num_tuples = 80;
  options.corruptions = 12;
  Rng rng(13);
  Table table = PlantedDirtyTable(office.schema, office.fds, options, &rng);
  Table repair = SRepairVcApprox(office.fds, table);
  EXPECT_TRUE(Satisfies(repair, office.fds));
  EXPECT_LE(DistSubOrDie(repair, table), 2.0 * options.corruptions);
}

TEST(GraphGenTest, RandomGraphHasRequestedEdges) {
  Rng rng(5);
  NodeWeightedGraph graph = RandomGraph(10, 15, &rng);
  EXPECT_EQ(graph.num_nodes(), 10);
  EXPECT_EQ(graph.num_edges(), 15);
}

TEST(GraphGenTest, BoundedDegreeRespected) {
  Rng rng(6);
  NodeWeightedGraph graph = RandomBoundedDegreeGraph(30, 3, 0.9, &rng);
  EXPECT_LE(graph.MaxDegree(), 3);
  EXPECT_GT(graph.num_edges(), 0);
}

TEST(GraphGenTest, TripartiteOnlyCrossEdges) {
  Rng rng(8);
  NodeWeightedGraph graph = RandomTripartiteGraph(5, 0.5, &rng);
  for (const auto& [u, v] : graph.edges()) {
    EXPECT_NE(u / 5, v / 5);  // endpoints in different parts
  }
}

TEST(GraphGenTest, TriangleEnumerationMatchesEdges) {
  // A fixed tripartite graph with exactly one triangle.
  NodeWeightedGraph graph(6);  // parts {0,1}, {2,3}, {4,5}
  graph.AddEdge(0, 2);
  graph.AddEdge(0, 4);
  graph.AddEdge(2, 4);
  graph.AddEdge(1, 3);  // no closing edge: not a triangle
  std::vector<Triangle> triangles = EnumerateTriangles(graph, 2);
  ASSERT_EQ(triangles.size(), 1u);
  EXPECT_EQ(triangles[0].a, "a0");
  EXPECT_EQ(triangles[0].b, "b0");
  EXPECT_EQ(triangles[0].c, "c0");
  auto packing = MaxEdgeDisjointTrianglesExact(graph, triangles, 2);
  ASSERT_TRUE(packing.ok());
  EXPECT_EQ(*packing, 1);
}

TEST(GraphGenTest, PackingDisjointness) {
  // Two triangles sharing the a0-b0 edge: only one fits.
  NodeWeightedGraph graph(9);  // parts of size 3
  graph.AddEdge(0, 3);          // a0-b0
  graph.AddEdge(0, 6);          // a0-c0
  graph.AddEdge(3, 6);          // b0-c0
  graph.AddEdge(0, 7);          // a0-c1
  graph.AddEdge(3, 7);          // b0-c1
  std::vector<Triangle> triangles = EnumerateTriangles(graph, 3);
  ASSERT_EQ(triangles.size(), 2u);
  auto packing = MaxEdgeDisjointTrianglesExact(graph, triangles, 3);
  ASSERT_TRUE(packing.ok());
  EXPECT_EQ(*packing, 1);
}

TEST(SatGenTest, NonMixedClausesArePure) {
  Rng rng(9);
  NonMixedFormula formula = RandomNonMixedFormula(6, 10, 3, &rng);
  EXPECT_EQ(formula.clauses.size(), 10u);
  for (const auto& clause : formula.clauses) {
    EXPECT_EQ(clause.variables.size(), 3u);
    for (int v : clause.variables) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 6);
    }
  }
}

TEST(SatGenTest, SatisfiedClausesAndExactMaxSat) {
  // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1): any non-constant assignment satisfies both.
  NonMixedFormula formula;
  formula.num_variables = 2;
  formula.clauses.push_back({true, {0, 1}});
  formula.clauses.push_back({false, {0, 1}});
  EXPECT_EQ(SatisfiedClauses(formula, 0b01), 2);
  EXPECT_EQ(SatisfiedClauses(formula, 0b11), 1);
  EXPECT_EQ(SatisfiedClauses(formula, 0b00), 1);
  auto best = MaxSatisfiableClausesExact(formula);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 2);
}

TEST(SatGenTest, ExactMaxSatGuard) {
  NonMixedFormula formula;
  formula.num_variables = 30;
  EXPECT_EQ(MaxSatisfiableClausesExact(formula, 24).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace fdrepair
